//! The GraphX table abstraction: an edge table + derived vertex tables,
//! all resident as RDDs on the executors (shared-nothing — no parameter
//! server).

use std::sync::Arc;

use psgraph_dataflow::{Cluster, DataflowError, Rdd};
use psgraph_graph::EdgeList;

/// A property graph in GraphX's two-table representation.
pub struct GxGraph {
    cluster: Arc<Cluster>,
    /// The edge table (directed pairs, as loaded).
    pub edges: Rdd<(u64, u64)>,
    pub num_vertices: u64,
}

impl GxGraph {
    /// Build from an in-memory edge list (distributed round-robin, like a
    /// Spark `textFile` + `map`).
    pub fn from_edgelist(
        cluster: &Arc<Cluster>,
        graph: &EdgeList,
        partitions: usize,
    ) -> Result<Self, DataflowError> {
        let edges = Rdd::from_vec(cluster, graph.edges().to_vec(), partitions.max(1))?;
        Ok(GxGraph {
            cluster: Arc::clone(cluster),
            edges,
            num_vertices: graph.num_vertices(),
        })
    }

    /// Build directly from an existing edge RDD.
    pub fn from_rdd(cluster: &Arc<Cluster>, edges: Rdd<(u64, u64)>, num_vertices: u64) -> Self {
        GxGraph { cluster: Arc::clone(cluster), edges, num_vertices }
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    fn parts(&self) -> usize {
        self.edges.num_partitions()
    }

    /// Symmetric (undirected) edge table without self-loops or duplicates.
    pub fn undirected_edges(&self) -> Result<Rdd<(u64, u64)>, DataflowError> {
        let sym = self.edges.flat_map(|&(s, d)| {
            if s == d {
                vec![]
            } else {
                vec![(s, d), (d, s)]
            }
        })?;
        sym.distinct(self.parts())
    }

    /// Canonical undirected edges (`a < b`), deduped.
    pub fn canonical_edges(&self) -> Result<Rdd<(u64, u64)>, DataflowError> {
        let canon = self.edges.flat_map(|&(s, d)| {
            if s == d {
                vec![]
            } else {
                vec![(s.min(d), s.max(d))]
            }
        })?;
        canon.distinct(self.parts())
    }

    /// Vertex table of out-degrees (vertices with no out-edges absent, as
    /// in GraphX's `outDegrees`).
    pub fn out_degrees(&self) -> Result<Rdd<(u64, u64)>, DataflowError> {
        let ones = self.edges.map(|&(s, _)| (s, 1u64))?;
        ones.reduce_by_key(self.parts(), |a, b| a + b)
    }

    /// Vertex table of sorted undirected neighbor lists (the `groupBy`
    /// that GraphX's triangle count runs — each executor materializes its
    /// vertices' full adjacency).
    pub fn neighbor_sets(&self) -> Result<Rdd<(u64, Vec<u64>)>, DataflowError> {
        let sym = self.undirected_edges()?;
        let grouped = sym.group_by_key(self.parts())?;
        grouped.map_partitions(
            |items| {
                items
                    .iter()
                    .map(|(v, ns)| {
                        let mut ns = ns.clone();
                        ns.sort_unstable();
                        ns.dedup();
                        (*v, ns)
                    })
                    .collect()
            },
            8,
        )
    }

    /// All vertex ids that appear in the edge table.
    pub fn vertex_ids(&self) -> Result<Rdd<u64>, DataflowError> {
        let ids = self.edges.flat_map(|&(s, d)| vec![s, d])?;
        ids.distinct(self.parts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_graph::gen;

    fn graph() -> (Arc<Cluster>, GxGraph) {
        let c = Cluster::local();
        let g = gen::rmat(50, 200, Default::default(), 3).dedup();
        let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
        (c, gx)
    }

    #[test]
    fn tables_have_expected_shapes() {
        let (_c, gx) = graph();
        assert_eq!(gx.num_vertices, 50);
        assert!(gx.edges.count().unwrap() > 0);
        let und = gx.undirected_edges().unwrap();
        let canon = gx.canonical_edges().unwrap();
        assert_eq!(und.count().unwrap(), 2 * canon.count().unwrap());
    }

    #[test]
    fn out_degrees_match_reference() {
        let c = Cluster::local();
        let g = psgraph_graph::EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2)]);
        let gx = GxGraph::from_edgelist(&c, &g, 2).unwrap();
        let mut deg = gx.out_degrees().unwrap().collect().unwrap();
        deg.sort_unstable();
        assert_eq!(deg, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn neighbor_sets_sorted_unique() {
        let c = Cluster::local();
        let g = psgraph_graph::EdgeList::new(3, vec![(0, 1), (1, 0), (0, 2), (0, 1)]);
        let gx = GxGraph::from_edgelist(&c, &g, 2).unwrap();
        let mut ns = gx.neighbor_sets().unwrap().collect().unwrap();
        ns.sort_by_key(|(v, _)| *v);
        assert_eq!(ns, vec![(0, vec![1, 2]), (1, vec![0]), (2, vec![0])]);
    }

    #[test]
    fn vertex_ids_cover_endpoints() {
        let c = Cluster::local();
        let g = psgraph_graph::EdgeList::new(10, vec![(0, 9), (3, 4)]);
        let gx = GxGraph::from_edgelist(&c, &g, 2).unwrap();
        let mut ids = gx.vertex_ids().unwrap().collect().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 3, 4, 9]);
    }
}
