//! GraphX triangle count: Spark's adjacency-set join.
//!
//! Each canonical edge is joined against the neighbor-set table twice, so
//! the join outputs carry full adjacency `Vec`s as payload — on power-law
//! graphs the hub rows are huge and replicated once per incident edge.
//! This is the second Fig. 6 OOM.

use psgraph_dataflow::DataflowError;
use psgraph_sim::FxHashSet;

use crate::graph::GxGraph;

/// Count triangles (each once).
pub fn gx_triangle_count(gx: &GxGraph) -> Result<u64, DataflowError> {
    let parts = gx.edges.num_partitions();
    let canon = gx.canonical_edges()?;
    let nbrs = gx.neighbor_sets()?;

    // (a, b) ⋈ N(a): payload = adjacency of a, replicated per edge.
    let with_na = canon.join(&nbrs, parts)?; // (a, (b, N(a)))
    let keyed_by_b = with_na.map(|&(a, (b, ref na))| (b, (a, na.clone())))?;
    // ⋈ N(b): each record now carries TWO adjacency lists.
    let with_both = keyed_by_b.join(&nbrs, parts)?; // (b, ((a, N(a)), N(b)))

    let counts = with_both.map(|&(_b, ((_a, ref na), ref nb))| {
        let (small, large) = if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
        let set: FxHashSet<u64> = large.iter().copied().collect();
        small.iter().filter(|v| set.contains(v)).count() as u64
    })?;

    let total: u64 = counts.fold(0u64, |acc, &c| acc + c)?;
    debug_assert_eq!(total % 3, 0);
    Ok(total / 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_dataflow::{Cluster, ClusterConfig};
    use psgraph_graph::{gen, metrics, EdgeList};

    fn run(g: &EdgeList) -> u64 {
        let c = Cluster::local();
        let gx = GxGraph::from_edgelist(&c, g, 8).unwrap();
        gx_triangle_count(&gx).unwrap()
    }

    #[test]
    fn known_counts() {
        assert_eq!(run(&gen::complete(4)), 4);
        assert_eq!(run(&gen::complete(6)), 20);
        assert_eq!(run(&gen::ring(7)), 0);
    }

    #[test]
    fn matches_exact_references() {
        let g = gen::erdos_renyi(40, 220, 83).dedup();
        assert_eq!(run(&g), metrics::triangles_exact(&g));
        let g = gen::rmat(50, 350, Default::default(), 89).dedup();
        assert_eq!(run(&g), metrics::triangles_exact(&g));
    }

    #[test]
    fn ooms_on_tight_memory_budget() {
        let g = gen::rmat(2000, 40_000, Default::default(), 97);
        let cfg = ClusterConfig::default().with_memory(256 << 10);
        let c = Cluster::new(cfg);
        let err = match GxGraph::from_edgelist(&c, &g, 8) {
            Err(e) => e,
            Ok(gx) => match gx_triangle_count(&gx) {
                Err(e) => e,
                Ok(_) => panic!("expected OOM"),
            },
        };
        assert!(matches!(err, DataflowError::Oom(_)), "got {err}");
    }
}
