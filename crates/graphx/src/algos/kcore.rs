//! GraphX K-core: h-index iteration expressed as joins.
//!
//! Every superstep ships one message per (undirected) edge through the
//! shuffle and then **groups all neighbor estimates per vertex** — an
//! edge-sized `Vec`-of-values intermediate that must fit in executor
//! memory. On skewed graphs the hub vertices' groups are enormous; this is
//! the structural reason GraphX OOMs on K-Core in Fig. 6 while PSGraph
//! (which pulls neighbor values from the PS in streamed batches) does not.

use psgraph_dataflow::DataflowError;

/// Spark iterative jobs truncate lineage only at checkpoint intervals
/// (GraphX's Pregel never does it automatically; production jobs
/// checkpoint every N rounds). Between checkpoints the narrow tail of
/// each iteration's state chain stays resident — vertex-sized for
/// PageRank/Louvain, but **edge-sized with grouped boxed values** for
/// K-Core, which is what blows it up in Fig. 6.
pub(crate) const CHECKPOINT_INTERVAL: u64 = 20;

use crate::graph::GxGraph;

fn h_index(values: &mut [u64]) -> u64 {
    values.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if v >= (i + 1) as u64 {
            h = (i + 1) as u64;
        } else {
            break;
        }
    }
    h
}

/// Compute coreness for every vertex (vertices absent from the edge table
/// get coreness 0). Returns dense `(vertex, coreness)` pairs.
pub fn gx_kcore(gx: &GxGraph, max_iterations: u64) -> Result<Vec<(u64, u64)>, DataflowError> {
    let parts = gx.edges.num_partitions();
    let und = gx.undirected_edges()?;

    // cores init = undirected degree.
    let ones = und.map(|&(s, _)| (s, 1u64))?;
    let mut cores = ones.reduce_by_key(parts, |a, b| a + b)?.sever_lineage();

    for iter in 0..max_iterations {
        // Message per edge: (dst, core[src]) — join + shuffle.
        let msgs = und
            .join(&cores, parts)?
            .map(|&(_src, (dst, core))| (dst, core))?;
        // THE expensive step: group all neighbor estimates per vertex.
        let grouped = msgs.group_by_key(parts)?;
        let new_cores = grouped.join(&cores, parts)?.map(|(v, (nvals, own))| {
            let mut nvals = nvals.clone();
            (*v, h_index(&mut nvals).min(*own))
        })?;
        // Converged?
        let changed = new_cores
            .join(&cores, parts)?
            .filter(|&(_, (new, old))| new != old)?
            .count()?;
        cores = if (iter + 1) % CHECKPOINT_INTERVAL == 0 {
            new_cores.sever_lineage()
        } else {
            new_cores
        };
        if changed == 0 {
            break;
        }
    }

    let sparse = cores.collect()?;
    let mut dense: Vec<(u64, u64)> = (0..gx.num_vertices).map(|v| (v, 0)).collect();
    for (v, c) in sparse {
        dense[v as usize].1 = c;
    }
    Ok(dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_dataflow::{Cluster, ClusterConfig};
    use psgraph_graph::{gen, metrics, EdgeList};

    fn run(g: &EdgeList) -> Vec<u64> {
        let c = Cluster::local();
        let gx = GxGraph::from_edgelist(&c, g, 8).unwrap();
        gx_kcore(&gx, 100).unwrap().into_iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn clique_with_tail() {
        let mut edges = gen::complete(5).into_edges();
        edges.push((4, 5));
        let g = EdgeList::new(6, edges);
        assert_eq!(run(&g), metrics::kcore_exact(&g));
    }

    #[test]
    fn matches_exact_on_random_graph() {
        let g = gen::erdos_renyi(40, 220, 71).dedup();
        assert_eq!(run(&g), metrics::kcore_exact(&g));
    }

    #[test]
    fn matches_exact_on_powerlaw_graph() {
        let g = gen::rmat(50, 350, Default::default(), 73).dedup();
        assert_eq!(run(&g), metrics::kcore_exact(&g));
    }

    #[test]
    fn ooms_on_tight_memory_budget() {
        // A hub-heavy graph with GraphX-style grouping must exceed a small
        // executor budget — the Fig. 6 K-Core OOM in miniature.
        let g = gen::rmat(2000, 40_000, Default::default(), 79);
        let cfg = ClusterConfig::default().with_memory(256 << 10);
        let c = Cluster::new(cfg);
        let gx = GxGraph::from_edgelist(&c, &g, 8);
        let err = match gx {
            Err(e) => e,
            Ok(gx) => match gx_kcore(&gx, 10) {
                Err(e) => e,
                Ok(_) => panic!("expected OOM"),
            },
        };
        assert!(matches!(err, DataflowError::Oom(_)), "got {err}");
    }
}
