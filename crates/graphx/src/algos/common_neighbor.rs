//! GraphX common neighbor: the same double adjacency join as triangle
//! count, but returning per-pair overlap counts.

use psgraph_dataflow::{DataflowError, Rdd};
use psgraph_sim::FxHashSet;

use crate::graph::GxGraph;

/// Pairs per join batch. Common-neighbor jobs stream the pair table in
/// batches (as the production job does — the PSGraph version in paper
/// §IV-B does the same): joining *all* pairs against the adjacency at
/// once would materialize every pair's two neighbor lists simultaneously.
/// Note GraphX's `triangleCount` has no such batching — that is exactly
/// why TC OOMs in Fig. 6 while CN merely runs 3× slower than PSGraph.
pub const CN_BATCH: usize = 128;

/// Count common neighbors for every canonical edge of the graph; returns
/// `(a, b, count)` triples.
pub fn gx_common_neighbor(gx: &GxGraph) -> Result<Vec<(u64, u64, u64)>, DataflowError> {
    let parts = gx.edges.num_partitions();
    let pairs = gx.canonical_edges()?;
    gx_common_neighbor_for_pairs(gx, &pairs, parts)
}

/// Count common neighbors for an explicit pair table (batched joins).
pub fn gx_common_neighbor_for_pairs(
    gx: &GxGraph,
    pairs: &Rdd<(u64, u64)>,
    parts: usize,
) -> Result<Vec<(u64, u64, u64)>, DataflowError> {
    // Build and hash-partition the adjacency table ONCE; every batch then
    // joins against it without re-shuffling it (Spark reuses a partitioned
    // cached table when the partitioners match).
    let nbrs = gx.neighbor_sets()?.partition_by_key(parts)?;
    let total = pairs.count()?;
    let mut out = Vec::with_capacity(total);
    let mut offset = 0usize;
    while offset < total {
        let lo = offset;
        let hi = (offset + CN_BATCH).min(total);
        // Select this batch in deterministic partition order.
        let batch = {
            let mut taken = Vec::with_capacity(hi - lo);
            let mut seen = 0usize;
            for p in 0..pairs.num_partitions() {
                let part = pairs.partition(p)?;
                for &pair in part.iter() {
                    if seen >= lo && seen < hi {
                        taken.push(pair);
                    }
                    seen += 1;
                }
            }
            Rdd::from_vec(gx.cluster(), taken, parts)?
        };
        let mut counted = gx_cn_one_batch(&batch, &nbrs, parts)?;
        out.append(&mut counted);
        offset = hi;
    }
    Ok(out)
}

fn gx_cn_one_batch(
    batch: &Rdd<(u64, u64)>,
    nbrs: &Rdd<(u64, Vec<u64>)>,
    parts: usize,
) -> Result<Vec<(u64, u64, u64)>, DataflowError> {
    let with_both = {
        // Only the (small) batch side shuffles; the adjacency table stays
        // put (co-partitioned join).
        let batch_part = batch.partition_by_key(parts)?;
        let with_na = nbrs.join_copartitioned(&batch_part)?; // (a, (N(a), b))
        let keyed_by_b = with_na.map(|&(_a, (ref na, b))| (b, (na.clone(), _a)))?;
        let keyed_part = keyed_by_b.partition_by_key(parts)?;
        nbrs.join_copartitioned(&keyed_part)? // (b, (N(b), (N(a), a)))
    };
    let counted = with_both.map(|&(b, (ref nb, (ref na, a)))| {
        let (small, large) = if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
        let set: FxHashSet<u64> = large.iter().copied().collect();
        (a, b, small.iter().filter(|v| set.contains(v)).count() as u64)
    })?;
    counted.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_dataflow::{Cluster, ClusterConfig};
    use psgraph_graph::{gen, metrics, EdgeList};
    use psgraph_sim::FxHashMap;

    fn check(g: &EdgeList) {
        let c = Cluster::local();
        let gx = GxGraph::from_edgelist(&c, g, 8).unwrap();
        let out = gx_common_neighbor(&gx).unwrap();
        let queried: Vec<(u64, u64)> = out.iter().map(|&(a, b, _)| (a, b)).collect();
        let exact = metrics::common_neighbors_exact(g, &queried);
        let got: FxHashMap<(u64, u64), u64> =
            out.iter().map(|&(a, b, n)| ((a, b), n)).collect();
        for (&(a, b), want) in queried.iter().zip(&exact) {
            assert_eq!(got[&(a, b)], *want, "pair ({a},{b})");
        }
    }

    #[test]
    fn square_with_diagonal() {
        check(&EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]));
    }

    #[test]
    fn matches_exact_on_random_and_powerlaw() {
        check(&gen::erdos_renyi(40, 200, 101).dedup());
        check(&gen::rmat(50, 300, Default::default(), 103).dedup());
    }

    #[test]
    fn explicit_pairs() {
        let c = Cluster::local();
        let g = gen::complete(5);
        let gx = GxGraph::from_edgelist(&c, &g, 4).unwrap();
        let pairs = Rdd::from_vec(&c, vec![(0u64, 1u64), (2, 4)], 2).unwrap();
        let mut out = gx_common_neighbor_for_pairs(&gx, &pairs, 4).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 1, 3), (2, 4, 3)]);
    }

    #[test]
    fn survives_reasonable_budget_but_not_tiny_one() {
        let g = gen::rmat(1500, 30_000, Default::default(), 107);
        let tight = Cluster::new(ClusterConfig::default().with_memory(256 << 10));
        let err = match GxGraph::from_edgelist(&tight, &g, 8) {
            Err(e) => e,
            Ok(gx) => gx_common_neighbor(&gx).map(|_| ()).unwrap_err(),
        };
        assert!(matches!(err, DataflowError::Oom(_)));
        let roomy = Cluster::new(ClusterConfig::default().with_memory(1 << 30));
        let gx = GxGraph::from_edgelist(&roomy, &g, 8).unwrap();
        assert!(gx_common_neighbor(&gx).is_ok());
    }
}
