//! GraphX PageRank: the textbook Spark implementation — every iteration
//! joins the full edge table against the rank table, shuffles one
//! contribution per edge, and aggregates. No increments, no parameter
//! server: the whole rank table and the whole message volume move through
//! the shuffle each superstep, which is the 8×-slower path of Fig. 6.

use psgraph_dataflow::{DataflowError, Rdd};

use crate::graph::GxGraph;

/// Run `iterations` of damped PageRank; returns `(vertex, rank)` pairs in
/// the unnormalized form `PR = (1-d) + d·Σ PR_j/L_j`.
pub fn gx_pagerank(
    gx: &GxGraph,
    damping: f64,
    iterations: u64,
) -> Result<Vec<(u64, f64)>, DataflowError> {
    let parts = gx.edges.num_partitions();
    let degrees = gx.out_degrees()?;

    // Dense vertex table (every id gets a rank, like `Graph.outerJoin`).
    let n = gx.num_vertices;
    let zeros = Rdd::from_vec(
        gx.cluster(),
        (0..n).map(|v| (v, 0.0f64)).collect(),
        parts,
    )?;

    let mut ranks = zeros.map(|&(v, _)| (v, 1.0f64))?;
    for iter in 0..iterations {
        // Triplets: join edge table (keyed by src) with rank and degree.
        let rank_deg = ranks.join(&degrees, parts)?;
        let contribs = gx
            .edges
            .join(&rank_deg, parts)?
            .map(|&(_src, (dst, (rank, deg)))| (dst, rank / deg as f64))?;
        let sums = contribs.reduce_by_key(parts, |a, b| a + b)?;
        // Re-densify (vertices with no in-edges keep the base rank).
        let merged = zeros.union(&sums)?.reduce_by_key(parts, |a, b| a + b)?;
        // Lineage is truncated only at checkpoint intervals (Spark
        // iterative-job practice); between checkpoints the retained chain
        // is merely vertex-sized for PageRank.
        ranks = merged.map(move |&(v, s)| (v, (1.0 - damping) + damping * s))?;
        if (iter + 1) % crate::algos::kcore::CHECKPOINT_INTERVAL == 0 {
            ranks = ranks.sever_lineage();
        }
    }

    let mut out = ranks.collect()?;
    out.sort_by_key(|&(v, _)| v);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_dataflow::Cluster;
    use psgraph_graph::{gen, metrics, EdgeList};

    fn run(g: &EdgeList, iters: u64) -> Vec<(u64, f64)> {
        let c = Cluster::local();
        let gx = GxGraph::from_edgelist(&c, g, 8).unwrap();
        gx_pagerank(&gx, 0.85, iters).unwrap()
    }

    /// Close the ring so there are no dangling vertices (same caveat as
    /// the PSGraph PageRank tests).
    fn close_ring(g: &EdgeList) -> EdgeList {
        let n = g.num_vertices();
        let mut edges = g.edges().to_vec();
        for v in 0..n {
            edges.push((v, (v + 1) % n));
        }
        EdgeList::new(n, edges).dedup()
    }

    #[test]
    fn uniform_on_ring() {
        let out = run(&gen::ring(10), 30);
        assert_eq!(out.len(), 10);
        for &(_, r) in &out {
            assert!((r - 1.0).abs() < 1e-6, "ring rank {r}");
        }
    }

    #[test]
    fn matches_exact_reference() {
        let g = close_ring(&gen::rmat(50, 300, Default::default(), 7).dedup());
        let out = run(&g, 40);
        let exact = metrics::pagerank_exact(&g, 0.85, 60);
        let n = g.num_vertices() as f64;
        for (v, &(_, r)) in out.iter().enumerate() {
            assert!(
                (r / n - exact[v]).abs() < 1e-3,
                "vertex {v}: graphx {} vs exact {}",
                r / n,
                exact[v]
            );
        }
    }

    #[test]
    fn agrees_with_psgraph_shapewise() {
        // Both engines implement the same math; spot-check the hub.
        let edges = (1..15u64).map(|v| (v, 0)).chain([(0u64, 1u64)]).collect();
        let g = EdgeList::new(15, edges);
        let out = run(&g, 30);
        assert!(out[0].1 > 3.0 * out[2].1, "hub must dominate");
    }

    #[test]
    fn pagerank_costs_grow_with_iterations() {
        let g = gen::rmat(100, 1000, Default::default(), 9).dedup();
        let c1 = Cluster::local();
        let gx1 = GxGraph::from_edgelist(&c1, &g, 8).unwrap();
        gx_pagerank(&gx1, 0.85, 2).unwrap();
        let c2 = Cluster::local();
        let gx2 = GxGraph::from_edgelist(&c2, &g, 8).unwrap();
        gx_pagerank(&gx2, 0.85, 8).unwrap();
        assert!(c2.now() > c1.now().scale(2.0), "per-iteration shuffle cost");
    }
}
