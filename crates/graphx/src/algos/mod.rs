//! Join-based implementations of the Fig. 6 algorithms.

pub mod common_neighbor;
pub mod fast_unfolding;
pub mod kcore;
pub mod pagerank;
pub mod triangle;

pub use common_neighbor::gx_common_neighbor;
pub use fast_unfolding::gx_fast_unfolding;
pub use kcore::gx_kcore;
pub use pagerank::gx_pagerank;
pub use triangle::gx_triangle_count;
