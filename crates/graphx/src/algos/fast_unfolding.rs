//! GraphX Fast Unfolding (Louvain).
//!
//! Every sweep shuffles per-(vertex, community) weight messages — which
//! are **map-side combinable**, the combinability K-Core's h-index lacks —
//! and resolves community/degree/Σtot lookups through **broadcast joins**:
//! all three tables are vertex-sized (and shrink every aggregation pass),
//! so Spark's small-table broadcast strategy applies; a shuffle join keyed
//! by community would funnel hot communities into single reduce tasks.
//! Broadcast copies are charged to every executor's clock and memory.
//!
//! Still plenty expensive: each sweep pays two shuffles (kin combine +
//! best-move reduce) plus broadcasts over the full edge table, twice per
//! sweep (parity-alternated to avoid parallel-Louvain oscillation) — the
//! structure behind the paper's 10.3 h (GraphX) vs 3.5 h (PSGraph) on DS1.

use psgraph_dataflow::{Cluster, DataflowError, Rdd};
use psgraph_sim::memory::Reservation;
use psgraph_sim::FxHashMap;
use std::sync::Arc;

use crate::graph::GxGraph;

/// Result of the join-based Louvain.
#[derive(Debug, Clone)]
pub struct GxLouvainOutput {
    pub communities: Vec<u64>,
    pub modularity: f64,
}

/// Broadcast a vertex-sized table to every executor: charges the wire
/// bytes and reserves the deserialized copy on each executor while the
/// returned guards live.
/// A broadcast handle: the deserialized map plus per-executor memory
/// reservations that release when dropped.
type Broadcast<'c, V> = (Arc<FxHashMap<u64, V>>, Vec<Reservation<'c>>);

fn broadcast<'c, V: Copy + Send + Sync + 'static>(
    cluster: &'c Arc<Cluster>,
    table: &Rdd<(u64, V)>,
    entry_bytes: u64,
) -> Result<Broadcast<'c, V>, DataflowError>
where
    (u64, V): psgraph_dataflow::Record,
{
    let vec = table.collect()?;
    let bytes = vec.len() as u64 * entry_bytes + 64;
    let mut guards = Vec::with_capacity(cluster.num_executors());
    for e in 0..cluster.num_executors() {
        let exec = cluster.executor(e);
        cluster.network().bulk_fetch(exec.clock(), bytes);
        guards.push(Reservation::new(exec.memory(), bytes).map_err(DataflowError::Oom)?);
    }
    Ok((Arc::new(vec.into_iter().collect()), guards))
}

/// Run on the (unweighted) graph with unit edge weights.
pub fn gx_fast_unfolding(
    gx: &GxGraph,
    max_passes: u64,
    max_sweeps: u64,
) -> Result<GxLouvainOutput, DataflowError> {
    let canon = gx.canonical_edges()?;
    let weighted = canon.map(|&(a, b)| (a, b, 1.0f64))?;
    gx_fast_unfolding_weighted(gx.cluster(), &weighted, gx.num_vertices, max_passes, max_sweeps)
}

/// Run on a weighted edge table (each undirected edge listed once).
pub fn gx_fast_unfolding_weighted(
    cluster: &Arc<Cluster>,
    edges: &Rdd<(u64, u64, f64)>,
    num_vertices: u64,
    max_passes: u64,
    max_sweeps: u64,
) -> Result<GxLouvainOutput, DataflowError> {
    let parts = edges.num_partitions();

    // Symmetric-directed representation: (src, (dst, w)).
    let mut graph = edges.flat_map(|&(s, d, w)| {
        if s == d {
            vec![(s, (s, 2.0 * w))]
        } else {
            vec![(s, (d, w)), (d, (s, w))]
        }
    })?;

    let two_m = graph.fold(0.0f64, |acc, &(_, (_, w))| acc + w)?;
    if two_m <= 0.0 {
        return Ok(GxLouvainOutput {
            communities: (0..num_vertices).collect(),
            modularity: 0.0,
        });
    }

    let mut assign: Vec<u64> = (0..num_vertices).collect();
    let mut best_q = f64::NEG_INFINITY;

    for pass in 0..max_passes {
        // Weighted degree table (vertex-sized, broadcast below).
        let ktab = graph
            .map(|&(s, (_, w))| (s, w))?
            .reduce_by_key(parts, |a, b| a + b)?;
        // Community assignment (identity at pass start).
        let mut v2c = ktab.map(|&(v, _)| (v, v))?;
        // Σtot per community.
        let mut com2weight = ktab.clone();

        for _sweep in 0..max_sweeps {
            let mut sweep_moves = 0usize;
            // Parity-alternated half-sweeps (oscillation guard).
            for parity in 0..2u64 {
                let (v2c_bc, _g1) = broadcast(cluster, &v2c, 16)?;
                let (ktab_bc, _g2) = broadcast(cluster, &ktab, 16)?;
                let (c2w_bc, _g3) = broadcast(cluster, &com2weight, 16)?;

                // k_in per (vertex, candidate community): map-side
                // combinable shuffle over the edge table.
                let kin = {
                    let v2c_map = Arc::clone(&v2c_bc);
                    let pairs = graph.flat_map(move |&(s, (d, w))| {
                        if s == d || s % 2 != parity {
                            vec![]
                        } else {
                            vec![((s, v2c_map[&d]), w)]
                        }
                    })?;
                    let own = v2c
                        .filter(move |&(v, _)| v % 2 == parity)?
                        .map(|&(v, c)| ((v, c), 0.0f64))?;
                    pairs.union(&own)?.reduce_by_key(parts, |a, b| a + b)?
                };

                // Score each candidate via the broadcast tables; keep the
                // best move per vertex.
                let best = {
                    let v2c_map = Arc::clone(&v2c_bc);
                    let ktab_map = Arc::clone(&ktab_bc);
                    let c2w_map = Arc::clone(&c2w_bc);
                    let scored = kin.map(move |&((v, c), kin_c)| {
                        let own = v2c_map[&v];
                        let k = ktab_map.get(&v).copied().unwrap_or(0.0);
                        let mut tot = c2w_map.get(&c).copied().unwrap_or(0.0);
                        if c == own {
                            tot -= k;
                        }
                        (v, (kin_c - tot * k / two_m, c))
                    })?;
                    scored.reduce_by_key(parts, |a, b| {
                        if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                            *b
                        } else {
                            *a
                        }
                    })?
                };
                drop(kin);

                let v2c_map = Arc::clone(&v2c_bc);
                let moves = best
                    .filter(move |&(v, (_gain, c))| c != v2c_map[&v])?
                    .map(|&(v, (_gain, c))| (v, c))?;
                let n_moves = moves.count()?;
                sweep_moves += n_moves;
                drop(best);
                if n_moves == 0 {
                    continue;
                }
                // Apply moves: tagged union, keep the tagged (moved) value.
                let tagged_old = v2c.map(|&(v, c)| (v, (c, 0u64)))?;
                let tagged_new = moves.map(|&(v, c)| (v, (c, 1u64)))?;
                v2c = tagged_old
                    .union(&tagged_new)?
                    .reduce_by_key(parts, |a, b| if b.1 > a.1 { *b } else { *a })?
                    .map(|&(v, (c, _))| (v, c))?
                    .sever_lineage();
                // Recompute Σtot (vertex-sized shuffle via fresh broadcast).
                let (v2c_new, _g4) = broadcast(cluster, &v2c, 16)?;
                com2weight = ktab
                    .map(move |&(v, k)| (v2c_new[&v], k))?
                    .reduce_by_key(parts, |a, b| a + b)?
                    .sever_lineage();
            }
            if sweep_moves == 0 {
                break;
            }
        }

        // Pass modularity (broadcast v2c, stream the edge table).
        let (v2c_bc, _g) = broadcast(cluster, &v2c, 16)?;
        let v2c_map = Arc::clone(&v2c_bc);
        let intra = graph.fold(0.0f64, move |acc, &(s, (d, w))| {
            if v2c_map[&s] == v2c_map[&d] {
                acc + w
            } else {
                acc
            }
        })?;
        let sq_tot = com2weight
            .fold(0.0f64, |acc, &(_c, t)| acc + (t / two_m) * (t / two_m))?;
        let q = intra / two_m - sq_tot;

        let first_pass = best_q == f64::NEG_INFINITY;
        if first_pass || q > best_q {
            for a in assign.iter_mut() {
                if let Some(&c) = v2c_bc.get(a) {
                    *a = c;
                }
            }
        }
        let improved = first_pass || q > best_q + 1e-4;
        best_q = best_q.max(q);
        if !improved || pass + 1 == max_passes {
            break;
        }

        // Aggregation: contract communities (broadcast v2c over the edge
        // table, then one shuffle).
        let v2c_map = Arc::clone(&v2c_bc);
        let contracted = graph.map(move |&(s, (d, w))| ((v2c_map[&s], v2c_map[&d]), w))?;
        let merged = contracted.reduce_by_key(parts, |a, b| a + b)?;
        graph = merged.map(|&((s, d), w)| (s, (d, w)))?.sever_lineage();
    }

    Ok(GxLouvainOutput { communities: assign, modularity: best_q })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_graph::{gen, metrics, EdgeList, WeightedEdgeList};

    fn run(g: &EdgeList) -> GxLouvainOutput {
        let c = Cluster::local();
        let gx = GxGraph::from_edgelist(&c, g, 8).unwrap();
        gx_fast_unfolding(&gx, 5, 10).unwrap()
    }

    #[test]
    fn two_cliques_with_bridge() {
        let mut edges = vec![];
        for s in 0..5u64 {
            for d in s + 1..5 {
                edges.push((s, d));
            }
        }
        for s in 5..10u64 {
            for d in s + 1..10 {
                edges.push((s, d));
            }
        }
        edges.push((0, 5));
        let out = run(&EdgeList::new(10, edges));
        for v in 1..5 {
            assert_eq!(out.communities[v], out.communities[0]);
        }
        for v in 6..10 {
            assert_eq!(out.communities[v], out.communities[5]);
        }
        assert_ne!(out.communities[0], out.communities[5]);
        assert!(out.modularity > 0.3, "Q = {}", out.modularity);
    }

    #[test]
    fn reported_modularity_matches_reference() {
        let s = gen::sbm2(60, 8.0, 0.5, 2, 0.1, 109);
        let mut canon: Vec<(u64, u64)> = s
            .graph
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let g = EdgeList::new(60, canon.clone());
        let out = run(&g);
        let w = WeightedEdgeList::new(60, canon.iter().map(|&(a, b)| (a, b, 1.0)).collect());
        let q_ref = metrics::modularity(&w, &out.communities);
        assert!(
            (out.modularity - q_ref).abs() < 1e-9,
            "reported {} vs reference {}",
            out.modularity,
            q_ref
        );
        assert!(out.modularity > 0.2);
    }

    #[test]
    fn sbm_partition_recovered() {
        let s = gen::sbm2(80, 10.0, 0.3, 2, 0.1, 113);
        let mut canon: Vec<(u64, u64)> = s
            .graph
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let out = run(&EdgeList::new(80, canon));
        let mut agree = 0;
        for v in 0..40 {
            for u in 0..40 {
                if out.communities[v] == out.communities[u] {
                    agree += 1;
                }
            }
        }
        assert!(agree > 800, "coherence {agree}/1600");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let c = Cluster::local();
        let rdd: Rdd<(u64, u64, f64)> = Rdd::from_vec(&c, vec![], 2).unwrap();
        let out = gx_fast_unfolding_weighted(&c, &rdd, 4, 3, 3).unwrap();
        assert_eq!(out.communities, vec![0, 1, 2, 3]);
        assert_eq!(out.modularity, 0.0);
    }

    #[test]
    fn broadcast_charges_time_and_memory_guard() {
        let c = Cluster::local();
        let table = Rdd::from_vec(&c, (0..1000u64).map(|v| (v, v)).collect(), 4).unwrap();
        let t_before = c.executor(0).clock().now();
        let m_before = c.executor(0).memory().in_use();
        let (map, guards) = broadcast(&c, &table, 16).unwrap();
        assert_eq!(map.len(), 1000);
        assert_eq!(guards.len(), c.num_executors());
        assert!(c.executor(0).clock().now() > t_before);
        assert!(c.executor(0).memory().in_use() >= m_before + 16_000);
        drop(guards);
        assert_eq!(c.executor(0).memory().in_use(), m_before);
    }
}
