//! The GraphX baseline: graph algorithms as shuffle-join dataflows.
//!
//! GraphX "stores graph data in a table abstraction, in which every
//! executor stores an edge table and a vertex table … and uses the
//! table-join operation of Spark to implement message passing" (paper §I).
//! This crate reimplements the five traditional-graph algorithms of Fig. 6
//! in exactly that style on `psgraph-dataflow`: every superstep joins the
//! edge table against the vertex table, shuffles the messages, and
//! aggregates — paying serialization, disk-spill, network, and join
//! hash-table costs each round.
//!
//! Nothing here is artificially slowed down: the 8× PageRank gap and the
//! K-Core / Triangle-Count OOMs of Fig. 6 *emerge* from the join-based
//! structure (grouped neighbor values and join outputs carrying adjacency
//! payloads blow up the per-executor memory meters on power-law graphs).

pub mod algos;
pub mod graph;
pub mod pregel;

pub use algos::{
    gx_common_neighbor, gx_fast_unfolding, gx_kcore, gx_pagerank, gx_triangle_count,
};
pub use graph::GxGraph;
pub use pregel::{gx_connected_components, pregel};
