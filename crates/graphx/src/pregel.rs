//! A generic Pregel driver on the join-based engine — GraphX's
//! `Pregel`/`aggregateMessages` programming model (paper §II-C
//! "vertex-centric").
//!
//! Each superstep: (1) join the edge table against the vertex-state table
//! to form triplets, (2) emit messages along edges, (3) combine messages
//! per destination (map-side combinable), (4) join the combined messages
//! back into the vertex table and apply the vertex program. State carries
//! per-superstep through shuffles exactly as GraphX does, including the
//! checkpoint-interval lineage policy.

use psgraph_dataflow::{DataflowError, Rdd, Record};
use std::sync::Arc;

use crate::algos::kcore::CHECKPOINT_INTERVAL;
use crate::graph::GxGraph;

/// Run a Pregel computation over `u64`-keyed vertex states of type `S`
/// with messages of type `M`.
///
/// * `initial` — the starting vertex-state table.
/// * `send` — per-triplet message: `(src, src_state, dst) → Option<M>`.
/// * `combine` — commutative/associative message combiner.
/// * `apply` — vertex program: `(vertex, old_state, combined_msg) → new
///   state`; vertices with no incoming message keep their state.
///
/// Runs until no vertex state changes (`S: PartialEq`) or `max_supersteps`.
#[allow(clippy::too_many_arguments)]
pub fn pregel<S, M>(
    gx: &GxGraph,
    initial: Rdd<(u64, S)>,
    send: impl Fn(u64, &S, u64) -> Option<M> + Send + Sync + 'static,
    combine: impl Fn(&M, &M) -> M + Send + Sync + 'static,
    apply: impl Fn(u64, &S, &M) -> S + Send + Sync + 'static,
    max_supersteps: u64,
) -> Result<Rdd<(u64, S)>, DataflowError>
where
    S: Record + PartialEq,
    M: Record,
{
    let parts = gx.edges.num_partitions();
    let send = Arc::new(send);
    let combine = Arc::new(combine);
    let apply = Arc::new(apply);
    let mut states = initial;

    for step in 0..max_supersteps {
        // Triplets + messages, pipelined into the combine shuffle.
        let send2 = Arc::clone(&send);
        let combine2 = Arc::clone(&combine);
        let msgs = {
            let triplets = gx.edges.join(&states, parts)?; // (src, (dst, state))
            triplets.flat_map_reduce_by_key(
                parts,
                move |&(src, (dst, ref state)), out| {
                    if let Some(m) = send2(src, state, dst) {
                        out.push((dst, m));
                    }
                },
                move |a, b| combine2(a, b),
            )?
        };

        // Apply: join messages into the state table; count changes.
        let apply2 = Arc::clone(&apply);
        let updated = states
            .join(&msgs, parts)?
            .map(move |&(v, (ref old, ref msg))| {
                let new = apply2(v, old, msg);
                let changed = new != *old;
                (v, (new, changed))
            })?;
        let changes = updated.filter(|&(_, (_, changed))| changed)?.count()?;

        // Vertices without messages keep their state (outer-join union).
        let kept = states.map(|&(v, ref s)| (v, (s.clone(), false)))?;
        let merged = kept
            .union(&updated.map(|&(v, (ref s, _))| (v, (s.clone(), true)))?)?
            .reduce_by_key(parts, |a, b| if b.1 { b.clone() } else { a.clone() })?;
        states = merged.map(|&(v, (ref s, _))| (v, s.clone()))?;
        if (step + 1) % CHECKPOINT_INTERVAL == 0 {
            states = states.sever_lineage();
        }

        if changes == 0 {
            break;
        }
    }
    Ok(states)
}

/// Connected components via Pregel: propagate the minimum reachable id.
pub fn gx_connected_components(
    gx: &GxGraph,
    max_supersteps: u64,
) -> Result<Vec<u64>, DataflowError> {
    let parts = gx.edges.num_partitions();
    let und = gx.undirected_edges()?;
    let sym = GxGraph::from_rdd(gx.cluster(), und, gx.num_vertices);
    let initial = Rdd::from_vec(
        gx.cluster(),
        (0..gx.num_vertices).map(|v| (v, v)).collect(),
        parts,
    )?;
    let out = pregel(
        &sym,
        initial,
        |_src, &label, _dst| Some(label),
        |a, b| *a.min(b),
        |_v, &old, &msg| old.min(msg),
        max_supersteps,
    )?;
    let mut dense = vec![0u64; gx.num_vertices as usize];
    for (v, label) in out.collect()? {
        dense[v as usize] = label;
    }
    Ok(dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_dataflow::Cluster;
    use psgraph_graph::{gen, metrics, EdgeList};

    #[test]
    fn connected_components_two_islands() {
        let c = Cluster::local();
        let g = EdgeList::new(7, vec![(0, 1), (1, 2), (4, 5)]);
        let gx = GxGraph::from_edgelist(&c, &g, 4).unwrap();
        let cc = gx_connected_components(&gx, 20).unwrap();
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[4], cc[5]);
        assert_ne!(cc[0], cc[4]);
        assert_eq!(cc[3], 3, "isolated vertex keeps its id");
        assert_eq!(cc[6], 6);
    }

    #[test]
    fn connected_components_match_reference() {
        let c = Cluster::local();
        let g = gen::rmat(60, 150, Default::default(), 301).dedup();
        let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
        let ours = gx_connected_components(&gx, 64).unwrap();
        let reference = metrics::connected_components(&g);
        // Same partition (component labels may differ; compare structure).
        for a in 0..60usize {
            for b in 0..60usize {
                assert_eq!(
                    ours[a] == ours[b],
                    reference[a] == reference[b],
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn pregel_pagerank_one_superstep_matches_manual() {
        // Sanity: a single superstep of "sum neighbor contributions".
        let c = Cluster::local();
        let g = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]);
        let gx = GxGraph::from_edgelist(&c, &g, 2).unwrap();
        let initial = Rdd::from_vec(
            &c,
            vec![(0u64, 1.0f64), (1, 1.0), (2, 1.0)],
            2,
        )
        .unwrap();
        let out = pregel(
            &gx,
            initial,
            |_src, &r, _dst| Some(r),
            |a, b| a + b,
            |_v, _old, &sum| sum,
            1,
        )
        .unwrap();
        let mut states = out.collect().unwrap();
        states.sort_by_key(|&(v, _)| v);
        assert_eq!(states[0], (0, 1.0), "no in-edges: unchanged");
        assert_eq!(states[1], (1, 1.0), "one in-edge from 0");
        assert_eq!(states[2], (2, 2.0), "in-edges from 0 and 1");
    }

    #[test]
    fn pregel_stops_when_converged() {
        let c = Cluster::local();
        let g = gen::ring(8);
        let gx = GxGraph::from_edgelist(&c, &g, 4).unwrap();
        // CC on a ring converges in ≤ n supersteps; far fewer stages than
        // the cap implies if early-stop works.
        let before = c.stages_run();
        gx_connected_components(&gx, 1000).unwrap();
        let stages = c.stages_run() - before;
        assert!(stages < 300, "early stop expected, ran {stages} stages");
    }
}
