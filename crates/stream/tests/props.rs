//! Property tests for the streaming tier: randomized event streams
//! driven through the real `Ingestor`, checked against independent
//! models — full PageRank recomputes, reference connected components,
//! and a naive Vec model of the tombstone neighbor table.

use std::sync::Arc;

use psgraph_core::algos::{IncrementalCc, IncrementalPageRank};
use psgraph_dfs::Dfs;
use psgraph_graph::{metrics, EdgeList};
use psgraph_harness::prop::{check, Source};
use psgraph_harness::prop_assert_eq;
use psgraph_net::rpc::NodeId;
use psgraph_ps::{NeighborTableHandle, Partitioner, Ps, PsConfig, RecoveryMode};
use psgraph_sim::{FxHashMap, NodeClock, SimTime, SplitMix64};
use psgraph_stream::{
    replay_from_log, DriftRmat, EdgeEvent, EdgeOp, EventLog, IngestConfig, Ingestor,
    ShardedIngestor,
};

/// Drive `events` through the ingestor in micro-batches of `batch`,
/// keeping the incremental maintainers in lockstep. Returns the live
/// edge set at the end.
struct Harness {
    ps: Arc<Ps>,
    client: NodeClock,
    ingestor: Ingestor,
    pr: IncrementalPageRank,
    pr_state: psgraph_core::algos::PrState,
    cc: IncrementalCc,
    n: u64,
}

impl Harness {
    fn new(prefix: &str, n: u64, base: &[(u64, u64)]) -> Harness {
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let cfg = IngestConfig { prefix: prefix.into(), mailbox_cap: 512 };
        let ingestor = Ingestor::create(&ps, &cfg, n).unwrap();
        ingestor.bootstrap(&client, base).unwrap();
        let pr = IncrementalPageRank::default();
        let mut pr_state = pr.create_state(&ps, &format!("{prefix}.pr"), n).unwrap();
        pr.init_full(&mut pr_state, &client, &ingestor.adjacency).unwrap();
        let mut cc = IncrementalCc::create(&ps, &format!("{prefix}.cc"), n).unwrap();
        cc.bootstrap(&client, &ingestor.adjacency).unwrap();
        Harness { ps, client, ingestor, pr, pr_state, cc, n }
    }

    fn apply(&mut self, events: &[EdgeEvent]) {
        for &ev in events {
            assert!(self.ingestor.offer(NodeId::Driver, ev), "mailbox overflow in test");
        }
        let fx = self.ingestor.apply_pending(&self.client).unwrap();
        self.pr.on_batch(&mut self.pr_state, &self.client, &fx.effects).unwrap();
        self.pr.propagate(&mut self.pr_state, &self.client, &self.ingestor.adjacency).unwrap();
        self.cc.on_batch(&self.client, &fx.applied, &self.ingestor.adjacency).unwrap();
    }

    fn live_edges(&self) -> Vec<(u64, u64)> {
        let ids: Vec<u64> = (0..self.n).collect();
        let lists = self.ingestor.adjacency.pull(&self.client, &ids).unwrap();
        let mut edges = Vec::new();
        for (s, list) in lists.iter().enumerate() {
            for &d in list.iter() {
                edges.push((s as u64, d));
            }
        }
        edges
    }
}

fn random_stream(
    rng: &mut SplitMix64,
    n: u64,
    live: &mut Vec<(u64, u64)>,
    count: usize,
    tick: &mut u64,
) -> Vec<EdgeEvent> {
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        *tick += 1;
        let at = SimTime::from_micros(*tick * 37);
        if !live.is_empty() && rng.next_below(3) == 0 {
            let i = rng.next_below(live.len() as u64) as usize;
            let (src, dst) = live.swap_remove(i);
            events.push(EdgeEvent { op: EdgeOp::Remove, src, dst, at });
        } else {
            let src = rng.next_below(n);
            let dst = rng.next_below(n);
            if src == dst {
                continue;
            }
            // Sometimes re-add a live edge to exercise at-least-once
            // dedup; only track genuinely new edges as live.
            if !live.contains(&(src, dst)) {
                live.push((src, dst));
            }
            events.push(EdgeEvent { op: EdgeOp::Add, src, dst, at });
        }
    }
    events
}

#[test]
fn incremental_pagerank_matches_full_recompute_over_random_stream() {
    let n = 48u64;
    let base = psgraph_graph::gen::rmat(n, 180, Default::default(), 31).dedup();
    let mut h = Harness::new("p1", n, base.edges());
    let mut rng = SplitMix64::new(1234);
    let mut live = base.edges().to_vec();
    let mut tick = 0u64;
    for round in 0..5 {
        let events = random_stream(&mut rng, n, &mut live, 30, &mut tick);
        h.apply(&events);

        let mut full_state =
            h.pr.create_state(&h.ps, &format!("p1.full{round}"), n).unwrap();
        h.pr.init_full(&mut full_state, &h.client, &h.ingestor.adjacency).unwrap();
        let inc = h.pr.ranks(&h.pr_state, &h.client).unwrap();
        let full = h.pr.ranks(&full_state, &h.client).unwrap();
        let linf = inc
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf < 1e-6, "round {round}: incremental drifted from recompute, L∞ {linf}");
    }
}

#[test]
fn incremental_cc_matches_reference_over_random_stream() {
    let n = 40u64;
    let base = psgraph_graph::gen::erdos_renyi(n, 60, 8).dedup();
    let mut h = Harness::new("c1", n, base.edges());
    let mut rng = SplitMix64::new(99);
    let mut live = base.edges().to_vec();
    let mut tick = 0u64;
    for round in 0..6 {
        let events = random_stream(&mut rng, n, &mut live, 25, &mut tick);
        h.apply(&events);
        let truth =
            metrics::connected_components(&EdgeList::new(n, h.live_edges()));
        assert_eq!(h.cc.labels(), truth.as_slice(), "round {round}");
    }
}

#[test]
fn neighbor_table_matches_naive_model_with_tombstone_churn() {
    // add → remove → add round-trips under heavy churn: the tombstone
    // table must always expose exactly the naive "append if absent,
    // remove first occurrence" list, and compaction must keep dead slots
    // bounded by live ones.
    let n = 12u64;
    let ps = Ps::new(PsConfig::default());
    let client = NodeClock::new();
    let table = NeighborTableHandle::create(
        &ps,
        "m.adj",
        n,
        Partitioner::Range,
        RecoveryMode::Consistent,
    )
    .unwrap();
    let mut model: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    let mut rng = SplitMix64::new(2718);
    for _ in 0..60 {
        let mut ops: Vec<(u64, u64, bool)> = Vec::new();
        for _ in 0..20 {
            let s = rng.next_below(n);
            let d = rng.next_below(n);
            let add = rng.next_bool(0.55);
            ops.push((s, d, add));
            let list = model.entry(s).or_default();
            if add {
                if !list.contains(&d) {
                    list.push(d);
                }
            } else if let Some(i) = list.iter().position(|&x| x == d) {
                list.remove(i);
            }
        }
        table.update_edges(&client, &ops).unwrap();
        let ids: Vec<u64> = (0..n).collect();
        let lists = table.pull(&client, &ids).unwrap();
        for (v, got) in lists.iter().enumerate() {
            let want = model.get(&(v as u64)).cloned().unwrap_or_default();
            assert_eq!(got.as_slice(), want.as_slice(), "vertex {v} diverged from model");
        }
        let live: usize = model.values().map(|l| l.len()).sum();
        let dead = table.tombstones().unwrap();
        assert!(
            dead <= live + n as usize,
            "compaction failed to bound tombstones: {dead} dead vs {live} live"
        );
    }
}

#[test]
fn drift_source_through_ingestor_preserves_live_set() {
    // The generator's own live-edge bookkeeping, the ingestor's table,
    // and the degree vector all agree after a long at-least-once stream.
    let n = 64u64;
    let cfg = DriftRmat {
        num_vertices: n,
        remove_fraction: 0.3,
        seed: 17,
        ..DriftRmat::default()
    };
    let mut source = cfg.start(&[]);
    let mut h = Harness::new("d1", n, &[]);
    for _ in 0..10 {
        let events: Vec<EdgeEvent> = (0..200).map(|_| source.next_event()).collect();
        h.apply(&events);
    }
    let mut want = source.live_edges().to_vec();
    want.sort_unstable();
    let mut got = h.live_edges();
    got.sort_unstable();
    assert_eq!(got, want, "table diverged from the source's live set");
    let ids: Vec<u64> = (0..n).collect();
    let degs = h.ingestor.degrees.pull(&h.client, &ids).unwrap();
    let lists = h.ingestor.adjacency.pull(&h.client, &ids).unwrap();
    for (v, (deg, list)) in degs.iter().zip(&lists).enumerate() {
        assert_eq!(*deg, list.len() as f64, "degree of {v} out of lockstep");
    }
    // The stream really exercised the at-least-once path.
    assert!(
        h.ingestor.stats().skipped_dup_adds > 0,
        "expected duplicate adds in an RMAT stream"
    );
}

#[test]
fn sharded_ingest_is_bit_identical_to_single_ingestor() {
    // The tentpole equivalence: over any random event stream, shard
    // count, and batch size, routing the stream across owner-keyed
    // ingestor shards and draining them as one logical batch must be
    // indistinguishable from a single ingestor — byte-identical neighbor
    // lists (slot order included), degree bits, per-batch effects,
    // applied ops in arrival order, watermarks, and lifetime counters.
    // Identical effects/applied per batch makes the incremental
    // maintainers (which consume only those) identical by construction.
    check(
        "sharded_ingest_is_bit_identical_to_single_ingestor",
        |src: &mut Source| {
            let n = src.u64_range(6, 48);
            let total = src.usize_range(30, 200);
            let batch = [4usize, 8, 16, 32][src.choice(4) as usize];
            let shards = [2usize, 3, 4, 8][src.choice(4) as usize];
            let seed = src.u64_range(0, u64::MAX - 1);
            (n, total, batch, shards, seed)
        },
        |&(n, total, batch, shards, seed)| {
            let client = NodeClock::new();
            let base = psgraph_graph::gen::rmat(n, n as usize * 2, Default::default(), seed ^ 1)
                .dedup();
            let mut rng = SplitMix64::new(seed);
            let mut live = base.edges().to_vec();
            let mut tick = 0u64;
            let events = random_stream(&mut rng, n, &mut live, total, &mut tick);

            // Mailboxes sized to the batch: even a batch routed entirely
            // to one shard fits.
            let cfg = IngestConfig { prefix: "shp".into(), mailbox_cap: batch };
            let ps_a = Ps::new(PsConfig::default());
            let mut single = Ingestor::create(&ps_a, &cfg, n).unwrap();
            single.bootstrap(&client, base.edges()).unwrap();
            let ps_b = Ps::new(PsConfig::default());
            let mut sharded = ShardedIngestor::create(&ps_b, &cfg, n, shards).unwrap();
            sharded.bootstrap(&client, base.edges()).unwrap();

            for chunk in events.chunks(batch.max(1)) {
                for &ev in chunk {
                    assert!(single.offer(NodeId::Driver, ev), "single mailbox overflow");
                    assert!(sharded.offer(NodeId::Driver, ev), "shard mailbox overflow");
                }
                let fa = single.apply_pending(&client).unwrap();
                let fb = sharded.drain_all().unwrap();
                prop_assert_eq!(fa.drained, fb.drained, "drained count diverged");
                prop_assert_eq!(
                    &fa.applied,
                    &fb.applied,
                    "applied ops lost global arrival order"
                );
                prop_assert_eq!(&fa.effects, &fb.effects, "merged effects diverged");
                prop_assert_eq!(fa.watermark, fb.watermark, "batch watermark diverged");
            }

            // Final PS state, byte-for-byte: slot order of the neighbor
            // lists included (shards apply the same ops to the same
            // partitions in the same per-source order).
            let ids: Vec<u64> = (0..n).collect();
            let adj_a: Vec<Vec<u64>> = single
                .adjacency
                .pull(&client, &ids)
                .unwrap()
                .into_iter()
                .map(|l| l.to_vec())
                .collect();
            let adj_b: Vec<Vec<u64>> = sharded
                .adjacency()
                .pull(&client, &ids)
                .unwrap()
                .into_iter()
                .map(|l| l.to_vec())
                .collect();
            prop_assert_eq!(adj_a, adj_b, "neighbor table diverged");
            let deg_a: Vec<u64> =
                single.degrees.pull(&client, &ids).unwrap().iter().map(|d| d.to_bits()).collect();
            let deg_b: Vec<u64> = sharded
                .degrees()
                .pull(&client, &ids)
                .unwrap()
                .iter()
                .map(|d| d.to_bits())
                .collect();
            prop_assert_eq!(deg_a, deg_b, "degree bits diverged");
            prop_assert_eq!(single.watermark(), sharded.watermark(), "watermark diverged");

            let (sa, sb) = (single.stats(), sharded.stats());
            prop_assert_eq!(sa.applied_adds, sb.applied_adds, "applied_adds");
            prop_assert_eq!(sa.applied_removes, sb.applied_removes, "applied_removes");
            prop_assert_eq!(sa.skipped_dup_adds, sb.skipped_dup_adds, "skipped_dup_adds");
            prop_assert_eq!(
                sa.skipped_missing_removes,
                sb.skipped_missing_removes,
                "skipped_missing_removes"
            );
            Ok(())
        },
    );
}

#[test]
fn event_log_replay_is_idempotent_after_crash() {
    // Crash-recovery property over any stream, batch size, and rewind
    // point, in two flavors mirroring the two real crash modes:
    //
    // 1. Ingestor crash, PS survives: the ingestor loses its stream
    //    position and re-applies an *already-applied* batch suffix from
    //    the DFS event log. Idempotent slot application (duplicate adds
    //    and missing removes are skipped) must leave the live edge sets,
    //    degrees, and watermark identical to a run that never crashed.
    //    (List *order* may legally differ: a skipped duplicate add does
    //    not consume the tombstone slot the first application did.)
    //
    // 2. PS crash: servers restored from the checkpoint generation taken
    //    at the rewind boundary, then the suffix replays. This is the
    //    `recovery` module protocol and must be *byte-identical* — slot
    //    order included — to the fault-free run.
    check(
        "event_log_replay_is_idempotent_after_crash",
        |src: &mut Source| {
            let n = src.u64_range(6, 48);
            let total = src.usize_range(40, 220);
            let batch = [4usize, 8, 16, 32][src.choice(4) as usize];
            // Raw rewind draw; reduced mod the actual batch count once the
            // stream is generated (self-loop draws emit nothing).
            let rewind_raw = src.usize_range(0, 4096);
            let seed = src.u64_range(0, u64::MAX - 1);
            (n, total, batch, rewind_raw, seed)
        },
        |&(n, total, batch, rewind_raw, seed)| {
            let dfs = Dfs::in_memory();
            let client = NodeClock::new();
            let mut rng = SplitMix64::new(seed);
            let mut live: Vec<(u64, u64)> = Vec::new();
            let mut tick = 0u64;
            let events = random_stream(&mut rng, n, &mut live, total, &mut tick);
            if events.is_empty() {
                return Ok(());
            }
            // Aligned rewind point strictly before the end: the replayed
            // suffix [rewind*batch, len) was already applied once.
            let rewind = rewind_raw % events.len().div_ceil(batch);
            EventLog::write(&dfs, "/prop/events", &events, &client).unwrap();
            let pull = |ing: &Ingestor| {
                let ids: Vec<u64> = (0..n).collect();
                let adj: Vec<Vec<u64>> = ing
                    .adjacency
                    .pull(&client, &ids)
                    .unwrap()
                    .into_iter()
                    .map(|l| l.to_vec())
                    .collect();
                let degs: Vec<u64> =
                    ing.degrees.pull(&client, &ids).unwrap().iter().map(|d| d.to_bits()).collect();
                (adj, degs)
            };

            // Fault-free reference: one clean pass over the whole log.
            let ps_a = Ps::new(PsConfig::default());
            let cfg = IngestConfig { prefix: "prop".into(), mailbox_cap: batch };
            let mut a = Ingestor::create(&ps_a, &cfg, n).unwrap();
            replay_from_log(&dfs, "/prop/events", &client, &mut a, 0, events.len(), batch, |_, _| {
                Ok(())
            })
            .unwrap();

            // Flavor 1 — ingestor crash, PS survives: full pass, rewind
            // to an aligned batch, re-apply the suffix against the
            // already-mutated PS state.
            let ps_b = Ps::new(PsConfig::default());
            let mut b = Ingestor::create(&ps_b, &cfg, n).unwrap();
            let mut wm_at_batch = Vec::new();
            replay_from_log(&dfs, "/prop/events", &client, &mut b, 0, events.len(), batch, |_, fx| {
                wm_at_batch.push(fx.watermark);
                Ok(())
            })
            .unwrap();
            let rewind_wm =
                if rewind == 0 { SimTime::ZERO } else { wm_at_batch[rewind - 1] };
            b.reset_for_replay(rewind_wm);
            let replayed = replay_from_log(
                &dfs,
                "/prop/events",
                &client,
                &mut b,
                rewind * batch,
                events.len(),
                batch,
                |_, _| Ok(()),
            )
            .unwrap();
            prop_assert_eq!(
                replayed,
                (events.len() - rewind * batch).div_ceil(batch),
                "suffix batch count"
            );
            let sets = |(adj, degs): (Vec<Vec<u64>>, Vec<u64>)| {
                let sorted: Vec<Vec<u64>> = adj
                    .into_iter()
                    .map(|mut l| {
                        l.sort_unstable();
                        l
                    })
                    .collect();
                (sorted, degs)
            };
            prop_assert_eq!(
                sets(pull(&a)),
                sets(pull(&b)),
                "over-replayed live sets diverged from fault-free"
            );
            prop_assert_eq!(a.watermark(), b.watermark(), "watermarks diverged");

            // Flavor 2 — PS crash: checkpoint at the rewind boundary
            // during the first pass, crash + restore, replay the suffix.
            let ps_c = Ps::new(PsConfig::default());
            let mut c = Ingestor::create(&ps_c, &cfg, n).unwrap();
            if rewind == 0 {
                ps_c.checkpoint_all_generation(&dfs, 1).unwrap();
            }
            replay_from_log(&dfs, "/prop/events", &client, &mut c, 0, events.len(), batch, |bi, _| {
                if rewind > 0 && bi + 1 == rewind as u64 {
                    ps_c.checkpoint_all_generation(&dfs, 1)?;
                }
                Ok(())
            })
            .unwrap();
            for s in 0..ps_c.num_servers() {
                ps_c.kill_server(s);
            }
            let t_crash = client.now();
            for s in 0..ps_c.num_servers() {
                ps_c.restart_server(s, t_crash);
            }
            ps_c.recover_server_from_generation(0, &dfs, &client, 1).unwrap();
            c.reset_for_replay(rewind_wm);
            replay_from_log(
                &dfs,
                "/prop/events",
                &client,
                &mut c,
                rewind * batch,
                events.len(),
                batch,
                |_, _| Ok(()),
            )
            .unwrap();
            prop_assert_eq!(
                pull(&a),
                pull(&c),
                "checkpoint-restore replay diverged byte-for-byte from fault-free"
            );
            prop_assert_eq!(a.watermark(), c.watermark(), "restored watermark diverged");
            Ok(())
        },
    );
}
