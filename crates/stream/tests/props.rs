//! Property tests for the streaming tier: randomized event streams
//! driven through the real `Ingestor`, checked against independent
//! models — full PageRank recomputes, reference connected components,
//! and a naive Vec model of the tombstone neighbor table.

use std::sync::Arc;

use psgraph_core::algos::{IncrementalCc, IncrementalPageRank};
use psgraph_graph::{metrics, EdgeList};
use psgraph_net::rpc::NodeId;
use psgraph_ps::{NeighborTableHandle, Partitioner, Ps, PsConfig, RecoveryMode};
use psgraph_sim::{FxHashMap, NodeClock, SimTime, SplitMix64};
use psgraph_stream::{DriftRmat, EdgeEvent, EdgeOp, IngestConfig, Ingestor};

/// Drive `events` through the ingestor in micro-batches of `batch`,
/// keeping the incremental maintainers in lockstep. Returns the live
/// edge set at the end.
struct Harness {
    ps: Arc<Ps>,
    client: NodeClock,
    ingestor: Ingestor,
    pr: IncrementalPageRank,
    pr_state: psgraph_core::algos::PrState,
    cc: IncrementalCc,
    n: u64,
}

impl Harness {
    fn new(prefix: &str, n: u64, base: &[(u64, u64)]) -> Harness {
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let cfg = IngestConfig { prefix: prefix.into(), mailbox_cap: 512 };
        let ingestor = Ingestor::create(&ps, &cfg, n).unwrap();
        ingestor.bootstrap(&client, base).unwrap();
        let pr = IncrementalPageRank::default();
        let mut pr_state = pr.create_state(&ps, &format!("{prefix}.pr"), n).unwrap();
        pr.init_full(&mut pr_state, &client, &ingestor.adjacency).unwrap();
        let mut cc = IncrementalCc::create(&ps, &format!("{prefix}.cc"), n).unwrap();
        cc.bootstrap(&client, &ingestor.adjacency).unwrap();
        Harness { ps, client, ingestor, pr, pr_state, cc, n }
    }

    fn apply(&mut self, events: &[EdgeEvent]) {
        for &ev in events {
            assert!(self.ingestor.offer(NodeId::Driver, ev), "mailbox overflow in test");
        }
        let fx = self.ingestor.apply_pending(&self.client).unwrap();
        self.pr.on_batch(&mut self.pr_state, &self.client, &fx.effects).unwrap();
        self.pr.propagate(&mut self.pr_state, &self.client, &self.ingestor.adjacency).unwrap();
        self.cc.on_batch(&self.client, &fx.applied, &self.ingestor.adjacency).unwrap();
    }

    fn live_edges(&self) -> Vec<(u64, u64)> {
        let ids: Vec<u64> = (0..self.n).collect();
        let lists = self.ingestor.adjacency.pull(&self.client, &ids).unwrap();
        let mut edges = Vec::new();
        for (s, list) in lists.iter().enumerate() {
            for &d in list.iter() {
                edges.push((s as u64, d));
            }
        }
        edges
    }
}

fn random_stream(
    rng: &mut SplitMix64,
    n: u64,
    live: &mut Vec<(u64, u64)>,
    count: usize,
    tick: &mut u64,
) -> Vec<EdgeEvent> {
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        *tick += 1;
        let at = SimTime::from_micros(*tick * 37);
        if !live.is_empty() && rng.next_below(3) == 0 {
            let i = rng.next_below(live.len() as u64) as usize;
            let (src, dst) = live.swap_remove(i);
            events.push(EdgeEvent { op: EdgeOp::Remove, src, dst, at });
        } else {
            let src = rng.next_below(n);
            let dst = rng.next_below(n);
            if src == dst {
                continue;
            }
            // Sometimes re-add a live edge to exercise at-least-once
            // dedup; only track genuinely new edges as live.
            if !live.contains(&(src, dst)) {
                live.push((src, dst));
            }
            events.push(EdgeEvent { op: EdgeOp::Add, src, dst, at });
        }
    }
    events
}

#[test]
fn incremental_pagerank_matches_full_recompute_over_random_stream() {
    let n = 48u64;
    let base = psgraph_graph::gen::rmat(n, 180, Default::default(), 31).dedup();
    let mut h = Harness::new("p1", n, base.edges());
    let mut rng = SplitMix64::new(1234);
    let mut live = base.edges().to_vec();
    let mut tick = 0u64;
    for round in 0..5 {
        let events = random_stream(&mut rng, n, &mut live, 30, &mut tick);
        h.apply(&events);

        let mut full_state =
            h.pr.create_state(&h.ps, &format!("p1.full{round}"), n).unwrap();
        h.pr.init_full(&mut full_state, &h.client, &h.ingestor.adjacency).unwrap();
        let inc = h.pr.ranks(&h.pr_state, &h.client).unwrap();
        let full = h.pr.ranks(&full_state, &h.client).unwrap();
        let linf = inc
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf < 1e-6, "round {round}: incremental drifted from recompute, L∞ {linf}");
    }
}

#[test]
fn incremental_cc_matches_reference_over_random_stream() {
    let n = 40u64;
    let base = psgraph_graph::gen::erdos_renyi(n, 60, 8).dedup();
    let mut h = Harness::new("c1", n, base.edges());
    let mut rng = SplitMix64::new(99);
    let mut live = base.edges().to_vec();
    let mut tick = 0u64;
    for round in 0..6 {
        let events = random_stream(&mut rng, n, &mut live, 25, &mut tick);
        h.apply(&events);
        let truth =
            metrics::connected_components(&EdgeList::new(n, h.live_edges()));
        assert_eq!(h.cc.labels(), truth.as_slice(), "round {round}");
    }
}

#[test]
fn neighbor_table_matches_naive_model_with_tombstone_churn() {
    // add → remove → add round-trips under heavy churn: the tombstone
    // table must always expose exactly the naive "append if absent,
    // remove first occurrence" list, and compaction must keep dead slots
    // bounded by live ones.
    let n = 12u64;
    let ps = Ps::new(PsConfig::default());
    let client = NodeClock::new();
    let table = NeighborTableHandle::create(
        &ps,
        "m.adj",
        n,
        Partitioner::Range,
        RecoveryMode::Consistent,
    )
    .unwrap();
    let mut model: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    let mut rng = SplitMix64::new(2718);
    for _ in 0..60 {
        let mut ops: Vec<(u64, u64, bool)> = Vec::new();
        for _ in 0..20 {
            let s = rng.next_below(n);
            let d = rng.next_below(n);
            let add = rng.next_bool(0.55);
            ops.push((s, d, add));
            let list = model.entry(s).or_default();
            if add {
                if !list.contains(&d) {
                    list.push(d);
                }
            } else if let Some(i) = list.iter().position(|&x| x == d) {
                list.remove(i);
            }
        }
        table.update_edges(&client, &ops).unwrap();
        let ids: Vec<u64> = (0..n).collect();
        let lists = table.pull(&client, &ids).unwrap();
        for (v, got) in lists.iter().enumerate() {
            let want = model.get(&(v as u64)).cloned().unwrap_or_default();
            assert_eq!(got.as_slice(), want.as_slice(), "vertex {v} diverged from model");
        }
        let live: usize = model.values().map(|l| l.len()).sum();
        let dead = table.tombstones().unwrap();
        assert!(
            dead <= live + n as usize,
            "compaction failed to bound tombstones: {dead} dead vs {live} live"
        );
    }
}

#[test]
fn drift_source_through_ingestor_preserves_live_set() {
    // The generator's own live-edge bookkeeping, the ingestor's table,
    // and the degree vector all agree after a long at-least-once stream.
    let n = 64u64;
    let cfg = DriftRmat {
        num_vertices: n,
        remove_fraction: 0.3,
        seed: 17,
        ..DriftRmat::default()
    };
    let mut source = cfg.start(&[]);
    let mut h = Harness::new("d1", n, &[]);
    for _ in 0..10 {
        let events: Vec<EdgeEvent> = (0..200).map(|_| source.next_event()).collect();
        h.apply(&events);
    }
    let mut want = source.live_edges().to_vec();
    want.sort_unstable();
    let mut got = h.live_edges();
    got.sort_unstable();
    assert_eq!(got, want, "table diverged from the source's live set");
    let ids: Vec<u64> = (0..n).collect();
    let degs = h.ingestor.degrees.pull(&h.client, &ids).unwrap();
    let lists = h.ingestor.adjacency.pull(&h.client, &ids).unwrap();
    for (v, (deg, list)) in degs.iter().zip(&lists).enumerate() {
        assert_eq!(*deg, list.len() as f64, "degree of {v} out of lockstep");
    }
    // The stream really exercised the at-least-once path.
    assert!(h.ingestor.stats().skipped > 0, "expected duplicate adds in an RMAT stream");
}
