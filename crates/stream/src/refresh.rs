//! The refresh driver closes the loop: every `swap_every_batches`
//! micro-batches it exports a [`psgraph_ps::snapshot::DeltaWriter`] delta
//! of the dirtied partitions and hot-swaps it into the live
//! [`psgraph_serve::ServeCluster`], then rebases its manifest so the next
//! delta is relative to what the tier now serves.

use psgraph_dfs::Dfs;
use psgraph_ps::snapshot::{DeltaWriter, SnapshotManifest};
use psgraph_ps::{NeighborTableHandle, VectorHandle};
use psgraph_serve::{ServeCluster, SwapStats};
use psgraph_sim::{NodeClock, SimTime};

use crate::error::Result;

/// Cadence policy for refreshes.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Swap after this many applied micro-batches.
    pub swap_every_batches: usize,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig { swap_every_batches: 8 }
    }
}

/// One completed hot-swap.
#[derive(Debug, Clone, Copy)]
pub struct SwapRecord {
    /// Simulated time the swap ran (the caller's clock position).
    pub at: SimTime,
    pub stats: SwapStats,
    /// Dirty partitions exported across all three objects.
    pub dirty_partitions: usize,
}

/// Periodically publishes PS mutations to the serving tier.
pub struct RefreshDriver {
    dir: String,
    manifest: SnapshotManifest,
    cfg: RefreshConfig,
    batches_since_swap: usize,
    swaps: Vec<SwapRecord>,
}

impl RefreshDriver {
    /// `manifest` is the snapshot the tier was loaded from; `dir` its DFS
    /// directory (deltas are written next to it).
    pub fn new(dir: impl Into<String>, manifest: SnapshotManifest, cfg: RefreshConfig) -> Self {
        RefreshDriver {
            dir: dir.into(),
            manifest,
            cfg,
            batches_since_swap: 0,
            swaps: Vec::new(),
        }
    }

    /// Record one drained micro-batch; `true` means a refresh is due.
    /// `effective` says whether the batch changed any state
    /// (`!BatchEffect::effects.is_empty()`) — no-op batches (every event
    /// dedup-skipped) do not advance the swap cadence, so a quiet stream
    /// of redelivered duplicates never schedules an empty hot-swap.
    pub fn tick(&mut self, effective: bool) -> bool {
        if effective {
            self.batches_since_swap += 1;
        }
        self.batches_since_swap >= self.cfg.swap_every_batches
    }

    /// Micro-batches applied since the last swap.
    pub fn batches_since_swap(&self) -> usize {
        self.batches_since_swap
    }

    /// Export a delta of everything dirtied since the last swap (ranks,
    /// labels, adjacency) and install it on the live tier. Returns the
    /// swap statistics; the internal manifest is rebased so subsequent
    /// deltas are incremental. When *nothing* is dirty — the cadence
    /// elapsed on batches whose every mutation was elsewhere absorbed —
    /// the swap is skipped entirely (`None`): the unfinished
    /// [`DeltaWriter`] buffers in memory, so dropping it writes nothing
    /// to the DFS and the tier keeps serving the manifest it already has.
    #[allow(clippy::too_many_arguments)]
    pub fn refresh(
        &mut self,
        dfs: &Dfs,
        client: &NodeClock,
        cluster: &mut ServeCluster,
        ranks: &VectorHandle<f64>,
        labels: &VectorHandle<u64>,
        adjacency: &NeighborTableHandle,
        at: SimTime,
    ) -> Result<Option<SwapRecord>> {
        let mut dw = DeltaWriter::new(dfs, &self.dir, &self.manifest, client);
        let mut dirty = dw.vector_f64(ranks)?;
        dirty += dw.vector_u64(labels)?;
        dirty += dw.neighbor_table(adjacency)?;
        if dirty == 0 {
            self.batches_since_swap = 0;
            return Ok(None);
        }
        let delta = dw.finish()?;
        let stats = cluster.swap_in(&delta)?;
        self.manifest = delta.rebase(&self.manifest);
        self.batches_since_swap = 0;
        let record = SwapRecord { at, stats, dirty_partitions: dirty };
        self.swaps.push(record);
        Ok(Some(record))
    }

    /// Every swap so far, in order.
    pub fn swaps(&self) -> &[SwapRecord] {
        &self.swaps
    }

    /// The manifest the serving tier currently reflects.
    pub fn manifest(&self) -> &SnapshotManifest {
        &self.manifest
    }
}
