//! Sharded multi-writer ingest: the event stream split across N
//! ingestor mailboxes keyed by edge owner (`src` range tiling — the same
//! `query::part` math the serving tier shards by), drained in parallel,
//! with freshness merged as the **min across shard watermarks**.
//!
//! Every shard is a full [`Ingestor`] — its own bounded mailbox, its own
//! [`psgraph_sim::Watermark`], its own lifetime counters — but all
//! shards write *one* adjacency table and *one* degree vector: shard `i`
//! owns the contiguous source range `vertex_range(i)`, so no two shards
//! ever touch the same entry and the final PS state is bit-identical to
//! a single-ingestor run over the same events.
//!
//! Determinism (DESIGN.md §6): the wall-clock-parallel stages are the
//! pure per-shard mirror computation ([`plan_batch`] on the worker pool)
//! and the per-partition table writes
//! ([`NeighborTableHandle::update_edges_sharded`]); every RPC charge and
//! every merge fold runs serially in canonical shard order, so both the
//! results and the simulated-time accounting are identical for every
//! pool size and steal schedule.
//!
//! Watermark rule: the merged watermark is `min` over the *effective*
//! shard watermarks — a fast shard must not mask a straggler, so a shard
//! with undrained events holds the merge back at its own watermark. A
//! shard that is fully drained counts as caught up to the newest event
//! routed anywhere (`routed`): an idle shard (nothing in its key range
//! lately) must not pin global freshness at its last event either. The
//! merge is folded through a monotone [`Watermark`] ratchet, so observed
//! freshness never moves backwards even when shards drain out of order.

use std::sync::Arc;

use psgraph_harness::Pool;
use psgraph_net::rpc::NodeId;
use psgraph_ps::{NeighborTableHandle, Ps, VectorHandle};
use psgraph_sim::{NodeClock, SimTime, Watermark};

use crate::error::Result;
use crate::events::EdgeEvent;
use crate::ingest::{
    batch_sources, plan_batch, BatchEffect, IngestConfig, IngestStats, Ingestor,
};

/// Routes edge events to per-owner ingestor shards and drains them as
/// one logical micro-batch with a min-merged watermark.
pub struct ShardedIngestor {
    shards: Vec<Ingestor>,
    /// Per-shard writer clocks: each shard is its own ingest node, so
    /// shard RPC costs accrue independently (the whole point of sharding
    /// the write path).
    clocks: Vec<NodeClock>,
    /// Global arrival sequence numbers of each shard's undrained events,
    /// FIFO-aligned with its mailbox — how the drain reconstructs the
    /// exact cross-shard arrival order for the maintainers.
    pending_seqs: Vec<Vec<u64>>,
    seq: u64,
    /// Newest event time accepted into any mailbox.
    routed: Watermark,
    /// The monotone min-merged watermark.
    merged: Watermark,
    n: u64,
}

impl ShardedIngestor {
    /// `shards` ingestors over one shared `{prefix}.adj` / `{prefix}.deg`
    /// pair, each with its own `mailbox_cap`-bounded mailbox.
    pub fn create(
        ps: &Arc<Ps>,
        cfg: &IngestConfig,
        n: u64,
        shards: usize,
    ) -> Result<ShardedIngestor> {
        assert!(shards >= 1, "need at least one shard");
        let first = Ingestor::create(ps, cfg, n)?;
        let (adj, deg) = (first.adjacency.clone(), first.degrees.clone());
        let mut all = vec![first];
        for _ in 1..shards {
            all.push(Ingestor::over(adj.clone(), deg.clone(), cfg.mailbox_cap, n));
        }
        Ok(ShardedIngestor {
            clocks: (0..shards).map(|_| NodeClock::new()).collect(),
            pending_seqs: vec![Vec::new(); shards],
            seq: 0,
            shards: all,
            routed: Watermark::new(),
            merged: Watermark::new(),
            n,
        })
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// The shared adjacency table every shard writes.
    pub fn adjacency(&self) -> &NeighborTableHandle {
        &self.shards[0].adjacency
    }

    /// The shared degree vector every shard writes.
    pub fn degrees(&self) -> &VectorHandle<f64> {
        &self.shards[0].degrees
    }

    /// Load the base graph (deduped) before the stream starts.
    pub fn bootstrap(&self, client: &NodeClock, edges: &[(u64, u64)]) -> Result<()> {
        self.shards[0].bootstrap(client, edges)
    }

    /// Which shard owns `ev` (contiguous source-range tiling).
    pub fn owner(&self, ev: &EdgeEvent) -> usize {
        ev.owner(self.n, self.shards.len())
    }

    /// Route an event to its owner shard's mailbox; `false` means that
    /// shard is full (backpressure) and the caller should drain.
    pub fn offer(&mut self, from: NodeId, ev: EdgeEvent) -> bool {
        let s = self.owner(&ev);
        let ok = self.shards[s].offer(from, ev);
        if ok {
            self.routed.observe(ev.at);
            self.pending_seqs[s].push(self.seq);
            self.seq += 1;
        }
        ok
    }

    /// Record a sender-side retry after a refused offer of `ev` (charged
    /// to the owner shard's mailbox, like the offer itself).
    pub fn note_offer_retry(&self, ev: &EdgeEvent) {
        self.shards[self.owner(ev)].note_offer_retry();
    }

    /// Events waiting across all shard mailboxes.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(Ingestor::pending).sum()
    }

    /// Per-shard lifetime counters, shard order.
    pub fn shard_stats(&self) -> Vec<IngestStats> {
        self.shards.iter().map(Ingestor::stats).collect()
    }

    /// Aggregate lifetime counters across shards.
    pub fn stats(&self) -> IngestStats {
        let mut acc = IngestStats::default();
        for sh in &self.shards {
            acc.merge(&sh.stats());
        }
        acc
    }

    /// Per-shard watermarks, shard order (diagnostics; the merge rule is
    /// [`ShardedIngestor::watermark`]).
    pub fn shard_watermarks(&self) -> Vec<SimTime> {
        self.shards.iter().map(Ingestor::watermark).collect()
    }

    /// The min-merged watermark: `min` over effective shard watermarks
    /// (a fully drained shard counts as caught up to the newest routed
    /// event), ratcheted so it never regresses as shards drain out of
    /// order.
    pub fn watermark(&self) -> SimTime {
        let routed = self.routed.now();
        let eff_min = self
            .shards
            .iter()
            .map(|sh| {
                if sh.pending() == 0 {
                    sh.watermark().max(routed)
                } else {
                    sh.watermark()
                }
            })
            .min()
            .unwrap_or(routed);
        self.merged.observe(eff_min);
        self.merged.now()
    }

    /// How far the merged watermark trails event time at `at`.
    pub fn freshness_lag(&self, at: SimTime) -> SimTime {
        self.watermark();
        self.merged.lag(at)
    }

    /// Crash recovery: drop undrained events everywhere and rewind every
    /// watermark to `at` (the checkpoint the PS state rolled back to) —
    /// the per-shard analogue of [`Ingestor::reset_for_replay`].
    pub fn reset_for_replay(&mut self, at: SimTime) {
        for sh in &mut self.shards {
            sh.reset_for_replay(at);
        }
        for q in &mut self.pending_seqs {
            q.clear();
        }
        self.routed = Watermark::new();
        self.routed.observe(at);
        self.merged = Watermark::new();
        self.merged.observe(at);
    }

    /// Drain one shard only (tests and targeted catch-up): the shard's
    /// own micro-batch on its own clock. The merged watermark advances
    /// only as far as the slowest shard allows.
    pub fn drain_shard(&mut self, i: usize) -> Result<BatchEffect> {
        self.pending_seqs[i].clear();
        let clock = &self.clocks[i];
        let fx = self.shards[i].apply_pending(clock)?;
        self.watermark();
        Ok(fx)
    }

    /// Drain every shard as one logical micro-batch:
    ///
    /// 1. *serial, shard order* — drain each mailbox and pull the old
    ///    out-lists on the shard's own clock;
    /// 2. *parallel on the pool* — plan each shard's mutations (the
    ///    driver-side mirror of the table's slot semantics, pure CPU);
    /// 3. *concurrent per-partition writes* — one
    ///    [`NeighborTableHandle::update_edges_sharded`] call applies all
    ///    shards' lanes, charging each to its own clock, verifying each
    ///    shard's mirror against the table's applied counts;
    /// 4. *serial, shard order* — degree deltas, then commit each shard's
    ///    counters and watermark.
    ///
    /// The returned effect is the exact single-ingestor equivalent:
    /// `effects` concatenated in shard order is globally source-sorted
    /// (ranges ascend), and `applied` is re-interleaved into global
    /// arrival order via the sequence numbers recorded at offer time.
    pub fn drain_all(&mut self) -> Result<BatchEffect> {
        let shards = self.shards.len();
        let mut batches: Vec<(Vec<EdgeEvent>, Vec<u64>, Vec<Vec<u64>>)> =
            Vec::with_capacity(shards);
        let mut seqs: Vec<Vec<u64>> = Vec::with_capacity(shards);
        for i in 0..shards {
            let events = self.shards[i].drain_events();
            seqs.push(std::mem::take(&mut self.pending_seqs[i]));
            let srcs = batch_sources(&events);
            let old = self.shards[i].pull_old(&self.clocks[i], &srcs)?;
            batches.push((events, srcs, old));
        }

        let planned = Pool::global().map(batches, |(events, srcs, old)| {
            plan_batch(&events, &srcs, old)
        });

        let lanes: Vec<(usize, (&NodeClock, &[(u64, u64, bool)]))> = planned
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.applied.is_empty())
            .map(|(i, p)| (i, (&self.clocks[i], p.ops.as_slice())))
            .collect();
        if !lanes.is_empty() {
            let lane_refs: Vec<(&NodeClock, &[(u64, u64, bool)])> =
                lanes.iter().map(|&(_, l)| l).collect();
            let counts = self.shards[0].adjacency.update_edges_sharded(&lane_refs)?;
            for (&(i, _), &(adds, removes)) in lanes.iter().zip(&counts) {
                planned[i].check_table_counts(adds, removes)?;
            }
        }
        for (i, p) in planned.iter().enumerate() {
            if !p.deg_ids.is_empty() {
                self.shards[i].degrees.push_add(&self.clocks[i], &p.deg_ids, &p.deg_deltas)?;
            }
        }

        let mut merged = BatchEffect::default();
        let mut applied_seq: Vec<(u64, (u64, u64, bool))> = Vec::new();
        for (i, p) in planned.into_iter().enumerate() {
            if p.drained == 0 {
                continue;
            }
            for (&j, &op) in p.applied_idx.iter().zip(&p.applied) {
                applied_seq.push((seqs[i][j], op));
            }
            let fx = self.shards[i].commit(p);
            merged.drained += fx.drained;
            merged.effects.extend(fx.effects);
        }
        applied_seq.sort_unstable_by_key(|&(s, _)| s);
        merged.applied = applied_seq.into_iter().map(|(_, op)| op).collect();
        merged.watermark = self.watermark();
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EdgeOp;
    use psgraph_ps::PsConfig;

    fn ev(op: EdgeOp, src: u64, dst: u64, ms: u64) -> EdgeEvent {
        EdgeEvent { op, src, dst, at: SimTime::from_millis(ms) }
    }

    fn setup(shards: usize, n: u64) -> ShardedIngestor {
        let ps = Ps::new(PsConfig::default());
        let cfg = IngestConfig { mailbox_cap: 64, ..IngestConfig::default() };
        ShardedIngestor::create(&ps, &cfg, n, shards).unwrap()
    }

    #[test]
    fn routes_by_owner_and_matches_single_ingestor() {
        // 16 vertices / 2 shards: sources 0..8 to shard 0, 8..16 to 1.
        let mut sharded = setup(2, 16);
        let client = NodeClock::new();
        sharded.bootstrap(&client, &[(0, 1), (9, 2)]).unwrap();

        let events = [
            ev(EdgeOp::Add, 9, 5, 1),
            ev(EdgeOp::Add, 0, 5, 2),
            ev(EdgeOp::Remove, 0, 1, 3),
            ev(EdgeOp::Add, 9, 5, 4), // duplicate → skipped on shard 1
            ev(EdgeOp::Add, 0, 1, 5),
        ];
        for e in events {
            assert!(sharded.offer(NodeId::Driver, e));
        }
        assert_eq!(sharded.pending(), 5);
        let fx = sharded.drain_all().unwrap();
        assert_eq!(fx.drained, 5);
        // Applied re-interleaved into exact global arrival order.
        assert_eq!(
            fx.applied,
            vec![(9, 5, true), (0, 5, true), (0, 1, false), (0, 1, true)]
        );
        // Effects concatenated in shard order = source-sorted.
        let effect_srcs: Vec<u64> = fx.effects.iter().map(|e| e.0).collect();
        assert_eq!(effect_srcs, vec![0, 9]);
        assert_eq!(fx.watermark, SimTime::from_millis(5));

        let st = sharded.stats();
        assert_eq!(st.applied_adds, 3);
        assert_eq!(st.applied_removes, 1);
        assert_eq!(st.skipped_dup_adds, 1);
        let per = sharded.shard_stats();
        assert_eq!(per[0].applied_adds, 2);
        assert_eq!(per[1].skipped_dup_adds, 1);

        // The shared table holds the merged result.
        let live = sharded.adjacency().pull(&client, &[0, 9]).unwrap();
        assert_eq!(live[0].as_slice(), &[5, 1]);
        assert_eq!(live[1].as_slice(), &[2, 5]);
    }

    #[test]
    fn merged_watermark_is_min_and_monotone_under_out_of_order_progress() {
        let mut sharded = setup(2, 16);
        // Events land on both shards; drain only shard 1 (the "fast"
        // shard): the straggler (shard 0, undrained) must hold the merge.
        assert!(sharded.offer(NodeId::Driver, ev(EdgeOp::Add, 1, 2, 10)));
        assert!(sharded.offer(NodeId::Driver, ev(EdgeOp::Add, 9, 3, 20)));
        sharded.drain_shard(1).unwrap();
        assert_eq!(sharded.shard_watermarks()[1], SimTime::from_millis(20));
        assert_eq!(
            sharded.watermark(),
            SimTime::ZERO,
            "a fast shard must not mask the straggler"
        );
        assert_eq!(
            sharded.freshness_lag(SimTime::from_millis(25)),
            SimTime::from_millis(25)
        );

        // The straggler catches up → merged jumps to the min (= newest
        // routed event, since both are now fully drained).
        sharded.drain_shard(0).unwrap();
        assert_eq!(sharded.watermark(), SimTime::from_millis(20));

        // Out-of-order progress never regresses the ratchet: new events
        // arrive for shard 0 only; shard 1 is idle-but-drained, so the
        // merge advances with shard 0, not back to shard 1's last event.
        assert!(sharded.offer(NodeId::Driver, ev(EdgeOp::Add, 2, 4, 40)));
        let before = sharded.watermark();
        assert_eq!(before, SimTime::from_millis(20), "undrained event holds the merge");
        sharded.drain_shard(0).unwrap();
        assert_eq!(sharded.watermark(), SimTime::from_millis(40));
    }

    #[test]
    fn idle_shard_does_not_pin_freshness() {
        let mut sharded = setup(4, 16);
        // Every event lands in shard 0's range; shards 1..3 stay idle.
        for t in 1..=5u64 {
            assert!(sharded.offer(NodeId::Driver, ev(EdgeOp::Add, 0, t, t)));
        }
        sharded.drain_all().unwrap();
        assert_eq!(
            sharded.watermark(),
            SimTime::from_millis(5),
            "idle shards count as caught up to the newest routed event"
        );
    }

    #[test]
    fn reset_for_replay_rewinds_every_shard() {
        let mut sharded = setup(2, 16);
        for t in 1..=4u64 {
            assert!(sharded.offer(NodeId::Driver, ev(EdgeOp::Add, (t * 5) % 16, t, t * 10)));
        }
        sharded.drain_all().unwrap();
        assert_eq!(sharded.watermark(), SimTime::from_millis(40));
        sharded.reset_for_replay(SimTime::from_millis(20));
        assert_eq!(sharded.pending(), 0);
        assert_eq!(sharded.watermark(), SimTime::from_millis(20));
        for wm in sharded.shard_watermarks() {
            assert_eq!(wm, SimTime::from_millis(20));
        }
    }
}
