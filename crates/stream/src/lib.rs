//! Streaming ingestion and incremental computation — closing the
//! train → serve → refresh loop.
//!
//! The offline pipeline (train on the PS, snapshot to the DFS, load a
//! [`psgraph_serve::ServeCluster`]) leaves the serving tier frozen at
//! snapshot time. This crate keeps it fresh while the graph keeps
//! changing:
//!
//! 1. **Events** ([`events`]) — timestamped edge add/remove events, from
//!    a drift-parameterized RMAT source ([`events::DriftRmat`]) or
//!    replayed bit-exactly from a DFS event log ([`events::EventLog`]).
//! 2. **Ingest** ([`ingest`]) — a bounded-mailbox micro-batch ingestor
//!    applies events to mutable PS state (tombstone-backed neighbor
//!    table + degree vector) and tracks an event-time watermark for
//!    freshness accounting. For write throughput, [`shard`] routes the
//!    stream across N such ingestors keyed by edge owner (source-range
//!    tiling) and merges freshness as the min across shard watermarks.
//! 3. **Maintain** — each batch's effects feed the incremental
//!    maintainers in `psgraph_core::algos::incremental`: PageRank by
//!    residual re-push, connected components by union-on-add and bounded
//!    recompute-on-remove.
//! 4. **Refresh** ([`refresh`]) — every few batches a
//!    [`psgraph_ps::snapshot::DeltaWriter`] delta of the dirtied
//!    partitions is hot-swapped into the live serve replicas, so queries
//!    observe updates within a bounded number of micro-batches.

pub mod error;
pub mod events;
pub mod ingest;
pub mod recovery;
pub mod refresh;
pub mod shard;

pub use error::{Result, StreamError};
pub use events::{DriftRmat, DriftRmatSource, EdgeEvent, EdgeOp, EventLog};
pub use ingest::{BatchEffect, IngestConfig, IngestStats, Ingestor};
pub use recovery::{replay_from_log, StreamCheckpoint};
pub use refresh::{RefreshConfig, RefreshDriver, SwapRecord};
pub use shard::ShardedIngestor;
