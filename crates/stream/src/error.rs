//! Error type for the streaming tier.

use std::fmt;

#[derive(Debug)]
pub enum StreamError {
    Ps(psgraph_ps::PsError),
    Dfs(psgraph_dfs::DfsError),
    Serve(psgraph_serve::ServeError),
    Core(psgraph_core::error::CoreError),
    /// Malformed on-disk data (event log headers, truncation).
    Corrupt(String),
    /// Streaming invariant violated (freshness bound, verification).
    Invalid(String),
    /// Internal consistency check failed (driver mirror vs table
    /// semantics) — the maintainers would be fed wrong inputs.
    Invariant(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Ps(e) => write!(f, "{e}"),
            StreamError::Dfs(e) => write!(f, "{e}"),
            StreamError::Serve(e) => write!(f, "{e}"),
            StreamError::Core(e) => write!(f, "{e}"),
            StreamError::Corrupt(m) => write!(f, "corrupt: {m}"),
            StreamError::Invalid(m) => write!(f, "invalid: {m}"),
            StreamError::Invariant(m) => write!(f, "invariant violated: {m}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<psgraph_ps::PsError> for StreamError {
    fn from(e: psgraph_ps::PsError) -> Self {
        StreamError::Ps(e)
    }
}

impl From<psgraph_dfs::DfsError> for StreamError {
    fn from(e: psgraph_dfs::DfsError) -> Self {
        StreamError::Dfs(e)
    }
}

impl From<psgraph_serve::ServeError> for StreamError {
    fn from(e: psgraph_serve::ServeError) -> Self {
        StreamError::Serve(e)
    }
}

impl From<psgraph_core::error::CoreError> for StreamError {
    fn from(e: psgraph_core::error::CoreError) -> Self {
        StreamError::Core(e)
    }
}

pub type Result<T> = std::result::Result<T, StreamError>;
