//! Ingestor crash recovery: a durable stream checkpoint on the DFS
//! (paired with a PS checkpoint generation) plus event-log replay from
//! the last watermark.
//!
//! The protocol mirrors the paper's failure handling for
//! consistency-critical state: the driver periodically calls
//! `Ps::checkpoint_all_generation` and, once that returns `Ok`, publishes
//! a [`StreamCheckpoint`] recording *where in the event log* that
//! generation corresponds to. After a crash at an arbitrary point —
//! mid-batch, mid-checkpoint, mid-refresh — recovery rolls every
//! `Consistent` object back to the last *published* generation, rewinds
//! the ingestor ([`Ingestor::reset_for_replay`]), and re-drives the event
//! log suffix through [`replay_from_log`]. Replay is idempotent: slot
//! application skips duplicate adds and missing removes, so events the
//! crashed run had already absorbed past the checkpoint re-apply to the
//! same state.

use psgraph_dfs::Dfs;
use psgraph_net::rpc::NodeId;
use psgraph_sim::{NodeClock, SimTime};

use crate::error::{Result, StreamError};
use crate::events::EventLog;
use crate::ingest::{BatchEffect, Ingestor};

const CKPT_MAGIC: &[u8; 8] = b"PSGSCK01";

/// Where a crashed ingestor resumes. Published to the DFS *after* the PS
/// checkpoint generation it names is fully written, so the pair is
/// consistent: a crash between the two leaves the previous checkpoint
/// pointing at its own (intact) generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// PS checkpoint generation (see `Ps::checkpoint_all_generation`).
    pub generation: u64,
    /// Micro-batches fully applied before the checkpoint was taken.
    pub batches_done: u64,
    /// Events (absolute event-log index) fully applied before it.
    pub events_done: u64,
    /// Ingestor watermark at checkpoint time.
    pub watermark: SimTime,
}

impl StreamCheckpoint {
    /// Serialize to `path`, overwriting the previous checkpoint. The DFS
    /// write is all-or-nothing per block, standing in for HDFS
    /// write-then-rename.
    pub fn write(&self, dfs: &Dfs, path: &str, client: &NodeClock) -> Result<()> {
        let mut buf = Vec::with_capacity(40);
        buf.extend_from_slice(CKPT_MAGIC);
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&self.batches_done.to_le_bytes());
        buf.extend_from_slice(&self.events_done.to_le_bytes());
        buf.extend_from_slice(&self.watermark.as_nanos().to_le_bytes());
        dfs.write(path, &buf, client)?;
        Ok(())
    }

    /// Read the checkpoint back, bit-exact.
    pub fn read(dfs: &Dfs, path: &str, client: &NodeClock) -> Result<StreamCheckpoint> {
        let bytes = dfs.read(path, client)?;
        let buf: &[u8] = &bytes;
        if buf.len() != 40 || &buf[..8] != CKPT_MAGIC {
            return Err(StreamError::Corrupt(format!(
                "{path}: bad stream-checkpoint header"
            )));
        }
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        Ok(StreamCheckpoint {
            generation: u64_at(8),
            batches_done: u64_at(16),
            events_done: u64_at(24),
            watermark: SimTime::from_nanos(u64_at(32)),
        })
    }
}

/// Re-drive events `[from_event, to_event)` of the log at `path` through
/// `ingestor` in fixed `batch_size` batches, calling `on_batch(batch_idx,
/// effect)` after each drain so the caller can re-run its incremental
/// maintainers and re-take checkpoints. `batch_idx` is the *absolute*
/// batch number (`from_event / batch_size + local index`), so a replayed
/// run regroups events exactly as the fault-free run did — the
/// precondition for bit-identical final PS state.
///
/// Returns the number of batches replayed.
pub fn replay_from_log(
    dfs: &Dfs,
    path: &str,
    client: &NodeClock,
    ingestor: &mut Ingestor,
    from_event: usize,
    to_event: usize,
    batch_size: usize,
    mut on_batch: impl FnMut(u64, &BatchEffect) -> Result<()>,
) -> Result<usize> {
    if batch_size == 0 || batch_size > ingestor.capacity() {
        return Err(StreamError::Invalid(format!(
            "replay batch size {batch_size} outside 1..={}",
            ingestor.capacity()
        )));
    }
    if from_event % batch_size != 0 {
        return Err(StreamError::Invalid(format!(
            "replay start {from_event} is not a batch boundary (batch {batch_size})"
        )));
    }
    let events = EventLog::replay(dfs, path, client)?;
    let to = to_event.min(events.len());
    if from_event >= to {
        return Ok(0);
    }
    let first_batch = (from_event / batch_size) as u64;
    let mut batches = 0usize;
    for chunk in events[from_event..to].chunks(batch_size) {
        for ev in chunk {
            // Capacity was checked above and the mailbox starts drained,
            // so offers cannot be refused mid-chunk.
            let accepted = ingestor.offer(NodeId::Driver, *ev);
            debug_assert!(accepted, "replay chunk exceeded mailbox capacity");
        }
        let fx = ingestor.apply_pending(client)?;
        on_batch(first_batch + batches as u64, &fx)?;
        batches += 1;
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{DriftRmat, EdgeEvent};
    use crate::ingest::{IngestConfig, Ingestor};
    use psgraph_ps::{Ps, PsConfig};
    use std::sync::Arc;

    #[test]
    fn checkpoint_roundtrips_through_dfs() {
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        let ck = StreamCheckpoint {
            generation: 7,
            batches_done: 21,
            events_done: 21 * 64,
            watermark: SimTime::from_millis(1234),
        };
        ck.write(&dfs, "/stream/ckpt", &client).unwrap();
        assert_eq!(StreamCheckpoint::read(&dfs, "/stream/ckpt", &client).unwrap(), ck);
        dfs.write("/stream/bad", b"junk", &client).unwrap();
        assert!(StreamCheckpoint::read(&dfs, "/stream/bad", &client).is_err());
    }

    #[test]
    fn replay_rejects_misaligned_or_oversized_requests() {
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        let ps = Ps::new(PsConfig::default());
        let cfg = IngestConfig { mailbox_cap: 8, ..IngestConfig::default() };
        let mut ing = Ingestor::create(&ps, &cfg, 16).unwrap();
        EventLog::write(&dfs, "/stream/log", &[], &client).unwrap();
        let nop = |_b: u64, _fx: &BatchEffect| Ok(());
        assert!(replay_from_log(&dfs, "/stream/log", &client, &mut ing, 0, 0, 0, nop).is_err());
        assert!(replay_from_log(&dfs, "/stream/log", &client, &mut ing, 0, 0, 16, nop).is_err());
        assert!(replay_from_log(&dfs, "/stream/log", &client, &mut ing, 3, 9, 4, nop).is_err());
        assert_eq!(
            replay_from_log(&dfs, "/stream/log", &client, &mut ing, 0, 0, 4, nop).unwrap(),
            0
        );
    }

    /// The full recovery protocol end-to-end: run fault-free, then run a
    /// copy that crashes mid-stream (dirty un-checkpointed batches, dead
    /// servers), recovers from the last published generation, and
    /// replays the log suffix. Final adjacency + degree content must be
    /// bit-identical to the fault-free run.
    #[test]
    fn crash_recover_replay_matches_fault_free_run() {
        const N: u64 = 256;
        const BATCH: usize = 32;
        const BATCHES: usize = 12;
        const CKPT_EVERY: u64 = 4;

        let gen_events = || -> Vec<EdgeEvent> {
            let cfg = DriftRmat { num_vertices: N, seed: 40, ..DriftRmat::default() };
            let mut src = cfg.start(&[]);
            (0..BATCH * BATCHES).map(|_| src.next_event()).collect()
        };
        let events = gen_events();

        let content = |ing: &Ingestor, client: &NodeClock| -> (Vec<Vec<u64>>, Vec<u64>) {
            let ids: Vec<u64> = (0..N).collect();
            let adj: Vec<Vec<u64>> = ing
                .adjacency
                .pull(client, &ids)
                .unwrap()
                .iter()
                .map(|l| l.to_vec())
                .collect();
            let deg: Vec<u64> =
                ing.degrees.pull(client, &ids).unwrap().iter().map(|d| d.to_bits()).collect();
            (adj, deg)
        };

        let setup = || {
            let ps = Ps::new(PsConfig { servers: 2, ..PsConfig::default() });
            let dfs = Dfs::in_memory();
            let client = NodeClock::new();
            let cfg = IngestConfig { mailbox_cap: BATCH, ..IngestConfig::default() };
            let ing = Ingestor::create(&ps, &cfg, N).unwrap();
            EventLog::write(&dfs, "/stream/log", &events, &client).unwrap();
            (ps, dfs, client, ing)
        };

        // Fault-free reference.
        let (_ps_a, dfs_a, client_a, mut ing_a) = setup();
        let done = replay_from_log(
            &dfs_a, "/stream/log", &client_a, &mut ing_a, 0,
            events.len(), BATCH, |_b, _fx| Ok(()),
        )
        .unwrap();
        assert_eq!(done, BATCHES);
        let reference = content(&ing_a, &client_a);

        // Crashing run: checkpoint every CKPT_EVERY batches, crash after
        // batch 9 (one un-checkpointed batch beyond generation 2's
        // coverage of batches 0..8).
        let (ps_b, dfs_b, client_b, mut ing_b) = setup();
        let crash_after = 9usize;
        let mut generation = 0u64;
        let mut did = 0usize;
        replay_from_log(
            &dfs_b, "/stream/log", &client_b, &mut ing_b, 0,
            crash_after * BATCH + BATCH, BATCH,
            |b, fx| {
                did += 1;
                if (b + 1) % CKPT_EVERY == 0 {
                    generation += 1;
                    ps_b.checkpoint_all_generation(&dfs_b, generation)?;
                    StreamCheckpoint {
                        generation,
                        batches_done: b + 1,
                        events_done: (b + 1) * BATCH as u64,
                        watermark: fx.watermark,
                    }
                    .write(&dfs_b, "/stream/ckpt", &client_b)?;
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(did, crash_after + 1);

        // Crash: both servers die, losing the un-checkpointed tail.
        ps_b.kill_server(0);
        ps_b.kill_server(1);
        let t_crash = client_b.now();
        ps_b.restart_server(0, t_crash);
        ps_b.restart_server(1, t_crash);
        let ck = StreamCheckpoint::read(&dfs_b, "/stream/ckpt", &client_b).unwrap();
        assert_eq!(ck.batches_done, 8);
        ps_b.recover_server_from_generation(0, &dfs_b, &client_b, ck.generation).unwrap();
        ing_b.reset_for_replay(ck.watermark);
        assert_eq!(ing_b.watermark(), ck.watermark);

        // Replay the suffix the crash wiped out (batches 8..12).
        let replayed = replay_from_log(
            &dfs_b, "/stream/log", &client_b, &mut ing_b,
            ck.events_done as usize, events.len(), BATCH, |_b, _fx| Ok(()),
        )
        .unwrap();
        assert_eq!(replayed, BATCHES - ck.batches_done as usize);
        assert_eq!(content(&ing_b, &client_b), reference, "recovered state diverged");

        // Recovery must not echo pre-crash versions (epoch bump), so the
        // delta writer's dirtiness inequality stays sound.
        let pre = Arc::strong_count(&ps_b); // silence unused-arc lint paths
        let _ = pre;
    }
}
