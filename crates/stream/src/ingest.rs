//! Micro-batch ingestion: a bounded mailbox of edge events drained into
//! mutable PS state (neighbor table + degree vector), with watermark
//! tracking for freshness accounting.
//!
//! Backpressure is explicit: [`Ingestor::offer`] refuses events when the
//! mailbox is full, and the caller decides whether to drop, retry, or
//! drain a batch first — the same admission-control contract the serve
//! frontend uses for queries.

use std::sync::Arc;

use psgraph_net::bus::Mailbox;
use psgraph_net::rpc::NodeId;
use psgraph_ps::{NeighborTableHandle, Partitioner, Ps, RecoveryMode, VectorHandle};
use psgraph_sim::{FxHashMap, NodeClock, SimTime, Watermark};

use crate::error::{Result, StreamError};
use crate::events::{EdgeEvent, EdgeOp};

/// Sizing for one [`Ingestor`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// PS object prefix: creates `{prefix}.adj` and `{prefix}.deg`.
    pub prefix: String,
    /// Mailbox capacity — the micro-batch size ceiling; `offer` sees
    /// backpressure beyond it.
    pub mailbox_cap: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { prefix: "stream".into(), mailbox_cap: 4096 }
    }
}

/// Lifetime counters across every applied batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Events accepted into the mailbox.
    pub accepted: u64,
    /// Events refused by a full mailbox.
    pub rejected: u64,
    /// Adds applied to the table (duplicates excluded).
    pub applied_adds: u64,
    /// Removes applied to the table (misses excluded).
    pub applied_removes: u64,
    /// Adds skipped because the edge was already live (at-least-once
    /// delivery redelivers adds; replay after recovery re-offers them).
    pub skipped_dup_adds: u64,
    /// Removes skipped because the edge was absent. Kept separate from
    /// duplicate adds so replay-idempotence diagnostics can tell
    /// redelivered adds from removes racing ahead of their adds.
    pub skipped_missing_removes: u64,
    /// Micro-batches drained.
    pub batches: u64,
}

impl IngestStats {
    /// All skipped events (duplicate adds + missing removes).
    pub fn skipped_total(&self) -> u64 {
        self.skipped_dup_adds + self.skipped_missing_removes
    }

    /// Fold another ingestor's counters in (shard aggregation).
    pub fn merge(&mut self, o: &IngestStats) {
        self.accepted += o.accepted;
        self.rejected += o.rejected;
        self.applied_adds += o.applied_adds;
        self.applied_removes += o.applied_removes;
        self.skipped_dup_adds += o.skipped_dup_adds;
        self.skipped_missing_removes += o.skipped_missing_removes;
        self.batches += o.batches;
    }
}

/// What one micro-batch did — everything the incremental maintainers
/// need, with no second trip to the PS.
#[derive(Debug, Clone, Default)]
pub struct BatchEffect {
    /// Per touched source: `(src, live out-list before, after)`. Feeds
    /// [`psgraph_core::algos::IncrementalPageRank::on_batch`].
    pub effects: Vec<(u64, Vec<u64>, Vec<u64>)>,
    /// Events that actually changed the table, in arrival order, as
    /// `(src, dst, is_add)`. Feeds
    /// [`psgraph_core::algos::IncrementalCc::on_batch`].
    pub applied: Vec<(u64, u64, bool)>,
    /// Events drained from the mailbox (applied + skipped).
    pub drained: usize,
    /// Max event time observed so far (the watermark after this batch).
    pub watermark: SimTime,
}

/// Drains timestamped edge events into PS state in micro-batches.
pub struct Ingestor {
    mailbox: Mailbox<EdgeEvent>,
    /// The live out-neighbor table (`{prefix}.adj`), tombstone-backed.
    pub adjacency: NeighborTableHandle,
    /// Live out-degrees as f64 (`{prefix}.deg`), kept in lockstep.
    pub degrees: VectorHandle<f64>,
    watermark: Watermark,
    stats: IngestStats,
    n: u64,
}

impl Ingestor {
    pub fn create(ps: &Arc<Ps>, cfg: &IngestConfig, n: u64) -> Result<Ingestor> {
        let adjacency = NeighborTableHandle::create(
            ps,
            format!("{}.adj", cfg.prefix),
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        let degrees = VectorHandle::<f64>::create(
            ps,
            format!("{}.deg", cfg.prefix),
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        Ok(Ingestor::over(adjacency, degrees, cfg.mailbox_cap, n))
    }

    /// An ingestor over *existing* PS objects. The sharded router uses
    /// this so every shard writes the same adjacency table and degree
    /// vector (each shard owns a disjoint source range, so their writes
    /// never touch the same entry).
    pub fn over(
        adjacency: NeighborTableHandle,
        degrees: VectorHandle<f64>,
        mailbox_cap: usize,
        n: u64,
    ) -> Ingestor {
        Ingestor {
            mailbox: Mailbox::bounded(mailbox_cap),
            adjacency,
            degrees,
            watermark: Watermark::new(),
            stats: IngestStats::default(),
            n,
        }
    }

    /// Load the base graph (deduped) before the stream starts.
    pub fn bootstrap(&self, client: &NodeClock, edges: &[(u64, u64)]) -> Result<()> {
        let mut lists: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for &(s, d) in edges {
            lists.entry(s).or_default().push(d);
        }
        let mut entries: Vec<(u64, Vec<u64>)> = lists.into_iter().collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        let (ids, degs): (Vec<u64>, Vec<f64>) =
            entries.iter().map(|(s, l)| (*s, l.len() as f64)).unzip();
        self.adjacency.push(client, &entries)?;
        self.degrees.push_set(client, &ids, &degs)?;
        Ok(())
    }

    /// Enqueue an event; `false` means the mailbox is full (backpressure)
    /// and the caller should drain a batch before retrying.
    pub fn offer(&mut self, from: NodeId, ev: EdgeEvent) -> bool {
        let ok = self.mailbox.try_post(from, ev.at, ev);
        if ok {
            self.stats.accepted += 1;
        } else {
            self.stats.rejected += 1;
        }
        ok
    }

    /// Events waiting in the mailbox.
    pub fn pending(&self) -> usize {
        self.mailbox.len()
    }

    /// The micro-batch size ceiling.
    pub fn capacity(&self) -> usize {
        self.mailbox.capacity()
    }

    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Max event time applied so far.
    pub fn watermark(&self) -> SimTime {
        self.watermark.now()
    }

    /// Admission counters of the ingest mailbox (accepted / dropped /
    /// retried) — backpressure loss made observable.
    pub fn mailbox_counters(&self) -> psgraph_net::MailboxCounters {
        self.mailbox.counters()
    }

    /// Record a sender-side retry after a refused [`Ingestor::offer`].
    pub fn note_offer_retry(&self) {
        self.mailbox.note_retry();
    }

    /// Crash recovery: drop any in-flight (undrained) events and rewind
    /// the watermark to `at` — the watermark recorded by the checkpoint
    /// the PS state was just rolled back to. The event-log replay then
    /// re-offers everything after the checkpoint; re-applying events the
    /// crashed run had already absorbed is safe because slot application
    /// is idempotent (duplicate adds and missing removes are skipped, and
    /// degree deltas derive from actual list changes).
    pub fn reset_for_replay(&mut self, at: SimTime) {
        self.mailbox.drain();
        self.watermark = Watermark::new();
        self.watermark.observe(at);
    }

    /// How far processing trails event time at `at`.
    pub fn freshness_lag(&self, at: SimTime) -> SimTime {
        self.watermark.lag(at)
    }

    /// Drain the mailbox into the batch's event list (arrival order).
    pub(crate) fn drain_events(&mut self) -> Vec<EdgeEvent> {
        self.mailbox.drain().into_iter().map(|m| m.payload).collect()
    }

    /// Pull the current live out-lists for the batch's (sorted, deduped)
    /// sources, charged to `client`.
    pub(crate) fn pull_old(
        &self,
        client: &NodeClock,
        srcs: &[u64],
    ) -> Result<Vec<Vec<u64>>> {
        Ok(self.adjacency.pull(client, srcs)?.iter().map(|l| l.to_vec()).collect())
    }

    /// Apply the planned mutations to the PS (edge ops + degree deltas)
    /// on `client`'s clock, verifying the driver mirror against the
    /// table's own applied counts. No-op batches skip the RPCs entirely
    /// so they cannot dirty a partition (and so a cadence of pure
    /// duplicates never pays a delta swap).
    pub(crate) fn apply_planned(&self, client: &NodeClock, planned: &PlannedBatch) -> Result<()> {
        if !planned.applied.is_empty() {
            let (adds, removes) = self.adjacency.update_edges(client, &planned.ops)?;
            planned.check_table_counts(adds, removes)?;
        }
        if !planned.deg_ids.is_empty() {
            self.degrees.push_add(client, &planned.deg_ids, &planned.deg_deltas)?;
        }
        Ok(())
    }

    /// Fold a planned-and-applied batch into the lifetime counters and
    /// the watermark, yielding the maintainer-facing effect.
    pub(crate) fn commit(&mut self, planned: PlannedBatch) -> BatchEffect {
        self.stats.batches += 1;
        self.stats.applied_adds += planned.applied.iter().filter(|&&(_, _, a)| a).count() as u64;
        self.stats.applied_removes +=
            planned.applied.iter().filter(|&&(_, _, a)| !a).count() as u64;
        self.stats.skipped_dup_adds += planned.dup_adds;
        self.stats.skipped_missing_removes += planned.missing_removes;
        self.watermark.observe(planned.max_at);
        BatchEffect {
            effects: planned.effects,
            applied: planned.applied,
            drained: planned.drained,
            watermark: self.watermark.now(),
        }
    }

    /// Drain the mailbox and apply everything as one micro-batch: the
    /// neighbor table gets the interleaved add/remove sequence in arrival
    /// order, degrees get the net per-source delta, and the watermark
    /// advances to the newest applied event time.
    pub fn apply_pending(&mut self, client: &NodeClock) -> Result<BatchEffect> {
        let events = self.drain_events();
        if events.is_empty() {
            return Ok(BatchEffect { watermark: self.watermark.now(), ..Default::default() });
        }
        let srcs = batch_sources(&events);
        let old = self.pull_old(client, &srcs)?;
        let planned = plan_batch(&events, &srcs, old);
        self.apply_planned(client, &planned)?;
        Ok(self.commit(planned))
    }

    pub fn num_vertices(&self) -> u64 {
        self.n
    }
}

/// The sorted, deduped source set of a batch.
pub(crate) fn batch_sources(events: &[EdgeEvent]) -> Vec<u64> {
    let mut srcs: Vec<u64> = events.iter().map(|e| e.src).collect();
    srcs.sort_unstable();
    srcs.dedup();
    srcs
}

/// One micro-batch's mutations, fully decided driver-side but not yet
/// sent to the PS or folded into counters. Pure data: the sharded router
/// computes these on the worker pool, one shard per task.
pub(crate) struct PlannedBatch {
    /// Events drained (applied + skipped).
    pub(crate) drained: usize,
    /// Every op in arrival order (the table skips no-ops itself).
    pub(crate) ops: Vec<(u64, u64, bool)>,
    /// Ops that actually change the table, in arrival order.
    pub(crate) applied: Vec<(u64, u64, bool)>,
    /// For each entry of `applied`: the index into the batch's event list
    /// it came from — the router uses these to reconstruct the exact
    /// global arrival order across shards.
    pub(crate) applied_idx: Vec<usize>,
    /// Per touched source: `(src, live out-list before, after)`, sources
    /// ascending.
    pub(crate) effects: Vec<(u64, Vec<u64>, Vec<u64>)>,
    pub(crate) deg_ids: Vec<u64>,
    pub(crate) deg_deltas: Vec<f64>,
    pub(crate) dup_adds: u64,
    pub(crate) missing_removes: u64,
    pub(crate) max_at: SimTime,
}

impl PlannedBatch {
    /// Verify the table's applied counts against the driver mirror. Runs
    /// in release builds: a divergence here means the maintainers would
    /// be fed effects the table never made (or miss ones it did).
    pub(crate) fn check_table_counts(&self, adds: usize, removes: usize) -> Result<()> {
        let want_adds = self.applied.iter().filter(|&&(_, _, a)| a).count();
        let want_removes = self.applied.iter().filter(|&&(_, _, a)| !a).count();
        if (adds, removes) != (want_adds, want_removes) {
            return Err(StreamError::Invariant(format!(
                "driver mirror diverged from table semantics: table applied \
                 {adds} adds / {removes} removes, mirror expected \
                 {want_adds} / {want_removes}"
            )));
        }
        Ok(())
    }
}

/// Mirror the table's slot semantics driver-side (append if absent,
/// remove the first live occurrence) to learn which events actually
/// change state — the maintainers must see only those. Pure function of
/// the events and the pulled `old` lists (aligned with `srcs`).
pub(crate) fn plan_batch(events: &[EdgeEvent], srcs: &[u64], old: Vec<Vec<u64>>) -> PlannedBatch {
    let mut working: FxHashMap<u64, Vec<u64>> =
        srcs.iter().cloned().zip(old.iter().cloned()).collect();
    let mut ops: Vec<(u64, u64, bool)> = Vec::with_capacity(events.len());
    let mut applied: Vec<(u64, u64, bool)> = Vec::new();
    let mut applied_idx: Vec<usize> = Vec::new();
    let mut dup_adds = 0u64;
    let mut missing_removes = 0u64;
    let mut max_at = SimTime::ZERO;
    for (j, ev) in events.iter().enumerate() {
        max_at = max_at.max(ev.at);
        let list = working.get_mut(&ev.src).expect("src pulled");
        match ev.op {
            EdgeOp::Add => {
                ops.push((ev.src, ev.dst, true));
                if list.contains(&ev.dst) {
                    dup_adds += 1;
                } else {
                    list.push(ev.dst);
                    applied.push((ev.src, ev.dst, true));
                    applied_idx.push(j);
                }
            }
            EdgeOp::Remove => {
                ops.push((ev.src, ev.dst, false));
                match list.iter().position(|&x| x == ev.dst) {
                    Some(i) => {
                        list.remove(i);
                        applied.push((ev.src, ev.dst, false));
                        applied_idx.push(j);
                    }
                    None => missing_removes += 1,
                }
            }
        }
    }

    let mut effects: Vec<(u64, Vec<u64>, Vec<u64>)> = Vec::with_capacity(srcs.len());
    let mut deg_ids: Vec<u64> = Vec::new();
    let mut deg_deltas: Vec<f64> = Vec::new();
    for (s, o) in srcs.iter().zip(old) {
        let new = working.remove(s).expect("src present");
        if new != o {
            let delta = new.len() as f64 - o.len() as f64;
            if delta != 0.0 {
                deg_ids.push(*s);
                deg_deltas.push(delta);
            }
            effects.push((*s, o, new));
        }
    }
    PlannedBatch {
        drained: events.len(),
        ops,
        applied,
        applied_idx,
        effects,
        deg_ids,
        deg_deltas,
        dup_adds,
        missing_removes,
        max_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_ps::PsConfig;

    fn ev(op: EdgeOp, src: u64, dst: u64, ms: u64) -> EdgeEvent {
        EdgeEvent { op, src, dst, at: SimTime::from_millis(ms) }
    }

    fn setup(cap: usize) -> (Ingestor, NodeClock) {
        let ps = Ps::new(PsConfig::default());
        let cfg = IngestConfig { mailbox_cap: cap, ..IngestConfig::default() };
        (Ingestor::create(&ps, &cfg, 16).unwrap(), NodeClock::new())
    }

    #[test]
    fn batch_applies_events_in_order_and_tracks_watermark() {
        let (mut ing, client) = setup(64);
        ing.bootstrap(&client, &[(0, 1), (0, 2), (3, 4)]).unwrap();
        for e in [
            ev(EdgeOp::Add, 0, 5, 1),
            ev(EdgeOp::Remove, 0, 1, 2),
            ev(EdgeOp::Add, 0, 1, 3),  // re-add after remove
            ev(EdgeOp::Add, 3, 4, 4),  // duplicate → skipped
            ev(EdgeOp::Remove, 3, 9, 5), // missing → skipped
        ] {
            assert!(ing.offer(NodeId::Driver, e));
        }
        let fx = ing.apply_pending(&client).unwrap();
        assert_eq!(fx.drained, 5);
        assert_eq!(fx.applied, vec![(0, 5, true), (0, 1, false), (0, 1, true)]);
        assert_eq!(fx.watermark, SimTime::from_millis(5));
        assert_eq!(ing.watermark(), SimTime::from_millis(5));
        assert_eq!(ing.freshness_lag(SimTime::from_millis(12)), SimTime::from_millis(7));

        // Effects carry old → new live lists; the table agrees.
        assert_eq!(fx.effects, vec![(0, vec![1, 2], vec![2, 5, 1])]);
        let live = ing.adjacency.pull(&client, &[0]).unwrap().remove(0);
        assert_eq!(live.as_slice(), &[2, 5, 1]);
        // Degrees track net deltas (source 0: 2 → 3; source 3 unchanged).
        assert_eq!(ing.degrees.pull(&client, &[0, 3]).unwrap(), vec![3.0, 1.0]);

        let st = ing.stats();
        assert_eq!(st.applied_adds, 2);
        assert_eq!(st.applied_removes, 1);
        assert_eq!(st.skipped_dup_adds, 1, "duplicate (3,4) add");
        assert_eq!(st.skipped_missing_removes, 1, "missing (3,9) remove");
        assert_eq!(st.skipped_total(), 2);
        assert_eq!(st.batches, 1);
    }

    #[test]
    fn full_mailbox_pushes_back() {
        let (mut ing, client) = setup(2);
        assert!(ing.offer(NodeId::Driver, ev(EdgeOp::Add, 1, 2, 1)));
        assert!(ing.offer(NodeId::Driver, ev(EdgeOp::Add, 2, 3, 2)));
        assert!(!ing.offer(NodeId::Driver, ev(EdgeOp::Add, 3, 4, 3)), "backpressure");
        assert_eq!(ing.pending(), 2);
        assert_eq!(ing.stats().rejected, 1);
        let fx = ing.apply_pending(&client).unwrap();
        assert_eq!(fx.drained, 2);
        // Drained capacity admits the retry.
        assert!(ing.offer(NodeId::Driver, ev(EdgeOp::Add, 3, 4, 3)));
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let (mut ing, client) = setup(8);
        let fx = ing.apply_pending(&client).unwrap();
        assert_eq!(fx.drained, 0);
        assert!(fx.effects.is_empty() && fx.applied.is_empty());
        assert_eq!(ing.stats().batches, 0);
    }
}
