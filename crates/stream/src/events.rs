//! Timestamped edge events: a drift-parameterized RMAT source for
//! synthetic streams and a DFS-backed event log for exact replay.

use psgraph_dfs::Dfs;
use psgraph_sim::{FxHashSet, NodeClock, SimTime, SplitMix64};

use crate::error::{Result, StreamError};

/// What happened to an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    Add,
    Remove,
}

/// One timestamped mutation of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEvent {
    pub op: EdgeOp,
    pub src: u64,
    pub dst: u64,
    /// Event time (when the edge changed in the source system), distinct
    /// from the processing time at which a micro-batch applies it.
    pub at: SimTime,
}

impl EdgeEvent {
    /// Which of `shards` ingestor shards owns this event: the shard whose
    /// contiguous source range (the same `query::part` range tiling the
    /// serving tier uses) contains `src`. Every mutation of a source
    /// vertex lands in exactly one mailbox, so per-source arrival order
    /// is preserved end to end.
    pub fn owner(&self, num_vertices: u64, shards: usize) -> usize {
        psgraph_query::part::owner_of(self.src, num_vertices, shards)
    }
}

/// A synthetic edge-event source: RMAT-skewed adds whose quadrant
/// probabilities *drift* over the stream (hot regions move, like a real
/// social graph's activity migrating), interleaved with removals of
/// random live edges. Inter-arrival times are exponential, so event time
/// advances like a Poisson process.
///
/// Adds are at-least-once: the generator may emit an edge that is
/// already live (real change-capture logs do) — downstream appliers must
/// dedup. Removals always name a currently-live edge.
#[derive(Debug, Clone)]
pub struct DriftRmat {
    pub num_vertices: u64,
    /// Quadrant probabilities `(a, b, c)` at the start of the stream.
    pub from: (f64, f64, f64),
    /// Quadrant probabilities once `drift_horizon` events have passed.
    pub to: (f64, f64, f64),
    /// Events over which `from` linearly morphs into `to`.
    pub drift_horizon: u64,
    /// Fraction of events that remove a live edge (when any exist).
    pub remove_fraction: f64,
    /// Mean events per simulated second.
    pub events_per_sec: f64,
    pub seed: u64,
}

impl Default for DriftRmat {
    fn default() -> Self {
        DriftRmat {
            num_vertices: 1 << 10,
            from: (0.57, 0.19, 0.19),
            to: (0.19, 0.19, 0.57),
            drift_horizon: 100_000,
            remove_fraction: 0.25,
            events_per_sec: 50_000.0,
            seed: 1,
        }
    }
}

/// The running state of one [`DriftRmat`] stream.
pub struct DriftRmatSource {
    cfg: DriftRmat,
    rng: SplitMix64,
    now: SimTime,
    emitted: u64,
    live: Vec<(u64, u64)>,
    live_set: FxHashSet<(u64, u64)>,
}

impl DriftRmat {
    /// Start the stream at `t = 0`, seeded with `base_edges` already
    /// live (the snapshot the serving tier was loaded from).
    pub fn start(&self, base_edges: &[(u64, u64)]) -> DriftRmatSource {
        let live: Vec<(u64, u64)> = base_edges.to_vec();
        let live_set = live.iter().copied().collect();
        DriftRmatSource {
            cfg: self.clone(),
            rng: SplitMix64::new(self.seed),
            now: SimTime::ZERO,
            emitted: 0,
            live,
            live_set,
        }
    }
}

impl DriftRmatSource {
    /// Quadrant probabilities after `emitted` events.
    fn probs(&self) -> (f64, f64, f64) {
        let f = (self.emitted as f64 / self.cfg.drift_horizon.max(1) as f64).min(1.0);
        let lerp = |a: f64, b: f64| a + (b - a) * f;
        (
            lerp(self.cfg.from.0, self.cfg.to.0),
            lerp(self.cfg.from.1, self.cfg.to.1),
            lerp(self.cfg.from.2, self.cfg.to.2),
        )
    }

    fn sample_edge(&mut self) -> (u64, u64) {
        let n = self.cfg.num_vertices;
        let levels = 64 - (n - 1).leading_zeros();
        let (a, b, c) = self.probs();
        let (ab, abc) = (a + b, a + b + c);
        loop {
            let (mut src, mut dst) = (0u64, 0u64);
            for _ in 0..levels {
                let r = self.rng.next_f64();
                let (sbit, dbit) = if r < a {
                    (0, 0)
                } else if r < ab {
                    (0, 1)
                } else if r < abc {
                    (1, 0)
                } else {
                    (1, 1)
                };
                src = (src << 1) | sbit;
                dst = (dst << 1) | dbit;
            }
            src %= n;
            dst %= n;
            if src != dst {
                return (src, dst);
            }
        }
    }

    /// Produce the next event. Never exhausts.
    pub fn next_event(&mut self) -> EdgeEvent {
        self.now += SimTime::from_secs_f64(self.rng.next_exp(self.cfg.events_per_sec));
        self.emitted += 1;
        let remove = !self.live.is_empty() && self.rng.next_bool(self.cfg.remove_fraction);
        if remove {
            let i = self.rng.next_below(self.live.len() as u64) as usize;
            let (src, dst) = self.live.swap_remove(i);
            self.live_set.remove(&(src, dst));
            return EdgeEvent { op: EdgeOp::Remove, src, dst, at: self.now };
        }
        let (src, dst) = self.sample_edge();
        // Track live edges once; the duplicate *event* still goes out
        // (at-least-once delivery).
        if self.live_set.insert((src, dst)) {
            self.live.push((src, dst));
        }
        EdgeEvent { op: EdgeOp::Add, src, dst, at: self.now }
    }

    /// Edges currently live according to the source's own bookkeeping.
    pub fn live_edges(&self) -> &[(u64, u64)] {
        &self.live
    }

    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

const LOG_MAGIC: &[u8; 8] = b"PSGEVT01";

/// A replayable event log on the DFS — the durable form of a stream, so
/// a crashed ingestor (or a test) can re-run the exact same events.
pub struct EventLog;

impl EventLog {
    /// Serialize `events` to `path`, overwriting.
    pub fn write(
        dfs: &Dfs,
        path: &str,
        events: &[EdgeEvent],
        client: &NodeClock,
    ) -> Result<()> {
        let mut buf = Vec::with_capacity(16 + events.len() * 25);
        buf.extend_from_slice(LOG_MAGIC);
        buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
        for ev in events {
            buf.push(match ev.op {
                EdgeOp::Add => 0u8,
                EdgeOp::Remove => 1,
            });
            buf.extend_from_slice(&ev.src.to_le_bytes());
            buf.extend_from_slice(&ev.dst.to_le_bytes());
            buf.extend_from_slice(&ev.at.as_nanos().to_le_bytes());
        }
        dfs.write(path, &buf, client)?;
        Ok(())
    }

    /// Read the log back, bit-exact.
    pub fn replay(dfs: &Dfs, path: &str, client: &NodeClock) -> Result<Vec<EdgeEvent>> {
        let bytes = dfs.read(path, client)?;
        let buf: &[u8] = &bytes;
        if buf.len() < 16 || &buf[..8] != LOG_MAGIC {
            return Err(StreamError::Corrupt(format!("{path}: bad event-log header")));
        }
        let count = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let mut events = Vec::with_capacity(count);
        let mut off = 16;
        for _ in 0..count {
            if off + 25 > buf.len() {
                return Err(StreamError::Corrupt(format!("{path}: truncated event log")));
            }
            let op = match buf[off] {
                0 => EdgeOp::Add,
                1 => EdgeOp::Remove,
                t => {
                    return Err(StreamError::Corrupt(format!(
                        "{path}: unknown event tag {t}"
                    )))
                }
            };
            let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
            events.push(EdgeEvent {
                op,
                src: u64_at(off + 1),
                dst: u64_at(off + 9),
                at: SimTime::from_nanos(u64_at(off + 17)),
            });
            off += 25;
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_source_is_deterministic_and_monotone() {
        let cfg = DriftRmat { num_vertices: 64, seed: 9, ..DriftRmat::default() };
        let mut a = cfg.start(&[]);
        let mut b = cfg.start(&[]);
        let mut last = SimTime::ZERO;
        for _ in 0..500 {
            let ea = a.next_event();
            assert_eq!(ea, b.next_event(), "same seed, same stream");
            assert!(ea.at >= last, "event time is monotone");
            assert!(ea.src < 64 && ea.dst < 64 && ea.src != ea.dst);
            last = ea.at;
        }
        assert_eq!(a.emitted(), 500);
    }

    #[test]
    fn removals_only_name_live_edges() {
        let cfg = DriftRmat {
            num_vertices: 32,
            remove_fraction: 0.5,
            seed: 3,
            ..DriftRmat::default()
        };
        let mut src = cfg.start(&[(0, 1), (1, 2)]);
        let mut live: FxHashSet<(u64, u64)> = [(0, 1), (1, 2)].into_iter().collect();
        for _ in 0..400 {
            let ev = src.next_event();
            match ev.op {
                EdgeOp::Add => {
                    live.insert((ev.src, ev.dst));
                }
                EdgeOp::Remove => {
                    assert!(live.remove(&(ev.src, ev.dst)), "removed a dead edge");
                }
            }
        }
        let from_src: FxHashSet<(u64, u64)> = src.live_edges().iter().copied().collect();
        assert_eq!(from_src, live);
    }

    #[test]
    fn drift_moves_the_hot_quadrant() {
        // With probabilities fully drifted from a-heavy to c-heavy, early
        // adds should skew to low src ids and late adds to high ones.
        let cfg = DriftRmat {
            num_vertices: 1 << 8,
            drift_horizon: 2_000,
            remove_fraction: 0.0,
            seed: 5,
            ..DriftRmat::default()
        };
        let mut src = cfg.start(&[]);
        let early: Vec<u64> = (0..500).map(|_| src.next_event().src).collect();
        for _ in 0..2_000 {
            src.next_event();
        }
        let late: Vec<u64> = (0..500).map(|_| src.next_event().src).collect();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&late) > mean(&early) + 20.0,
            "drift should move mass to high ids: early {} late {}",
            mean(&early),
            mean(&late)
        );
    }

    #[test]
    fn owner_keying_matches_range_tiling() {
        let ev = |src| EdgeEvent { op: EdgeOp::Add, src, dst: 0, at: SimTime::ZERO };
        for n in [1u64, 7, 100] {
            for shards in [1usize, 2, 3, 8] {
                for v in 0..n {
                    let s = ev(v).owner(n, shards);
                    let (lo, hi) = psgraph_query::part::vertex_range(s, n, shards);
                    assert!((lo..hi).contains(&v), "v={v} n={n} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn event_log_roundtrips_through_dfs() {
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        let cfg = DriftRmat { num_vertices: 128, seed: 11, ..DriftRmat::default() };
        let mut src = cfg.start(&[]);
        let events: Vec<EdgeEvent> = (0..300).map(|_| src.next_event()).collect();
        EventLog::write(&dfs, "/stream/events", &events, &client).unwrap();
        let back = EventLog::replay(&dfs, "/stream/events", &client).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn replay_rejects_garbage() {
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        dfs.write("/stream/bad", b"not an event log", &client).unwrap();
        assert!(EventLog::replay(&dfs, "/stream/bad", &client).is_err());
    }
}
