//! Property tests for the serving tier: exact-LRU byte-budget semantics,
//! router liveness, and bit-identical snapshot round-trips.

use psgraph_harness::prop::{check, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};
use psgraph_serve::cache::LruCache;
use psgraph_serve::router::Router;
use psgraph_serve::shard::{Replica, ShardData, ShardSpec};
use psgraph_sim::{NodeClock, SimTime};
use std::sync::Arc;

/// Reference model: exact LRU with a byte budget, kept as a recency list
/// (front = least recently used).
struct ModelLru {
    budget: u64,
    entries: Vec<(u64, u64)>, // (key, bytes), LRU → MRU
}

impl ModelLru {
    fn bytes(&self) -> u64 {
        self.entries.iter().map(|(_, b)| *b).sum()
    }

    fn get(&mut self, key: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u64, bytes: u64) {
        // An oversized value is rejected before the old entry is touched —
        // a rejected update keeps the previous value cached.
        if bytes > self.budget {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        while self.bytes() + bytes > self.budget {
            self.entries.remove(0);
        }
        self.entries.push((key, bytes));
    }
}

#[derive(Debug)]
enum Op {
    Get(u64),
    Insert(u64, u64),
}

#[test]
fn lru_matches_exact_model_and_never_exceeds_budget() {
    check(
        "lru_matches_exact_model_and_never_exceeds_budget",
        |src: &mut Source| {
            let budget = src.u64_range(1, 400);
            let ops = src.vec_with(1, 120, |s| {
                let key = s.u64_range(0, 12);
                if s.bool() {
                    Op::Get(key)
                } else {
                    Op::Insert(key, s.u64_range(1, 120))
                }
            });
            (budget, ops)
        },
        |(budget, ops)| {
            let mut real: LruCache<u64, u64> = LruCache::new(*budget);
            let mut model = ModelLru { budget: *budget, entries: Vec::new() };
            for op in ops {
                match *op {
                    Op::Get(k) => {
                        let hit = real.get(&k).is_some();
                        prop_assert_eq!(hit, model.get(k), "get({}) hit mismatch", k);
                    }
                    Op::Insert(k, bytes) => {
                        real.insert(k, k * 10, bytes);
                        model.insert(k, bytes);
                    }
                }
                prop_assert!(
                    real.bytes_used() <= *budget,
                    "cache holds {} bytes with budget {}",
                    real.bytes_used(),
                    budget
                );
                prop_assert_eq!(real.bytes_used(), model.bytes());
                // Same keys in the same least→most recent order, i.e. the
                // eviction order is exactly LRU.
                let model_keys: Vec<u64> = model.entries.iter().map(|(k, _)| *k).collect();
                prop_assert_eq!(real.keys_lru_order(), model_keys);
            }
            Ok(())
        },
    );
}

#[test]
fn shard_ranges_tile_and_agree_with_owner_of() {
    use psgraph_serve::shard::{owner_of, vertex_range};

    check(
        "shard_ranges_tile_and_agree_with_owner_of",
        |src: &mut Source| {
            let n = src.u64_range(1, 5000);
            // Deliberately allows more shards than vertices.
            let shards = src.usize_range(1, 20);
            (n, shards)
        },
        |(n, shards)| {
            let (n, shards) = (*n, *shards);
            // Ranges are monotone and tile [0, n) exactly; shards past the
            // end are empty.
            let mut covered = 0u64;
            for s in 0..shards {
                let (lo, hi) = vertex_range(s, n, shards);
                prop_assert_eq!(lo, covered.min(n), "shard {} starts at the previous end", s);
                prop_assert!(lo <= hi && hi <= n);
                covered = hi;
            }
            prop_assert_eq!(covered, n, "ranges must cover every vertex");
            // owner_of and vertex_range agree: every vertex's owner owns a
            // range containing it, and no other shard does.
            for v in (0..n).step_by((n as usize / 64).max(1)) {
                let s = owner_of(v, n, shards);
                prop_assert!(s < shards);
                let (lo, hi) = vertex_range(s, n, shards);
                prop_assert!(
                    (lo..hi).contains(&v),
                    "v={} assigned to shard {} with range [{},{})",
                    v,
                    s,
                    lo,
                    hi
                );
            }
            Ok(())
        },
    );
}

#[test]
fn router_never_routes_to_a_dead_replica() {
    check(
        "router_never_routes_to_a_dead_replica",
        |src: &mut Source| {
            let replicas = src.usize_range(1, 6);
            // Aliveness mask + some synthetic in-flight load per replica.
            let alive = (0..replicas).map(|_| src.bool()).collect::<Vec<_>>();
            let load = (0..replicas).map(|_| src.usize_range(0, 5)).collect::<Vec<_>>();
            let probes = src.usize_range(1, 30);
            (alive, load, probes)
        },
        |(alive, load, probes)| {
            let spec = ShardSpec {
                num_shards: 1,
                shard: 0,
                vertex_lo: 0,
                vertex_hi: 100,
                col_lo: 0,
                col_hi: 4,
            };
            let data = Arc::new(ShardData::empty(spec));
            let reps: Vec<Arc<Replica>> = (0..alive.len())
                .map(|i| Replica::new(0, i, i, Arc::clone(&data), 16))
                .collect();
            for (i, rep) in reps.iter().enumerate() {
                for _ in 0..load[i] {
                    let _ = rep.record_completion(SimTime::ZERO, SimTime::from_secs(100));
                }
                if !alive[i] {
                    rep.kill();
                }
            }
            let router = Router::new(vec![reps]);
            let any_alive = alive.iter().any(|a| *a);
            for _ in 0..*probes {
                match router.route(0, SimTime::from_secs(1)) {
                    Some(rep) => {
                        prop_assert!(any_alive);
                        prop_assert!(
                            alive[rep.index()],
                            "routed to dead replica {}",
                            rep.index()
                        );
                        prop_assert!(rep.is_alive());
                    }
                    None => prop_assert!(!any_alive, "no route despite a live replica"),
                }
            }
            Ok(())
        },
    );
}

#[test]
fn snapshot_export_load_roundtrips_bit_identically() {
    use psgraph_dfs::Dfs;
    use psgraph_ps::snapshot::{load_object, SnapshotData, SnapshotWriter};
    use psgraph_ps::{
        ColMatrixHandle, Partitioner, Ps, PsConfig, RecoveryMode, VectorHandle,
    };

    check(
        "snapshot_export_load_roundtrips_bit_identically",
        |src: &mut Source| {
            let n = src.usize_range(1, 60) as u64;
            let dim = src.usize_range(1, 9);
            let servers = src.usize_range(1, 4);
            let values = (0..n).map(|_| src.f64_range(-1e6, 1e6)).collect::<Vec<_>>();
            let rows = (0..n)
                .map(|_| (0..dim).map(|_| src.f64_range(-100.0, 100.0) as f32).collect())
                .collect::<Vec<Vec<f32>>>();
            (n, servers, values, rows)
        },
        |(n, servers, values, rows)| {
            let ps = Ps::new(PsConfig { servers: *servers, ..Default::default() });
            let dfs = Dfs::in_memory();
            let client = NodeClock::new();
            let ids: Vec<u64> = (0..*n).collect();

            let hv = VectorHandle::<f64>::create(
                &ps,
                "p.vec",
                *n,
                Partitioner::Range,
                RecoveryMode::Consistent,
            )
            .unwrap();
            hv.push_set(&client, &ids, values).unwrap();

            let dim = rows[0].len();
            let hm =
                ColMatrixHandle::create(&ps, "p.mat", *n, dim, RecoveryMode::Inconsistent)
                    .unwrap();
            hm.push_add_rows(&client, &ids, rows).unwrap();

            let mut w = SnapshotWriter::new(&dfs, "/prop/snap", &client);
            w.vector_f64(&hv).unwrap();
            w.colmatrix(&hm).unwrap();
            let manifest = w.finish().unwrap();

            match load_object(&dfs, "/prop/snap", manifest.entry("p.vec").unwrap(), &client)
                .unwrap()
            {
                SnapshotData::VecF64(got) => {
                    prop_assert_eq!(got.len(), values.len());
                    for (g, w) in got.iter().zip(values) {
                        prop_assert_eq!(g.to_bits(), w.to_bits());
                    }
                }
                other => return Err(format!("wrong kind {other:?}")),
            }
            match load_object(&dfs, "/prop/snap", manifest.entry("p.mat").unwrap(), &client)
                .unwrap()
            {
                SnapshotData::MatF32 { cols, data } => {
                    prop_assert_eq!(cols, dim);
                    let want: Vec<u32> =
                        rows.iter().flatten().map(|x| x.to_bits()).collect();
                    let got: Vec<u32> = data.iter().map(|x| x.to_bits()).collect();
                    prop_assert_eq!(got, want);
                }
                other => return Err(format!("wrong kind {other:?}")),
            }
            Ok(())
        },
    );
}
