//! The query engine's central contract, as a shrinkable property: for
//! random graphs, shard counts, and plans — including plans the planner
//! refuses to push and plans the validator rejects — the distributed
//! executor returns *bit-for-bit* what the single-node interpreter
//! returns, under both `PushPolicy::Auto` and the frontend-only
//! baseline. Errors must agree by presence (a plan the interpreter
//! rejects must fail distributed too, and vice versa).

use psgraph_harness::prop::{check_with, Config, Source};
use psgraph_serve::frontend::Outcome;
use psgraph_serve::{
    ExpandMode, GraphTruth, Interpreter, Plan, PlanOutput, Pred, PushPolicy, Scorer,
    ServeCluster, ServeConfig, Source as PlanSource, Stage, Value,
};
use psgraph_sim::SimTime;

/// A random graph whose served bits equal its truth arrays: ranks on a
/// milli-grid, embeddings on a 0.25 grid (so `0.0 + x` in the PS load
/// path is exact), adjacency sorted and deduplicated (what the CSR
/// snapshot stores).
struct Case {
    n: u64,
    dim: usize,
    shards: usize,
    replicas: usize,
    ranks: Option<Vec<f64>>,
    communities: Option<Vec<u64>>,
    adjacency: Vec<Vec<u64>>,
    embeddings: Option<Vec<Vec<f32>>>,
    plans: Vec<Plan>,
}

impl std::fmt::Debug for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Case")
            .field("n", &self.n)
            .field("dim", &self.dim)
            .field("shards", &self.shards)
            .field("replicas", &self.replicas)
            .field("has_ranks", &self.ranks.is_some())
            .field("has_communities", &self.communities.is_some())
            .field("has_embeddings", &self.embeddings.is_some())
            .field("plans", &self.plans)
            .finish()
    }
}

fn gen_pred(src: &mut Source) -> Pred {
    match src.usize_range(0, 5) {
        0 => Pred::RankAtLeast(src.u64_range(0, 1000) as f64 / 1000.0),
        1 => Pred::RankBelow(src.u64_range(0, 1000) as f64 / 1000.0),
        2 => Pred::CommunityEq(src.u64_range(0, 4)),
        3 => Pred::CommunityNe(src.u64_range(0, 4)),
        4 => Pred::DegreeAtLeast(src.u64_range(0, 4)),
        _ => Pred::DegreeBelow(src.u64_range(1, 6)),
    }
}

fn gen_scorer(src: &mut Source, n: u64) -> Scorer {
    match src.usize_range(0, 2) {
        0 => Scorer::Rank,
        1 => Scorer::Degree,
        _ => Scorer::Dot(src.u64_range(0, n - 1)),
    }
}

/// One random plan. Anchors may land just past the vertex range and
/// shapes may reference objects the cluster does not serve — those must
/// error identically on both sides. Invalid *structures* (validator
/// rejections) appear too via the raw-stage arm.
fn gen_plan(src: &mut Source, n: u64) -> Plan {
    // A sometimes-out-of-range anchor exercises the bounds check.
    let v = src.u64_range(0, n + 1);
    match src.usize_range(0, 6) {
        0 => Plan::khop(v, src.u64_range(1, 3) as u32),
        1 => Plan::topk(v, src.usize_range(1, 6)),
        2 => Plan::topk_all(v, src.usize_range(1, 6)),
        3 => {
            // All-source pipeline: filters, optional score, terminal.
            let mut stages = Vec::new();
            for _ in 0..src.usize_range(0, 2) {
                stages.push(Stage::Filter(gen_pred(src)));
            }
            if src.bool() {
                stages.push(Stage::Score(gen_scorer(src, n)));
                stages.push(Stage::TopK(src.usize_range(1, 8)));
            } else {
                stages.push(Stage::Collect { cap: src.usize_range(1, 24) });
            }
            Plan { source: PlanSource::All, stages }
        }
        4 => {
            // Seed-source pipeline: expand, filters, score, top-k.
            let mut stages = Vec::new();
            if src.bool() {
                stages.push(Stage::Filter(gen_pred(src)));
            }
            stages.push(Stage::Expand {
                hops: src.u64_range(1, 2) as u32,
                cap: src.usize_range(4, 64),
                mode: if src.bool() { ExpandMode::Frontier } else { ExpandMode::Union },
            });
            if src.bool() {
                stages.push(Stage::Filter(gen_pred(src)));
            }
            if src.bool() {
                stages.push(Stage::Score(gen_scorer(src, n)));
                stages.push(Stage::TopK(src.usize_range(1, 8)));
            } else {
                stages.push(Stage::Collect { cap: src.usize_range(1, 24) });
            }
            Plan { source: PlanSource::Seed(v), stages }
        }
        _ => {
            // Free-form stage soup — often invalid (validator rejects it
            // on both sides), occasionally a legal shape the arms above
            // never produce.
            let stages = src.vec_with(0, 4, |s| match s.usize_range(0, 4) {
                0 => Stage::Filter(gen_pred(s)),
                1 => Stage::Score(gen_scorer(s, n)),
                2 => Stage::TopK(s.usize_range(1, 6)),
                3 => Stage::Collect { cap: s.usize_range(1, 16) },
                _ => Stage::Expand {
                    hops: s.u64_range(1, 2) as u32,
                    cap: s.usize_range(4, 32),
                    mode: ExpandMode::Frontier,
                },
            });
            let source =
                if src.bool() { PlanSource::All } else { PlanSource::Seed(v) };
            Plan { source, stages }
        }
    }
}

fn gen_case(src: &mut Source) -> Case {
    let n = src.u64_range(6, 32);
    let dim = [0usize, 2, 4][src.usize_range(0, 2)];
    let shards = src.usize_range(1, 4);
    let replicas = src.usize_range(1, 2);
    let ranks = src
        .bool()
        .then(|| (0..n).map(|_| src.u64_range(0, 1000) as f64 / 1000.0).collect());
    let communities =
        src.bool().then(|| (0..n).map(|_| src.u64_range(0, 4)).collect());
    let adjacency: Vec<Vec<u64>> = (0..n)
        .map(|_| {
            let mut ns: Vec<u64> =
                (0..src.usize_range(0, 4)).map(|_| src.u64_range(0, n - 1)).collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        })
        .collect();
    let embeddings = (dim > 0).then(|| {
        (0..n)
            .map(|_| {
                (0..dim).map(|_| (src.u64_range(0, 8) as f32 - 4.0) * 0.25).collect()
            })
            .collect()
    });
    let plans = src.vec_with(1, 6, |s| gen_plan(s, n));
    Case { n, dim, shards, replicas, ranks, communities, adjacency, embeddings, plans }
}

fn build_truth(c: &Case) -> GraphTruth {
    let mut t = GraphTruth::new(c.n);
    t.ranks = c.ranks.clone();
    t.communities = c.communities.clone();
    t.adjacency = Some(c.adjacency.clone());
    t.embeddings = c.embeddings.clone();
    t
}

fn build_cluster(c: &Case, push: PushPolicy) -> ServeCluster {
    let cfg = ServeConfig {
        shards: c.shards,
        replicas_per_shard: c.replicas,
        push,
        ..ServeConfig::default()
    };
    ServeCluster::from_arrays(
        c.ranks.as_deref(),
        c.communities.as_deref(),
        Some(&c.adjacency),
        c.embeddings.as_deref(),
        &cfg,
    )
    .expect("from_arrays")
}

/// Bit-exact equality between a served value and an interpreter output.
fn matches(value: &Value, want: &PlanOutput) -> bool {
    match (value, want) {
        (Value::Vertices(got), PlanOutput::Vertices(w)) => got == w,
        (Value::Ranked(got), PlanOutput::Ranked(w)) => {
            got.len() == w.len()
                && got
                    .iter()
                    .zip(w)
                    .all(|((gv, gs), (wv, ws))| gv == wv && gs.to_bits() == ws.to_bits())
        }
        _ => false,
    }
}

#[test]
fn distributed_plans_match_interpreter_bit_exactly() {
    check_with(
        "distributed_plans_match_interpreter_bit_exactly",
        &Config::with_cases(48),
        gen_case,
        |c| {
            let truth = build_truth(c);
            let interp = Interpreter::new(&truth, c.shards);
            for (policy, policy_name) in
                [(PushPolicy::Auto, "auto"), (PushPolicy::FrontendOnly, "frontend-only")]
            {
                let mut cluster = build_cluster(c, policy);
                for (i, plan) in c.plans.iter().enumerate() {
                    // Spaced arrivals: admission must never shed, so
                    // every plan reaches the executor.
                    let at = SimTime::from_millis(10 * (i as u64 + 1));
                    let want = interp.run(plan);
                    for (_, outcome) in
                        cluster.frontend_mut().execute_plan_now(i, at, plan)
                    {
                        match (&outcome, &want) {
                            (Outcome::Answered { value, .. }, Ok(w)) => {
                                if !matches(value, w) {
                                    return Err(format!(
                                        "[{policy_name}] plan {plan:?} served {value:?}, \
                                         interpreter says {w:?}"
                                    ));
                                }
                            }
                            (Outcome::Failed(_), Err(_)) => {}
                            (Outcome::Answered { value, .. }, Err(e)) => {
                                return Err(format!(
                                    "[{policy_name}] plan {plan:?} served {value:?} but \
                                     the interpreter rejects it: {e}"
                                ));
                            }
                            (Outcome::Failed(e), Ok(w)) => {
                                return Err(format!(
                                    "[{policy_name}] plan {plan:?} failed ({e}) but the \
                                     interpreter answers {w:?}"
                                ));
                            }
                            (Outcome::Shed { .. }, _) => {
                                return Err(format!(
                                    "[{policy_name}] plan {plan:?} was shed despite \
                                     spaced arrivals"
                                ));
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}
