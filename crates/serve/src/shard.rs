//! Read shards: immutable slices of a PS snapshot, and the replicas that
//! serve them.
//!
//! Vertex-keyed objects (ranks, communities, adjacency) are
//! range-partitioned by vertex across shards. Embedding matrices are
//! partitioned by *column* — every shard holds all rows of its column
//! slice, mirroring the psFunc layout that lets a shard compute partial
//! dot products server-side so only scalars cross the network (paper
//! §IV-D). A replica is one serving copy of a shard: an RPC port, an
//! aliveness flag, and a bounded queue of in-flight completions that the
//! router and the admission controller read as its load.

use psgraph_net::{Mailbox, NodeId, ServicePort};
use psgraph_sim::sync::RwLock;
use psgraph_sim::SimTime;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{Result, ServeError};

// Partition arithmetic lives in the query crate (the planner and the
// interpreter need the same tiling); re-exported here so existing
// `crate::shard::owner_of` call sites keep working.
pub use psgraph_query::part::{col_range, owner_of, vertex_range};

/// Placement of one shard within the serving tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    pub num_shards: usize,
    pub shard: usize,
    pub vertex_lo: u64,
    pub vertex_hi: u64,
    pub col_lo: usize,
    pub col_hi: usize,
}

impl ShardSpec {
    pub fn owns_vertex(&self, v: u64) -> bool {
        (self.vertex_lo..self.vertex_hi).contains(&v)
    }

    pub fn col_width(&self) -> usize {
        self.col_hi - self.col_lo
    }
}

/// CSR adjacency for this shard's local vertex range.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjacency {
    /// `vertex_hi - vertex_lo + 1` offsets into `targets`.
    pub offsets: Vec<u64>,
    pub targets: Vec<u64>,
}

/// All rows × this shard's column slice of an embedding matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedSlice {
    pub rows: u64,
    pub width: usize,
    /// Row-major `rows × width`.
    pub data: Vec<f32>,
}

impl EmbedSlice {
    pub fn row(&self, r: u64) -> &[f32] {
        &self.data[r as usize * self.width..(r as usize + 1) * self.width]
    }
}

/// The immutable data one shard serves. Any field may be absent when the
/// snapshot did not include that object.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardData {
    pub spec: ShardSpec,
    /// Ranks for `[vertex_lo, vertex_hi)`.
    pub ranks: Option<Vec<f64>>,
    /// Community / label ids for `[vertex_lo, vertex_hi)`.
    pub communities: Option<Vec<u64>>,
    /// Out-adjacency for `[vertex_lo, vertex_hi)`.
    pub adjacency: Option<Adjacency>,
    /// Column slice `[col_lo, col_hi)` of every embedding row.
    pub embed: Option<EmbedSlice>,
    /// *Full* embedding rows for `[vertex_lo, vertex_hi)` — the row-major
    /// dual of `embed`, sized `(vertex_hi - vertex_lo) × total_cols`. Lets
    /// the shard score its whole vertex range against a query row locally
    /// (cross-shard scatter-gather top-k) without touching other shards.
    pub embed_rows: Option<EmbedSlice>,
}

impl ShardData {
    /// A shard with no objects — useful for routing/load tests.
    pub fn empty(spec: ShardSpec) -> Self {
        ShardData {
            spec,
            ranks: None,
            communities: None,
            adjacency: None,
            embed: None,
            embed_rows: None,
        }
    }

    fn local(&self, v: u64) -> Result<usize> {
        if self.spec.owns_vertex(v) {
            Ok((v - self.spec.vertex_lo) as usize)
        } else {
            Err(ServeError::BadQuery(format!(
                "vertex {v} not owned by shard {}",
                self.spec.shard
            )))
        }
    }

    pub fn rank(&self, v: u64) -> Result<f64> {
        let i = self.local(v)?;
        let ranks = self
            .ranks
            .as_ref()
            .ok_or_else(|| ServeError::BadQuery("shard serves no ranks".into()))?;
        Ok(ranks[i])
    }

    pub fn community(&self, v: u64) -> Result<u64> {
        let i = self.local(v)?;
        let coms = self
            .communities
            .as_ref()
            .ok_or_else(|| ServeError::BadQuery("shard serves no communities".into()))?;
        Ok(coms[i])
    }

    pub fn neighbors(&self, v: u64) -> Result<&[u64]> {
        let i = self.local(v)?;
        let adj = self
            .adjacency
            .as_ref()
            .ok_or_else(|| ServeError::BadQuery("shard serves no adjacency".into()))?;
        Ok(&adj.targets[adj.offsets[i] as usize..adj.offsets[i + 1] as usize])
    }

    /// This shard's column slice of row `v` (any vertex, not just local —
    /// embeddings are column-partitioned).
    pub fn embed_cols(&self, v: u64) -> Result<&[f32]> {
        let embed = self
            .embed
            .as_ref()
            .ok_or_else(|| ServeError::BadQuery("shard serves no embeddings".into()))?;
        if v >= embed.rows {
            return Err(ServeError::BadQuery(format!("embedding row {v} out of range")));
        }
        Ok(embed.row(v))
    }

    /// Partial dot products `⟨v, c⟩` over this shard's columns for each
    /// candidate — the serving analogue of the psFunc `dot_pairs`.
    pub fn partial_dots(&self, v: u64, candidates: &[u64]) -> Result<Vec<f64>> {
        let row_v = self.embed_cols(v)?.to_vec();
        candidates
            .iter()
            .map(|&c| {
                let row_c = self.embed_cols(c)?;
                Ok(row_v.iter().zip(row_c).map(|(a, b)| *a as f64 * *b as f64).sum())
            })
            .collect()
    }

    /// Score every vertex in this shard's range against the full query row
    /// `q` and return the local top `k` as `(vertex, score)`, descending by
    /// score with vertex id breaking ties. `exclude` (the query vertex) is
    /// never a candidate. Used by the scatter phase of cross-shard top-k:
    /// because score order is total, merging per-shard top-k lists yields
    /// the exact global top-k.
    pub fn local_topk(&self, q: &[f32], k: usize, exclude: u64) -> Result<Vec<(u64, f64)>> {
        let rows = self
            .embed_rows
            .as_ref()
            .ok_or_else(|| ServeError::BadQuery("shard serves no embedding rows".into()))?;
        if q.len() != rows.width {
            return Err(ServeError::BadQuery(format!(
                "query row has {} dims, shard stores {}",
                q.len(),
                rows.width
            )));
        }
        let mut scored: Vec<(u64, f64)> = Vec::with_capacity(rows.rows as usize);
        for r in 0..rows.rows {
            let v = self.spec.vertex_lo + r;
            if v == exclude {
                continue;
            }
            let row = rows.row(r);
            let score: f64 = q.iter().zip(row).map(|(a, b)| *a as f64 * *b as f64).sum();
            scored.push((v, score));
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// Statistics the cost-based planner reads to choose pushdown cuts.
    pub fn stats(&self) -> psgraph_query::ShardStats {
        let rows = self.spec.vertex_hi - self.spec.vertex_lo;
        let (rank_lo, rank_hi) = match &self.ranks {
            Some(r) if !r.is_empty() => {
                r.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                })
            }
            _ => (0.0, 0.0),
        };
        let distinct_communities = match &self.communities {
            Some(c) => {
                let mut labels = c.clone();
                labels.sort_unstable();
                labels.dedup();
                labels.len() as u64
            }
            None => 0,
        };
        psgraph_query::ShardStats {
            rows,
            edges: self.adjacency.as_ref().map_or(0, |a| a.targets.len() as u64),
            has_ranks: self.ranks.is_some(),
            rank_lo,
            rank_hi,
            has_communities: self.communities.is_some(),
            distinct_communities,
            has_embed: self.embed_rows.is_some(),
            dim: self.embed_rows.as_ref().map_or(0, |e| e.width),
        }
    }
}

/// The pushed-stage kernel reads shards through this view: `None` for
/// absent objects or vertices outside the shard's range, exactly as the
/// interpreter's truth arrays answer out-of-range ids — so shard-side
/// evaluation errors match the single-node oracle error for error.
impl psgraph_query::VertexView for ShardData {
    fn rank(&self, v: u64) -> Option<f64> {
        let r = self.ranks.as_ref()?;
        self.spec.owns_vertex(v).then(|| r[(v - self.spec.vertex_lo) as usize])
    }

    fn community(&self, v: u64) -> Option<u64> {
        let c = self.communities.as_ref()?;
        self.spec.owns_vertex(v).then(|| c[(v - self.spec.vertex_lo) as usize])
    }

    fn degree(&self, v: u64) -> Option<usize> {
        let adj = self.adjacency.as_ref()?;
        if !self.spec.owns_vertex(v) {
            return None;
        }
        let i = (v - self.spec.vertex_lo) as usize;
        Some((adj.offsets[i + 1] - adj.offsets[i]) as usize)
    }

    fn embed_row(&self, v: u64) -> Option<&[f32]> {
        let rows = self.embed_rows.as_ref()?;
        self.spec.owns_vertex(v).then(|| rows.row(v - self.spec.vertex_lo))
    }
}

/// A query against the served snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// PageRank score of a vertex.
    Rank(u64),
    /// Community / label id of a vertex.
    Community(u64),
    /// Full embedding row of a vertex (gathered across column shards).
    Embedding(u64),
    /// Out-neighbors of a vertex.
    Neighbors(u64),
    /// All vertices within `hops` hops (excluding the start).
    KHop { v: u64, hops: u32 },
    /// Top-`k` vertices by embedding dot product with `v`, drawn from
    /// `v`'s 2-hop neighborhood.
    TopK { v: u64, k: usize },
    /// Top-`k` vertices by embedding dot product with `v` over *all*
    /// vertices: each shard scores its own vertex range (scatter) and the
    /// frontend merges the per-shard partial top-k lists (gather).
    TopKAll { v: u64, k: usize },
}

impl Query {
    /// The vertex the query is keyed on.
    pub fn vertex(&self) -> u64 {
        match *self {
            Query::Rank(v)
            | Query::Community(v)
            | Query::Embedding(v)
            | Query::Neighbors(v)
            | Query::KHop { v, .. }
            | Query::TopK { v, .. }
            | Query::TopKAll { v, .. } => v,
        }
    }
}

/// A query answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Rank(f64),
    Community(u64),
    Embedding(Vec<f32>),
    Neighbors(Vec<u64>),
    /// Sorted vertex set (k-hop result).
    Vertices(Vec<u64>),
    /// `(vertex, score)` descending by score (top-k result).
    Ranked(Vec<(u64, f64)>),
}

impl Value {
    /// Approximate footprint for cache accounting.
    pub fn approx_bytes(&self) -> u64 {
        let payload = match self {
            Value::Rank(_) | Value::Community(_) => 8,
            Value::Embedding(v) => v.len() * 4,
            Value::Neighbors(v) | Value::Vertices(v) => v.len() * 8,
            Value::Ranked(v) => v.len() * 16,
        };
        payload as u64 + 24
    }
}

/// One serving copy of a shard.
#[derive(Debug)]
pub struct Replica {
    shard: usize,
    index: usize,
    global_id: usize,
    /// The snapshot slice being served. Swapped atomically by
    /// [`Replica::install`] during a delta hot-swap; queries clone the
    /// `Arc` so an in-flight read keeps its version to completion.
    data: RwLock<Arc<ShardData>>,
    port: ServicePort,
    alive: AtomicBool,
    /// Completion times of in-flight queries; bounded, so its occupancy is
    /// the replica's queue depth.
    pending: Mailbox<SimTime>,
}

impl Replica {
    pub fn new(
        shard: usize,
        index: usize,
        global_id: usize,
        data: Arc<ShardData>,
        queue_depth: usize,
    ) -> Arc<Self> {
        Arc::new(Replica {
            shard,
            index,
            global_id,
            data: RwLock::new(data),
            port: ServicePort::new(NodeId::Replica(global_id)),
            alive: AtomicBool::new(true),
            pending: Mailbox::bounded(queue_depth.max(1)),
        })
    }

    pub fn shard(&self) -> usize {
        self.shard
    }

    pub fn index(&self) -> usize {
        self.index
    }

    pub fn global_id(&self) -> usize {
        self.global_id
    }

    pub fn data(&self) -> Arc<ShardData> {
        self.data.read().clone()
    }

    /// Atomically replace the served slice (delta hot-swap). Dead replicas
    /// accept installs too — they must rejoin with current data.
    pub fn install(&self, data: Arc<ShardData>) {
        *self.data.write() = data;
    }

    pub fn port(&self) -> &ServicePort {
        &self.port
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Take the replica out of service. Returns whether it was alive.
    pub fn kill(&self) -> bool {
        self.alive.swap(false, Ordering::AcqRel)
    }

    /// Bring the replica back into service with an empty queue (a restarted
    /// process holds no in-flight work). Returns whether it was dead.
    pub fn revive(&self) -> bool {
        let _ = self.pending.drain();
        !self.alive.swap(true, Ordering::AcqRel)
    }

    /// In-flight queries still unfinished at `now`: drops completions that
    /// are in the past and reports how many remain.
    pub fn load_at(&self, now: SimTime) -> usize {
        let mut remaining = 0;
        for m in self.pending.drain() {
            if m.payload > now && self.pending.try_post(m.from, m.sent_at, m.payload) {
                remaining += 1;
            }
        }
        remaining
    }

    /// Record a query that will complete at `done`. Returns `false` when
    /// the queue is saturated (the entry is dropped — load is then
    /// undercounted, which only makes admission control conservative
    /// later, never wrong).
    pub fn record_completion(&self, arrival: SimTime, done: SimTime) -> bool {
        self.pending.try_post(NodeId::Replica(self.global_id), arrival, done)
    }

    /// Admission counters of the completion queue. `dropped` counts
    /// saturated [`Replica::record_completion`] calls — silent
    /// load-undercounting made observable ([`crate::LoadReport`] and the
    /// serve benches surface the per-run deltas).
    pub fn queue_counters(&self) -> psgraph_net::MailboxCounters {
        self.pending.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn spec2(shard: usize) -> ShardSpec {
        ShardSpec {
            num_shards: 2,
            shard,
            vertex_lo: if shard == 0 { 0 } else { 5 },
            vertex_hi: if shard == 0 { 5 } else { 10 },
            col_lo: shard * 2,
            col_hi: shard * 2 + 2,
        }
    }

    fn data0() -> ShardData {
        ShardData {
            spec: spec2(0),
            ranks: Some(vec![0.5, 0.4, 0.3, 0.2, 0.1]),
            communities: Some(vec![7, 7, 8, 8, 9]),
            adjacency: Some(Adjacency {
                offsets: vec![0, 2, 2, 3, 3, 3],
                targets: vec![1, 9, 4],
            }),
            embed: Some(EmbedSlice {
                rows: 10,
                width: 2,
                data: (0..20).map(|i| i as f32).collect(),
            }),
            // Full 4-dim rows for the 5 local vertices: row v = [v, v, v, v].
            embed_rows: Some(EmbedSlice {
                rows: 5,
                width: 4,
                data: (0..5).flat_map(|v| [v as f32; 4]).collect(),
            }),
        }
    }

    #[test]
    fn shard_math_partitions_exactly() {
        let n = 10u64;
        for v in 0..n {
            let s = owner_of(v, n, 3);
            let (lo, hi) = vertex_range(s, n, 3);
            assert!((lo..hi).contains(&v), "v={v} s={s} range=({lo},{hi})");
        }
        // Ranges tile [0, n).
        let mut covered = 0;
        for s in 0..3 {
            let (lo, hi) = vertex_range(s, n, 3);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, n);
        // Columns tile too, even when shards > cols.
        let mut c = 0;
        for s in 0..5 {
            let (lo, hi) = col_range(s, 3, 5);
            assert_eq!(lo, c);
            c = hi;
        }
        assert_eq!(c, 3);
    }

    #[test]
    fn point_lookups_hit_local_data() {
        let d = data0();
        assert_eq!(d.rank(2).unwrap(), 0.3);
        assert_eq!(d.community(4).unwrap(), 9);
        assert_eq!(d.neighbors(0).unwrap(), &[1, 9]);
        assert_eq!(d.neighbors(1).unwrap(), &[] as &[u64]);
        assert!(d.rank(7).is_err(), "not owned");
        // Embeddings answer for any row (column partitioned).
        assert_eq!(d.embed_cols(9).unwrap(), &[18.0, 19.0]);
        let dots = d.partial_dots(0, &[1, 9]).unwrap();
        assert_eq!(dots, vec![0.0 * 2.0 + 1.0 * 3.0, 0.0 * 18.0 + 1.0 * 19.0]);
    }

    #[test]
    fn local_topk_scores_own_range_and_excludes_query_vertex() {
        let d = data0();
        // q = [1,1,1,1] → score(v) = 4v; exclude vertex 3.
        let top = d.local_topk(&[1.0; 4], 3, 3).unwrap();
        assert_eq!(top, vec![(4, 16.0), (2, 8.0), (1, 4.0)]);
        // k larger than the range returns everything local (minus exclude).
        assert_eq!(d.local_topk(&[1.0; 4], 100, 3).unwrap().len(), 4);
        // Ties break by ascending vertex id.
        let tied = d.local_topk(&[0.0; 4], 2, 99).unwrap();
        assert_eq!(tied, vec![(0, 0.0), (1, 0.0)]);
        // Dim mismatch and missing rows are rejected.
        assert!(d.local_topk(&[1.0; 3], 2, 0).is_err());
        assert!(ShardData::empty(spec2(0)).local_topk(&[1.0; 4], 2, 0).is_err());
    }

    #[test]
    fn replica_load_tracks_unfinished_completions() {
        let r = Replica::new(0, 0, 0, Arc::new(ShardData::empty(spec2(0))), 4);
        assert!(r.is_alive());
        assert!(r.record_completion(SimTime::ZERO, SimTime::from_secs(2)));
        assert!(r.record_completion(SimTime::ZERO, SimTime::from_secs(4)));
        assert_eq!(r.load_at(SimTime::from_secs(1)), 2);
        assert_eq!(r.load_at(SimTime::from_secs(3)), 1);
        assert_eq!(r.load_at(SimTime::from_secs(5)), 0);
        assert!(r.kill());
        assert!(!r.kill(), "second kill reports already dead");
        assert!(!r.is_alive());
    }

    #[test]
    fn install_swaps_data_and_revive_clears_queue() {
        let r = Replica::new(0, 0, 0, Arc::new(data0()), 4);
        // An in-flight query holds the old version across a swap.
        let held = r.data();
        let mut swapped = data0();
        swapped.ranks = Some(vec![9.0, 9.0, 9.0, 9.0, 9.0]);
        r.install(Arc::new(swapped));
        assert_eq!(held.rank(0).unwrap(), 0.5);
        assert_eq!(r.data().rank(0).unwrap(), 9.0);

        assert!(r.record_completion(SimTime::ZERO, SimTime::from_secs(100)));
        assert!(r.kill());
        assert!(r.revive(), "revive reports it was dead");
        assert!(!r.revive(), "second revive is a no-op");
        assert!(r.is_alive());
        assert_eq!(r.load_at(SimTime::ZERO), 0, "restart clears in-flight work");
    }
}
