//! Zipf-skewed load generation and the report the benchmarks consume.
//!
//! Two driving modes:
//!
//! * **Open loop** — arrivals are a Poisson process at a target QPS,
//!   independent of completions. This is the honest way to measure tail
//!   latency (no coordinated omission) and is what `repro -- serve` and
//!   the `serve_qps` bench use.
//! * **Closed loop** — `workers` clients each issue, wait for the answer,
//!   think, repeat. Throughput self-limits; batching is bypassed because
//!   a worker needs its answer before its next send.
//!
//! Vertices are drawn Zipf(s) and then scrambled by a coprime multiplier
//! so the hot head of the distribution spreads across range-partitioned
//! shards instead of all landing on shard 0.

use psgraph_sim::failpoint::{FailAction, FailureInjector, NodeKind};
use psgraph_sim::{SimTime, SplitMix64};
use std::collections::BinaryHeap;

use crate::cluster::ServeCluster;
use crate::frontend::{Outcome, PlanCounters};
use crate::monitor::Monitor;
use crate::shard::{Query, Value};
use psgraph_query::Plan;

/// Relative weights of each query kind in the generated stream.
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    pub rank: u32,
    pub community: u32,
    pub embedding: u32,
    pub neighbors: u32,
    pub khop: u32,
    pub topk: u32,
    /// Cross-shard scatter-gather top-k over *all* vertices (not just the
    /// candidate neighborhood). Zero in the stock mixes; streaming
    /// workloads opt in.
    pub topk_all: u32,
    /// Compound declarative plans drawn from
    /// [`Workload::plan_palette`], re-anchored on the Zipf-drawn
    /// vertex. Zero in the stock mixes; the query bench opts in.
    pub compound: u32,
}

impl Default for QueryMix {
    fn default() -> Self {
        QueryMix {
            rank: 30,
            community: 20,
            embedding: 25,
            neighbors: 15,
            khop: 5,
            topk: 5,
            topk_all: 0,
            compound: 0,
        }
    }
}

impl QueryMix {
    /// Point lookups only (rank / community / neighbors / embedding).
    pub fn point_only() -> Self {
        QueryMix { khop: 0, topk: 0, rank: 35, neighbors: 20, ..QueryMix::default() }
    }

    fn total(&self) -> u64 {
        (self.rank
            + self.community
            + self.embedding
            + self.neighbors
            + self.khop
            + self.topk
            + self.topk_all
            + self.compound) as u64
    }
}

/// How arrivals are produced.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// Poisson arrivals at `qps` queries per simulated second.
    Open { qps: f64 },
    /// `workers` clients, each waiting `think` between answer and next
    /// query.
    Closed { workers: usize, think: SimTime },
}

/// A load-generation recipe.
#[derive(Debug, Clone)]
pub struct Workload {
    pub queries: usize,
    pub zipf_s: f64,
    pub seed: u64,
    pub mix: QueryMix,
    pub mode: Mode,
    /// Hop count for generated `KHop` queries.
    pub khop_hops: u32,
    /// `k` for generated `TopK` queries.
    pub topk_k: usize,
    /// Plan shapes `compound` draws cycle through, each re-anchored on
    /// the Zipf-drawn vertex via [`Plan::with_anchor`]. Must be
    /// non-empty when `mix.compound > 0`.
    pub plan_palette: Vec<Plan>,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            queries: 10_000,
            zipf_s: 1.0,
            seed: 7,
            mix: QueryMix::default(),
            mode: Mode::Open { qps: 20_000.0 },
            khop_hops: 2,
            topk_k: 8,
            plan_palette: Vec::new(),
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A multiplier coprime with `n`, used to permute Zipf ranks across the
/// vertex id space.
fn coprime_multiplier(n: u64) -> u64 {
    if n <= 2 {
        return 1;
    }
    let mut p = n / 2 + 1;
    while gcd(p, n) != 1 {
        p += 1;
    }
    p
}

/// One generated request: a legacy query shape or a compound plan.
enum Draw {
    Q(Query),
    P(Plan),
}

/// Draw one request: Zipf-ranked vertex, scrambled, kind by mix weight.
/// The `compound` weight sits last in the walk and draws from the rng
/// only when selected, so mixes with `compound: 0` consume the exact
/// rng stream earlier releases did.
fn next_query(rng: &mut SplitMix64, n: u64, scramble: u64, wl: &Workload) -> Draw {
    let rank = rng.next_zipf(n, wl.zipf_s) - 1; // 0-based popularity rank
    let v = ((rank as u128 * scramble as u128) % n as u128) as u64;
    let mut w = rng.next_below(wl.mix.total());
    let mix = &wl.mix;
    for (weight, make) in [
        (mix.rank, Query::Rank(v)),
        (mix.community, Query::Community(v)),
        (mix.embedding, Query::Embedding(v)),
        (mix.neighbors, Query::Neighbors(v)),
        (mix.khop, Query::KHop { v, hops: wl.khop_hops }),
        (mix.topk, Query::TopK { v, k: wl.topk_k }),
        (mix.topk_all, Query::TopKAll { v, k: wl.topk_k }),
    ] {
        if w < weight as u64 {
            return Draw::Q(make);
        }
        w -= weight as u64;
    }
    if w < mix.compound as u64 {
        assert!(!wl.plan_palette.is_empty(), "compound mix weight needs a plan palette");
        let shape = rng.next_below(wl.plan_palette.len() as u64) as usize;
        return Draw::P(wl.plan_palette[shape].clone().with_anchor(v));
    }
    Draw::Q(Query::Rank(v))
}

/// What the run produced, with enough detail to split percentiles around
/// a replica kill and to verify every answer.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub issued: usize,
    pub answered: usize,
    pub shed: usize,
    pub failed: usize,
    /// Cache hits *during this run* (the frontend's counters are
    /// cumulative across runs; these are per-run deltas).
    pub cache_hits: u64,
    /// Cache misses during this run.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)` for this run alone.
    pub hit_rate: f64,
    /// Replica completion-queue entries dropped at saturation during this
    /// run (summed over replicas; per-run delta like the cache counters).
    pub mailbox_dropped: u64,
    /// Sender-side retries recorded against replica queues this run.
    pub mailbox_retried: u64,
    /// First arrival to last completion.
    pub makespan: SimTime,
    /// Arrival time of each issued query, indexed by query index — lets
    /// callers split percentiles around a simulated-time event (a kill,
    /// a rejoin, a hot-swap).
    pub issued_at: Vec<SimTime>,
    /// `(query index, latency)` for every answered query.
    pub latencies: Vec<(usize, SimTime)>,
    /// `(query index, query, value)` when recording was requested.
    /// Compound-plan answers land in `plans`, never here, so baseline
    /// comparisons over legacy query values stay stable as mixes grow.
    pub values: Vec<(usize, Query, Value)>,
    /// `(query index, plan, value)` for answered compound plans when
    /// recording was requested.
    pub plans: Vec<(usize, Plan, Value)>,
    /// Plan-executor counters for this run alone (stages pushed, bytes
    /// moved shard→frontend, rows pruned per stage kind) — per-run
    /// deltas of the frontend's cumulative counters.
    pub plan_counters: PlanCounters,
}

impl LoadReport {
    /// Served throughput in simulated queries/second.
    pub fn qps(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            0.0
        } else {
            self.answered as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Latency percentile (0 < p <= 1) over answered queries matching
    /// `keep` by query index.
    pub fn percentile_where(&self, p: f64, keep: impl Fn(usize) -> bool) -> SimTime {
        let mut v: Vec<u64> = self
            .latencies
            .iter()
            .filter(|(i, _)| keep(*i))
            .map(|(_, l)| l.as_nanos())
            .collect();
        if v.is_empty() {
            return SimTime::ZERO;
        }
        v.sort_unstable();
        let rank = ((v.len() as f64) * p).ceil() as usize;
        SimTime::from_nanos(v[rank.clamp(1, v.len()) - 1])
    }

    pub fn percentile(&self, p: f64) -> SimTime {
        self.percentile_where(p, |_| true)
    }

    pub fn max_latency(&self) -> SimTime {
        self.latencies
            .iter()
            .map(|(_, l)| *l)
            .fold(SimTime::ZERO, SimTime::max)
    }
}

/// A callback fired at a scripted query index — the hook `repro -- serve`
/// uses to hot-swap a snapshot delta mid-run. Pending batches are drained
/// before the action runs, so every earlier query completes against the
/// pre-action state and every later one against the post-action state.
pub struct ScriptedAction<'a> {
    /// Fires just before this query index is issued.
    pub at_query: usize,
    pub action: Box<dyn FnMut(&mut ServeCluster) + 'a>,
    /// Simulated arrival time of the query the action fired before —
    /// recorded by [`run_with`], so freshness bounds can be checked
    /// against the actual swap instant.
    pub fired_at: Option<SimTime>,
}

impl<'a> ScriptedAction<'a> {
    pub fn new(at_query: usize, action: impl FnMut(&mut ServeCluster) + 'a) -> Self {
        ScriptedAction { at_query, action: Box::new(action), fired_at: None }
    }
}

/// Drive `wl` against the cluster. Between queries the injector is
/// consulted with the *query index* as the superstep, so a scripted
/// [`psgraph_sim::FailPlan::kill_replica`] fires mid-run. Answers are
/// recorded when `record_values` is set (for verification).
pub fn run(
    cluster: &mut ServeCluster,
    wl: &Workload,
    injector: &FailureInjector,
    record_values: bool,
) -> LoadReport {
    run_with(cluster, wl, injector, record_values, None, &mut [])
}

/// [`run`], plus self-healing and scripted mutations: a [`Monitor`] is
/// ticked at every arrival (heartbeats, detection, and rejoin happen on
/// the workload's simulated timeline), scripted
/// [`psgraph_sim::FailPlan::restart_replica`] plans revive replicas
/// directly, and each [`ScriptedAction`] fires once at its query index.
pub fn run_with(
    cluster: &mut ServeCluster,
    wl: &Workload,
    injector: &FailureInjector,
    record_values: bool,
    monitor: Option<&Monitor>,
    actions: &mut [ScriptedAction<'_>],
) -> LoadReport {
    let n = cluster.num_vertices();
    assert!(n > 0, "cannot load an empty graph");
    let scramble = coprime_multiplier(n);
    let mut rng = SplitMix64::new(wl.seed);
    let hits0 = cluster.frontend().cache().hits();
    let misses0 = cluster.frontend().cache().misses();
    let queue_sum = |cluster: &ServeCluster| {
        cluster.replicas().iter().fold((0u64, 0u64), |(d, r), rep| {
            let c = rep.queue_counters();
            (d + c.dropped, r + c.retried)
        })
    };
    let (dropped0, retried0) = queue_sum(cluster);
    let counters0 = cluster.frontend().plan_counters();
    let mut queries: Vec<Query> = Vec::with_capacity(wl.queries);
    // Parallel to `queries`: `Some(plan)` when index `i` was a compound
    // draw (its `queries` slot holds a placeholder for indexing).
    let mut plans_issued: Vec<Option<Plan>> = Vec::with_capacity(wl.queries);
    let mut issued_at: Vec<SimTime> = Vec::with_capacity(wl.queries);
    let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(wl.queries);
    let mut t_last = SimTime::ZERO;

    // Everything that happens between queries, in order: scripted
    // kills/restarts, monitor heartbeats and rejoins, then scripted
    // actions (draining first so batches complete pre-action).
    fn prologue(
        cluster: &mut ServeCluster,
        injector: &FailureInjector,
        monitor: Option<&Monitor>,
        actions: &mut [ScriptedAction<'_>],
        i: usize,
        now: SimTime,
        outcomes: &mut Vec<(usize, Outcome)>,
    ) {
        for plan in injector.take_due(NodeKind::Replica, i as u64) {
            match plan.action {
                FailAction::Kill => {
                    cluster.kill_replica(plan.node_id);
                }
                FailAction::Restart => {
                    cluster.revive_replica(plan.node_id);
                }
            }
        }
        if let Some(m) = monitor {
            m.tick(cluster, now);
        }
        for a in actions.iter_mut() {
            if a.at_query == i {
                outcomes.extend(cluster.frontend_mut().drain());
                (a.action)(cluster);
                a.fired_at = Some(now);
            }
        }
    }

    match wl.mode {
        Mode::Open { qps } => {
            assert!(qps > 0.0, "open-loop workload needs a positive rate");
            let mut t = SimTime::ZERO;
            for i in 0..wl.queries {
                prologue(cluster, injector, monitor, actions, i, t, &mut outcomes);
                issued_at.push(t);
                match next_query(&mut rng, n, scramble, wl) {
                    Draw::Q(q) => {
                        queries.push(q);
                        plans_issued.push(None);
                        outcomes.extend(cluster.frontend_mut().submit(i, t, q));
                    }
                    Draw::P(plan) => {
                        queries.push(Query::Rank(plan.anchor().unwrap_or(0)));
                        outcomes.extend(cluster.frontend_mut().submit_plan(i, t, &plan));
                        plans_issued.push(Some(plan));
                    }
                }
                t += SimTime::from_secs_f64(rng.next_exp(qps));
            }
            outcomes.extend(cluster.frontend_mut().drain());
            t_last = t;
        }
        Mode::Closed { workers, think } => {
            assert!(workers > 0, "closed-loop workload needs workers");
            // Min-heap of (next issue time, worker id).
            let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
                (0..workers).map(|w| std::cmp::Reverse((0, w))).collect();
            for i in 0..wl.queries {
                let std::cmp::Reverse((at_ns, w)) = heap.pop().expect("worker heap");
                let at = SimTime::from_nanos(at_ns);
                prologue(cluster, injector, monitor, actions, i, at, &mut outcomes);
                issued_at.push(at);
                let outs = match next_query(&mut rng, n, scramble, wl) {
                    Draw::Q(q) => {
                        queries.push(q);
                        plans_issued.push(None);
                        cluster.frontend_mut().execute_now(i, at, q)
                    }
                    Draw::P(plan) => {
                        queries.push(Query::Rank(plan.anchor().unwrap_or(0)));
                        let outs = cluster.frontend_mut().execute_plan_now(i, at, &plan);
                        plans_issued.push(Some(plan));
                        outs
                    }
                };
                let mut next = at + think;
                for (idx, o) in &outs {
                    if *idx == i {
                        if let Outcome::Answered { completed, .. } = o {
                            next = *completed + think;
                        }
                    }
                }
                outcomes.extend(outs);
                t_last = t_last.max(at);
                heap.push(std::cmp::Reverse((next.as_nanos(), w)));
            }
            outcomes.extend(cluster.frontend_mut().drain());
        }
    }
    // Let restarts still in flight at the last arrival complete, so a
    // late kill's recovery is observable in the monitor's event log. The
    // drain horizon covers the grace window (two silent rounds), the
    // round quantization, and the restart itself.
    if let Some(m) = monitor {
        let cost = cluster.network().cost_model().clone();
        m.tick(cluster, t_last + cost.failure_detect.scale(3.0) + cost.restart_overhead());
    }

    let mut answered = 0;
    let mut shed = 0;
    let mut failed = 0;
    let mut makespan = SimTime::ZERO;
    let mut latencies = Vec::new();
    let mut values = Vec::new();
    let mut plans = Vec::new();
    for (idx, o) in outcomes {
        match o {
            Outcome::Answered { value, latency, completed, .. } => {
                answered += 1;
                makespan = makespan.max(completed);
                latencies.push((idx, latency));
                if record_values {
                    match &plans_issued[idx] {
                        Some(plan) => plans.push((idx, plan.clone(), value)),
                        None => values.push((idx, queries[idx], value)),
                    }
                }
            }
            Outcome::Shed { .. } => shed += 1,
            Outcome::Failed(_) => failed += 1,
        }
    }
    latencies.sort_by_key(|(i, _)| *i);
    values.sort_by_key(|(i, _, _)| *i);
    plans.sort_by_key(|(i, _, _)| *i);

    let cache = cluster.frontend().cache();
    let cache_hits = cache.hits() - hits0;
    let cache_misses = cache.misses() - misses0;
    let lookups = cache_hits + cache_misses;
    let (dropped1, retried1) = queue_sum(cluster);
    LoadReport {
        issued: wl.queries,
        answered,
        shed,
        failed,
        cache_hits,
        cache_misses,
        hit_rate: if lookups == 0 { 0.0 } else { cache_hits as f64 / lookups as f64 },
        mailbox_dropped: dropped1 - dropped0,
        mailbox_retried: retried1 - retried0,
        makespan,
        issued_at,
        latencies,
        values,
        plans,
        plan_counters: cluster.frontend().plan_counters().minus(&counters0),
    }
}

/// The worst staleness any answered query could have observed: for each
/// answered query, the gap between its arrival and the most recent
/// refresh (hot-swap) that completed before it. `refreshes` must be
/// ascending; queries arriving before the first refresh measure their
/// age from `SimTime::ZERO`, i.e. from the initial snapshot load.
pub fn max_state_age(report: &LoadReport, refreshes: &[SimTime]) -> SimTime {
    debug_assert!(refreshes.windows(2).all(|w| w[0] <= w[1]), "refreshes must be sorted");
    let mut worst = SimTime::ZERO;
    for (idx, _) in &report.latencies {
        let at = report.issued_at[*idx];
        let last = refreshes
            .iter()
            .rev()
            .find(|&&r| r <= at)
            .copied()
            .unwrap_or(SimTime::ZERO);
        worst = worst.max(at.saturating_sub(last));
    }
    worst
}

/// Panic unless every answered query saw state no older than `bound` —
/// the serving-tier freshness contract `repro -- stream` enforces.
pub fn assert_freshness(report: &LoadReport, refreshes: &[SimTime], bound: SimTime) {
    let worst = max_state_age(report, refreshes);
    assert!(
        worst <= bound,
        "freshness violated: a query observed state {worst:?} old, bound {bound:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ServeCluster, ServeConfig};

    fn report_with(issued_at: Vec<SimTime>) -> LoadReport {
        let latencies = (0..issued_at.len()).map(|i| (i, SimTime::ZERO)).collect();
        LoadReport {
            issued: issued_at.len(),
            answered: issued_at.len(),
            shed: 0,
            failed: 0,
            cache_hits: 0,
            cache_misses: 0,
            hit_rate: 0.0,
            mailbox_dropped: 0,
            mailbox_retried: 0,
            makespan: SimTime::ZERO,
            issued_at,
            latencies,
            values: Vec::new(),
            plans: Vec::new(),
            plan_counters: PlanCounters::default(),
        }
    }

    #[test]
    fn max_state_age_measures_gap_to_latest_refresh() {
        let ms = SimTime::from_millis;
        let report = report_with(vec![ms(1), ms(4), ms(9)]);
        // No refresh: everything aged from the initial load at t=0.
        assert_eq!(max_state_age(&report, &[]), ms(9));
        // A refresh at t=3ms resets the clock for later queries.
        assert_eq!(max_state_age(&report, &[ms(3)]), ms(6));
        // Frequent refreshes bound the age.
        assert_eq!(max_state_age(&report, &[ms(3), ms(8)]), ms(1));
        assert_freshness(&report, &[ms(3), ms(8)], ms(1));
    }

    #[test]
    #[should_panic(expected = "freshness violated")]
    fn assert_freshness_panics_on_stale_answers() {
        let report = report_with(vec![SimTime::from_millis(10)]);
        assert_freshness(&report, &[], SimTime::from_millis(5));
    }

    #[test]
    fn scripted_actions_record_fire_time_and_topk_all_mix_draws() {
        let (mut cluster, _) = ServeCluster::demo(24, 4, &ServeConfig::default()).unwrap();
        let wl = Workload {
            queries: 200,
            mix: QueryMix { topk_all: 50, ..QueryMix::default() },
            ..Workload::default()
        };
        let injector = FailureInjector::none();
        let fired = std::cell::Cell::new(false);
        let mut actions = [ScriptedAction::new(100, |_c: &mut ServeCluster| {
            fired.set(true);
        })];
        let report = run_with(&mut cluster, &wl, &injector, true, None, &mut actions);
        assert!(actions[0].fired_at.is_some(), "action records when it fired");
        assert_eq!(actions[0].fired_at.unwrap(), report.issued_at[100]);
        assert!(fired.get());
        assert_eq!(report.answered + report.shed + report.failed, report.issued);
        assert!(
            report
                .values
                .iter()
                .any(|(_, q, _)| matches!(q, Query::TopKAll { .. })),
            "mix weight routes TopKAll queries"
        );
    }
}
