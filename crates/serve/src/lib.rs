//! Online query serving over trained PS state.
//!
//! Training (PageRank, label propagation, LINE) leaves its results on the
//! parameter servers; this crate turns them into a low-latency read tier,
//! the way Tencent's production graph platform puts trained embeddings
//! and graph features behind an online service. The pipeline is:
//!
//! 1. **Snapshot** — `psgraph_ps::snapshot` exports PS vectors, matrices,
//!    and CSR adjacency to the DFS, bit-exactly.
//! 2. **Shard + replicate** — [`cluster::ServeCluster`] loads the
//!    snapshot into range-partitioned vertex shards (embeddings are
//!    column-partitioned, psFunc-style) with N read replicas each, every
//!    replica a `psgraph_net` service port charging real RPC costs.
//! 3. **Serve** — the [`frontend::Frontend`] answers point lookups,
//!    embedding gathers, and compound declarative plans
//!    (`psgraph_query::Plan`: filter → expand → score → top-k over
//!    vertex sets; the legacy k-hop/top-k query shapes compile to
//!    plans), with a cost-based planner pushing plan prefixes
//!    shard-side; a byte-budgeted hot-key LRU [`cache::LruCache`]
//!    absorbs the Zipf head, batching amortizes per-message latency,
//!    and admission control sheds load to defend a p99 SLO.
//! 4. **Measure** — [`loadgen`] replays open- or closed-loop Zipf
//!    traffic, optionally killing replicas mid-run via
//!    `psgraph_sim::failpoint`, and reports QPS and latency percentiles
//!    in simulated time.

pub mod cache;
pub mod cluster;
pub mod error;
pub mod frontend;
pub mod loadgen;
pub mod monitor;
pub mod router;
pub mod shard;

pub use cache::LruCache;
pub use cluster::{DemoBackend, DemoTruth, ObjectMap, ServeCluster, ServeConfig, SwapStats};
pub use error::ServeError;
pub use frontend::{reference, Frontend, Outcome, PlanCounters, SloPolicy};
// The query-plan surface, re-exported so serving callers need not
// depend on psgraph-query directly.
pub use psgraph_query::{
    ExpandMode, GraphTruth, Interpreter, Plan, PlanOutput, Pred, PushPolicy, Scorer, Source,
    Stage,
};
pub use loadgen::{
    assert_freshness, max_state_age, LoadReport, Mode, QueryMix, ScriptedAction, Workload,
};
pub use monitor::{Monitor, RecoveryEvent};
pub use router::Router;
pub use shard::{Query, Replica, ShardData, ShardSpec, Value};
