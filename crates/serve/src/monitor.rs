//! Serve-tier self-healing: heartbeat health checks and replica
//! auto-restart.
//!
//! The serving analogue of the `ps::master` health-check loop. A
//! [`Monitor`] pings every replica once per `failure_detect` period and
//! tracks *when each replica was last heard from* — the response-arrival
//! bookkeeping a real watchdog has, rather than an oracle view of
//! liveness. A replica is declared dead only when nothing has been heard
//! from it for a full **grace window** (two ping intervals), which costs
//! two RPC timeouts on top; then a container restart is scheduled
//! `container_restart` later, after which the replica
//! [rejoins](crate::cluster::ServeCluster::revive_replica) the router's
//! rotation.
//!
//! The grace window is what makes the monitor safe under fault
//! injection: a heartbeat response that is merely *delayed* (the
//! [`psgraph_sim::FaultSite::Heartbeat`] chaos site) does not trigger a
//! restart as long as it arrives within the grace window, and a response
//! delayed even longer cancels the pending spurious restart when it
//! lands ([`Monitor::restarts_cancelled`]). Only sustained silence — an
//! actually dead replica — survives to a completed restart.
//!
//! The monitor is driven from the load generator's simulated timeline:
//! [`Monitor::tick`] is called between queries and performs every
//! heartbeat round that became due, so detection latency is quantized to
//! the heartbeat period exactly as a real watchdog's would be.

use psgraph_sim::chaos::FaultSite;
use psgraph_sim::sync::Mutex;
use psgraph_sim::{CostModel, FxHashMap, NodeClock, SimTime};

use crate::cluster::ServeCluster;

/// One completed kill → detect → restart → rejoin cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Global id of the replica that died.
    pub replica: usize,
    /// When the heartbeat round declared it dead (grace window expired,
    /// plus the two RPC timeouts).
    pub detected_at: SimTime,
    /// When the restarted replica rejoined the rotation.
    pub rejoined_at: SimTime,
}

#[derive(Debug, Default)]
struct State {
    /// Next heartbeat round fires at this simulated time.
    next_check: SimTime,
    /// Heartbeat responses still in flight: `(replica id, arrival time)`.
    inflight: Vec<(usize, SimTime)>,
    /// Last response arrival per replica. Absence means never heard from
    /// (treated as last heard at `SimTime::ZERO`, when the monitor was
    /// installed alongside a presumed-healthy cluster).
    last_heard: FxHashMap<usize, SimTime>,
    /// Replicas declared dead, awaiting restart: `(id, detected_at,
    /// rejoin_at)`.
    pending: Vec<(usize, SimTime, SimTime)>,
    events: Vec<RecoveryEvent>,
    checks_run: u64,
    restarts: u64,
    restarts_cancelled: u64,
}

impl State {
    /// Absorb every response that has arrived by `now`: advance
    /// `last_heard` and cancel pending restarts for replicas that turned
    /// out to be alive (their delayed heartbeat outran the restart).
    fn absorb_arrivals(&mut self, now: SimTime) {
        let mut arrived = Vec::new();
        self.inflight.retain(|&(id, at)| {
            if at <= now {
                arrived.push((id, at));
                false
            } else {
                true
            }
        });
        for (id, at) in arrived {
            let heard = self.last_heard.entry(id).or_insert(SimTime::ZERO);
            *heard = (*heard).max(at);
            if let Some(i) = self.pending.iter().position(|&(pid, _, _)| pid == id) {
                self.pending.remove(i);
                self.restarts_cancelled += 1;
            }
        }
    }
}

/// Heartbeat monitor over a [`ServeCluster`]'s replicas.
#[derive(Debug)]
pub struct Monitor {
    cost: CostModel,
    /// Silence longer than this declares a replica dead — two ping
    /// intervals, so one delayed (or lost) heartbeat is never enough.
    grace: SimTime,
    /// The monitor's own clock — heartbeat RPCs charge it, not the
    /// query path.
    clock: NodeClock,
    state: Mutex<State>,
}

impl Monitor {
    pub fn new(cost: CostModel) -> Self {
        let state = State { next_check: cost.failure_detect, ..State::default() };
        Monitor {
            grace: cost.failure_detect.scale(2.0),
            cost,
            clock: NodeClock::new(),
            state: Mutex::new(state),
        }
    }

    /// The silence window after which a replica is declared dead.
    pub fn grace(&self) -> SimTime {
        self.grace
    }

    /// Heartbeat rounds completed so far.
    pub fn checks_run(&self) -> u64 {
        self.state.lock().checks_run
    }

    /// Restarts scheduled so far (including cancelled and not-yet-rejoined
    /// ones).
    pub fn restarts(&self) -> u64 {
        self.state.lock().restarts
    }

    /// Scheduled restarts cancelled because the replica was heard from
    /// before the restart landed — spurious detections that chaos-delayed
    /// heartbeats produced and the grace machinery absorbed.
    pub fn restarts_cancelled(&self) -> u64 {
        self.state.lock().restarts_cancelled
    }

    /// Restarts scheduled but not yet completed or cancelled.
    pub fn restarts_pending(&self) -> u64 {
        self.state.lock().pending.len() as u64
    }

    /// Every completed recovery, in rejoin order.
    pub fn events(&self) -> Vec<RecoveryEvent> {
        self.state.lock().events.clone()
    }

    /// Advance the monitor to `now`: run every heartbeat round that came
    /// due (absorbing response arrivals first), declare replicas silent
    /// past the grace window dead, schedule their restarts, and rejoin
    /// replicas whose restart completed. Returns the recoveries that
    /// finished during this tick.
    pub fn tick(&self, cluster: &ServeCluster, now: SimTime) -> Vec<RecoveryEvent> {
        let mut st = self.state.lock();
        let st = &mut *st;
        let chaos = cluster.network().chaos();
        while st.next_check <= now {
            let t = st.next_check;
            self.clock.sync_to(t);
            st.checks_run += 1;
            st.absorb_arrivals(t);
            for rep in cluster.replicas() {
                let id = rep.global_id();
                if rep.is_alive() {
                    // The ping round-trips; chaos may hold the response
                    // up. The monitor learns of the reply only when it
                    // arrives (`absorb_arrivals` at a later round), never
                    // from `is_alive` directly.
                    cluster.network().rpc(&self.clock, rep.port(), 16, 8, 16);
                    let mut arrival = t + self.cost.net_latency + self.cost.net_latency;
                    if chaos.is_active() {
                        arrival += chaos.delay(FaultSite::Heartbeat, id as u64, st.checks_run);
                    }
                    st.inflight.push((id, arrival));
                }
                let heard = st.last_heard.get(&id).copied().unwrap_or(SimTime::ZERO);
                let suspect = t.saturating_sub(heard) >= self.grace;
                if suspect && !st.pending.iter().any(|&(pid, _, _)| pid == id) {
                    // Silence past the grace window: two timed-out pings
                    // confirm, then the restart is scheduled — the same
                    // charges as the PS master's recovery path. Detection
                    // is computed from `t`, not the monitor's clock, so
                    // accounting drift from the healthy pings never
                    // delays recovery.
                    let detected = t + self.cost.net_latency + self.cost.net_latency;
                    st.pending.push((
                        id,
                        detected,
                        detected + self.cost.container_restart,
                    ));
                    st.restarts += 1;
                }
            }
            st.next_check = t + self.cost.failure_detect;
        }
        st.absorb_arrivals(now);

        let mut due = Vec::new();
        st.pending.retain(|&(id, detected_at, rejoin_at)| {
            if rejoin_at <= now {
                due.push((id, detected_at, rejoin_at));
                false
            } else {
                true
            }
        });
        let mut completed = Vec::new();
        for (id, detected_at, rejoin_at) in due {
            // The container runtime finds the process already healthy
            // when a very late heartbeat straggles in after the restart
            // was dispatched: a no-op, not a bounce.
            if cluster.replicas()[id].is_alive() {
                st.restarts_cancelled += 1;
                continue;
            }
            cluster.revive_replica(id);
            // The restart process itself heard from the fresh replica —
            // without this the revived replica looks grace-window silent
            // at the very next round and is re-suspected forever.
            let heard = st.last_heard.entry(id).or_insert(SimTime::ZERO);
            *heard = (*heard).max(rejoin_at);
            completed.push(RecoveryEvent { replica: id, detected_at, rejoined_at: rejoin_at });
        }
        st.events.extend(completed.iter().copied());
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ServeCluster, ServeConfig};
    use psgraph_sim::chaos::{ChaosConfig, FaultSchedule};

    fn cluster() -> ServeCluster {
        ServeCluster::demo(24, 4, &ServeConfig::default()).unwrap().0
    }

    #[test]
    fn healthy_cluster_just_heartbeats() {
        let c = cluster();
        let m = Monitor::new(c.network().cost_model().clone());
        let period = c.network().cost_model().failure_detect;
        assert!(m.tick(&c, period.scale(0.5)).is_empty(), "nothing due yet");
        assert_eq!(m.checks_run(), 0);
        m.tick(&c, period.scale(6.5));
        assert_eq!(m.checks_run(), 6, "one round per elapsed period");
        assert_eq!(m.restarts(), 0, "responsive replicas are never suspected");
        assert!(m.events().is_empty());
    }

    #[test]
    fn dead_replica_is_detected_and_rejoined() {
        let c = cluster();
        let cost = c.network().cost_model().clone();
        let m = Monitor::new(cost.clone());
        assert!(c.kill_replica(1));
        assert_eq!(c.live_replicas(), 3);

        // One silent round is within grace — no restart yet.
        assert!(m.tick(&c, cost.failure_detect).is_empty());
        assert_eq!(m.restarts(), 0, "grace window absorbs one silent round");

        // A full grace window of silence declares it dead; the restart is
        // still in flight.
        assert!(m.tick(&c, m.grace()).is_empty());
        assert_eq!(m.restarts(), 1);
        assert_eq!(c.live_replicas(), 3, "not back until the restart lands");

        // Once grace + detection + restart has elapsed, it rejoins.
        let done = m.grace() + cost.restart_overhead();
        let events = m.tick(&c, done);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].replica, 1);
        let detected = m.grace() + cost.net_latency + cost.net_latency;
        assert_eq!(events[0].detected_at, detected);
        assert_eq!(events[0].rejoined_at, detected + cost.container_restart);
        assert_eq!(c.live_replicas(), 4);
        assert_eq!(m.restarts_cancelled(), 0);

        // Detection is not re-reported, and the replica can die again.
        m.tick(&c, done + m.grace());
        assert_eq!(m.restarts(), 1);
        assert!(c.kill_replica(1));
        m.tick(
            &c,
            done + m.grace().scale(2.0) + cost.restart_overhead() + cost.failure_detect,
        );
        assert_eq!(m.restarts(), 2);
        assert_eq!(m.events().len(), 2);
        assert_eq!(c.live_replicas(), 4);
    }

    /// Satellite regression: a heartbeat response that is delayed — even
    /// past the grace window — must never bounce an alive replica. Delays
    /// within grace never schedule a restart at all; longer ones are
    /// cancelled when the straggler arrives.
    #[test]
    fn delayed_but_alive_replica_is_never_restarted() {
        let c = cluster();
        let cost = c.network().cost_model().clone();
        let fd = cost.failure_detect;

        // Every response delayed, but by less than one ping interval:
        // gaps stay under the grace window, nothing is even suspected.
        let mild = FaultSchedule::new(ChaosConfig {
            seed: 0xD1A7,
            p_delay: 1.0,
            max_delay: fd,
            ..ChaosConfig::off()
        });
        c.network().attach_chaos(mild);
        let m = Monitor::new(cost.clone());
        m.tick(&c, fd.scale(30.0));
        assert_eq!(m.restarts(), 0, "delays within grace never suspect");
        assert!(m.events().is_empty());
        assert_eq!(c.live_replicas(), 4);

        // Savage delays (up to 4 ping intervals): silences can exceed the
        // grace window and schedule restarts, but the late responses (or
        // the healthy process found at restart time) cancel every one —
        // no alive replica is ever bounced, and the run is deterministic.
        let run = |seed: u64| {
            let c = cluster();
            let savage = FaultSchedule::new(ChaosConfig {
                seed,
                p_delay: 1.0,
                max_delay: fd.scale(4.0),
                ..ChaosConfig::off()
            });
            c.network().attach_chaos(savage);
            let m = Monitor::new(cost.clone());
            for k in 1..=60u32 {
                m.tick(&c, fd.scale(k as f64));
            }
            m.tick(&c, fd.scale(60.0) + cost.restart_overhead().scale(2.0));
            assert!(
                m.events().is_empty(),
                "an alive replica was bounced despite only delayed heartbeats"
            );
            assert_eq!(c.live_replicas(), 4);
            assert_eq!(
                m.restarts(),
                m.restarts_cancelled() + m.restarts_pending(),
                "every matured spurious restart must be cancelled"
            );
            (m.restarts(), m.restarts_cancelled(), m.checks_run())
        };
        let a = run(0xBEEF);
        assert_eq!(a, run(0xBEEF), "chaos-delayed monitoring is deterministic");
    }
}
