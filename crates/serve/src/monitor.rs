//! Serve-tier self-healing: heartbeat health checks and replica
//! auto-restart.
//!
//! The serving analogue of the `ps::master` health-check loop. A
//! [`Monitor`] pings every replica once per `failure_detect` period; a
//! dead replica costs two RPC timeouts to declare, then a container
//! restart is scheduled `container_restart` later, after which the
//! replica [rejoins](crate::cluster::ServeCluster::revive_replica) the
//! router's rotation. Both delays come from the cluster's [`CostModel`],
//! so `repro -- serve` shows tail latency degrading at the kill and
//! recovering once the restart lands — the Table II story, replayed
//! against the online tier.
//!
//! The monitor is driven from the load generator's simulated timeline:
//! [`Monitor::tick`] is called between queries and performs every
//! heartbeat round that became due, so detection latency is quantized to
//! the heartbeat period exactly as a real watchdog's would be.

use psgraph_sim::sync::Mutex;
use psgraph_sim::{CostModel, NodeClock, SimTime};

use crate::cluster::ServeCluster;

/// One completed kill → detect → restart → rejoin cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Global id of the replica that died.
    pub replica: usize,
    /// When the heartbeat round declared it dead (includes the two RPC
    /// timeouts).
    pub detected_at: SimTime,
    /// When the restarted replica rejoined the rotation.
    pub rejoined_at: SimTime,
}

#[derive(Debug, Default)]
struct State {
    /// Next heartbeat round fires at this simulated time.
    next_check: SimTime,
    /// Replicas detected dead, awaiting restart: `(id, detected_at,
    /// rejoin_at)`.
    pending: Vec<(usize, SimTime, SimTime)>,
    events: Vec<RecoveryEvent>,
    checks_run: u64,
    restarts: u64,
}

/// Heartbeat monitor over a [`ServeCluster`]'s replicas.
#[derive(Debug)]
pub struct Monitor {
    cost: CostModel,
    /// The monitor's own clock — heartbeat RPCs charge it, not the
    /// query path.
    clock: NodeClock,
    state: Mutex<State>,
}

impl Monitor {
    pub fn new(cost: CostModel) -> Self {
        let state = State { next_check: cost.failure_detect, ..State::default() };
        Monitor { cost, clock: NodeClock::new(), state: Mutex::new(state) }
    }

    /// Heartbeat rounds completed so far.
    pub fn checks_run(&self) -> u64 {
        self.state.lock().checks_run
    }

    /// Restarts scheduled so far (including ones not yet rejoined).
    pub fn restarts(&self) -> u64 {
        self.state.lock().restarts
    }

    /// Every completed recovery, in rejoin order.
    pub fn events(&self) -> Vec<RecoveryEvent> {
        self.state.lock().events.clone()
    }

    /// Advance the monitor to `now`: run every heartbeat round that came
    /// due, schedule restarts for newly detected deaths, and rejoin
    /// replicas whose restart completed. Returns the recoveries that
    /// finished during this tick.
    pub fn tick(&self, cluster: &ServeCluster, now: SimTime) -> Vec<RecoveryEvent> {
        let mut st = self.state.lock();
        while st.next_check <= now {
            let t = st.next_check;
            self.clock.sync_to(t);
            st.checks_run += 1;
            for rep in cluster.replicas() {
                if rep.is_alive() {
                    cluster.network().rpc(&self.clock, rep.port(), 16, 8, 16);
                } else if !st.pending.iter().any(|&(id, _, _)| id == rep.global_id()) {
                    // Pings fan out in parallel at the round start; two
                    // timed-out pings declare the replica dead, then the
                    // restart is scheduled — the same charges as the PS
                    // master's recovery path. Detection is computed from
                    // `t`, not the monitor's clock, so accounting drift
                    // from the healthy pings never delays recovery.
                    let detected = t + self.cost.net_latency + self.cost.net_latency;
                    st.pending.push((
                        rep.global_id(),
                        detected,
                        detected + self.cost.container_restart,
                    ));
                    st.restarts += 1;
                }
            }
            st.next_check = t + self.cost.failure_detect;
        }

        let mut completed = Vec::new();
        st.pending.retain(|&(id, detected_at, rejoin_at)| {
            if rejoin_at <= now {
                cluster.revive_replica(id);
                completed.push(RecoveryEvent { replica: id, detected_at, rejoined_at: rejoin_at });
                false
            } else {
                true
            }
        });
        st.events.extend(completed.iter().copied());
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ServeCluster, ServeConfig};

    fn cluster() -> ServeCluster {
        ServeCluster::demo(24, 4, &ServeConfig::default()).unwrap().0
    }

    #[test]
    fn healthy_cluster_just_heartbeats() {
        let c = cluster();
        let m = Monitor::new(c.network().cost_model().clone());
        let period = c.network().cost_model().failure_detect;
        assert!(m.tick(&c, period.scale(0.5)).is_empty(), "nothing due yet");
        assert_eq!(m.checks_run(), 0);
        m.tick(&c, period.scale(3.5));
        assert_eq!(m.checks_run(), 3, "one round per elapsed period");
        assert_eq!(m.restarts(), 0);
        assert!(m.events().is_empty());
    }

    #[test]
    fn dead_replica_is_detected_and_rejoined() {
        let c = cluster();
        let cost = c.network().cost_model().clone();
        let m = Monitor::new(cost.clone());
        assert!(c.kill_replica(1));
        assert_eq!(c.live_replicas(), 3);

        // First round detects; the restart is still in flight.
        assert!(m.tick(&c, cost.failure_detect).is_empty());
        assert_eq!(m.restarts(), 1);
        assert_eq!(c.live_replicas(), 3, "not back until the restart lands");

        // Once detection + restart has elapsed, the replica rejoins.
        let done = cost.failure_detect + cost.restart_overhead();
        let events = m.tick(&c, done);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].replica, 1);
        assert!(events[0].detected_at >= cost.failure_detect);
        assert!(events[0].rejoined_at >= events[0].detected_at + cost.container_restart);
        assert_eq!(c.live_replicas(), 4);

        // Detection is not re-reported, and the replica can die again.
        assert!(m.tick(&c, done + cost.failure_detect).is_empty());
        assert_eq!(m.restarts(), 1);
        assert!(c.kill_replica(1));
        m.tick(&c, done + cost.failure_detect.scale(2.0) + cost.restart_overhead());
        assert_eq!(m.restarts(), 2);
        assert_eq!(m.events().len(), 2);
        assert_eq!(c.live_replicas(), 4);
    }
}
