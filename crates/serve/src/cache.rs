//! Hot-key LRU cache for the serving frontend.
//!
//! Sized in *bytes* against a [`MemoryMeter`] budget rather than in
//! entries: a cached embedding row costs its real width, a cached rank
//! costs a few words, and the cache evicts in exact least-recently-used
//! order until a new value fits. Under Zipf-skewed traffic (the regime the
//! paper's online workloads live in) a small budget absorbs most of the
//! head of the distribution — the `serve_qps` bench measures exactly that.

use psgraph_sim::{FxHashMap, MemoryMeter};
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// An exact-LRU, byte-budgeted cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot — the eviction victim.
    tail: usize,
    meter: MemoryMeter,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// A cache allowed to hold at most `budget` bytes of values.
    pub fn new(budget: u64) -> Self {
        LruCache {
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            meter: MemoryMeter::new("serve.cache", budget),
            hits: 0,
            misses: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn bytes_used(&self) -> u64 {
        self.meter.in_use()
    }

    pub fn budget(&self) -> u64 {
        self.meter.budget()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Inserts refused because the value alone exceeds the whole budget.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit. Counts
    /// a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.unlink(i);
                self.push_front(i);
                self.hits += 1;
                Some(&self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up without promoting or counting (for inspection/tests).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slots[i].value)
    }

    /// Insert (or update) `key` with a value that accounts for `bytes` of
    /// the budget. Evicts exact-LRU entries until it fits. Returns `false`
    /// — and caches nothing — when `bytes` alone exceeds the budget.
    pub fn insert(&mut self, key: K, value: V, bytes: u64) -> bool {
        // Reject before touching the old entry: an oversized update must
        // leave the previous value cached, not drop the key entirely.
        if bytes > self.meter.budget() {
            self.rejected += 1;
            return false;
        }
        if let Some(&i) = self.map.get(&key) {
            // Update: retire the old entry first, then insert fresh.
            self.evict_slot(i);
        }
        while self.meter.alloc(bytes).is_err() {
            let victim = self.tail;
            assert!(victim != NIL, "over budget with an empty cache");
            self.evict_slot(victim);
            self.evictions += 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot { key: key.clone(), value, bytes, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { key: key.clone(), value, bytes, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        true
    }

    fn evict_slot(&mut self, i: usize) {
        self.unlink(i);
        self.map.remove(&self.slots[i].key);
        self.meter.free(self.slots[i].bytes);
        self.free.push(i);
    }

    /// Drop `key` if cached (invalidation, not eviction — counts toward
    /// neither `evictions` nor `rejected`). Returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.get(key).copied() {
            Some(i) => {
                self.evict_slot(i);
                true
            }
            None => false,
        }
    }

    /// Keep only entries whose key satisfies `keep`; returns how many were
    /// invalidated. LRU order of the survivors is preserved.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let doomed: Vec<usize> =
            self.map.iter().filter(|(k, _)| !keep(k)).map(|(_, &i)| i).collect();
        let n = doomed.len();
        for i in doomed {
            self.evict_slot(i);
        }
        n
    }

    /// Keys from least- to most-recently used (for the eviction-order
    /// property test).
    pub fn keys_lru_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.tail;
        while i != NIL {
            out.push(self.slots[i].key.clone());
            i = self.slots[i].prev;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_promotion() {
        let mut c: LruCache<u64, &str> = LruCache::new(100);
        assert!(c.insert(1, "a", 30));
        assert!(c.insert(2, "b", 30));
        assert!(c.insert(3, "c", 30));
        assert_eq!(c.get(&1), Some(&"a")); // 1 is now most recent
        assert!(c.get(&9).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        // Inserting 50 bytes must evict 2 then 3 (LRU order), not 1.
        assert!(c.insert(4, "d", 50));
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&3).is_none());
        assert_eq!(c.evictions(), 2);
        assert!(c.bytes_used() <= c.budget());
    }

    #[test]
    fn update_replaces_bytes() {
        let mut c: LruCache<u64, u64> = LruCache::new(100);
        assert!(c.insert(1, 10, 80));
        assert!(c.insert(1, 11, 50));
        assert_eq!(c.bytes_used(), 50);
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_value_is_rejected_not_cached() {
        let mut c: LruCache<u64, u64> = LruCache::new(10);
        assert!(!c.insert(1, 1, 11));
        assert_eq!(c.len(), 0);
        assert_eq!(c.rejected(), 1);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn oversized_update_keeps_the_old_entry() {
        // Regression: insert used to retire the existing entry *before*
        // the oversized check, so a too-big update dropped the key from
        // the cache entirely instead of leaving the old value cached.
        let mut c: LruCache<u64, u64> = LruCache::new(100);
        assert!(c.insert(1, 10, 80));
        assert!(!c.insert(1, 11, 150));
        assert_eq!(c.peek(&1), Some(&10), "old value must survive a rejected update");
        assert_eq!(c.bytes_used(), 80);
        assert_eq!(c.rejected(), 1);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn remove_and_retain_invalidate_exactly() {
        let mut c: LruCache<u64, u64> = LruCache::new(1000);
        for k in 0..6 {
            assert!(c.insert(k, k * 10, 10));
        }
        assert!(c.remove(&2));
        assert!(!c.remove(&2));
        assert_eq!(c.retain(|&k| k % 2 == 1), 2); // drops 0 and 4
        assert_eq!(c.keys_lru_order(), vec![1, 3, 5]);
        assert_eq!(c.bytes_used(), 30);
        // Invalidation is not eviction and is not a rejection.
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.rejected(), 0);
        // Freed slots are reusable.
        assert!(c.insert(7, 70, 10));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut c: LruCache<u64, u64> = LruCache::new(0);
        assert!(!c.insert(1, 1, 8));
        assert!(c.get(&1).is_none());
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn lru_order_is_tail_to_head() {
        let mut c: LruCache<u64, ()> = LruCache::new(1000);
        for k in 0..4 {
            assert!(c.insert(k, (), 10));
        }
        c.get(&0);
        assert_eq!(c.keys_lru_order(), vec![1, 2, 3, 0]);
    }
}
