//! Assemble a serving tier from a PS snapshot on the DFS.

use psgraph_dfs::Dfs;
use psgraph_net::Network;
use psgraph_ps::snapshot::{
    load_object, PatchRegion, SnapshotData, SnapshotDelta, SnapshotManifest, SnapshotWriter,
};
use psgraph_ps::{
    ColMatrixHandle, CsrHandle, Partitioner, Ps, PsConfig, RecoveryMode, VectorHandle,
};
use psgraph_sim::{CostModel, NodeClock};
use std::sync::Arc;

use crate::error::{Result, ServeError};
use crate::frontend::{CacheKey, Frontend, SloPolicy};
use crate::router::Router;
use crate::shard::{
    col_range, vertex_range, Adjacency, EmbedSlice, Replica, ShardData, ShardSpec,
};

/// Sizing and policy for a serving tier.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub shards: usize,
    pub replicas_per_shard: usize,
    /// Byte budget for the frontend hot-key cache (0 disables caching).
    pub cache_budget: u64,
    pub policy: SloPolicy,
    pub cost: CostModel,
    /// Thread pool for the frontend's multi-shard scatter phases; `None`
    /// uses the process-global pool (thread-count sweeps pass their own).
    pub pool: Option<Arc<psgraph_harness::Pool>>,
    /// Whether the frontend's planner may push plan prefixes shard-side
    /// (`FrontendOnly` is the pushdown-ablation baseline).
    pub push: psgraph_query::PushPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            replicas_per_shard: 2,
            cache_budget: 1 << 20,
            policy: SloPolicy::default(),
            cost: CostModel::default(),
            pool: None,
            push: psgraph_query::PushPolicy::Auto,
        }
    }
}

impl ServeConfig {
    /// Run the frontend's scatter phases on an explicit pool.
    pub fn with_pool(mut self, pool: Arc<psgraph_harness::Pool>) -> Self {
        self.pool = Some(pool);
        self
    }
}

/// Which snapshot objects play which serving role.
#[derive(Debug, Clone, Default)]
pub struct ObjectMap {
    pub ranks: Option<String>,
    pub communities: Option<String>,
    pub embeddings: Option<String>,
    pub adjacency: Option<String>,
}

/// The serving tier: replicated shards plus the frontend driving them.
pub struct ServeCluster {
    replicas: Vec<Arc<Replica>>,
    frontend: Frontend,
    num_vertices: u64,
    /// The role → snapshot-object mapping the cluster was loaded with;
    /// [`ServeCluster::swap_in`] uses it to route delta entries to shard
    /// fields and cache tags.
    objects: ObjectMap,
}

impl ServeCluster {
    /// Load a snapshot directory into `cfg.shards × cfg.replicas_per_shard`
    /// read replicas, charging the DFS reads to `client`.
    pub fn load(
        dfs: &Dfs,
        dir: &str,
        objects: &ObjectMap,
        cfg: &ServeConfig,
        client: &NodeClock,
    ) -> Result<Self> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.replicas_per_shard > 0, "need at least one replica per shard");
        let manifest = SnapshotManifest::load(dfs, dir, client)?;
        let fetch = |name: &Option<String>| -> Result<Option<SnapshotData>> {
            match name {
                None => Ok(None),
                Some(name) => {
                    let entry = manifest
                        .entry(name)
                        .ok_or_else(|| ServeError::MissingObject(name.clone()))?;
                    Ok(Some(load_object(dfs, dir, entry, client)?))
                }
            }
        };

        let ranks = match fetch(&objects.ranks)? {
            Some(SnapshotData::VecF64(v)) => Some(v),
            Some(_) => return Err(ServeError::Dfs("ranks object is not a f64 vector".into())),
            None => None,
        };
        let communities = match fetch(&objects.communities)? {
            Some(SnapshotData::VecU64(v)) => Some(v),
            Some(_) => {
                return Err(ServeError::Dfs("communities object is not a u64 vector".into()))
            }
            None => None,
        };
        let embeddings = match fetch(&objects.embeddings)? {
            Some(SnapshotData::MatF32 { cols, data }) => Some((cols, data)),
            Some(_) => {
                return Err(ServeError::Dfs("embeddings object is not a f32 matrix".into()))
            }
            None => None,
        };
        let adjacency = match fetch(&objects.adjacency)? {
            Some(SnapshotData::Adjacency { offsets, targets }) => Some((offsets, targets)),
            Some(_) => return Err(ServeError::Dfs("adjacency object is not a CSR".into())),
            None => None,
        };

        let mut num_vertices = None;
        let mut check = |n: u64, what: &str| -> Result<()> {
            match num_vertices {
                None => {
                    num_vertices = Some(n);
                    Ok(())
                }
                Some(m) if m == n => Ok(()),
                Some(m) => Err(ServeError::Dfs(format!(
                    "{what} has {n} vertices but another object has {m}"
                ))),
            }
        };
        if let Some(r) = &ranks {
            check(r.len() as u64, "ranks")?;
        }
        if let Some(c) = &communities {
            check(c.len() as u64, "communities")?;
        }
        if let Some((offsets, _)) = &adjacency {
            check(offsets.len() as u64 - 1, "adjacency")?;
        }
        if let Some((cols, data)) = &embeddings {
            check((data.len() / cols.max(&1)) as u64, "embeddings")?;
        }
        let n = num_vertices
            .ok_or_else(|| ServeError::Dfs("snapshot maps no objects to serve".into()))?;
        let dim = embeddings.as_ref().map_or(0, |(cols, _)| *cols);

        let mut replicas = Vec::new();
        let mut shards = Vec::with_capacity(cfg.shards);
        let queue_depth = cfg.policy.queue_cap + cfg.policy.batch_max;
        for s in 0..cfg.shards {
            let (vlo, vhi) = vertex_range(s, n, cfg.shards);
            let (clo, chi) = col_range(s, dim, cfg.shards);
            let spec = ShardSpec {
                num_shards: cfg.shards,
                shard: s,
                vertex_lo: vlo,
                vertex_hi: vhi,
                col_lo: clo,
                col_hi: chi,
            };
            let data = Arc::new(ShardData {
                spec,
                ranks: ranks.as_ref().map(|r| r[vlo as usize..vhi as usize].to_vec()),
                communities: communities
                    .as_ref()
                    .map(|c| c[vlo as usize..vhi as usize].to_vec()),
                adjacency: adjacency.as_ref().map(|(offsets, targets)| {
                    let base = offsets[vlo as usize];
                    let local: Vec<u64> = offsets[vlo as usize..=vhi as usize]
                        .iter()
                        .map(|o| o - base)
                        .collect();
                    let t =
                        targets[base as usize..offsets[vhi as usize] as usize].to_vec();
                    Adjacency { offsets: local, targets: t }
                }),
                embed: embeddings.as_ref().map(|(cols, data)| {
                    let width = chi - clo;
                    let mut slice = Vec::with_capacity(n as usize * width);
                    for r in 0..n as usize {
                        slice.extend_from_slice(&data[r * cols + clo..r * cols + chi]);
                    }
                    EmbedSlice { rows: n, width, data: slice }
                }),
                embed_rows: embeddings.as_ref().map(|(cols, data)| {
                    let slice = data[vlo as usize * cols..vhi as usize * cols].to_vec();
                    EmbedSlice { rows: vhi - vlo, width: *cols, data: slice }
                }),
            });
            let mut shard_reps = Vec::with_capacity(cfg.replicas_per_shard);
            for i in 0..cfg.replicas_per_shard {
                let global = s * cfg.replicas_per_shard + i;
                let rep = Replica::new(s, i, global, Arc::clone(&data), queue_depth);
                replicas.push(Arc::clone(&rep));
                shard_reps.push(rep);
            }
            shards.push(shard_reps);
        }

        let pool = cfg
            .pool
            .clone()
            .unwrap_or_else(|| Arc::clone(psgraph_harness::Pool::global()));
        let mut frontend = Frontend::with_pool(
            Router::new(shards),
            Network::new(cfg.cost.clone()),
            cfg.cache_budget,
            cfg.policy.clone(),
            n,
            pool,
        );
        frontend.set_push_policy(cfg.push);
        Ok(ServeCluster { replicas, frontend, num_vertices: n, objects: objects.clone() })
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    pub fn replicas(&self) -> &[Arc<Replica>] {
        &self.replicas
    }

    pub fn frontend(&self) -> &Frontend {
        &self.frontend
    }

    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Kill replica `global_id` (as scripted by a
    /// [`psgraph_sim::FailPlan::kill_replica`]). Returns whether it was
    /// alive. The router stops sending it traffic from the next query on;
    /// already-completed answers are unaffected because shard data is
    /// immutable.
    pub fn kill_replica(&self, global_id: usize) -> bool {
        self.replicas
            .get(global_id)
            .map(|r| r.kill())
            .unwrap_or(false)
    }

    /// Bring replica `global_id` back into service with an empty queue
    /// (the [`crate::monitor::Monitor`] calls this when a container
    /// restart completes). Returns whether it was dead.
    pub fn revive_replica(&self, global_id: usize) -> bool {
        self.replicas
            .get(global_id)
            .map(|r| r.revive())
            .unwrap_or(false)
    }

    /// Count of live replicas (for degraded-service assertions).
    pub fn live_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_alive()).count()
    }

    /// Hot-swap a snapshot delta into the live tier: rebuild only the
    /// shards a patch touches, atomically install the new `Arc` on every
    /// replica of those shards (dead ones included — they must rejoin
    /// with current data), and invalidate exactly the cached keys the
    /// delta made stale. Queries already in flight keep the version they
    /// started with; every later answer reflects the delta.
    pub fn swap_in(&mut self, delta: &SnapshotDelta) -> Result<SwapStats> {
        let num_shards = self.frontend.num_shards();
        let n = self.num_vertices;
        // Working copies of patched shards, cloned from the live data on
        // first touch.
        let mut rebuilt: Vec<Option<ShardData>> = (0..num_shards).map(|_| None).collect();
        // Vertex ranges whose cached answers are stale, per cache tag.
        let mut dirty_rows: Vec<(u8, u64, u64)> = Vec::new();
        // A column stripe spans every row, so any embedding patch dirties
        // every cached embedding.
        let mut embed_dirty = false;
        let mut regions_applied = 0usize;

        {
            let router = self.frontend.router();
            let working = |rebuilt: &mut Vec<Option<ShardData>>, s: usize| -> ShardData {
                rebuilt[s]
                    .take()
                    .unwrap_or_else(|| (*router.replicas(s)[0].data()).clone())
            };
            for entry in &delta.entries {
                let role = [
                    (&self.objects.ranks, 0u8),
                    (&self.objects.communities, 1),
                    (&self.objects.embeddings, 2),
                    (&self.objects.adjacency, 3),
                ]
                .into_iter()
                .find(|(name, _)| name.as_deref() == Some(entry.name.as_str()));
                // Objects the cluster does not serve are none of our
                // business — skip them.
                let Some((_, tag)) = role else { continue };
                if entry.rows != n {
                    return Err(ServeError::Dfs(format!(
                        "delta entry {} has {} rows but the tier serves {n} vertices",
                        entry.name, entry.rows
                    )));
                }
                let mismatch = || {
                    ServeError::Dfs(format!(
                        "delta entry {} carries a region of the wrong kind", entry.name
                    ))
                };
                for region in &entry.regions {
                    regions_applied += 1;
                    match (tag, region) {
                        (0, PatchRegion::RowsF64 { row_lo, values }) => {
                            let row_hi = row_lo + values.len() as u64;
                            for s in 0..num_shards {
                                let (vlo, vhi) = vertex_range(s, n, num_shards);
                                let (lo, hi) = ((*row_lo).max(vlo), row_hi.min(vhi));
                                if lo >= hi {
                                    continue;
                                }
                                let mut data = working(&mut rebuilt, s);
                                let ranks = data.ranks.as_mut().ok_or_else(|| {
                                    ServeError::Dfs("delta patches unserved ranks".into())
                                })?;
                                for v in lo..hi {
                                    ranks[(v - vlo) as usize] =
                                        values[(v - row_lo) as usize];
                                }
                                rebuilt[s] = Some(data);
                            }
                            dirty_rows.push((0, *row_lo, row_hi));
                        }
                        (1, PatchRegion::RowsU64 { row_lo, values }) => {
                            let row_hi = row_lo + values.len() as u64;
                            for s in 0..num_shards {
                                let (vlo, vhi) = vertex_range(s, n, num_shards);
                                let (lo, hi) = ((*row_lo).max(vlo), row_hi.min(vhi));
                                if lo >= hi {
                                    continue;
                                }
                                let mut data = working(&mut rebuilt, s);
                                let coms = data.communities.as_mut().ok_or_else(|| {
                                    ServeError::Dfs("delta patches unserved communities".into())
                                })?;
                                for v in lo..hi {
                                    coms[(v - vlo) as usize] = values[(v - row_lo) as usize];
                                }
                                rebuilt[s] = Some(data);
                            }
                            dirty_rows.push((1, *row_lo, row_hi));
                        }
                        (2, PatchRegion::Cols { col_lo, col_hi, data: patch }) => {
                            let dim = entry.cols as usize;
                            let stripe = (col_hi - col_lo) as usize;
                            // A column stripe cuts across every shard: the
                            // column-sliced `embed` on shards whose col
                            // range intersects, and the row-major
                            // `embed_rows` on all of them.
                            for s in 0..num_shards {
                                let (clo, chi) = col_range(s, dim, num_shards);
                                let (lo, hi) =
                                    ((*col_lo as usize).max(clo), (*col_hi as usize).min(chi));
                                let mut data = working(&mut rebuilt, s);
                                if lo < hi {
                                    let embed = data.embed.as_mut().ok_or_else(|| {
                                        ServeError::Dfs("delta patches unserved embeddings".into())
                                    })?;
                                    for r in 0..embed.rows as usize {
                                        for j in lo..hi {
                                            embed.data[r * embed.width + (j - clo)] =
                                                patch[r * stripe + (j - *col_lo as usize)];
                                        }
                                    }
                                }
                                if let Some(er) = data.embed_rows.as_mut() {
                                    let (vlo, vhi) = vertex_range(s, n, num_shards);
                                    for v in vlo..vhi {
                                        let r = (v - vlo) as usize;
                                        for j in *col_lo as usize..*col_hi as usize {
                                            er.data[r * er.width + j] = patch
                                                [v as usize * stripe + (j - *col_lo as usize)];
                                        }
                                    }
                                }
                                rebuilt[s] = Some(data);
                            }
                            embed_dirty = true;
                        }
                        (2, PatchRegion::RowsF32 { row_lo, data: patch }) => {
                            let dim = entry.cols as usize;
                            if dim == 0 || patch.len() % dim != 0 {
                                return Err(mismatch());
                            }
                            let row_hi = row_lo + (patch.len() / dim) as u64;
                            for s in 0..num_shards {
                                let (clo, chi) = col_range(s, dim, num_shards);
                                let (vlo, vhi) = vertex_range(s, n, num_shards);
                                let (rlo, rhi) = ((*row_lo).max(vlo), row_hi.min(vhi));
                                if clo >= chi && rlo >= rhi {
                                    continue;
                                }
                                let mut data = working(&mut rebuilt, s);
                                if clo < chi {
                                    let embed = data.embed.as_mut().ok_or_else(|| {
                                        ServeError::Dfs("delta patches unserved embeddings".into())
                                    })?;
                                    for v in *row_lo..row_hi {
                                        let src = (v - row_lo) as usize * dim;
                                        for j in clo..chi {
                                            embed.data[v as usize * embed.width + (j - clo)] =
                                                patch[src + j];
                                        }
                                    }
                                }
                                if rlo < rhi {
                                    if let Some(er) = data.embed_rows.as_mut() {
                                        for v in rlo..rhi {
                                            let src = (v - row_lo) as usize * dim;
                                            let dst = (v - vlo) as usize * er.width;
                                            er.data[dst..dst + dim]
                                                .copy_from_slice(&patch[src..src + dim]);
                                        }
                                    }
                                }
                                rebuilt[s] = Some(data);
                            }
                            dirty_rows.push((2, *row_lo, row_hi));
                        }
                        (3, PatchRegion::Adj { row_lo, offsets, targets }) => {
                            let row_hi = row_lo + offsets.len() as u64 - 1;
                            for s in 0..num_shards {
                                let (vlo, vhi) = vertex_range(s, n, num_shards);
                                let (lo, hi) = ((*row_lo).max(vlo), row_hi.min(vhi));
                                if lo >= hi {
                                    continue;
                                }
                                let mut data = working(&mut rebuilt, s);
                                let adj = data.adjacency.as_mut().ok_or_else(|| {
                                    ServeError::Dfs("delta patches unserved adjacency".into())
                                })?;
                                let mut lists: Vec<Vec<u64>> = (0..(vhi - vlo) as usize)
                                    .map(|i| {
                                        adj.targets[adj.offsets[i] as usize
                                            ..adj.offsets[i + 1] as usize]
                                            .to_vec()
                                    })
                                    .collect();
                                for v in lo..hi {
                                    let i = (v - row_lo) as usize;
                                    lists[(v - vlo) as usize] = targets
                                        [offsets[i] as usize..offsets[i + 1] as usize]
                                        .to_vec();
                                }
                                let mut new_offsets = Vec::with_capacity(lists.len() + 1);
                                let mut new_targets = Vec::new();
                                new_offsets.push(0u64);
                                for l in &lists {
                                    new_targets.extend_from_slice(l);
                                    new_offsets.push(new_targets.len() as u64);
                                }
                                *adj = Adjacency { offsets: new_offsets, targets: new_targets };
                                rebuilt[s] = Some(data);
                            }
                            dirty_rows.push((3, *row_lo, row_hi));
                        }
                        _ => return Err(mismatch()),
                    }
                }
            }
        }

        let mut shards_rebuilt = 0;
        for (s, slot) in rebuilt.iter_mut().enumerate() {
            if let Some(data) = slot.take() {
                shards_rebuilt += 1;
                let data = Arc::new(data);
                for rep in self.replicas.iter().filter(|r| r.shard() == s) {
                    rep.install(Arc::clone(&data));
                }
            }
        }
        let keys_invalidated = self.frontend.invalidate_keys(|&(tag, v): &CacheKey| {
            if tag == 2 && embed_dirty {
                return false;
            }
            !dirty_rows.iter().any(|&(t, lo, hi)| t == tag && (lo..hi).contains(&v))
        });
        // The swapped data may have moved rank spans, community counts,
        // or degrees — re-pull shard statistics so the pushdown planner
        // costs against the live tier.
        self.frontend.refresh_stats();
        Ok(SwapStats { shards_rebuilt, keys_invalidated, regions_applied })
    }

    /// Simulated bytes moved and RPCs made by the serving tier so far.
    pub fn network(&self) -> &Network {
        self.frontend.network()
    }

    /// Build a serving tier directly from truth arrays: writes them
    /// through PS handles into an in-memory snapshot and loads that —
    /// the same path production data takes, so shard slicing, column
    /// partitioning, and the planner's statistics all come out exactly
    /// as a real load. Any object may be `None` (the tier then refuses
    /// the queries needing it); at least one must be present, and all
    /// present objects must agree on the vertex count.
    pub fn from_arrays(
        ranks: Option<&[f64]>,
        communities: Option<&[u64]>,
        adjacency: Option<&[Vec<u64>]>,
        embeddings: Option<&[Vec<f32>]>,
        cfg: &ServeConfig,
    ) -> Result<Self> {
        let n = ranks
            .map(<[f64]>::len)
            .or(communities.map(<[u64]>::len))
            .or(adjacency.map(<[Vec<u64>]>::len))
            .or(embeddings.map(<[Vec<f32>]>::len))
            .ok_or_else(|| ServeError::Dfs("from_arrays needs at least one object".into()))?
            as u64;

        let ps = Ps::new(PsConfig::default());
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        let ids: Vec<u64> = (0..n).collect();
        let mut w = SnapshotWriter::new(&dfs, "/snapshot/arrays", &client);
        let mut objects = ObjectMap::default();

        if let Some(r) = ranks {
            let h = VectorHandle::<f64>::create(
                &ps,
                "arr.rank",
                n,
                Partitioner::Range,
                RecoveryMode::Consistent,
            )?;
            h.push_set(&client, &ids, r)?;
            w.vector_f64(&h)?;
            objects.ranks = Some("arr.rank".into());
        }
        if let Some(c) = communities {
            let h = VectorHandle::<u64>::create(
                &ps,
                "arr.community",
                n,
                Partitioner::Range,
                RecoveryMode::Consistent,
            )?;
            h.push_set(&client, &ids, c)?;
            w.vector_u64(&h)?;
            objects.communities = Some("arr.community".into());
        }
        if let Some(adj) = adjacency {
            let tables: Vec<(u64, Vec<u64>)> =
                adj.iter().enumerate().map(|(i, ns)| (i as u64, ns.clone())).collect();
            let h =
                CsrHandle::build(&ps, "arr.adj", n, &tables, &client, RecoveryMode::Consistent)?;
            w.adjacency(&h)?;
            objects.adjacency = Some("arr.adj".into());
        }
        if let Some(rows) = embeddings {
            let dim = rows.first().map_or(0, Vec::len);
            let h = ColMatrixHandle::create(&ps, "arr.embed", n, dim, RecoveryMode::Inconsistent)?;
            h.push_add_rows(&client, &ids, rows)?;
            w.colmatrix(&h)?;
            objects.embeddings = Some("arr.embed".into());
        }
        w.finish()?;
        ServeCluster::load(&dfs, "/snapshot/arrays", &objects, cfg, &client)
    }

    /// A tiny in-memory snapshot + cluster for tests: `n` vertices with
    /// rank `i/n`, community `i % 7`, a ring adjacency, and a `dim`-wide
    /// deterministic embedding.
    pub fn demo(n: u64, dim: usize, cfg: &ServeConfig) -> Result<(Self, DemoTruth)> {
        let (cluster, truth, _) = Self::demo_with_ps(n, dim, cfg)?;
        Ok((cluster, truth))
    }

    /// Like [`ServeCluster::demo`] but also returns the live PS backend,
    /// so tests and benches can keep training (mutating the PS objects)
    /// and hot-swap deltas into the running tier.
    pub fn demo_with_ps(
        n: u64,
        dim: usize,
        cfg: &ServeConfig,
    ) -> Result<(Self, DemoTruth, DemoBackend)> {
        let ps = Ps::new(PsConfig::default());
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        let ids: Vec<u64> = (0..n).collect();

        let ranks: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let hv = VectorHandle::<f64>::create(
            &ps,
            "demo.rank",
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        hv.push_set(&client, &ids, &ranks)?;

        let coms: Vec<u64> = (0..n).map(|i| i % 7).collect();
        let hc = VectorHandle::<u64>::create(
            &ps,
            "demo.community",
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        hc.push_set(&client, &ids, &coms)?;

        let adj: Vec<Vec<u64>> = (0..n).map(|i| vec![(i + 1) % n, (i + 2) % n]).collect();
        let tables: Vec<(u64, Vec<u64>)> =
            adj.iter().enumerate().map(|(i, ns)| (i as u64, ns.clone())).collect();
        let ha = CsrHandle::build(&ps, "demo.adj", n, &tables, &client, RecoveryMode::Consistent)?;

        let embed: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..dim).map(|j| ((i * 31 + j as u64 * 7) % 13) as f32 * 0.1 - 0.6).collect())
            .collect();
        let hm = psgraph_ps::ColMatrixHandle::create(
            &ps,
            "demo.embed",
            n,
            dim,
            RecoveryMode::Inconsistent,
        )?;
        hm.push_add_rows(&client, &ids, &embed)?;

        let mut w = SnapshotWriter::new(&dfs, "/snapshot/demo", &client);
        w.vector_f64(&hv)?;
        w.vector_u64(&hc)?;
        w.adjacency(&ha)?;
        w.colmatrix(&hm)?;
        let manifest = w.finish()?;

        let objects = ObjectMap {
            ranks: Some("demo.rank".into()),
            communities: Some("demo.community".into()),
            embeddings: Some("demo.embed".into()),
            adjacency: Some("demo.adj".into()),
        };
        let cluster = ServeCluster::load(&dfs, "/snapshot/demo", &objects, cfg, &client)?;
        let backend = DemoBackend {
            ps,
            dfs,
            client,
            dir: "/snapshot/demo".into(),
            manifest,
            ranks: hv,
            communities: hc,
            adjacency: ha,
            embeddings: hm,
        };
        Ok((
            cluster,
            DemoTruth { ranks, communities: coms, adjacency: adj, embeddings: embed },
            backend,
        ))
    }
}

/// Outcome of one [`ServeCluster::swap_in`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapStats {
    /// Shards whose data was rebuilt and re-installed.
    pub shards_rebuilt: usize,
    /// Cached answers invalidated as stale.
    pub keys_invalidated: usize,
    /// Patch regions applied to served objects.
    pub regions_applied: usize,
}

/// The live PS side of a [`ServeCluster::demo_with_ps`] tier: keep
/// writing to the handles, export a delta against `manifest`, and
/// [`ServeCluster::swap_in`] the result.
pub struct DemoBackend {
    pub ps: Arc<Ps>,
    pub dfs: Dfs,
    pub client: NodeClock,
    /// Snapshot directory the tier was loaded from.
    pub dir: String,
    /// Base manifest deltas are diffed against.
    pub manifest: SnapshotManifest,
    pub ranks: VectorHandle<f64>,
    pub communities: VectorHandle<u64>,
    pub adjacency: CsrHandle,
    pub embeddings: ColMatrixHandle,
}

/// Ground truth backing [`ServeCluster::demo`].
#[derive(Debug, Clone)]
pub struct DemoTruth {
    pub ranks: Vec<f64>,
    pub communities: Vec<u64>,
    pub adjacency: Vec<Vec<u64>>,
    pub embeddings: Vec<Vec<f32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::Outcome;
    use crate::shard::{Query, Value};
    use psgraph_sim::SimTime;

    fn small() -> (ServeCluster, DemoTruth) {
        ServeCluster::demo(24, 4, &ServeConfig::default()).unwrap()
    }

    #[test]
    fn demo_cluster_serves_exact_point_lookups() {
        let (mut cluster, truth) = small();
        let mut t = SimTime::ZERO;
        for v in 0..24u64 {
            for (i, q) in [Query::Rank(v), Query::Community(v), Query::Neighbors(v)]
                .into_iter()
                .enumerate()
            {
                let outs = cluster.frontend_mut().execute_now(v as usize * 3 + i, t, q);
                let (_, o) = outs.last().expect("outcome");
                match (q, o) {
                    (Query::Rank(_), Outcome::Answered { value: Value::Rank(r), .. }) => {
                        assert_eq!(r.to_bits(), truth.ranks[v as usize].to_bits());
                    }
                    (Query::Community(_), Outcome::Answered { value: Value::Community(c), .. }) => {
                        assert_eq!(*c, truth.communities[v as usize]);
                    }
                    (Query::Neighbors(_), Outcome::Answered { value: Value::Neighbors(n), .. }) => {
                        assert_eq!(n, &truth.adjacency[v as usize]);
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
                t += SimTime::from_micros(50);
            }
        }
        assert_eq!(cluster.frontend().failed(), 0);
    }

    #[test]
    fn embedding_gather_reassembles_full_rows() {
        let (mut cluster, truth) = small();
        let outs = cluster.frontend_mut().execute_now(0, SimTime::ZERO, Query::Embedding(5));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Embedding(e), cached, .. } => {
                assert!(!cached);
                let got: Vec<u32> = e.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = truth.embeddings[5].iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // Second fetch is a cache hit with the identical value.
        let outs = cluster
            .frontend_mut()
            .execute_now(1, SimTime::from_millis(10), Query::Embedding(5));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Embedding(e), cached, .. } => {
                assert!(cached);
                assert_eq!(e.len(), 4);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(cluster.frontend().cache().hits(), 1);
    }

    #[test]
    fn khop_and_topk_match_reference() {
        use crate::frontend::reference;
        let (mut cluster, truth) = small();
        let outs = cluster
            .frontend_mut()
            .execute_now(0, SimTime::ZERO, Query::KHop { v: 3, hops: 2 });
        match &outs[0].1 {
            Outcome::Answered { value: Value::Vertices(vs), .. } => {
                assert_eq!(vs, &reference::khop(&truth.adjacency, 3, 2));
                assert_eq!(vs, &[4, 5, 6, 7]); // ring: +1/+2 twice
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let outs = cluster
            .frontend_mut()
            .execute_now(1, SimTime::from_millis(1), Query::TopK { v: 3, k: 3 });
        match &outs[0].1 {
            Outcome::Answered { value: Value::Ranked(r), .. } => {
                let want = reference::topk(&truth.embeddings, &truth.adjacency, 3, 3, 2);
                assert_eq!(r.len(), want.len());
                for ((gv, gs), (wv, ws)) in r.iter().zip(&want) {
                    assert_eq!(gv, wv);
                    assert_eq!(gs.to_bits(), ws.to_bits());
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn topk_all_scatter_gather_matches_reference() {
        use crate::frontend::reference;
        let (mut cluster, truth) = small();
        let mut t = SimTime::ZERO;
        for (i, v) in [0u64, 5, 13, 23].into_iter().enumerate() {
            let outs =
                cluster.frontend_mut().execute_now(i, t, Query::TopKAll { v, k: 6 });
            match &outs[0].1 {
                Outcome::Answered { value: Value::Ranked(r), .. } => {
                    let want = reference::topk_all(&truth.embeddings, v, 6);
                    assert_eq!(r.len(), want.len());
                    for ((gv, gs), (wv, ws)) in r.iter().zip(&want) {
                        assert_eq!(gv, wv);
                        assert_eq!(gs.to_bits(), ws.to_bits());
                    }
                    assert!(!r.iter().any(|&(u, _)| u == v), "query vertex excluded");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
            t += SimTime::from_millis(1);
        }
        // A warm embedding cache entry feeds the scatter: same answer.
        cluster.frontend_mut().execute_now(10, t, Query::Embedding(5));
        let hits = cluster.frontend().cache().hits();
        let outs = cluster
            .frontend_mut()
            .execute_now(11, t + SimTime::from_millis(1), Query::TopKAll { v: 5, k: 6 });
        match &outs[0].1 {
            Outcome::Answered { value: Value::Ranked(r), .. } => {
                let want = reference::topk_all(&truth.embeddings, 5, 6);
                for ((gv, gs), (wv, ws)) in r.iter().zip(&want) {
                    assert_eq!(gv, wv);
                    assert_eq!(gs.to_bits(), ws.to_bits());
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(cluster.frontend().cache().hits(), hits + 1, "reused cached query row");
    }

    #[test]
    fn row_matrix_delta_swaps_rows_and_invalidates_per_row() {
        use crate::frontend::reference;
        use psgraph_ps::snapshot::DeltaWriter;
        use psgraph_ps::MatrixHandle;

        let ps = Ps::new(PsConfig::default());
        let dfs = Dfs::in_memory();
        let client = NodeClock::new();
        let (n, dim) = (24u64, 4usize);
        let h = MatrixHandle::<f32>::create(
            &ps,
            "m.embed",
            n,
            dim,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )
        .unwrap();
        let ids: Vec<u64> = (0..n).collect();
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..dim).map(|j| ((i * 17 + j as u64 * 5) % 11) as f32 * 0.2 - 1.0).collect())
            .collect();
        h.push_set_rows(&client, &ids, &rows).unwrap();

        let mut w = SnapshotWriter::new(&dfs, "/snapshot/rowmat", &client);
        w.matrix_f32(&h).unwrap();
        let manifest = w.finish().unwrap();
        let objects = ObjectMap { embeddings: Some("m.embed".into()), ..ObjectMap::default() };
        let mut cluster =
            ServeCluster::load(&dfs, "/snapshot/rowmat", &objects, &ServeConfig::default(), &client)
                .unwrap();

        // Warm the cache: one row the delta dirties, one it does not.
        cluster.frontend_mut().execute_now(0, SimTime::ZERO, Query::Embedding(2));
        cluster.frontend_mut().execute_now(1, SimTime::ZERO, Query::Embedding(20));

        // Touch rows 0..3 — one Range partition of twelve rows.
        let patch: Vec<Vec<f32>> = (0..3).map(|i| vec![i as f32 + 0.5; dim]).collect();
        h.push_set_rows(&client, &[0, 1, 2], &patch).unwrap();
        let fresh = h.pull_rows(&client, &ids).unwrap();

        let mut dw = DeltaWriter::new(&dfs, "/snapshot/rowmat", &manifest, &client);
        assert_eq!(dw.matrix_f32(&h).unwrap(), 1, "one dirty partition");
        let delta = dw.finish().unwrap();
        let stats = cluster.swap_in(&delta).unwrap();
        assert!(stats.regions_applied >= 1);

        // Row-precise invalidation: the patched partition's cached row is
        // gone, the far row survived.
        assert!(cluster.frontend().cache().peek(&(2, 2)).is_none());
        assert!(cluster.frontend().cache().peek(&(2, 20)).is_some());

        // Post-swap gather and cross-shard top-k both see the new rows.
        let t = SimTime::from_millis(5);
        let outs = cluster.frontend_mut().execute_now(10, t, Query::Embedding(1));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Embedding(e), cached, .. } => {
                assert!(!cached);
                let got: Vec<u32> = e.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = fresh[1].iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let outs = cluster.frontend_mut().execute_now(11, t, Query::TopKAll { v: 1, k: 5 });
        match &outs[0].1 {
            Outcome::Answered { value: Value::Ranked(r), .. } => {
                let want = reference::topk_all(&fresh, 1, 5);
                assert_eq!(r.len(), want.len());
                for ((gv, gs), (wv, ws)) in r.iter().zip(&want) {
                    assert_eq!(gv, wv);
                    assert_eq!(gs.to_bits(), ws.to_bits());
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn swap_in_patches_shards_and_invalidates_exactly() {
        use psgraph_ps::snapshot::DeltaWriter;

        let (mut cluster, truth, backend) =
            ServeCluster::demo_with_ps(24, 4, &ServeConfig::default()).unwrap();

        // Warm the cache: a rank the delta will touch, one it won't, and
        // an embedding row.
        let mut t = SimTime::ZERO;
        for (i, q) in [Query::Rank(1), Query::Rank(23), Query::Embedding(5)]
            .into_iter()
            .enumerate()
        {
            cluster.frontend_mut().execute_now(i, t, q);
            t += SimTime::from_millis(1);
        }

        // Train a little more: ranks 0..3 change (one PS partition of
        // twelve vertices → shard 0 only), one embedding row changes
        // (dirties every column partition).
        backend
            .ranks
            .push_set(&backend.client, &[0, 1, 2], &[10.0, 11.0, 12.0])
            .unwrap();
        backend
            .embeddings
            .push_add_rows(&backend.client, &[5], &[vec![1.0f32; 4]])
            .unwrap();
        let new_embed_5 = backend.embeddings.pull_rows(&backend.client, &[5]).unwrap().remove(0);

        let mut dw =
            DeltaWriter::new(&backend.dfs, &backend.dir, &backend.manifest, &backend.client);
        assert_eq!(dw.vector_f64(&backend.ranks).unwrap(), 1);
        assert!(dw.colmatrix(&backend.embeddings).unwrap() >= 1);
        assert_eq!(dw.vector_u64(&backend.communities).unwrap(), 0);
        assert_eq!(dw.adjacency(&backend.adjacency).unwrap(), 0);
        let delta = dw.finish().unwrap();

        let stats = cluster.swap_in(&delta).unwrap();
        assert_eq!(stats.shards_rebuilt, 2, "rank patch hits shard 0, embed patch hits both");
        // Stale keys gone — rank 1 and embedding 5 — untouched rank 23
        // kept.
        assert!(stats.keys_invalidated >= 2);
        assert!(cluster.frontend().cache().peek(&(0, 1)).is_none());
        assert!(cluster.frontend().cache().peek(&(2, 5)).is_none());
        assert!(cluster.frontend().cache().peek(&(0, 23)).is_some());

        // Post-swap answers match post-update PS state, bit for bit.
        let outs = cluster.frontend_mut().execute_now(10, t, Query::Rank(1));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Rank(r), cached, .. } => {
                assert!(!cached);
                assert_eq!(r.to_bits(), 11.0f64.to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let outs = cluster.frontend_mut().execute_now(11, t, Query::Embedding(5));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Embedding(e), cached, .. } => {
                assert!(!cached);
                let got: Vec<u32> = e.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = new_embed_5.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // The surviving cache entry still answers, correctly.
        let outs = cluster.frontend_mut().execute_now(12, t, Query::Rank(23));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Rank(r), cached, .. } => {
                assert!(cached);
                assert_eq!(r.to_bits(), truth.ranks[23].to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn swap_reaches_dead_replicas_when_they_rejoin() {
        use psgraph_ps::snapshot::DeltaWriter;

        let cfg = ServeConfig { replicas_per_shard: 1, ..ServeConfig::default() };
        let (mut cluster, _, backend) = ServeCluster::demo_with_ps(24, 4, &cfg).unwrap();
        assert!(cluster.kill_replica(0));

        backend.ranks.push_set(&backend.client, &[1], &[42.0]).unwrap();
        let mut dw =
            DeltaWriter::new(&backend.dfs, &backend.dir, &backend.manifest, &backend.client);
        dw.vector_f64(&backend.ranks).unwrap();
        let delta = dw.finish().unwrap();
        cluster.swap_in(&delta).unwrap();

        // Dead shard: query fails. After revival it serves the *swapped*
        // data — the install reached it while dead.
        let outs = cluster.frontend_mut().execute_now(0, SimTime::ZERO, Query::Rank(1));
        assert!(matches!(outs[0].1, Outcome::Failed(_)));
        assert!(cluster.revive_replica(0));
        let outs =
            cluster.frontend_mut().execute_now(1, SimTime::from_millis(1), Query::Rank(1));
        match &outs[0].1 {
            Outcome::Answered { value: Value::Rank(r), .. } => {
                assert_eq!(r.to_bits(), 42.0f64.to_bits());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn killing_a_replica_degrades_but_stays_correct() {
        let (mut cluster, truth) = small();
        assert_eq!(cluster.live_replicas(), 4);
        assert!(cluster.kill_replica(1));
        assert!(!cluster.kill_replica(1), "already dead");
        assert_eq!(cluster.live_replicas(), 3);
        let mut t = SimTime::ZERO;
        for v in 0..24u64 {
            let outs = cluster.frontend_mut().execute_now(v as usize, t, Query::Rank(v));
            match &outs.last().unwrap().1 {
                Outcome::Answered { value: Value::Rank(r), .. } => {
                    assert_eq!(r.to_bits(), truth.ranks[v as usize].to_bits());
                }
                other => panic!("unexpected outcome {other:?}"),
            }
            t += SimTime::from_micros(20);
        }
        // Kill the whole shard: its uncached queries fail, cached answers
        // and other shards keep working.
        assert!(cluster.kill_replica(0));
        let outs = cluster.frontend_mut().execute_now(100, t, Query::Community(0));
        assert!(matches!(outs[0].1, Outcome::Failed(_)));
        let outs = cluster.frontend_mut().execute_now(101, t, Query::Rank(0));
        assert!(
            matches!(outs[0].1, Outcome::Answered { cached: true, .. }),
            "cached rank survives a dead shard"
        );
        let outs = cluster.frontend_mut().execute_now(102, t, Query::Community(23));
        assert!(matches!(outs[0].1, Outcome::Answered { .. }));
    }
}
