//! Error type for the serving tier.

use psgraph_ps::PsError;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An error surfaced from the parameter-server layer.
    Ps(PsError),
    /// A DFS read failed while loading a snapshot.
    Dfs(String),
    /// The query references a vertex outside the served graph, asks for
    /// data the snapshot does not contain, or is otherwise malformed.
    BadQuery(String),
    /// Every replica of the shard is dead.
    NoReplica { shard: usize },
    /// The snapshot is missing an object the cluster was told to serve.
    MissingObject(String),
}

pub type Result<T> = std::result::Result<T, ServeError>;

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Ps(e) => write!(f, "ps: {e}"),
            ServeError::Dfs(m) => write!(f, "dfs: {m}"),
            ServeError::BadQuery(m) => write!(f, "bad query: {m}"),
            ServeError::NoReplica { shard } => {
                write!(f, "no live replica for shard {shard}")
            }
            ServeError::MissingObject(name) => {
                write!(f, "snapshot has no object named {name}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PsError> for ServeError {
    fn from(e: PsError) -> Self {
        ServeError::Ps(e)
    }
}
