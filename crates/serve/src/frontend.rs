//! The serving frontend: hot-key cache, admission control, batching, and
//! query execution against the replicated shards.
//!
//! One frontend drives the whole tier in simulated time. Point lookups
//! (rank / community / neighbors) are cached, admission-controlled, and
//! batched per shard — a batch is one RPC whose response carries every
//! item, so batching trades a little queueing delay for fewer
//! per-message latencies. Multi-shard queries (embedding gather, top-k,
//! k-hop) fan out to one live replica of each shard and complete at the
//! slowest leg.
//!
//! Admission control sheds load in two regimes: a hard bound on the
//! routed replica's in-flight queue, and an SLO guard that starts
//! shedding once the sliding-window p99 exceeds the target while the
//! queue is half full — bounded queues plus backpressure instead of
//! unbounded tail growth.

use psgraph_harness::Pool;
use psgraph_net::Network;
use psgraph_sim::{FxHashSet, NodeClock, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::cache::LruCache;
use crate::error::{Result, ServeError};
use crate::router::Router;
use crate::shard::{owner_of, Query, ShardSpec, Value};

/// Max candidate set for top-k scoring (2-hop neighborhood, truncated).
pub const TOPK_CANDIDATES: usize = 128;
/// Max frontier per hop for k-hop expansion.
pub const KHOP_FRONTIER_CAP: usize = 4096;
/// Minimum sample count before the SLO guard trusts the window p99.
const SLO_MIN_SAMPLES: usize = 32;

/// Knobs for admission control, batching, and the latency SLO.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Tail-latency target the shedder defends.
    pub slo_p99: SimTime,
    /// Sliding window length (completed queries) for the p99 estimate.
    pub window: usize,
    /// Per-replica in-flight bound; at this depth new queries are shed.
    pub queue_cap: usize,
    /// Flush a shard batch at this many items.
    pub batch_max: usize,
    /// ... or this long after its first item arrived.
    pub batch_window: SimTime,
    /// Server CPU ops charged per served item.
    pub ops_per_item: u64,
    /// Frontend CPU ops charged for a cache hit.
    pub cache_hit_ops: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            slo_p99: SimTime::from_millis(5),
            window: 512,
            queue_cap: 64,
            batch_max: 8,
            batch_window: SimTime::from_micros(200),
            ops_per_item: 4,
            cache_hit_ops: 64,
        }
    }
}

/// Cache key: query-kind tag + vertex.
pub type CacheKey = (u8, u64);

fn cache_key(q: &Query) -> Option<CacheKey> {
    match *q {
        Query::Rank(v) => Some((0, v)),
        Query::Community(v) => Some((1, v)),
        Query::Embedding(v) => Some((2, v)),
        Query::Neighbors(v) => Some((3, v)),
        Query::KHop { .. } | Query::TopK { .. } | Query::TopKAll { .. } => None,
    }
}

/// What happened to one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Answered {
        value: Value,
        latency: SimTime,
        /// Absolute completion time (arrival + latency).
        completed: SimTime,
        /// Served from the frontend cache, no replica touched.
        cached: bool,
    },
    /// Rejected by admission control.
    Shed { reason: &'static str },
    Failed(String),
}

struct BatchItem {
    idx: usize,
    arrival: SimTime,
    query: Query,
}

struct Batch {
    first_arrival: SimTime,
    items: Vec<BatchItem>,
}

/// The serving frontend. Single-threaded driver over simulated time:
/// callers must submit queries in arrival order.
pub struct Frontend {
    router: Router,
    net: Network,
    cache: LruCache<CacheKey, Value>,
    policy: SloPolicy,
    specs: Vec<ShardSpec>,
    num_vertices: u64,
    batches: Vec<Option<Batch>>,
    /// Latencies (ns) of the most recent completions, for the SLO guard.
    recent: VecDeque<u64>,
    answered: u64,
    shed: u64,
    failed: u64,
    /// Pool for multi-shard scatter phases (fan-out legs run
    /// concurrently; results merge in canonical shard order).
    pool: Arc<Pool>,
}

impl Frontend {
    /// Build a frontend over `router`. Every shard must have at least one
    /// replica (dead or alive) so its layout is known.
    pub fn new(
        router: Router,
        net: Network,
        cache_budget: u64,
        policy: SloPolicy,
        num_vertices: u64,
    ) -> Self {
        Frontend::with_pool(
            router,
            net,
            cache_budget,
            policy,
            num_vertices,
            Arc::clone(Pool::global()),
        )
    }

    /// Like [`Frontend::new`] with an explicit scatter pool (thread-count
    /// sweeps, determinism tests).
    pub fn with_pool(
        router: Router,
        net: Network,
        cache_budget: u64,
        policy: SloPolicy,
        num_vertices: u64,
        pool: Arc<Pool>,
    ) -> Self {
        assert!(policy.batch_max >= 1, "batch_max must be at least 1");
        let specs: Vec<ShardSpec> = (0..router.num_shards())
            .map(|s| {
                router.replicas(s).first().expect("shard with no replicas").data().spec
            })
            .collect();
        let batches = (0..router.num_shards()).map(|_| None).collect();
        Frontend {
            router,
            net,
            cache: LruCache::new(cache_budget),
            policy,
            specs,
            num_vertices,
            batches,
            recent: VecDeque::new(),
            answered: 0,
            shed: 0,
            failed: 0,
            pool,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    pub fn cache(&self) -> &LruCache<CacheKey, Value> {
        &self.cache
    }

    /// Drop cached entries whose key fails `keep` — the hot-swap path
    /// calls this with exactly the keys a snapshot delta touched, so
    /// surviving entries are provably still valid. Returns the number
    /// invalidated.
    pub fn invalidate_keys(&mut self, keep: impl FnMut(&CacheKey) -> bool) -> usize {
        self.cache.retain(keep)
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn answered(&self) -> u64 {
        self.answered
    }

    pub fn shed(&self) -> u64 {
        self.shed
    }

    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Submit a query arriving at `arrival`. Returns outcomes that became
    /// known during this step — the submitted query's own outcome when it
    /// completed immediately (cache hit, shed, multi-shard), plus any
    /// batched queries whose batch flushed. Batched point lookups resolve
    /// on a later submit or at [`Frontend::drain`].
    pub fn submit(
        &mut self,
        idx: usize,
        arrival: SimTime,
        query: Query,
    ) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        self.flush_due(arrival, &mut out);
        self.handle(idx, arrival, query, false, &mut out);
        out
    }

    /// Like [`Frontend::submit`] but never leaves the query pending in a
    /// batch — used by closed-loop load generators that need the outcome
    /// before issuing the worker's next query.
    pub fn execute_now(
        &mut self,
        idx: usize,
        arrival: SimTime,
        query: Query,
    ) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        self.flush_due(arrival, &mut out);
        self.handle(idx, arrival, query, true, &mut out);
        out
    }

    /// Flush every pending batch (end of workload).
    pub fn drain(&mut self) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        for shard in 0..self.batches.len() {
            if let Some(b) = &self.batches[shard] {
                let t = b.first_arrival + self.policy.batch_window;
                self.flush_batch(shard, t, &mut out);
            }
        }
        out
    }

    /// The sliding-window p99 latency, once enough samples exist.
    pub fn window_p99(&self) -> Option<SimTime> {
        if self.recent.len() < SLO_MIN_SAMPLES {
            return None;
        }
        let mut v: Vec<u64> = self.recent.iter().copied().collect();
        v.sort_unstable();
        let rank = ((v.len() as f64) * 0.99).ceil() as usize;
        Some(SimTime::from_nanos(v[rank.clamp(1, v.len()) - 1]))
    }

    fn record_latency(&mut self, latency: SimTime) {
        if self.recent.len() == self.policy.window {
            self.recent.pop_front();
        }
        self.recent.push_back(latency.as_nanos());
    }

    fn flush_due(&mut self, now: SimTime, out: &mut Vec<(usize, Outcome)>) {
        for shard in 0..self.batches.len() {
            let due = match &self.batches[shard] {
                Some(b) => b.first_arrival + self.policy.batch_window <= now,
                None => false,
            };
            if due {
                let t = self.batches[shard].as_ref().unwrap().first_arrival
                    + self.policy.batch_window;
                self.flush_batch(shard, t, out);
            }
        }
    }

    fn answer(
        &mut self,
        idx: usize,
        arrival: SimTime,
        completed: SimTime,
        value: Value,
        cached: bool,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let latency = completed.saturating_sub(arrival);
        self.record_latency(latency);
        self.answered += 1;
        out.push((idx, Outcome::Answered { value, latency, completed, cached }));
    }

    fn fail(&mut self, idx: usize, err: ServeError, out: &mut Vec<(usize, Outcome)>) {
        self.failed += 1;
        out.push((idx, Outcome::Failed(err.to_string())));
    }

    fn handle(
        &mut self,
        idx: usize,
        arrival: SimTime,
        query: Query,
        immediate: bool,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let v = query.vertex();
        if v >= self.num_vertices {
            self.fail(
                idx,
                ServeError::BadQuery(format!(
                    "vertex {v} out of range (graph has {})",
                    self.num_vertices
                )),
                out,
            );
            return;
        }

        if let Some(key) = cache_key(&query) {
            if let Some(value) = self.cache.get(&key).cloned() {
                let done = arrival + self.net.cost_model().cpu_cost(self.policy.cache_hit_ops);
                self.answer(idx, arrival, done, value, true, out);
                return;
            }
        }

        // Admission control against the replica the query would land on.
        let primary = owner_of(v, self.num_vertices, self.specs.len());
        let rep = match self.router.route(primary, arrival) {
            Some(r) => r,
            None => {
                self.fail(idx, ServeError::NoReplica { shard: primary }, out);
                return;
            }
        };
        let load = rep.load_at(arrival);
        if load >= self.policy.queue_cap {
            self.shed += 1;
            out.push((idx, Outcome::Shed { reason: "queue full" }));
            return;
        }
        if load > self.policy.queue_cap / 2 {
            if let Some(p99) = self.window_p99() {
                if p99 > self.policy.slo_p99 {
                    self.shed += 1;
                    out.push((idx, Outcome::Shed { reason: "p99 over SLO" }));
                    return;
                }
            }
        }

        match query {
            Query::Rank(_) | Query::Community(_) | Query::Neighbors(_) => {
                let batch = self.batches[primary].get_or_insert_with(|| Batch {
                    first_arrival: arrival,
                    items: Vec::new(),
                });
                batch.items.push(BatchItem { idx, arrival, query });
                if immediate || self.batches[primary].as_ref().unwrap().items.len()
                    >= self.policy.batch_max
                {
                    self.flush_batch(primary, arrival, out);
                }
            }
            Query::Embedding(_) => self.execute_embedding(idx, arrival, v, out),
            Query::KHop { hops, .. } => self.execute_khop(idx, arrival, v, hops, out),
            Query::TopK { k, .. } => self.execute_topk(idx, arrival, v, k, out),
            Query::TopKAll { k, .. } => self.execute_topk_all(idx, arrival, v, k, out),
        }
    }

    fn compute_point(data: &crate::shard::ShardData, query: Query) -> Result<Value> {
        match query {
            Query::Rank(v) => data.rank(v).map(Value::Rank),
            Query::Community(v) => data.community(v).map(Value::Community),
            Query::Neighbors(v) => data.neighbors(v).map(|n| Value::Neighbors(n.to_vec())),
            _ => unreachable!("only point lookups are batched"),
        }
    }

    fn flush_batch(&mut self, shard: usize, t_flush: SimTime, out: &mut Vec<(usize, Outcome)>) {
        let Some(batch) = self.batches[shard].take() else { return };
        let rep = match self.router.route(shard, t_flush) {
            Some(r) => r,
            None => {
                for item in batch.items {
                    self.fail(item.idx, ServeError::NoReplica { shard }, out);
                }
                return;
            }
        };

        let data = rep.data();
        let mut ops = 0u64;
        let mut resp_bytes = 16u64;
        let mut results = Vec::with_capacity(batch.items.len());
        for item in &batch.items {
            let res = Self::compute_point(&data, item.query);
            if let Ok(value) = &res {
                ops += self.policy.ops_per_item;
                if let Value::Neighbors(n) = value {
                    ops += n.len() as u64;
                }
                resp_bytes += value.approx_bytes();
            }
            results.push(res);
        }
        let req_bytes = 16 + 16 * batch.items.len() as u64;

        let clock = NodeClock::new();
        clock.advance(t_flush);
        self.net.rpc(&clock, rep.port(), req_bytes, ops, resp_bytes);
        let done = clock.now();

        for (item, res) in batch.items.into_iter().zip(results) {
            rep.record_completion(item.arrival, done);
            match res {
                Ok(value) => {
                    if let Some(key) = cache_key(&item.query) {
                        self.cache.insert(key, value.clone(), value.approx_bytes());
                    }
                    self.answer(item.idx, item.arrival, done, value, false, out);
                }
                Err(e) => self.fail(item.idx, e, out),
            }
        }
    }

    /// Gather `v`'s full embedding row across the column shards. Returns
    /// the row (column slices concatenated in column order) and the
    /// slowest leg's completion time.
    ///
    /// The per-shard legs run concurrently on the frontend pool; results
    /// merge serially in shard order (the deterministic reduction rule),
    /// so the row bytes and the first-error choice are identical for
    /// every pool size.
    fn gather_embedding(&self, v: u64, arrival: SimTime) -> Result<(Vec<f32>, SimTime)> {
        let shards: Vec<usize> =
            (0..self.specs.len()).filter(|&s| self.specs[s].col_width() != 0).collect();
        let router = &self.router;
        let net = &self.net;
        let specs = &self.specs;
        let ops_per_item = self.policy.ops_per_item;
        let legs: Vec<Result<(usize, Vec<f32>, SimTime)>> =
            self.pool.map(shards, move |shard| {
                let width = specs[shard].col_width() as u64;
                let rep =
                    router.route(shard, arrival).ok_or(ServeError::NoReplica { shard })?;
                let clock = NodeClock::new();
                clock.advance(arrival);
                net.rpc(&clock, rep.port(), 24, ops_per_item + width, 16 + 4 * width);
                let done = clock.now();
                rep.record_completion(arrival, done);
                let data = rep.data();
                let slice = data.embed_cols(v)?.to_vec();
                Ok((data.spec.col_lo, slice, done))
            });
        let mut parts: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut done_max = arrival;
        for leg in legs {
            let (lo, slice, done) = leg?;
            parts.push((lo, slice));
            done_max = done_max.max(done);
        }
        if parts.is_empty() {
            return Err(ServeError::BadQuery("no embeddings served".into()));
        }
        parts.sort_by_key(|(lo, _)| *lo);
        Ok((parts.into_iter().flat_map(|(_, s)| s).collect(), done_max))
    }

    fn execute_embedding(
        &mut self,
        idx: usize,
        arrival: SimTime,
        v: u64,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let (full, done_max) = match self.gather_embedding(v, arrival) {
            Ok(x) => x,
            Err(e) => return self.fail(idx, e, out),
        };
        let value = Value::Embedding(full);
        self.cache.insert((2, v), value.clone(), value.approx_bytes());
        self.answer(idx, arrival, done_max, value, false, out);
    }

    /// Fetch neighbor lists of `vertices` (grouped by owner shard) at
    /// time `at`. Returns the lists in input order plus the slowest
    /// completion.
    fn fetch_neighbors(
        &self,
        vertices: &[u64],
        at: SimTime,
    ) -> Result<(Vec<Vec<u64>>, SimTime)> {
        let num_shards = self.specs.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (i, &u) in vertices.iter().enumerate() {
            by_shard[owner_of(u, self.num_vertices, num_shards)].push(i);
        }
        let work: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        let router = &self.router;
        let net = &self.net;
        let ops_per_item = self.policy.ops_per_item;
        // One concurrent leg per owner shard; merged in shard order.
        let legs: Vec<Result<(Vec<(usize, Vec<u64>)>, SimTime)>> =
            self.pool.map(work, move |(shard, idxs)| {
                let rep = router.route(shard, at).ok_or(ServeError::NoReplica { shard })?;
                let data = rep.data();
                // Compute first so the response size is the real payload.
                let mut ops = 0u64;
                let mut resp = 16u64;
                let mut got: Vec<(usize, Vec<u64>)> = Vec::with_capacity(idxs.len());
                for &i in &idxs {
                    let ns = data.neighbors(vertices[i])?;
                    ops += ops_per_item + ns.len() as u64;
                    resp += 8 * ns.len() as u64;
                    got.push((i, ns.to_vec()));
                }
                let clock = NodeClock::new();
                clock.advance(at);
                net.rpc(&clock, rep.port(), 16 + 8 * idxs.len() as u64, ops, resp);
                let done = clock.now();
                rep.record_completion(at, done);
                Ok((got, done))
            });
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); vertices.len()];
        let mut done_max = at;
        for leg in legs {
            let (got, done) = leg?;
            for (i, ns) in got {
                lists[i] = ns;
            }
            done_max = done_max.max(done);
        }
        Ok((lists, done_max))
    }

    fn execute_khop(
        &mut self,
        idx: usize,
        arrival: SimTime,
        v: u64,
        hops: u32,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let mut visited: FxHashSet<u64> = FxHashSet::default();
        visited.insert(v);
        let mut frontier = vec![v];
        let mut t = arrival;
        for _ in 0..hops {
            if frontier.is_empty() {
                break;
            }
            let (lists, done) = match self.fetch_neighbors(&frontier, t) {
                Ok(x) => x,
                Err(e) => return self.fail(idx, e, out),
            };
            let mut next: Vec<u64> =
                lists.into_iter().flatten().filter(|u| !visited.contains(u)).collect();
            next.sort_unstable();
            next.dedup();
            next.truncate(KHOP_FRONTIER_CAP);
            visited.extend(next.iter().copied());
            frontier = next;
            t = done;
        }
        let mut result: Vec<u64> = visited.into_iter().filter(|&u| u != v).collect();
        result.sort_unstable();
        self.answer(idx, arrival, t, Value::Vertices(result), false, out);
    }

    fn execute_topk(
        &mut self,
        idx: usize,
        arrival: SimTime,
        v: u64,
        k: usize,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        // Hop 1: v's own neighbors.
        let (hop1, t1) = match self.fetch_neighbors(&[v], arrival) {
            Ok(x) => x,
            Err(e) => return self.fail(idx, e, out),
        };
        let hop1 = hop1.into_iter().next().unwrap_or_default();
        // Hop 2: their neighbors.
        let (hop2, t2) = if hop1.is_empty() {
            (Vec::new(), t1)
        } else {
            match self.fetch_neighbors(&hop1, t1) {
                Ok(x) => x,
                Err(e) => return self.fail(idx, e, out),
            }
        };
        let mut cands: Vec<u64> = hop1;
        cands.extend(hop2.into_iter().flatten());
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|&u| u != v);
        cands.truncate(TOPK_CANDIDATES);
        if cands.is_empty() {
            return self.answer(idx, arrival, t2, Value::Ranked(Vec::new()), false, out);
        }

        // Score: partial dot products on every column shard, merged here —
        // summed in shard order so the reference implementation can match
        // the float association exactly.
        let mut scores = vec![0.0f64; cands.len()];
        let mut done_max = t2;
        for shard in 0..self.specs.len() {
            let width = self.specs[shard].col_width() as u64;
            if width == 0 {
                continue;
            }
            let rep = match self.router.route(shard, t2) {
                Some(r) => r,
                None => return self.fail(idx, ServeError::NoReplica { shard }, out),
            };
            let partials = match rep.data().partial_dots(v, &cands) {
                Ok(p) => p,
                Err(e) => return self.fail(idx, e, out),
            };
            let ops = cands.len() as u64 * (2 * width + self.policy.ops_per_item);
            let clock = NodeClock::new();
            clock.advance(t2);
            self.net.rpc(
                &clock,
                rep.port(),
                24 + 8 * cands.len() as u64,
                ops,
                16 + 8 * cands.len() as u64,
            );
            let done = clock.now();
            rep.record_completion(t2, done);
            done_max = done_max.max(done);
            for (s, p) in scores.iter_mut().zip(partials) {
                *s += p;
            }
        }

        let mut ranked: Vec<(u64, f64)> = cands.into_iter().zip(scores).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        self.answer(idx, arrival, done_max, Value::Ranked(ranked), false, out);
    }

    /// Cross-shard scatter-gather top-k over *all* vertices: gather the
    /// query row (cache-served like an Embedding query), ship it to every
    /// shard, each shard returns the top-k of its own vertex range, and
    /// the frontend merges. Per-shard lists are exact under the same total
    /// order the merge uses, so the merged result is the exact global
    /// top-k — no candidate truncation like the 2-hop `TopK` plan.
    fn execute_topk_all(
        &mut self,
        idx: usize,
        arrival: SimTime,
        v: u64,
        k: usize,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let (q, t_q) = match self.cache.get(&(2, v)).cloned() {
            Some(Value::Embedding(e)) => {
                (e, arrival + self.net.cost_model().cpu_cost(self.policy.cache_hit_ops))
            }
            _ => {
                let (q, done) = match self.gather_embedding(v, arrival) {
                    Ok(x) => x,
                    Err(e) => return self.fail(idx, e, out),
                };
                let value = Value::Embedding(q.clone());
                self.cache.insert((2, v), value.clone(), value.approx_bytes());
                (q, done)
            }
        };
        let dim = q.len() as u64;
        // Scatter: one concurrent leg per vertex shard (the heaviest op in
        // the serve tier); the gather below merges in shard order so the
        // global ranking is identical for every pool size.
        let shards: Vec<usize> = (0..self.specs.len())
            .filter(|&s| self.specs[s].vertex_hi - self.specs[s].vertex_lo != 0)
            .collect();
        let router = &self.router;
        let net = &self.net;
        let specs = &self.specs;
        let ops_per_item = self.policy.ops_per_item;
        let q_ref = &q;
        let legs: Vec<Result<(Vec<(u64, f64)>, SimTime)>> =
            self.pool.map(shards, move |shard| {
                let local = specs[shard].vertex_hi - specs[shard].vertex_lo;
                let ops = local * (2 * dim + ops_per_item);
                let resp = 16 + 16 * (k as u64).min(local);
                let rep = router.route(shard, t_q).ok_or(ServeError::NoReplica { shard })?;
                let clock = NodeClock::new();
                clock.advance(t_q);
                net.rpc(&clock, rep.port(), 24 + 4 * dim, ops, resp);
                let done = clock.now();
                rep.record_completion(t_q, done);
                let top = rep.data().local_topk(q_ref, k, v)?;
                Ok((top, done))
            });
        let mut merged: Vec<(u64, f64)> = Vec::new();
        let mut done_max = t_q;
        for leg in legs {
            let (top, done) = match leg {
                Ok(x) => x,
                Err(e) => return self.fail(idx, e, out),
            };
            merged.extend(top);
            done_max = done_max.max(done);
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        self.answer(idx, arrival, done_max, Value::Ranked(merged), false, out);
    }
}

/// Driver-side reference answers, mirroring the frontend's algorithms
/// (candidate caps, tie-breaks, and float association included) but
/// reading full truth arrays instead of snapshot shards. The `repro --
/// serve` experiment checks every served answer against these.
pub mod reference {
    use super::{KHOP_FRONTIER_CAP, TOPK_CANDIDATES};
    use crate::shard::col_range;
    use psgraph_sim::FxHashSet;

    /// Vertices within `hops` hops of `v`, excluding `v`, sorted.
    pub fn khop(adj: &[Vec<u64>], v: u64, hops: u32) -> Vec<u64> {
        let mut visited: FxHashSet<u64> = FxHashSet::default();
        visited.insert(v);
        let mut frontier = vec![v];
        for _ in 0..hops {
            if frontier.is_empty() {
                break;
            }
            let mut next: Vec<u64> = frontier
                .iter()
                .flat_map(|&u| adj[u as usize].iter().copied())
                .filter(|u| !visited.contains(u))
                .collect();
            next.sort_unstable();
            next.dedup();
            next.truncate(KHOP_FRONTIER_CAP);
            visited.extend(next.iter().copied());
            frontier = next;
        }
        let mut result: Vec<u64> = visited.into_iter().filter(|&u| u != v).collect();
        result.sort_unstable();
        result
    }

    /// Top-`k` 2-hop neighbors of `v` by embedding dot product, with the
    /// same per-column-shard partial-sum association the serving tier
    /// uses.
    pub fn topk(
        embed: &[Vec<f32>],
        adj: &[Vec<u64>],
        v: u64,
        k: usize,
        num_shards: usize,
    ) -> Vec<(u64, f64)> {
        let hop1 = &adj[v as usize];
        let mut cands: Vec<u64> = hop1.clone();
        cands.extend(hop1.iter().flat_map(|&u| adj[u as usize].iter().copied()));
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|&u| u != v);
        cands.truncate(TOPK_CANDIDATES);
        let dim = embed.first().map_or(0, Vec::len);
        let mut ranked: Vec<(u64, f64)> = cands
            .into_iter()
            .map(|c| {
                let mut total = 0.0f64;
                for shard in 0..num_shards {
                    let (lo, hi) = col_range(shard, dim, num_shards);
                    let mut partial = 0.0f64;
                    for j in lo..hi {
                        partial +=
                            embed[v as usize][j] as f64 * embed[c as usize][j] as f64;
                    }
                    total += partial;
                }
                (c, total)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Exact top-`k` over *all* vertices by embedding dot product with
    /// `v` — the truth path for `Query::TopKAll`. Scores accumulate over
    /// the full row in column order, matching the shard-local scoring of
    /// `ShardData::local_topk` bit for bit.
    pub fn topk_all(embed: &[Vec<f32>], v: u64, k: usize) -> Vec<(u64, f64)> {
        let q = &embed[v as usize];
        let mut ranked: Vec<(u64, f64)> = (0..embed.len() as u64)
            .filter(|&u| u != v)
            .map(|u| {
                let score: f64 = q
                    .iter()
                    .zip(&embed[u as usize])
                    .map(|(a, b)| *a as f64 * *b as f64)
                    .sum();
                (u, score)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}
