//! The serving frontend: hot-key cache, admission control, batching, and
//! query execution against the replicated shards.
//!
//! One frontend drives the whole tier in simulated time. Point lookups
//! (rank / community / neighbors) are cached, admission-controlled, and
//! batched per shard — a batch is one RPC whose response carries every
//! item, so batching trades a little queueing delay for fewer
//! per-message latencies. Multi-shard queries (embedding gather, top-k,
//! k-hop) fan out to one live replica of each shard and complete at the
//! slowest leg.
//!
//! Admission control sheds load in two regimes: a hard bound on the
//! routed replica's in-flight queue, and an SLO guard that starts
//! shedding once the sliding-window p99 exceeds the target while the
//! queue is half full — bounded queues plus backpressure instead of
//! unbounded tail growth.
//!
//! Compound queries are [`Plan`]s (`psgraph-query`): the legacy
//! `Query::KHop`/`TopK`/`TopKAll` variants compile to plans via the
//! `Plan::khop`/`topk`/`topk_all` constructors and run through the same
//! executor as caller-built compound plans. For `All`-source plans the
//! cost-based planner picks a prefix to push shard-side
//! ([`psgraph_query::decide`]); each shard evaluates it over its own
//! vertex range and the frontend merges partials in canonical shard
//! order before running the remaining suffix — so answers are
//! bit-identical to the single-node interpreter at any shard count,
//! pool size, or pushdown decision.

use psgraph_harness::Pool;
use psgraph_net::Network;
use psgraph_query::exec::{self, PushedPartial};
use psgraph_query::plan::{DotAssoc, ExpandMode, Plan, Scorer, Source, Stage};
use psgraph_query::{decide, PushPolicy, TierStats};
use psgraph_sim::{NodeClock, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::cache::LruCache;
use crate::error::{Result, ServeError};
use crate::router::Router;
use crate::shard::{owner_of, Query, ShardSpec, Value};

// The caps live with the plan IR now; re-exported for API compatibility.
pub use psgraph_query::plan::{KHOP_FRONTIER_CAP, TOPK_CANDIDATES};

/// Minimum sample count before the SLO guard trusts the window p99.
const SLO_MIN_SAMPLES: usize = 32;

/// Knobs for admission control, batching, and the latency SLO.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Tail-latency target the shedder defends.
    pub slo_p99: SimTime,
    /// Sliding window length (completed queries) for the p99 estimate.
    pub window: usize,
    /// Per-replica in-flight bound; at this depth new queries are shed.
    pub queue_cap: usize,
    /// Flush a shard batch at this many items.
    pub batch_max: usize,
    /// ... or this long after its first item arrived.
    pub batch_window: SimTime,
    /// Server CPU ops charged per served item.
    pub ops_per_item: u64,
    /// Frontend CPU ops charged for a cache hit.
    pub cache_hit_ops: u64,
    /// Flush a point-lookup batch immediately when the routed replica is
    /// idle (TCP_NODELAY-style): batching only pays off when there is a
    /// queue to amortize against, and waiting out `batch_window` on an
    /// idle tier puts the whole window into p99.
    pub adaptive_flush: bool,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            slo_p99: SimTime::from_millis(5),
            window: 512,
            queue_cap: 64,
            batch_max: 8,
            batch_window: SimTime::from_micros(200),
            ops_per_item: 4,
            cache_hit_ops: 64,
            adaptive_flush: true,
        }
    }
}

/// Cumulative counters for compound-plan execution, exposed per run as
/// deltas in `LoadReport` and the query bench JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCounters {
    /// Plans executed (answered or failed, not shed).
    pub plans: u64,
    /// Plans whose pushed prefix was non-empty.
    pub pushed_plans: u64,
    /// Total stages evaluated shard-side across all plans.
    pub stages_pushed: u64,
    /// Bytes shipped shard→frontend across all plan RPC responses.
    pub shard_bytes: u64,
    /// Rows pruned by stage kind (shard-side and frontend combined).
    pub pruned_filter: u64,
    pub pruned_score: u64,
    pub pruned_topk: u64,
    pub pruned_collect: u64,
}

impl PlanCounters {
    /// Rows pruned across all stage kinds.
    pub fn rows_pruned(&self) -> u64 {
        self.pruned_filter + self.pruned_score + self.pruned_topk + self.pruned_collect
    }

    /// `self - earlier`, fieldwise (per-run deltas from cumulative
    /// counters).
    pub fn minus(&self, earlier: &PlanCounters) -> PlanCounters {
        PlanCounters {
            plans: self.plans - earlier.plans,
            pushed_plans: self.pushed_plans - earlier.pushed_plans,
            stages_pushed: self.stages_pushed - earlier.stages_pushed,
            shard_bytes: self.shard_bytes - earlier.shard_bytes,
            pruned_filter: self.pruned_filter - earlier.pruned_filter,
            pruned_score: self.pruned_score - earlier.pruned_score,
            pruned_topk: self.pruned_topk - earlier.pruned_topk,
            pruned_collect: self.pruned_collect - earlier.pruned_collect,
        }
    }
}

/// Per-plan accumulator threaded through the executor legs.
#[derive(Debug, Default)]
struct LegAcc {
    cut: usize,
    bytes: u64,
    pruned_filter: u64,
    pruned_score: u64,
    pruned_topk: u64,
    pruned_collect: u64,
}

/// Cache key: query-kind tag + vertex.
pub type CacheKey = (u8, u64);

fn cache_key(q: &Query) -> Option<CacheKey> {
    match *q {
        Query::Rank(v) => Some((0, v)),
        Query::Community(v) => Some((1, v)),
        Query::Embedding(v) => Some((2, v)),
        Query::Neighbors(v) => Some((3, v)),
        Query::KHop { .. } | Query::TopK { .. } | Query::TopKAll { .. } => None,
    }
}

/// What happened to one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Answered {
        value: Value,
        latency: SimTime,
        /// Absolute completion time (arrival + latency).
        completed: SimTime,
        /// Served from the frontend cache, no replica touched.
        cached: bool,
    },
    /// Rejected by admission control.
    Shed { reason: &'static str },
    Failed(String),
}

struct BatchItem {
    idx: usize,
    arrival: SimTime,
    query: Query,
}

struct Batch {
    first_arrival: SimTime,
    items: Vec<BatchItem>,
}

/// The serving frontend. Single-threaded driver over simulated time:
/// callers must submit queries in arrival order.
pub struct Frontend {
    router: Router,
    net: Network,
    cache: LruCache<CacheKey, Value>,
    policy: SloPolicy,
    specs: Vec<ShardSpec>,
    num_vertices: u64,
    batches: Vec<Option<Batch>>,
    /// Latencies (ns) of the most recent completions, for the SLO guard.
    recent: VecDeque<u64>,
    answered: u64,
    shed: u64,
    failed: u64,
    /// Pool for multi-shard scatter phases (fan-out legs run
    /// concurrently; results merge in canonical shard order).
    pool: Arc<Pool>,
    /// Per-shard statistics feeding the pushdown cost model; refreshed
    /// on snapshot hot-swaps.
    stats: TierStats,
    push_policy: PushPolicy,
    metrics: PlanCounters,
}

impl Frontend {
    /// Build a frontend over `router`. Every shard must have at least one
    /// replica (dead or alive) so its layout is known.
    pub fn new(
        router: Router,
        net: Network,
        cache_budget: u64,
        policy: SloPolicy,
        num_vertices: u64,
    ) -> Self {
        Frontend::with_pool(
            router,
            net,
            cache_budget,
            policy,
            num_vertices,
            Arc::clone(Pool::global()),
        )
    }

    /// Like [`Frontend::new`] with an explicit scatter pool (thread-count
    /// sweeps, determinism tests).
    pub fn with_pool(
        router: Router,
        net: Network,
        cache_budget: u64,
        policy: SloPolicy,
        num_vertices: u64,
        pool: Arc<Pool>,
    ) -> Self {
        assert!(policy.batch_max >= 1, "batch_max must be at least 1");
        let specs: Vec<ShardSpec> = (0..router.num_shards())
            .map(|s| {
                router.replicas(s).first().expect("shard with no replicas").data().spec
            })
            .collect();
        let batches = (0..router.num_shards()).map(|_| None).collect();
        let stats = Self::tier_stats(&router);
        Frontend {
            router,
            net,
            cache: LruCache::new(cache_budget),
            policy,
            specs,
            num_vertices,
            batches,
            recent: VecDeque::new(),
            answered: 0,
            shed: 0,
            failed: 0,
            pool,
            stats,
            push_policy: PushPolicy::default(),
            metrics: PlanCounters::default(),
        }
    }

    fn tier_stats(router: &Router) -> TierStats {
        TierStats {
            shards: (0..router.num_shards())
                .map(|s| {
                    router
                        .replicas(s)
                        .first()
                        .expect("shard with no replicas")
                        .data()
                        .stats()
                })
                .collect(),
        }
    }

    /// Recompute shard statistics from the currently-installed data (the
    /// hot-swap path calls this after installing a delta).
    pub fn refresh_stats(&mut self) {
        self.stats = Self::tier_stats(&self.router);
    }

    pub fn push_policy(&self) -> PushPolicy {
        self.push_policy
    }

    pub fn set_push_policy(&mut self, policy: PushPolicy) {
        self.push_policy = policy;
    }

    /// Cumulative compound-plan counters.
    pub fn plan_counters(&self) -> PlanCounters {
        self.metrics
    }

    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    pub fn cache(&self) -> &LruCache<CacheKey, Value> {
        &self.cache
    }

    /// Drop cached entries whose key fails `keep` — the hot-swap path
    /// calls this with exactly the keys a snapshot delta touched, so
    /// surviving entries are provably still valid. Returns the number
    /// invalidated.
    pub fn invalidate_keys(&mut self, keep: impl FnMut(&CacheKey) -> bool) -> usize {
        self.cache.retain(keep)
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn answered(&self) -> u64 {
        self.answered
    }

    pub fn shed(&self) -> u64 {
        self.shed
    }

    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Submit a query arriving at `arrival`. Returns outcomes that became
    /// known during this step — the submitted query's own outcome when it
    /// completed immediately (cache hit, shed, multi-shard), plus any
    /// batched queries whose batch flushed. Batched point lookups resolve
    /// on a later submit or at [`Frontend::drain`].
    pub fn submit(
        &mut self,
        idx: usize,
        arrival: SimTime,
        query: Query,
    ) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        self.flush_due(arrival, &mut out);
        self.handle(idx, arrival, query, false, &mut out);
        out
    }

    /// Like [`Frontend::submit`] but never leaves the query pending in a
    /// batch — used by closed-loop load generators that need the outcome
    /// before issuing the worker's next query.
    pub fn execute_now(
        &mut self,
        idx: usize,
        arrival: SimTime,
        query: Query,
    ) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        self.flush_due(arrival, &mut out);
        self.handle(idx, arrival, query, true, &mut out);
        out
    }

    /// Submit a compound plan arriving at `arrival`. Plans always
    /// complete within the step (they are never batched), but flushing
    /// due batches first may resolve earlier point lookups too.
    pub fn submit_plan(
        &mut self,
        idx: usize,
        arrival: SimTime,
        plan: &Plan,
    ) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        self.flush_due(arrival, &mut out);
        self.handle_plan(idx, arrival, plan, &mut out);
        out
    }

    /// Alias of [`Frontend::submit_plan`] for closed-loop callers, by
    /// analogy with [`Frontend::execute_now`].
    pub fn execute_plan_now(
        &mut self,
        idx: usize,
        arrival: SimTime,
        plan: &Plan,
    ) -> Vec<(usize, Outcome)> {
        self.submit_plan(idx, arrival, plan)
    }

    /// Flush every pending batch (end of workload).
    pub fn drain(&mut self) -> Vec<(usize, Outcome)> {
        let mut out = Vec::new();
        for shard in 0..self.batches.len() {
            if let Some(b) = &self.batches[shard] {
                let t = b.first_arrival + self.policy.batch_window;
                self.flush_batch(shard, t, &mut out);
            }
        }
        out
    }

    /// The sliding-window p99 latency, once enough samples exist.
    pub fn window_p99(&self) -> Option<SimTime> {
        if self.recent.len() < SLO_MIN_SAMPLES {
            return None;
        }
        let mut v: Vec<u64> = self.recent.iter().copied().collect();
        v.sort_unstable();
        let rank = ((v.len() as f64) * 0.99).ceil() as usize;
        Some(SimTime::from_nanos(v[rank.clamp(1, v.len()) - 1]))
    }

    fn record_latency(&mut self, latency: SimTime) {
        if self.recent.len() == self.policy.window {
            self.recent.pop_front();
        }
        self.recent.push_back(latency.as_nanos());
    }

    fn flush_due(&mut self, now: SimTime, out: &mut Vec<(usize, Outcome)>) {
        for shard in 0..self.batches.len() {
            let due = match &self.batches[shard] {
                Some(b) => b.first_arrival + self.policy.batch_window <= now,
                None => false,
            };
            if due {
                let t = self.batches[shard].as_ref().unwrap().first_arrival
                    + self.policy.batch_window;
                self.flush_batch(shard, t, out);
            }
        }
    }

    fn answer(
        &mut self,
        idx: usize,
        arrival: SimTime,
        completed: SimTime,
        value: Value,
        cached: bool,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let latency = completed.saturating_sub(arrival);
        self.record_latency(latency);
        self.answered += 1;
        out.push((idx, Outcome::Answered { value, latency, completed, cached }));
    }

    fn fail(&mut self, idx: usize, err: ServeError, out: &mut Vec<(usize, Outcome)>) {
        self.failed += 1;
        out.push((idx, Outcome::Failed(err.to_string())));
    }

    /// Route + admission-check against shard `primary`'s least-loaded
    /// replica. Returns that replica's load, or `None` after pushing a
    /// shed/failed outcome.
    fn admit(
        &mut self,
        idx: usize,
        arrival: SimTime,
        primary: usize,
        out: &mut Vec<(usize, Outcome)>,
    ) -> Option<usize> {
        let rep = match self.router.route(primary, arrival) {
            Some(r) => r,
            None => {
                self.fail(idx, ServeError::NoReplica { shard: primary }, out);
                return None;
            }
        };
        let load = rep.load_at(arrival);
        if load >= self.policy.queue_cap {
            self.shed += 1;
            out.push((idx, Outcome::Shed { reason: "queue full" }));
            return None;
        }
        if load > self.policy.queue_cap / 2 {
            if let Some(p99) = self.window_p99() {
                if p99 > self.policy.slo_p99 {
                    self.shed += 1;
                    out.push((idx, Outcome::Shed { reason: "p99 over SLO" }));
                    return None;
                }
            }
        }
        Some(load)
    }

    fn handle(
        &mut self,
        idx: usize,
        arrival: SimTime,
        query: Query,
        immediate: bool,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let v = query.vertex();
        if v >= self.num_vertices {
            self.fail(
                idx,
                ServeError::BadQuery(format!(
                    "vertex {v} out of range (graph has {})",
                    self.num_vertices
                )),
                out,
            );
            return;
        }

        if let Some(key) = cache_key(&query) {
            if let Some(value) = self.cache.get(&key).cloned() {
                let done = arrival + self.net.cost_model().cpu_cost(self.policy.cache_hit_ops);
                self.answer(idx, arrival, done, value, true, out);
                return;
            }
        }

        // Admission control against the replica the query would land on.
        let primary = owner_of(v, self.num_vertices, self.specs.len());
        let Some(load) = self.admit(idx, arrival, primary, out) else { return };

        match query {
            Query::Rank(_) | Query::Community(_) | Query::Neighbors(_) => {
                let batch = self.batches[primary].get_or_insert_with(|| Batch {
                    first_arrival: arrival,
                    items: Vec::new(),
                });
                batch.items.push(BatchItem { idx, arrival, query });
                // Adaptive flush: with the routed replica idle there is
                // nothing to amortize against — holding the item only
                // buys it the full batch window of latency.
                if immediate
                    || self.batches[primary].as_ref().unwrap().items.len()
                        >= self.policy.batch_max
                    || (self.policy.adaptive_flush && load == 0)
                {
                    self.flush_batch(primary, arrival, out);
                }
            }
            Query::Embedding(_) => self.execute_embedding(idx, arrival, v, out),
            Query::KHop { hops, .. } => {
                let plan = Plan::khop(v, hops);
                self.run_plan(idx, arrival, &plan, out);
            }
            Query::TopK { k, .. } => {
                let plan = Plan::topk(v, k);
                self.run_plan(idx, arrival, &plan, out);
            }
            Query::TopKAll { k, .. } => {
                let plan = Plan::topk_all(v, k);
                self.run_plan(idx, arrival, &plan, out);
            }
        }
    }

    /// Validate, bounds-check, and admission-check a compound plan, then
    /// execute it.
    fn handle_plan(
        &mut self,
        idx: usize,
        arrival: SimTime,
        plan: &Plan,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        if let Err(e) = plan.validate() {
            return self.fail(idx, ServeError::BadQuery(e.to_string()), out);
        }
        let anchor = plan.anchor();
        if let Some(v) = anchor {
            if v >= self.num_vertices {
                return self.fail(
                    idx,
                    ServeError::BadQuery(format!(
                        "vertex {v} out of range (graph has {})",
                        self.num_vertices
                    )),
                    out,
                );
            }
        }
        // Admission against the anchor's shard (plans without an anchor
        // scatter everywhere; gate on shard 0 as the canonical proxy).
        let primary = anchor
            .map(|v| owner_of(v, self.num_vertices, self.specs.len()))
            .unwrap_or(0);
        if self.admit(idx, arrival, primary, out).is_none() {
            return;
        }
        self.run_plan(idx, arrival, plan, out);
    }

    fn compute_point(data: &crate::shard::ShardData, query: Query) -> Result<Value> {
        match query {
            Query::Rank(v) => data.rank(v).map(Value::Rank),
            Query::Community(v) => data.community(v).map(Value::Community),
            Query::Neighbors(v) => data.neighbors(v).map(|n| Value::Neighbors(n.to_vec())),
            _ => unreachable!("only point lookups are batched"),
        }
    }

    fn flush_batch(&mut self, shard: usize, t_flush: SimTime, out: &mut Vec<(usize, Outcome)>) {
        let Some(batch) = self.batches[shard].take() else { return };
        let rep = match self.router.route(shard, t_flush) {
            Some(r) => r,
            None => {
                for item in batch.items {
                    self.fail(item.idx, ServeError::NoReplica { shard }, out);
                }
                return;
            }
        };

        let data = rep.data();
        let mut ops = 0u64;
        let mut resp_bytes = 16u64;
        let mut results = Vec::with_capacity(batch.items.len());
        for item in &batch.items {
            let res = Self::compute_point(&data, item.query);
            if let Ok(value) = &res {
                ops += self.policy.ops_per_item;
                if let Value::Neighbors(n) = value {
                    ops += n.len() as u64;
                }
                resp_bytes += value.approx_bytes();
            }
            results.push(res);
        }
        let req_bytes = 16 + 16 * batch.items.len() as u64;

        let clock = NodeClock::new();
        clock.advance(t_flush);
        self.net.rpc(&clock, rep.port(), req_bytes, ops, resp_bytes);
        let done = clock.now();

        for (item, res) in batch.items.into_iter().zip(results) {
            rep.record_completion(item.arrival, done);
            match res {
                Ok(value) => {
                    if let Some(key) = cache_key(&item.query) {
                        self.cache.insert(key, value.clone(), value.approx_bytes());
                    }
                    self.answer(item.idx, item.arrival, done, value, false, out);
                }
                Err(e) => self.fail(item.idx, e, out),
            }
        }
    }

    /// Gather `v`'s full embedding row across the column shards. Returns
    /// the row (column slices concatenated in column order), the slowest
    /// leg's completion time, and the response bytes shipped.
    ///
    /// The per-shard legs run concurrently on the frontend pool; results
    /// merge serially in shard order (the deterministic reduction rule),
    /// so the row bytes and the first-error choice are identical for
    /// every pool size.
    fn gather_embedding(&self, v: u64, arrival: SimTime) -> Result<(Vec<f32>, SimTime, u64)> {
        let shards: Vec<usize> =
            (0..self.specs.len()).filter(|&s| self.specs[s].col_width() != 0).collect();
        let router = &self.router;
        let net = &self.net;
        let specs = &self.specs;
        let ops_per_item = self.policy.ops_per_item;
        let legs: Vec<Result<(usize, Vec<f32>, SimTime, u64)>> =
            self.pool.map(shards, move |shard| {
                let width = specs[shard].col_width() as u64;
                let rep =
                    router.route(shard, arrival).ok_or(ServeError::NoReplica { shard })?;
                let clock = NodeClock::new();
                clock.advance(arrival);
                net.rpc(&clock, rep.port(), 24, ops_per_item + width, 16 + 4 * width);
                let done = clock.now();
                rep.record_completion(arrival, done);
                let data = rep.data();
                let slice = data.embed_cols(v)?.to_vec();
                Ok((data.spec.col_lo, slice, done, 16 + 4 * width))
            });
        let mut parts: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut done_max = arrival;
        let mut bytes = 0u64;
        for leg in legs {
            let (lo, slice, done, resp) = leg?;
            parts.push((lo, slice));
            done_max = done_max.max(done);
            bytes += resp;
        }
        if parts.is_empty() {
            return Err(ServeError::BadQuery("no embeddings served".into()));
        }
        parts.sort_by_key(|(lo, _)| *lo);
        Ok((parts.into_iter().flat_map(|(_, s)| s).collect(), done_max, bytes))
    }

    /// Gather the full embedding rows of `vertices`: one concurrent leg
    /// per column shard, each shipping that shard's column segment for
    /// every requested row; segments concatenate in column order so the
    /// reassembled rows are bit-identical to the stored ones. Returns
    /// rows in input order, the slowest completion, and response bytes.
    fn fetch_embed_rows(
        &self,
        vertices: &[u64],
        at: SimTime,
    ) -> Result<(Vec<Vec<f32>>, SimTime, u64)> {
        let shards: Vec<usize> =
            (0..self.specs.len()).filter(|&s| self.specs[s].col_width() != 0).collect();
        let router = &self.router;
        let net = &self.net;
        let specs = &self.specs;
        let ops_per_item = self.policy.ops_per_item;
        let n = vertices.len() as u64;
        let legs: Vec<Result<(usize, Vec<Vec<f32>>, SimTime, u64)>> =
            self.pool.map(shards, move |shard| {
                let width = specs[shard].col_width() as u64;
                let rep = router.route(shard, at).ok_or(ServeError::NoReplica { shard })?;
                let data = rep.data();
                let mut segs: Vec<Vec<f32>> = Vec::with_capacity(vertices.len());
                for &v in vertices {
                    segs.push(data.embed_cols(v)?.to_vec());
                }
                let resp = 16 + n * 4 * width;
                let clock = NodeClock::new();
                clock.advance(at);
                net.rpc(&clock, rep.port(), 16 + 8 * n, n * (ops_per_item + width), resp);
                let done = clock.now();
                rep.record_completion(at, done);
                Ok((data.spec.col_lo, segs, done, resp))
            });
        let mut parts: Vec<(usize, Vec<Vec<f32>>)> = Vec::new();
        let mut done_max = at;
        let mut bytes = 0u64;
        for leg in legs {
            let (lo, segs, done, resp) = leg?;
            parts.push((lo, segs));
            done_max = done_max.max(done);
            bytes += resp;
        }
        if parts.is_empty() {
            return Err(ServeError::BadQuery("no embeddings served".into()));
        }
        parts.sort_by_key(|(lo, _)| *lo);
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); vertices.len()];
        for (_, segs) in parts {
            for (row, seg) in rows.iter_mut().zip(segs) {
                row.extend(seg);
            }
        }
        Ok((rows, done_max, bytes))
    }

    fn execute_embedding(
        &mut self,
        idx: usize,
        arrival: SimTime,
        v: u64,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let (full, done_max, _) = match self.gather_embedding(v, arrival) {
            Ok(x) => x,
            Err(e) => return self.fail(idx, e, out),
        };
        let value = Value::Embedding(full);
        self.cache.insert((2, v), value.clone(), value.approx_bytes());
        self.answer(idx, arrival, done_max, value, false, out);
    }

    /// Fetch neighbor lists of `vertices` (grouped by owner shard) at
    /// time `at`. Returns the lists in input order, the slowest
    /// completion, and the response bytes shipped.
    fn fetch_neighbors(
        &self,
        vertices: &[u64],
        at: SimTime,
    ) -> Result<(Vec<Vec<u64>>, SimTime, u64)> {
        let num_shards = self.specs.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (i, &u) in vertices.iter().enumerate() {
            by_shard[owner_of(u, self.num_vertices, num_shards)].push(i);
        }
        let work: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        let router = &self.router;
        let net = &self.net;
        let ops_per_item = self.policy.ops_per_item;
        // One concurrent leg per owner shard; merged in shard order.
        let legs: Vec<Result<(Vec<(usize, Vec<u64>)>, SimTime, u64)>> =
            self.pool.map(work, move |(shard, idxs)| {
                let rep = router.route(shard, at).ok_or(ServeError::NoReplica { shard })?;
                let data = rep.data();
                // Compute first so the response size is the real payload.
                let mut ops = 0u64;
                let mut resp = 16u64;
                let mut got: Vec<(usize, Vec<u64>)> = Vec::with_capacity(idxs.len());
                for &i in &idxs {
                    let ns = data.neighbors(vertices[i])?;
                    ops += ops_per_item + ns.len() as u64;
                    resp += 8 * ns.len() as u64;
                    got.push((i, ns.to_vec()));
                }
                let clock = NodeClock::new();
                clock.advance(at);
                net.rpc(&clock, rep.port(), 16 + 8 * idxs.len() as u64, ops, resp);
                let done = clock.now();
                rep.record_completion(at, done);
                Ok((got, done, resp))
            });
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); vertices.len()];
        let mut done_max = at;
        let mut bytes = 0u64;
        for leg in legs {
            let (got, done, resp) = leg?;
            for (i, ns) in got {
                lists[i] = ns;
            }
            done_max = done_max.max(done);
            bytes += resp;
        }
        Ok((lists, done_max, bytes))
    }

    /// Execute a validated, admitted plan and record its outcome plus
    /// plan metrics.
    fn run_plan(
        &mut self,
        idx: usize,
        arrival: SimTime,
        plan: &Plan,
        out: &mut Vec<(usize, Outcome)>,
    ) {
        let mut acc = LegAcc::default();
        let res = self.plan_legs(arrival, plan, &mut acc);
        self.metrics.plans += 1;
        self.metrics.stages_pushed += acc.cut as u64;
        if acc.cut > 0 {
            self.metrics.pushed_plans += 1;
        }
        self.metrics.shard_bytes += acc.bytes;
        self.metrics.pruned_filter += acc.pruned_filter;
        self.metrics.pruned_score += acc.pruned_score;
        self.metrics.pruned_topk += acc.pruned_topk;
        self.metrics.pruned_collect += acc.pruned_collect;
        match res {
            Ok((value, done)) => self.answer(idx, arrival, done, value, false, out),
            Err(e) => self.fail(idx, e, out),
        }
    }

    /// The distributed plan executor: push the planner-chosen prefix to
    /// every shard, merge partials in canonical shard order, then run
    /// the suffix stages at the frontend. Returns the value and its
    /// completion time.
    fn plan_legs(
        &mut self,
        arrival: SimTime,
        plan: &Plan,
        acc: &mut LegAcc,
    ) -> Result<(Value, SimTime)> {
        // `All`-source dot plans ship the query row to every shard:
        // acquire it first, cache-served exactly like an Embedding query.
        let needs_full_q =
            matches!(plan.source, Source::All) && plan.dot_vertex().is_some();
        let (q_row, mut done) = if needs_full_q {
            let v = plan.dot_vertex().unwrap();
            match self.cache.get(&(2, v)).cloned() {
                Some(Value::Embedding(e)) => {
                    (Some(e), arrival + self.net.cost_model().cpu_cost(self.policy.cache_hit_ops))
                }
                _ => {
                    let (q, t, bytes) = self.gather_embedding(v, arrival)?;
                    acc.bytes += bytes;
                    let value = Value::Embedding(q.clone());
                    self.cache.insert((2, v), value.clone(), value.approx_bytes());
                    (Some(q), t)
                }
            }
        } else {
            (None, arrival)
        };

        let (mut ids, mut scores, cut) = match plan.source {
            Source::All => {
                let decision = decide(plan, &self.stats, self.push_policy);
                let cut = decision.cut;
                acc.cut = cut;
                let (rows, scored, t) =
                    self.scatter_pushed(plan, cut, q_row.as_deref(), done, acc)?;
                done = t;
                if cut == plan.stages.len() {
                    // The terminal ran shard-side; finish the canonical
                    // merge here and we are done.
                    return Ok(match plan.stages.last().unwrap() {
                        Stage::TopK(k) => {
                            let mut rows = rows;
                            exec::sort_ranked(&mut rows);
                            rows.truncate(*k);
                            (Value::Ranked(rows), done)
                        }
                        Stage::Collect { cap } => {
                            let mut ids: Vec<u64> = rows.into_iter().map(|(v, _)| v).collect();
                            ids.truncate(*cap);
                            (Value::Vertices(ids), done)
                        }
                        _ => unreachable!("validated plans end in a terminal"),
                    });
                }
                let ids: Vec<u64> = rows.iter().map(|&(v, _)| v).collect();
                let scores: Option<Vec<f64>> =
                    scored.then(|| rows.iter().map(|&(_, s)| s).collect());
                (ids, scores, cut)
            }
            Source::Seed(v) => (vec![v], None, 0),
        };

        // Frontend suffix: one operator at a time over (ids, scores).
        for st in &plan.stages[cut..] {
            match st {
                Stage::Filter(p) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let before = ids.len();
                    let (keep, t, bytes) = self.fetch_keep(&ids, *p, done)?;
                    done = t;
                    acc.bytes += bytes;
                    let mut it = keep.iter();
                    ids.retain(|_| *it.next().unwrap());
                    if let Some(sc) = &mut scores {
                        let mut it = keep.iter();
                        sc.retain(|_| *it.next().unwrap());
                    }
                    acc.pruned_filter += (before - ids.len()) as u64;
                }
                Stage::Expand { hops, cap, mode } => {
                    let this: &Frontend = &*self;
                    let mut t_cur = done;
                    let mut bytes = 0u64;
                    let mut fetch = |vs: &[u64]| -> Result<Vec<Vec<u64>>> {
                        let (lists, t, b) = this.fetch_neighbors(vs, t_cur)?;
                        t_cur = t;
                        bytes += b;
                        Ok(lists)
                    };
                    ids = match mode {
                        ExpandMode::Frontier => {
                            exec::expand_frontier(&ids, *hops, *cap, &mut fetch)?
                        }
                        ExpandMode::Union => exec::expand_union(&ids, *hops, *cap, &mut fetch)?,
                    };
                    done = t_cur;
                    acc.bytes += bytes;
                    scores = None;
                }
                Stage::Score(Scorer::Dot(qv)) => {
                    let before = ids.len();
                    ids.retain(|&u| u != *qv);
                    acc.pruned_score += (before - ids.len()) as u64;
                    if ids.is_empty() {
                        scores = Some(Vec::new());
                        continue;
                    }
                    if plan.dot_assoc() == DotAssoc::FullRow {
                        // An `All`-source dot evaluated at the frontend
                        // (the planner refused or was forbidden to push):
                        // ship every candidate's full embedding row over
                        // and accumulate in column order, exactly like
                        // the shard-side kernel.
                        let q = q_row.as_deref().expect("All-source dot acquires q up front");
                        let (rows, t, bytes) = self.fetch_embed_rows(&ids, done)?;
                        done = t;
                        acc.bytes += bytes;
                        scores = Some(rows.iter().map(|r| exec::dot_full(q, r)).collect());
                        continue;
                    }
                    if self.specs.iter().all(|s| s.col_width() == 0) {
                        // No shard serves embedding columns: fail like
                        // the interpreter, not with all-zero scores.
                        return Err(ServeError::BadQuery("no embeddings served".into()));
                    }
                    // Partial dot products on every column shard, all
                    // issued at `done`, partials summed in shard order —
                    // the ColShards association.
                    let mut sc = vec![0.0f64; ids.len()];
                    let mut done_max = done;
                    for shard in 0..self.specs.len() {
                        let width = self.specs[shard].col_width() as u64;
                        if width == 0 {
                            continue;
                        }
                        let rep = self
                            .router
                            .route(shard, done)
                            .ok_or(ServeError::NoReplica { shard })?;
                        let partials = rep.data().partial_dots(*qv, &ids)?;
                        let ops = ids.len() as u64 * (2 * width + self.policy.ops_per_item);
                        let resp = 16 + 8 * ids.len() as u64;
                        let clock = NodeClock::new();
                        clock.advance(done);
                        self.net.rpc(&clock, rep.port(), 24 + 8 * ids.len() as u64, ops, resp);
                        let leg_done = clock.now();
                        rep.record_completion(done, leg_done);
                        done_max = done_max.max(leg_done);
                        acc.bytes += resp;
                        for (s, p) in sc.iter_mut().zip(partials) {
                            *s += p;
                        }
                    }
                    done = done_max;
                    scores = Some(sc);
                }
                Stage::Score(s) => {
                    if ids.is_empty() {
                        scores = Some(Vec::new());
                        continue;
                    }
                    let (vals, t, bytes) = self.fetch_scalar_scores(&ids, *s, done)?;
                    done = t;
                    acc.bytes += bytes;
                    scores = Some(vals);
                }
                Stage::TopK(k) => {
                    let sc = scores.take().unwrap_or_default();
                    let mut ranked: Vec<(u64, f64)> = ids.iter().copied().zip(sc).collect();
                    exec::sort_ranked(&mut ranked);
                    acc.pruned_topk += ranked.len().saturating_sub(*k) as u64;
                    ranked.truncate(*k);
                    return Ok((Value::Ranked(ranked), done));
                }
                Stage::Collect { cap } => {
                    acc.pruned_collect += ids.len().saturating_sub(*cap) as u64;
                    ids.truncate(*cap);
                    return Ok((Value::Vertices(ids), done));
                }
            }
        }
        Err(ServeError::BadQuery("plan missing terminal stage".into()))
    }

    /// Scatter the pushed prefix `stages[..cut]` to one live replica of
    /// every (non-empty) vertex shard; each evaluates it over its own
    /// range via the shared kernel and ships surviving rows back. Legs
    /// run concurrently on the pool; rows concatenate in canonical shard
    /// order (ascending vertex ranges).
    fn scatter_pushed(
        &self,
        plan: &Plan,
        cut: usize,
        q_row: Option<&[f32]>,
        at: SimTime,
        acc: &mut LegAcc,
    ) -> Result<(Vec<(u64, f64)>, bool, SimTime)> {
        let stages = &plan.stages[..cut];
        let shards: Vec<usize> = (0..self.specs.len())
            .filter(|&s| self.specs[s].vertex_hi - self.specs[s].vertex_lo != 0)
            .collect();
        let router = &self.router;
        let net = &self.net;
        let ops_per_item = self.policy.ops_per_item;
        let dim = q_row.map_or(0, <[f32]>::len) as u64;
        let dot_pushed = stages.iter().any(|s| matches!(s, Stage::Score(Scorer::Dot(_))));
        // Request: header + one stage descriptor each + the query row if
        // a dot scorer ships with the prefix.
        let req = 24 + 8 * cut as u64 + if dot_pushed { 4 * dim } else { 0 };
        let legs: Vec<Result<(PushedPartial, SimTime, u64)>> =
            self.pool.map(shards, move |shard| {
                let rep = router.route(shard, at).ok_or(ServeError::NoReplica { shard })?;
                let data = rep.data();
                let (lo, hi) = (data.spec.vertex_lo, data.spec.vertex_hi);
                let pp = exec::run_pushed(&*data, lo, hi, stages, q_row)
                    .map_err(|e| ServeError::BadQuery(e.to_string()))?;
                // Ops: rows entering each stage, reconstructed from the
                // per-stage pruning counts.
                let mut ops = 0u64;
                let mut entering = hi - lo;
                for (i, st) in stages.iter().enumerate() {
                    ops += match st {
                        Stage::Filter(_) | Stage::Score(Scorer::Rank | Scorer::Degree) => {
                            entering * ops_per_item
                        }
                        Stage::Score(Scorer::Dot(_)) => entering * (2 * dim + ops_per_item),
                        Stage::TopK(_) | Stage::Collect { .. } | Stage::Expand { .. } => 0,
                    };
                    entering -= pp.pruned[i];
                }
                let resp = 16 + pp.rows.len() as u64 * if pp.scored { 16 } else { 8 };
                let clock = NodeClock::new();
                clock.advance(at);
                net.rpc(&clock, rep.port(), req, ops, resp);
                let done = clock.now();
                rep.record_completion(at, done);
                Ok((pp, done, resp))
            });
        let mut rows: Vec<(u64, f64)> = Vec::new();
        let mut scored = false;
        let mut done_max = at;
        for leg in legs {
            let (pp, done, resp) = leg?;
            for (i, st) in stages.iter().enumerate() {
                let pruned = pp.pruned[i];
                match st {
                    Stage::Filter(_) => acc.pruned_filter += pruned,
                    Stage::Score(_) => acc.pruned_score += pruned,
                    Stage::TopK(_) => acc.pruned_topk += pruned,
                    Stage::Collect { .. } => acc.pruned_collect += pruned,
                    Stage::Expand { .. } => {}
                }
            }
            rows.extend(pp.rows);
            scored |= pp.scored;
            done_max = done_max.max(done);
            acc.bytes += resp;
        }
        Ok((rows, scored, done_max))
    }

    /// Evaluate `pred` shard-side for each vertex (grouped by owner).
    /// Returns keep flags in input order, the slowest completion, and
    /// response bytes.
    fn fetch_keep(
        &self,
        vertices: &[u64],
        pred: psgraph_query::Pred,
        at: SimTime,
    ) -> Result<(Vec<bool>, SimTime, u64)> {
        let num_shards = self.specs.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (i, &u) in vertices.iter().enumerate() {
            by_shard[owner_of(u, self.num_vertices, num_shards)].push(i);
        }
        let work: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        let router = &self.router;
        let net = &self.net;
        let ops_per_item = self.policy.ops_per_item;
        let legs: Vec<Result<(Vec<(usize, bool)>, SimTime, u64)>> =
            self.pool.map(work, move |(shard, idxs)| {
                let rep = router.route(shard, at).ok_or(ServeError::NoReplica { shard })?;
                let data = rep.data();
                let mut got: Vec<(usize, bool)> = Vec::with_capacity(idxs.len());
                for &i in &idxs {
                    let keep = exec::pred_keep(&*data, vertices[i], pred)
                        .map_err(|e| ServeError::BadQuery(e.to_string()))?;
                    got.push((i, keep));
                }
                let n = idxs.len() as u64;
                let resp = 16 + 8 * n;
                let clock = NodeClock::new();
                clock.advance(at);
                net.rpc(&clock, rep.port(), 16 + 8 * n, n * ops_per_item, resp);
                let done = clock.now();
                rep.record_completion(at, done);
                Ok((got, done, resp))
            });
        let mut keep = vec![false; vertices.len()];
        let mut done_max = at;
        let mut bytes = 0u64;
        for leg in legs {
            let (got, done, resp) = leg?;
            for (i, k) in got {
                keep[i] = k;
            }
            done_max = done_max.max(done);
            bytes += resp;
        }
        Ok((keep, done_max, bytes))
    }

    /// Fetch scalar scores (`Rank`/`Degree`) shard-side for each vertex
    /// (grouped by owner). Returns scores in input order, the slowest
    /// completion, and response bytes.
    fn fetch_scalar_scores(
        &self,
        vertices: &[u64],
        scorer: Scorer,
        at: SimTime,
    ) -> Result<(Vec<f64>, SimTime, u64)> {
        let num_shards = self.specs.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (i, &u) in vertices.iter().enumerate() {
            by_shard[owner_of(u, self.num_vertices, num_shards)].push(i);
        }
        let work: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        let router = &self.router;
        let net = &self.net;
        let ops_per_item = self.policy.ops_per_item;
        let legs: Vec<Result<(Vec<(usize, f64)>, SimTime, u64)>> =
            self.pool.map(work, move |(shard, idxs)| {
                let rep = router.route(shard, at).ok_or(ServeError::NoReplica { shard })?;
                let data = rep.data();
                let mut got: Vec<(usize, f64)> = Vec::with_capacity(idxs.len());
                for &i in &idxs {
                    let s = exec::scalar_score(&*data, vertices[i], scorer)
                        .map_err(|e| ServeError::BadQuery(e.to_string()))?;
                    got.push((i, s));
                }
                let n = idxs.len() as u64;
                let resp = 16 + 8 * n;
                let clock = NodeClock::new();
                clock.advance(at);
                net.rpc(&clock, rep.port(), 16 + 8 * n, n * ops_per_item, resp);
                let done = clock.now();
                rep.record_completion(at, done);
                Ok((got, done, resp))
            });
        let mut scores = vec![0.0f64; vertices.len()];
        let mut done_max = at;
        let mut bytes = 0u64;
        for leg in legs {
            let (got, done, resp) = leg?;
            for (i, s) in got {
                scores[i] = s;
            }
            done_max = done_max.max(done);
            bytes += resp;
        }
        Ok((scores, done_max, bytes))
    }
}

/// Driver-side reference answers: each legacy query shape compiles to
/// its plan and runs under the single-node [`Interpreter`] over full
/// truth arrays. The interpreter reproduces the distributed float
/// association (candidate caps, tie-breaks, per-column-shard partial
/// sums), so these stay bit-identical to served answers — `repro --
/// serve` checks every one.
pub mod reference {
    use psgraph_query::{GraphTruth, Interpreter, Plan, PlanOutput};

    /// Vertices within `hops` hops of `v`, excluding `v`, sorted.
    pub fn khop(adj: &[Vec<u64>], v: u64, hops: u32) -> Vec<u64> {
        let mut truth = GraphTruth::new(adj.len() as u64);
        truth.adjacency = Some(adj.to_vec());
        match Interpreter::new(&truth, 1).run(&Plan::khop(v, hops)) {
            Ok(PlanOutput::Vertices(ids)) => ids,
            other => unreachable!("khop plan must yield vertices, got {other:?}"),
        }
    }

    /// Top-`k` 2-hop neighbors of `v` by embedding dot product, with the
    /// same per-column-shard partial-sum association the serving tier
    /// uses.
    pub fn topk(
        embed: &[Vec<f32>],
        adj: &[Vec<u64>],
        v: u64,
        k: usize,
        num_shards: usize,
    ) -> Vec<(u64, f64)> {
        let mut truth = GraphTruth::new(adj.len() as u64);
        truth.adjacency = Some(adj.to_vec());
        truth.embeddings = Some(embed.to_vec());
        match Interpreter::new(&truth, num_shards).run(&Plan::topk(v, k)) {
            Ok(PlanOutput::Ranked(top)) => top,
            other => unreachable!("topk plan must yield a ranking, got {other:?}"),
        }
    }

    /// Exact top-`k` over *all* vertices by embedding dot product with
    /// `v` — the truth path for `Query::TopKAll`. Scores accumulate over
    /// the full row in column order, matching the shard-local scoring of
    /// `ShardData::local_topk` bit for bit.
    pub fn topk_all(embed: &[Vec<f32>], v: u64, k: usize) -> Vec<(u64, f64)> {
        let mut truth = GraphTruth::new(embed.len() as u64);
        truth.embeddings = Some(embed.to_vec());
        match Interpreter::new(&truth, 1).run(&Plan::topk_all(v, k)) {
            Ok(PlanOutput::Ranked(top)) => top,
            other => unreachable!("topk_all plan must yield a ranking, got {other:?}"),
        }
    }
}
