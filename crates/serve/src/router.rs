//! Replica selection: least-loaded with round-robin tie-breaking, never a
//! dead replica.

use psgraph_sim::SimTime;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::shard::Replica;

/// Routes each shard's queries across its live replicas.
#[derive(Debug)]
pub struct Router {
    shards: Vec<Vec<Arc<Replica>>>,
    rr: Vec<AtomicUsize>,
}

impl Router {
    pub fn new(shards: Vec<Vec<Arc<Replica>>>) -> Self {
        let rr = shards.iter().map(|_| AtomicUsize::new(0)).collect();
        Router { shards, rr }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn replicas(&self, shard: usize) -> &[Arc<Replica>] {
        &self.shards[shard]
    }

    /// Pick a live replica of `shard` for a query arriving at `now`:
    /// lowest in-flight load wins, ties broken round-robin so equal-load
    /// replicas share traffic. `None` only when every replica is dead.
    pub fn route(&self, shard: usize, now: SimTime) -> Option<Arc<Replica>> {
        let reps = &self.shards[shard];
        if reps.is_empty() {
            return None;
        }
        let start = self.rr[shard].fetch_add(1, Ordering::Relaxed) % reps.len();
        let mut best: Option<(usize, usize)> = None; // (load, index)
        for off in 0..reps.len() {
            let i = (start + off) % reps.len();
            if !reps[i].is_alive() {
                continue;
            }
            let load = reps[i].load_at(now);
            if best.map_or(true, |(bl, _)| load < bl) {
                best = Some((load, i));
            }
        }
        best.map(|(_, i)| Arc::clone(&reps[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardData, ShardSpec};

    fn router(replicas_per_shard: usize) -> Router {
        let spec = ShardSpec {
            num_shards: 1,
            shard: 0,
            vertex_lo: 0,
            vertex_hi: 10,
            col_lo: 0,
            col_hi: 4,
        };
        let data = Arc::new(ShardData::empty(spec));
        let reps = (0..replicas_per_shard)
            .map(|i| Replica::new(0, i, i, Arc::clone(&data), 8))
            .collect();
        Router::new(vec![reps])
    }

    #[test]
    fn round_robin_spreads_equal_load()  {
        let r = router(3);
        let mut seen = [0usize; 3];
        for _ in 0..9 {
            let rep = r.route(0, SimTime::ZERO).unwrap();
            seen[rep.index()] += 1;
        }
        assert_eq!(seen, [3, 3, 3]);
    }

    #[test]
    fn loaded_replica_is_skipped() {
        let r = router(2);
        // Replica 0 has two queries in flight until t=10s.
        let rep0 = Arc::clone(&r.replicas(0)[0]);
        assert!(rep0.record_completion(SimTime::ZERO, SimTime::from_secs(10)));
        assert!(rep0.record_completion(SimTime::ZERO, SimTime::from_secs(10)));
        for _ in 0..4 {
            assert_eq!(r.route(0, SimTime::from_secs(1)).unwrap().index(), 1);
        }
        // Once the work drains, the drained replica takes traffic again:
        // both indices must show up under round-robin.
        let mut seen = [0usize; 2];
        for _ in 0..4 {
            seen[r.route(0, SimTime::from_secs(11)).unwrap().index()] += 1;
        }
        assert_eq!(seen, [2, 2], "replica 0 must rejoin the rotation after draining");
    }

    #[test]
    fn dead_replicas_are_never_routed_to() {
        let r = router(3);
        r.replicas(0)[1].kill();
        for _ in 0..12 {
            let rep = r.route(0, SimTime::ZERO).unwrap();
            assert_ne!(rep.index(), 1);
        }
        r.replicas(0)[0].kill();
        r.replicas(0)[2].kill();
        assert!(r.route(0, SimTime::ZERO).is_none());
    }
}
