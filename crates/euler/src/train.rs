//! Euler GraphSage training: data-parallel workers querying the graph
//! service per vertex, with worker-local Adam and synchronous weight
//! averaging per epoch.

use std::sync::Arc;

use psgraph_sim::{FxHashMap, SimTime, SplitMix64};
use psgraph_tensor::{Adam, Graph, Linear, Optimizer, Tensor};

use crate::cluster::EulerCluster;
use crate::preprocess::EulerGraph;

/// Euler training configuration (mirrors PSGraph's GraphSage config).
#[derive(Debug, Clone)]
pub struct EulerConfig {
    pub workers: usize,
    pub shards: usize,
    pub feat_dim: usize,
    pub hidden_dim: usize,
    pub num_classes: usize,
    pub fanout1: usize,
    pub fanout2: usize,
    pub batch_size: usize,
    pub epochs: u64,
    pub lr: f32,
    pub seed: u64,
    pub train_fraction: f64,
}

impl Default for EulerConfig {
    fn default() -> Self {
        EulerConfig {
            workers: 2,
            shards: 2,
            feat_dim: 16,
            hidden_dim: 32,
            num_classes: 2,
            fanout1: 10,
            fanout2: 5,
            batch_size: 64,
            epochs: 3,
            lr: 0.01,
            seed: 7,
            train_fraction: 0.7,
        }
    }
}

/// Euler training result.
#[derive(Debug, Clone)]
pub struct EulerOutput {
    pub train_accuracy: f64,
    pub test_accuracy: f64,
    pub loss_per_epoch: Vec<f64>,
    pub epoch_times: Vec<SimTime>,
}

fn is_train(v: u64, seed: u64, frac: f64) -> bool {
    (psgraph_sim::hash::hash_u64(v ^ seed) % 1000) as f64 / 1000.0 < frac
}

/// Sample up to `k` neighbors without replacement (worker-side: Euler
/// already fetched the full adjacency with the vertex query).
fn sample_k(ns: &[u64], k: usize, rng: &mut SplitMix64) -> Vec<u64> {
    if ns.len() <= k {
        return ns.to_vec();
    }
    let mut idx: Vec<usize> = (0..ns.len()).collect();
    for i in 0..k {
        let j = i + rng.next_below((idx.len() - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| ns[i]).collect()
}

struct Model {
    l1: Linear,
    l2: Linear,
}

impl Model {
    fn new(cfg: &EulerConfig) -> Self {
        Model {
            l1: Linear::new(2 * cfg.feat_dim, cfg.hidden_dim, cfg.seed),
            l2: Linear::new(2 * cfg.hidden_dim, cfg.num_classes, cfg.seed ^ 1),
        }
    }
}

/// Per-vertex service queries for the 2-hop closure of `batch`. Every
/// vertex costs one full RPC round trip (Euler's per-sample access).
#[allow(clippy::type_complexity)]
fn fetch_closure(
    cluster: &EulerCluster,
    worker: usize,
    batch: &[u64],
    cfg: &EulerConfig,
    seed: u64,
) -> (Vec<u64>, Vec<u64>, FxHashMap<u64, (Vec<u64>, Vec<f32>)>) {
    let mut rng = SplitMix64::new(seed);
    let mut cache: FxHashMap<u64, (Vec<u64>, Vec<f32>)> = FxHashMap::default();
    let fetch = |v: u64, cache: &mut FxHashMap<u64, (Vec<u64>, Vec<f32>)>| {
        cache.entry(v).or_insert_with(|| {
            
            cluster.query_vertex(worker, v)
        });
    };
    let mut l1_ids: Vec<u64> = batch.to_vec();
    for &v in batch {
        fetch(v, &mut cache);
        let ns = sample_k(&cache[&v].0.clone(), cfg.fanout1, &mut rng);
        for u in ns {
            if !l1_ids.contains(&u) {
                l1_ids.push(u);
            }
        }
    }
    let mut l2_ids: Vec<u64> = l1_ids.clone();
    for &v in &l1_ids {
        fetch(v, &mut cache);
        let ns = sample_k(&cache[&v].0.clone(), cfg.fanout2, &mut rng);
        for u in ns {
            fetch(u, &mut cache);
            if !l2_ids.contains(&u) {
                l2_ids.push(u);
            }
        }
    }
    (l1_ids, l2_ids, cache)
}

#[allow(clippy::too_many_arguments)]
fn batch_tensors(
    batch: &[u64],
    l1_ids: &[u64],
    l2_ids: &[u64],
    cache: &FxHashMap<u64, (Vec<u64>, Vec<f32>)>,
    cfg: &EulerConfig,
    seed: u64,
) -> (Tensor, Tensor, Tensor, Tensor, Tensor) {
    let mut rng = SplitMix64::new(seed ^ 0x7EA);
    let pos1: FxHashMap<u64, usize> =
        l1_ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let pos2: FxHashMap<u64, usize> =
        l2_ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    let mut x = Tensor::zeros(l2_ids.len(), cfg.feat_dim);
    for (r, v) in l2_ids.iter().enumerate() {
        if let Some((_, f)) = cache.get(v) {
            if f.len() == cfg.feat_dim {
                x.row_mut(r).copy_from_slice(f);
            }
        }
    }
    let mut s1 = Tensor::zeros(l1_ids.len(), l2_ids.len());
    let mut m1 = Tensor::zeros(l1_ids.len(), l2_ids.len());
    for (r, v) in l1_ids.iter().enumerate() {
        s1.set(r, pos2[v], 1.0);
        let ns: Vec<u64> = sample_k(&cache[v].0, cfg.fanout2, &mut rng)
            .into_iter()
            .filter(|u| pos2.contains_key(u))
            .collect();
        if ns.is_empty() {
            m1.set(r, pos2[v], 1.0);
        } else {
            let w = 1.0 / ns.len() as f32;
            for u in &ns {
                let c = pos2[u];
                m1.set(r, c, m1.get(r, c) + w);
            }
        }
    }
    let mut s2 = Tensor::zeros(batch.len(), l1_ids.len());
    let mut m2 = Tensor::zeros(batch.len(), l1_ids.len());
    for (r, v) in batch.iter().enumerate() {
        s2.set(r, pos1[v], 1.0);
        let ns: Vec<u64> = sample_k(&cache[v].0, cfg.fanout1, &mut rng)
            .into_iter()
            .filter(|u| pos1.contains_key(u))
            .collect();
        if ns.is_empty() {
            m2.set(r, pos1[v], 1.0);
        } else {
            let w = 1.0 / ns.len() as f32;
            for u in &ns {
                let c = pos1[u];
                m2.set(r, c, m2.get(r, c) + w);
            }
        }
    }
    (x, s1, m1, s2, m2)
}

type ForwardVars = (psgraph_tensor::Var, psgraph_tensor::Var, psgraph_tensor::Var, psgraph_tensor::Var, psgraph_tensor::Var);

fn forward(
    g: &mut Graph,
    tensors: &(Tensor, Tensor, Tensor, Tensor, Tensor),
    model: &Model,
) -> ForwardVars {
    let (x, s1, m1, s2, m2) = tensors;
    let xv = g.input(x.clone());
    let s1v = g.input(s1.clone());
    let m1v = g.input(m1.clone());
    let s2v = g.input(s2.clone());
    let m2v = g.input(m2.clone());
    let own1 = g.matmul(s1v, xv);
    let agg1 = g.matmul(m1v, xv);
    let cat1 = g.concat_cols(own1, agg1);
    let (z1, w1, b1) = model.l1.forward(g, cat1);
    let h1 = g.relu(z1);
    let own2 = g.matmul(s2v, h1);
    let agg2 = g.matmul(m2v, h1);
    let cat2 = g.concat_cols(own2, agg2);
    let (logits, w2, b2) = model.l2.forward(g, cat2);
    (logits, w1, b1, w2, b2)
}

/// Run Euler's GraphSage training end to end on an already-loaded cluster.
pub fn train(
    cluster: &EulerCluster,
    graph: &Arc<EulerGraph>,
    cfg: &EulerConfig,
) -> EulerOutput {
    let n = graph.num_vertices;
    let train_v: Vec<u64> = (0..n).filter(|&v| is_train(v, cfg.seed, cfg.train_fraction)).collect();
    let test_v: Vec<u64> = (0..n).filter(|&v| !is_train(v, cfg.seed, cfg.train_fraction)).collect();

    // Worker replicas + local optimizers.
    let mut models: Vec<Model> = (0..cfg.workers).map(|_| Model::new(cfg)).collect();
    let mut opts: Vec<Adam> = (0..cfg.workers).map(|_| Adam::new(cfg.lr)).collect();

    let mut loss_per_epoch = Vec::new();
    let mut epoch_times = Vec::new();
    for epoch in 0..cfg.epochs {
        let e0 = cluster.clock().now();
        let mut loss_sum = 0.0;
        let mut batches = 0u64;
        for (w, (model, opt)) in models.iter_mut().zip(&mut opts).enumerate() {
            let mine: Vec<u64> = train_v
                .iter()
                .copied()
                .filter(|v| (*v as usize) % cfg.workers == w)
                .collect();
            for (bi, batch) in mine.chunks(cfg.batch_size.max(1)).enumerate() {
                let seed = cfg.seed ^ (epoch << 32) ^ ((w as u64) << 16) ^ bi as u64;
                let (l1_ids, l2_ids, cache) = fetch_closure(cluster, w, batch, cfg, seed);
                let tensors = batch_tensors(batch, &l1_ids, &l2_ids, &cache, cfg, seed);
                // Worker-side compute.
                let flops = (tensors.0.len() * cfg.hidden_dim) as u64 * 6;
                cluster
                    .worker(w)
                    .advance(cluster.network().cost_model().cpu_cost(flops));
                let mut g = Graph::new();
                let (logits, w1, b1, w2, b2) = forward(&mut g, &tensors, model);
                let y: Vec<usize> = batch.iter().map(|&v| graph.labels[v as usize]).collect();
                let loss = g.softmax_cross_entropy(logits, &y);
                g.backward(loss);
                loss_sum += g.scalar(loss) as f64;
                batches += 1;
                let gw1 = g.grad(w1).unwrap().clone();
                let gb1 = g.grad(b1).unwrap().clone();
                let gw2 = g.grad(w2).unwrap().clone();
                let gb2 = g.grad(b2).unwrap().clone();
                opt.step(
                    &mut [
                        &mut model.l1.weight,
                        &mut model.l1.bias,
                        &mut model.l2.weight,
                        &mut model.l2.bias,
                    ],
                    &[&gw1, &gb1, &gw2, &gb2],
                );
            }
        }
        // Synchronous weight averaging at the epoch barrier.
        average_models(cluster, &mut models, cfg);
        cluster.barrier();
        loss_per_epoch.push(if batches == 0 { 0.0 } else { loss_sum / batches as f64 });
        epoch_times.push(cluster.clock().now().saturating_sub(e0));
    }

    // Evaluate with the averaged model on worker 0.
    let eval = |ids: &[u64]| -> f64 {
        if ids.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (bi, batch) in ids.chunks(cfg.batch_size.max(1)).enumerate() {
            let seed = cfg.seed ^ 0xE7A1 ^ bi as u64;
            let (l1_ids, l2_ids, cache) = fetch_closure(cluster, 0, batch, cfg, seed);
            let tensors = batch_tensors(batch, &l1_ids, &l2_ids, &cache, cfg, seed);
            let mut g = Graph::new();
            let (logits, ..) = forward(&mut g, &tensors, &models[0]);
            let preds = g.value(logits).argmax_rows();
            for (p, &v) in preds.iter().zip(batch) {
                if *p == graph.labels[v as usize] {
                    correct += 1;
                }
            }
        }
        correct as f64 / ids.len() as f64
    };
    let train_accuracy = eval(&train_v);
    let test_accuracy = eval(&test_v);

    EulerOutput { train_accuracy, test_accuracy, loss_per_epoch, epoch_times }
}

/// All-reduce (average) the worker replicas, charging the weight bytes.
fn average_models(cluster: &EulerCluster, models: &mut [Model], cfg: &EulerConfig) {
    let nw = models.len();
    if nw <= 1 {
        return;
    }
    let param_bytes =
        ((2 * cfg.feat_dim + 1) * cfg.hidden_dim + (2 * cfg.hidden_dim + 1) * cfg.num_classes)
            * 4;
    for w in 0..nw {
        cluster.worker(w).advance(
            cluster
                .network()
                .cost_model()
                .net_cost(param_bytes as u64 * 2),
        );
    }
    let avg = |get: &dyn Fn(&Model) -> &Tensor| -> Tensor {
        let mut acc = get(&models[0]).clone();
        for m in models.iter().skip(1) {
            acc = acc.add(get(m));
        }
        acc.scale(1.0 / nw as f32)
    };
    let w1 = avg(&|m| &m.l1.weight);
    let b1 = avg(&|m| &m.l1.bias);
    let w2 = avg(&|m| &m.l2.weight);
    let b2 = avg(&|m| &m.l2.bias);
    for m in models.iter_mut() {
        m.l1.weight = w1.clone();
        m.l1.bias = b1.clone();
        m.l2.weight = w2.clone();
        m.l2.bias = b2.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_dfs::Dfs;
    use psgraph_graph::{gen, io};
    use psgraph_sim::{CostModel, NodeClock};

    fn pipeline(n: u64, cfg: &EulerConfig) -> (EulerOutput, SimTime) {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let s = gen::sbm2(n, 8.0, 0.5, cfg.feat_dim, 0.8, 77);
        io::write_text(&dfs, "/raw/e", &s.graph, &clk).unwrap();
        io::write_features(&dfs, "/raw/f", &s.features, &s.labels, &clk).unwrap();
        let driver = NodeClock::new();
        let (graph, report) =
            crate::preprocess::preprocess(&dfs, "/raw/e", "/raw/f", "/euler", cfg.shards, &driver)
                .unwrap();
        let mut cluster = EulerCluster::new(cfg.workers, cfg.shards, CostModel::default());
        let c = Arc::get_mut(&mut cluster).unwrap();
        c.load(&graph.adjacency, &graph.features);
        let out = train(&cluster, &Arc::new(graph), cfg);
        (out, report.total())
    }

    #[test]
    fn euler_learns_sbm() {
        let cfg = EulerConfig { epochs: 4, ..Default::default() };
        let (out, preprocess_time) = pipeline(300, &cfg);
        assert!(out.test_accuracy > 0.85, "accuracy {}", out.test_accuracy);
        assert!(out.loss_per_epoch.last().unwrap() < &out.loss_per_epoch[0]);
        assert!(preprocess_time > SimTime::ZERO);
        assert_eq!(out.epoch_times.len(), 4);
        assert!(out.epoch_times.iter().all(|&t| t > SimTime::ZERO));
    }

    #[test]
    fn per_vertex_queries_make_epochs_slow() {
        // The defining Euler property: per-vertex RPCs. A bigger fanout
        // must cost proportionally more simulated time.
        let small = EulerConfig { epochs: 1, fanout1: 2, fanout2: 2, ..Default::default() };
        let big = EulerConfig { epochs: 1, fanout1: 10, fanout2: 8, ..Default::default() };
        let (o1, _) = pipeline(200, &small);
        let (o2, _) = pipeline(200, &big);
        assert!(o2.epoch_times[0] > o1.epoch_times[0]);
    }

    #[test]
    fn sample_k_bounds() {
        let mut rng = SplitMix64::new(1);
        let ns: Vec<u64> = (0..20).collect();
        let s = sample_k(&ns, 5, &mut rng);
        assert_eq!(s.len(), 5);
        let set: std::collections::HashSet<u64> = s.iter().copied().collect();
        assert_eq!(set.len(), 5);
        assert_eq!(sample_k(&ns[..3], 5, &mut rng), vec![0, 1, 2]);
        assert!(sample_k(&[], 5, &mut rng).is_empty());
    }

    #[test]
    fn single_worker_skips_averaging() {
        let cfg = EulerConfig { workers: 1, epochs: 2, ..Default::default() };
        let (out, _) = pipeline(150, &cfg);
        assert!(out.train_accuracy > 0.7);
    }
}
