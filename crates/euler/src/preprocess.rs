//! Euler's sequential preprocessing pipeline (Table I).
//!
//! Three passes, each reading its whole input from the DFS and writing its
//! whole output back (the paper: "every operation needs to read data from
//! disk and write output to disk"):
//!
//! 1. **Index mapping** — parse the raw text edge log, build a dense
//!    vertex-id mapping, rewrite the edges under the new ids.
//! 2. **Data-to-JSON transformation** — join edges with features and emit
//!    Euler's per-vertex JSON records (a several-fold byte inflation).
//! 3. **JSON partitioning** — split the JSON blob into shard files.

use psgraph_dfs::Dfs;
use psgraph_graph::io;
use psgraph_sim::{CostModel, FxHashMap, NodeClock, SimTime};

/// Timing report for the three passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreprocessReport {
    pub index_mapping: SimTime,
    pub to_json: SimTime,
    pub partitioning: SimTime,
}

impl PreprocessReport {
    pub fn total(&self) -> SimTime {
        self.index_mapping + self.to_json + self.partitioning
    }
}

/// Preprocessed graph ready to load into the Euler service. Everything is
/// in the *remapped* (dense, first-appearance) id space; `mapping[orig]`
/// gives the new id.
#[derive(Debug, Clone)]
pub struct EulerGraph {
    pub adjacency: FxHashMap<u64, Vec<u64>>,
    pub features: Vec<Vec<f32>>,
    pub labels: Vec<usize>,
    pub num_vertices: u64,
    pub mapping: Vec<u64>,
}

/// Minimal JSON writer for Euler's vertex records (hand-rolled to stay
/// inside the approved dependency list).
fn vertex_json(v: u64, neighbors: &[u64], features: &[f32]) -> String {
    let mut s = String::with_capacity(64 + neighbors.len() * 8 + features.len() * 12);
    s.push_str("{\"id\":");
    s.push_str(&v.to_string());
    s.push_str(",\"neighbors\":[");
    for (i, n) in neighbors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&n.to_string());
    }
    s.push_str("],\"features\":[");
    for (i, f) in features.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{f:.6}"));
    }
    s.push_str("]}");
    s
}

/// Run the full pipeline. `raw_text_path` must hold the raw `src\tdst`
/// edge log; `features_path` the feature/label table. Outputs land under
/// `out_prefix`. All I/O and parse CPU is charged to `driver`.
pub fn preprocess(
    dfs: &Dfs,
    raw_text_path: &str,
    features_path: &str,
    out_prefix: &str,
    shards: usize,
    driver: &NodeClock,
) -> Result<(EulerGraph, PreprocessReport), psgraph_dfs::DfsError> {
    // Pass 1: index mapping.
    let t0 = driver.now();
    let raw = io::read_text(dfs, raw_text_path, driver)?;
    // Dense remap in first-appearance order (like Euler's id mapping).
    let mut remap: FxHashMap<u64, u64> = FxHashMap::default();
    let mut next = 0u64;
    let mut mapped = Vec::with_capacity(raw.num_edges());
    for &(s, d) in raw.edges() {
        let ms = *remap.entry(s).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        let md = *remap.entry(d).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        mapped.push((ms, md));
    }
    // Also map isolated feature-only vertices (stable order afterwards).
    let (features, _labels) = io::read_features(dfs, features_path, driver)?;
    for v in 0..features.len() as u64 {
        remap.entry(v).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
    }
    let num_vertices = next.max(features.len() as u64);
    let mut mapping = vec![0u64; num_vertices as usize];
    for (&orig, &new) in &remap {
        mapping[orig as usize] = new;
    }
    let mapped_graph = psgraph_graph::EdgeList::new(num_vertices, mapped);
    // Text parsing + id hashing is CPU-heavy (the pass takes hours in the
    // paper even though the output is small).
    let cost = CostModel::default();
    driver.advance(cost.cpu_cost(mapped_graph.num_edges() as u64 * 120));
    io::write_binary(dfs, &format!("{out_prefix}/mapped.bin"), &mapped_graph, driver)?;
    let index_mapping = driver.now() - t0;

    // Pass 2: data-to-JSON transformation (reads both inputs again —
    // sequential, individual operations).
    let t1 = driver.now();
    let mapped_graph = io::read_binary(dfs, &format!("{out_prefix}/mapped.bin"), driver)?;
    let (orig_features, orig_labels) = io::read_features(dfs, features_path, driver)?;
    // Re-index features/labels into the mapped id space.
    let mut features = vec![Vec::new(); num_vertices as usize];
    let mut labels = vec![0usize; num_vertices as usize];
    for (orig, feat) in orig_features.into_iter().enumerate() {
        let new = mapping[orig] as usize;
        features[new] = feat;
        labels[new] = orig_labels[orig];
    }
    let mut adjacency: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    for &(s, d) in mapped_graph.edges() {
        adjacency.entry(s).or_default().push(d);
        adjacency.entry(d).or_default().push(s);
    }
    for ns in adjacency.values_mut() {
        ns.sort_unstable();
        ns.dedup();
    }
    let empty: Vec<f32> = Vec::new();
    let mut json = String::new();
    for v in 0..num_vertices {
        let ns = adjacency.get(&v).map(Vec::as_slice).unwrap_or(&[]);
        let fs = features.get(v as usize).map(Vec::as_slice).unwrap_or(&empty);
        json.push_str(&vertex_json(v, ns, fs));
        json.push('\n');
    }
    // JSON formatting: ~10 CPU ops per output byte.
    driver.advance(cost.cpu_cost(json.len() as u64 * 25));
    dfs.write(&format!("{out_prefix}/graph.json"), json.as_bytes(), driver)?;
    let to_json = driver.now() - t1;

    // Pass 3: JSON partitioning (read the blob, split, write shards).
    let t2 = driver.now();
    let blob = dfs.read(&format!("{out_prefix}/graph.json"), driver)?;
    let text = std::str::from_utf8(&blob).expect("json is utf8");
    let mut parts: Vec<String> = vec![String::new(); shards.max(1)];
    for (i, line) in text.lines().enumerate() {
        parts[i % shards.max(1)].push_str(line);
        parts[i % shards.max(1)].push('\n');
    }
    driver.advance(cost.cpu_cost(blob.len() as u64));
    for (i, p) in parts.iter().enumerate() {
        dfs.write(&format!("{out_prefix}/part-{i:03}.json"), p.as_bytes(), driver)?;
    }
    let partitioning = driver.now() - t2;

    Ok((
        EulerGraph { adjacency, features, labels, num_vertices, mapping },
        PreprocessReport { index_mapping, to_json, partitioning },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_graph::gen;

    fn setup(n: u64) -> (Dfs, NodeClock, u64) {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let s = gen::sbm2(n, 6.0, 0.5, 8, 0.5, 3);
        io::write_text(&dfs, "/raw/edges.txt", &s.graph, &clk).unwrap();
        io::write_features(&dfs, "/raw/features.bin", &s.features, &s.labels, &clk).unwrap();
        (dfs, NodeClock::new(), n)
    }

    #[test]
    fn pipeline_produces_all_outputs() {
        let (dfs, driver, n) = setup(100);
        let (graph, report) =
            preprocess(&dfs, "/raw/edges.txt", "/raw/features.bin", "/euler", 4, &driver)
                .unwrap();
        assert_eq!(graph.num_vertices, n);
        assert!(!graph.adjacency.is_empty());
        assert!(dfs.exists("/euler/mapped.bin"));
        assert!(dfs.exists("/euler/graph.json"));
        for i in 0..4 {
            assert!(dfs.exists(&format!("/euler/part-{i:03}.json")));
        }
        assert!(report.index_mapping > SimTime::ZERO);
        assert!(report.to_json > SimTime::ZERO);
        assert!(report.partitioning > SimTime::ZERO);
        assert_eq!(
            report.total(),
            report.index_mapping + report.to_json + report.partitioning
        );
    }

    #[test]
    fn json_pass_dominates_partitioning() {
        // Paper: index mapping ≈ 4 h, JSON ≈ 4 h, partitioning = minutes.
        // (At full DS3′ scale bandwidth+CPU dominate; at unit-test scale we
        // keep the shard count small so per-file seek overhead does not
        // mask the effect.)
        let (dfs, driver, _) = setup(400);
        let (_, report) =
            preprocess(&dfs, "/raw/edges.txt", "/raw/features.bin", "/euler", 2, &driver)
                .unwrap();
        assert!(
            report.to_json > report.partitioning,
            "to_json {} vs partitioning {}",
            report.to_json,
            report.partitioning
        );
    }

    #[test]
    fn json_inflates_bytes() {
        let (dfs, driver, _) = setup(200);
        preprocess(&dfs, "/raw/edges.txt", "/raw/features.bin", "/euler", 2, &driver).unwrap();
        let bin = dfs.status("/euler/mapped.bin").unwrap().len;
        let json = dfs.status("/euler/graph.json").unwrap().len;
        assert!(json > bin, "json {json} vs binary {bin}");
    }

    #[test]
    fn vertex_json_format() {
        let s = vertex_json(3, &[1, 2], &[0.5, -1.0]);
        assert!(s.starts_with("{\"id\":3,"));
        assert!(s.contains("\"neighbors\":[1,2]"));
        assert!(s.contains("\"features\":[0.500000,-1.000000]"));
        let empty = vertex_json(0, &[], &[]);
        assert_eq!(empty, "{\"id\":0,\"neighbors\":[],\"features\":[]}");
    }

    #[test]
    fn adjacency_is_symmetric_and_deduped() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let g = psgraph_graph::EdgeList::new(3, vec![(0, 1), (1, 0), (0, 1), (1, 2)]);
        io::write_text(&dfs, "/raw/e", &g, &clk).unwrap();
        let feats = vec![vec![0.0f32]; 3];
        io::write_features(&dfs, "/raw/f", &feats, &[0, 0, 0], &clk).unwrap();
        let (graph, _) = preprocess(&dfs, "/raw/e", "/raw/f", "/out", 2, &clk).unwrap();
        assert_eq!(graph.adjacency[&0], vec![1]);
        assert_eq!(graph.adjacency[&1], vec![0, 2]);
        assert_eq!(graph.adjacency[&2], vec![1]);
    }
}
