//! The Euler baseline (paper §V-B3, Table I) — Alibaba's graph learning
//! system, reproduced at the level of its cost structure.
//!
//! Two properties drive Table I and both are modeled mechanically, not by
//! hard-coded slowdowns:
//!
//! 1. **Sequential, disk-bound preprocessing** (§V-B3: "about 8 hours to
//!    transform the graph data — 4 hours for index mapping, 4 hours for
//!    data-to-JSON transformation, and several minutes for JSON
//!    partitioning. These operations are executed sequentially and
//!    individually, meaning every operation reads from disk and writes to
//!    disk"). [`preprocess`] runs exactly those three passes against the
//!    DFS on one driver, paying full read+write bandwidth each time; the
//!    JSON text format inflates the bytes several-fold.
//! 2. **Per-vertex graph-service queries during training.** Euler's
//!    workers query a remote graph engine per sample; [`train`] issues one
//!    RPC per vertex for sampling and feature fetch (vs PSGraph's batched
//!    PS pulls), so every mini-batch pays hundreds of network latencies.
//!
//! The model itself (2-layer mean-aggregator GraphSage trained with Adam)
//! is identical to PSGraph's, so the accuracy column of Table I matches.

pub mod cluster;
pub mod preprocess;
pub mod train;

pub use cluster::EulerCluster;
pub use preprocess::{preprocess, PreprocessReport};
pub use train::{train, EulerConfig, EulerOutput};
