//! Euler's deployment: training workers + graph-service shards.

use psgraph_net::{Network, NodeId, ServicePort};
use psgraph_sim::{ClusterClock, CostModel, FxHashMap, NodeClock};
use std::sync::Arc;

/// The Euler mini-cluster: `workers` trainers and `shards` graph-service
/// nodes holding adjacency + features.
/// One graph-service shard's state: vertex → (neighbors, features).
type ShardStore = FxHashMap<u64, (Vec<u64>, Vec<f32>)>;

pub struct EulerCluster {
    network: Network,
    clock: ClusterClock,
    driver: NodeClock,
    workers: Vec<NodeClock>,
    shards: Vec<ServicePort>,
    store: Vec<ShardStore>,
}

impl EulerCluster {
    pub fn new(workers: usize, shards: usize, cost: CostModel) -> Arc<Self> {
        assert!(workers > 0 && shards > 0);
        Arc::new(EulerCluster {
            network: Network::new(cost),
            clock: ClusterClock::new(),
            driver: NodeClock::new(),
            workers: (0..workers).map(|_| NodeClock::new()).collect(),
            shards: (0..shards).map(|i| ServicePort::new(NodeId::Server(i))).collect(),
            store: (0..shards).map(|_| FxHashMap::default()).collect(),
        })
    }

    pub fn network(&self) -> &Network {
        &self.network
    }

    pub fn clock(&self) -> &ClusterClock {
        &self.clock
    }

    pub fn driver(&self) -> &NodeClock {
        &self.driver
    }

    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    pub fn worker(&self, i: usize) -> &NodeClock {
        &self.workers[i]
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, v: u64) -> usize {
        (psgraph_sim::hash::hash_u64(v) % self.shards.len() as u64) as usize
    }

    /// Load the graph service (done once after preprocessing; charged to
    /// the driver as a bulk upload).
    pub fn load(&mut self, adjacency: &FxHashMap<u64, Vec<u64>>, features: &[Vec<f32>]) {
        let mut bytes = 0u64;
        for (v, ns) in adjacency {
            let feat = features.get(*v as usize).cloned().unwrap_or_default();
            bytes += 16 + ns.len() as u64 * 8 + feat.len() as u64 * 4;
            let shard = self.shard_of(*v);
            self.store[shard].insert(*v, (ns.clone(), feat));
        }
        // Vertices without edges still need features served.
        for (v, feat) in features.iter().enumerate() {
            let shard = self.shard_of(v as u64);
            self.store[shard]
                .entry(v as u64)
                .or_insert_with(|| (Vec::new(), feat.clone()));
            bytes += 16 + feat.len() as u64 * 4;
        }
        self.driver
            .advance(self.network.cost_model().net_bulk_cost(bytes));
    }

    /// One graph-service query for a single vertex (Euler's per-sample
    /// access pattern): returns (neighbors, features), charging a full
    /// RPC round-trip to the worker.
    pub fn query_vertex(&self, worker: usize, v: u64) -> (Vec<u64>, Vec<f32>) {
        let shard = self.shard_of(v);
        let entry = self.store[shard].get(&v).cloned().unwrap_or_default();
        let resp_bytes = 16 + entry.0.len() as u64 * 8 + entry.1.len() as u64 * 4;
        self.network.rpc(
            &self.workers[worker],
            &self.shards[shard],
            16,
            32 + entry.0.len() as u64,
            resp_bytes,
        );
        entry
    }

    /// Barrier all workers (synchronous data-parallel step).
    pub fn barrier(&self) {
        self.clock.barrier(self.workers.iter().chain([&self.driver]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_sim::SimTime;

    fn loaded() -> EulerCluster {
        let mut c = Arc::try_unwrap(EulerCluster::new(2, 2, CostModel::default()))
            .ok()
            .unwrap();
        let mut adj = FxHashMap::default();
        adj.insert(0u64, vec![1, 2]);
        adj.insert(1u64, vec![0]);
        let feats = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        c.load(&adj, &feats);
        c
    }

    #[test]
    fn query_returns_neighbors_and_features() {
        let c = loaded();
        let (ns, f) = c.query_vertex(0, 0);
        assert_eq!(ns, vec![1, 2]);
        assert_eq!(f, vec![1.0, 2.0]);
        // Edge-less vertex still serves features.
        let (ns, f) = c.query_vertex(1, 2);
        assert!(ns.is_empty());
        assert_eq!(f, vec![5.0, 6.0]);
        // Unknown vertex: empty.
        let (ns, f) = c.query_vertex(0, 99);
        assert!(ns.is_empty() && f.is_empty());
    }

    #[test]
    fn queries_charge_latency_per_call() {
        let c = loaded();
        let before = c.worker(0).now();
        for _ in 0..100 {
            c.query_vertex(0, 0);
        }
        let elapsed = c.worker(0).now() - before;
        // 100 RPCs ≥ 200 one-way latencies.
        let lat = CostModel::default().net_latency;
        let floor = SimTime::from_nanos(lat.as_nanos() * 200);
        assert!(elapsed >= floor, "elapsed {elapsed}");
    }

    #[test]
    fn barrier_synchronizes_workers() {
        let c = loaded();
        c.query_vertex(0, 0);
        c.barrier();
        assert_eq!(c.worker(0).now(), c.worker(1).now());
        assert_eq!(c.clock().now(), c.worker(0).now());
    }
}
