//! Deterministic, seeded fault injection: the single source of
//! nondeterminism for chaos runs, fully replayable from one `u64` seed.
//!
//! A [`FaultSchedule`] answers questions of the form "does fault F fire at
//! site S for key K (attempt A)?" as a **pure function** of
//! `(seed, site, key, lane)` — no internal draw counter, no shared mutable
//! RNG state. That is the determinism rule that makes chaos compatible
//! with the work-stealing pool: the answer cannot depend on which thread
//! asks first or how calls interleave, so a run is bit-replayable from the
//! seed alone regardless of `POOL_THREADS` or steal order (DESIGN.md
//! "Fault model"). Callers supply stable keys (event index, batch number,
//! heartbeat round, block id); retries pass a fresh `lane` so a lost
//! message is not lost identically forever.
//!
//! The hash chain is the same SplitMix64 used by the harness RNG, so
//! per-site streams inherit its mixing quality. Injection counters are
//! atomics — observability only, never consulted by decisions.

use crate::clock::SimTime;
use crate::rng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where in the system a fault is being drawn. Each site salts the hash
/// chain differently so e.g. heartbeat delays are independent of ingest
/// losses under the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The generic RPC data plane (`Network::rpc` latency perturbation).
    Rpc,
    /// Reliable keyed delivery (`Network::send_reliable`): loss/dup/delay.
    Delivery,
    /// Serve-tier heartbeat responses (monitor pings).
    Heartbeat,
    /// Ingest mailbox posts.
    Ingest,
    /// DFS block writes (replica corruption).
    DfsWrite,
    /// Parameter-server process crash points.
    PsCrash,
    /// Serve replica process crash points.
    ReplicaCrash,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            FaultSite::Rpc => 0x5250_435F_5349_5445,
            FaultSite::Delivery => 0x4445_4C49_5645_5259,
            FaultSite::Heartbeat => 0x4845_4152_5442_4541,
            FaultSite::Ingest => 0x494E_4745_5354_5F5F,
            FaultSite::DfsWrite => 0x4446_535F_5752_4954,
            FaultSite::PsCrash => 0x5053_5F43_5241_5348,
            FaultSite::ReplicaCrash => 0x5245_504C_4943_415F,
        }
    }
}

/// Per-class fault probabilities. All zero (`off`) means the schedule
/// never fires and every hook short-circuits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed — the only nondeterminism input of a chaos run.
    pub seed: u64,
    /// P(a keyed message delivery attempt is lost) — applied independently
    /// to the request and response legs.
    pub p_loss: f64,
    /// P(a delivered message is duplicated by the network).
    pub p_duplicate: f64,
    /// P(a message/heartbeat is delayed), by up to `max_delay`.
    pub p_delay: f64,
    /// Upper bound for injected delay (uniform in `(0, max_delay]`).
    pub max_delay: SimTime,
    /// P(a crash point fires) — drawn once per (site, key, lane).
    pub p_crash: f64,
    /// P(a freshly written DFS block has one replica corrupted).
    pub p_corrupt: f64,
}

impl ChaosConfig {
    /// No faults at all; every decision short-circuits to "no".
    pub fn off() -> Self {
        ChaosConfig {
            seed: 0,
            p_loss: 0.0,
            p_duplicate: 0.0,
            p_delay: 0.0,
            max_delay: SimTime::ZERO,
            p_crash: 0.0,
            p_corrupt: 0.0,
        }
    }

    /// The standard chaos-soak mix: every fault class enabled at rates
    /// that make each one fire multiple times per soak run.
    pub fn soak(seed: u64) -> Self {
        ChaosConfig {
            seed,
            p_loss: 0.05,
            p_duplicate: 0.05,
            p_delay: 0.10,
            max_delay: SimTime(5_000_000), // 5 ms
            p_crash: 0.06,
            p_corrupt: 0.08,
        }
    }

    fn any_enabled(&self) -> bool {
        self.p_loss > 0.0
            || self.p_duplicate > 0.0
            || self.p_delay > 0.0
            || self.p_crash > 0.0
            || self.p_corrupt > 0.0
    }
}

/// Snapshot of how many faults a schedule has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub losses: u64,
    pub duplicates: u64,
    pub delays: u64,
    pub crashes: u64,
    pub corruptions: u64,
}

#[derive(Debug, Default)]
struct Counters {
    losses: AtomicU64,
    duplicates: AtomicU64,
    delays: AtomicU64,
    crashes: AtomicU64,
    corruptions: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    cfg: ChaosConfig,
    active: bool,
    counters: Counters,
}

/// Cheap-to-clone handle on a seeded fault schedule (see module docs for
/// the determinism rule). Attach one to `Network`, `Dfs`, a `Mailbox`, or
/// the serve `Monitor`; the default everywhere is [`FaultSchedule::off`].
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    inner: Arc<Inner>,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::off()
    }
}

impl FaultSchedule {
    pub fn new(cfg: ChaosConfig) -> Self {
        let active = cfg.any_enabled();
        FaultSchedule {
            inner: Arc::new(Inner { cfg, active, counters: Counters::default() }),
        }
    }

    /// A schedule that never injects anything (the production default).
    pub fn off() -> Self {
        FaultSchedule::new(ChaosConfig::off())
    }

    /// Whether any fault class has nonzero probability. Hooks use this to
    /// short-circuit so fault-free paths stay bit-identical to a build
    /// without chaos attached.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.active
    }

    pub fn config(&self) -> &ChaosConfig {
        &self.inner.cfg
    }

    pub fn seed(&self) -> u64 {
        self.inner.cfg.seed
    }

    /// The pure decision stream for `(seed, site, key, lane)`. Two chained
    /// SplitMix64 finalizer steps decorrelate the inputs; the returned
    /// generator yields the draw(s) for this one decision point.
    #[inline]
    fn stream(&self, site: FaultSite, key: u64, lane: u64) -> SplitMix64 {
        let mut h = SplitMix64::new(self.inner.cfg.seed ^ site.salt());
        let s1 = h.next() ^ key.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut h2 = SplitMix64::new(s1);
        let s2 = h2.next() ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SplitMix64::new(s2)
    }

    /// Is the *request* leg of delivery attempt `lane` for `key` lost?
    pub fn lose_request(&self, site: FaultSite, key: u64, lane: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let hit = self.stream(site, key, lane.wrapping_mul(2)).next_bool(self.inner.cfg.p_loss);
        if hit {
            self.inner.counters.losses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Is the *response* leg lost (the server saw the request — its effect
    /// applied — but the client never hears back and will retry)?
    pub fn lose_response(&self, site: FaultSite, key: u64, lane: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let hit = self
            .stream(site, key, lane.wrapping_mul(2).wrapping_add(1))
            .next_bool(self.inner.cfg.p_loss);
        if hit {
            self.inner.counters.losses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Does the network duplicate this delivery (the receiver sees it
    /// twice — idempotency keys must absorb the second copy)?
    pub fn duplicate(&self, site: FaultSite, key: u64, lane: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let mut s = self.stream(site, key, lane);
        s.next(); // skip the loss draw position
        let hit = s.next_bool(self.inner.cfg.p_duplicate);
        if hit {
            self.inner.counters.duplicates.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Injected extra latency for this decision point (ZERO when the delay
    /// class does not fire).
    pub fn delay(&self, site: FaultSite, key: u64, lane: u64) -> SimTime {
        if !self.inner.active {
            return SimTime::ZERO;
        }
        let mut s = self.stream(site, key, lane);
        s.next();
        s.next(); // skip loss + duplicate draw positions
        if !s.next_bool(self.inner.cfg.p_delay) {
            return SimTime::ZERO;
        }
        self.inner.counters.delays.fetch_add(1, Ordering::Relaxed);
        let max = self.inner.cfg.max_delay.as_nanos().max(1);
        SimTime(1 + s.next_below(max))
    }

    /// Does a crash point fire here?
    pub fn crash(&self, site: FaultSite, key: u64, lane: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let mut s = self.stream(site, key, lane);
        s.next();
        s.next();
        s.next(); // independent draw position from loss/dup/delay
        let hit = s.next_bool(self.inner.cfg.p_crash);
        if hit {
            self.inner.counters.crashes.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Is one replica of a freshly written DFS block corrupted?
    pub fn corrupt(&self, site: FaultSite, key: u64, lane: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let mut s = self.stream(site, key, lane);
        for _ in 0..4 {
            s.next();
        }
        let hit = s.next_bool(self.inner.cfg.p_corrupt);
        if hit {
            self.inner.counters.corruptions.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Deterministic victim choice in `[0, n)` — which server to crash,
    /// which replica to corrupt. Not a fault by itself; not counted.
    pub fn pick(&self, site: FaultSite, key: u64, lane: u64, n: usize) -> usize {
        debug_assert!(n > 0);
        let mut s = self.stream(site, key, lane.wrapping_add(0x5049_434B));
        s.next_below(n as u64) as usize
    }

    /// Injection counts so far (observability only — decisions never read
    /// these).
    pub fn stats(&self) -> FaultStats {
        let c = &self.inner.counters;
        FaultStats {
            losses: c.losses.load(Ordering::Relaxed),
            duplicates: c.duplicates.load(Ordering::Relaxed),
            delays: c.delays.load(Ordering::Relaxed),
            crashes: c.crashes.load(Ordering::Relaxed),
            corruptions: c.corruptions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_site_key_lane() {
        let a = FaultSchedule::new(ChaosConfig::soak(42));
        let b = FaultSchedule::new(ChaosConfig::soak(42));
        for key in 0..500u64 {
            for lane in 0..3u64 {
                assert_eq!(
                    a.lose_request(FaultSite::Delivery, key, lane),
                    b.lose_request(FaultSite::Delivery, key, lane)
                );
                assert_eq!(
                    a.delay(FaultSite::Heartbeat, key, lane),
                    b.delay(FaultSite::Heartbeat, key, lane)
                );
                assert_eq!(
                    a.crash(FaultSite::PsCrash, key, lane),
                    b.crash(FaultSite::PsCrash, key, lane)
                );
            }
        }
        // Asking twice gives the same answer: no hidden draw counter.
        assert_eq!(
            a.duplicate(FaultSite::Delivery, 7, 0),
            a.duplicate(FaultSite::Delivery, 7, 0)
        );
    }

    #[test]
    fn different_seeds_differ_and_sites_are_independent() {
        let a = FaultSchedule::new(ChaosConfig::soak(1));
        let b = FaultSchedule::new(ChaosConfig::soak(2));
        let diverged = (0..2000u64)
            .any(|k| a.lose_request(FaultSite::Delivery, k, 0) != b.lose_request(FaultSite::Delivery, k, 0));
        assert!(diverged, "seeds 1 and 2 produced identical loss schedules");
        // Same seed, different sites: streams must not be copies.
        let cross_diverged = (0..2000u64)
            .any(|k| a.lose_request(FaultSite::Delivery, k, 0) != a.lose_request(FaultSite::Ingest, k, 0));
        assert!(cross_diverged, "Delivery and Ingest sites share a stream");
    }

    #[test]
    fn off_schedule_never_fires() {
        let s = FaultSchedule::off();
        assert!(!s.is_active());
        for k in 0..1000u64 {
            assert!(!s.lose_request(FaultSite::Delivery, k, 0));
            assert!(!s.duplicate(FaultSite::Delivery, k, 0));
            assert_eq!(s.delay(FaultSite::Heartbeat, k, 0), SimTime::ZERO);
            assert!(!s.crash(FaultSite::PsCrash, k, 0));
            assert!(!s.corrupt(FaultSite::DfsWrite, k, 0));
        }
        assert_eq!(s.stats(), FaultStats::default());
    }

    #[test]
    fn rates_calibrate_to_configured_probabilities() {
        let s = FaultSchedule::new(ChaosConfig {
            seed: 99,
            p_loss: 0.2,
            p_duplicate: 0.1,
            p_delay: 0.3,
            max_delay: SimTime(1000),
            p_crash: 0.05,
            p_corrupt: 0.15,
        });
        let n = 20_000u64;
        let losses = (0..n).filter(|&k| s.lose_request(FaultSite::Delivery, k, 0)).count();
        let dups = (0..n).filter(|&k| s.duplicate(FaultSite::Delivery, k, 0)).count();
        let delays = (0..n)
            .filter(|&k| s.delay(FaultSite::Delivery, k, 0) > SimTime::ZERO)
            .count();
        let crashes = (0..n).filter(|&k| s.crash(FaultSite::PsCrash, k, 0)).count();
        assert!((losses as f64 / n as f64 - 0.2).abs() < 0.02, "loss rate {losses}");
        assert!((dups as f64 / n as f64 - 0.1).abs() < 0.02, "dup rate {dups}");
        assert!((delays as f64 / n as f64 - 0.3).abs() < 0.02, "delay rate {delays}");
        assert!((crashes as f64 / n as f64 - 0.05).abs() < 0.01, "crash rate {crashes}");
    }

    #[test]
    fn delays_are_bounded_and_nonzero_when_fired() {
        let cfg = ChaosConfig { p_delay: 1.0, max_delay: SimTime(777), ..ChaosConfig::soak(5) };
        let s = FaultSchedule::new(cfg);
        for k in 0..5000u64 {
            let d = s.delay(FaultSite::Heartbeat, k, 0);
            assert!(d > SimTime::ZERO && d <= SimTime(777), "delay {d:?}");
        }
    }

    #[test]
    fn lanes_decorrelate_retries() {
        // A key whose first attempt is lost must not be lost on every lane.
        let s = FaultSchedule::new(ChaosConfig { p_loss: 0.5, ..ChaosConfig::soak(3) });
        let k = (0..10_000u64)
            .find(|&k| s.lose_request(FaultSite::Delivery, k, 0))
            .expect("p=0.5 must hit");
        let recovered = (1..64u64).any(|lane| !s.lose_request(FaultSite::Delivery, k, lane));
        assert!(recovered, "key {k} lost on all 64 lanes at p=0.5");
    }

    #[test]
    fn counters_track_injections() {
        let s = FaultSchedule::new(ChaosConfig { p_loss: 1.0, ..ChaosConfig::soak(8) });
        for k in 0..10u64 {
            assert!(s.lose_request(FaultSite::Delivery, k, 0));
        }
        assert_eq!(s.stats().losses, 10);
    }

    #[test]
    fn pick_is_deterministic_and_in_range() {
        let s = FaultSchedule::new(ChaosConfig::soak(13));
        for k in 0..1000u64 {
            let p = s.pick(FaultSite::PsCrash, k, 0, 4);
            assert!(p < 4);
            assert_eq!(p, s.pick(FaultSite::PsCrash, k, 0, 4));
        }
        // All choices reachable.
        let mut seen = [false; 4];
        for k in 0..100u64 {
            seen[s.pick(FaultSite::PsCrash, k, 0, 4)] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
