//! Deterministic, allocation-free RNG for hot paths (negative sampling,
//! neighbor sampling, synthetic graph generation seeds).
//!
//! [`SplitMix64`] is tiny, passes BigCrush-adjacent smoke tests, and — more
//! importantly here — makes every experiment reproducible from a single
//! `u64` seed. The heavier distributions (zipf, normal) come from
//! `rand`/`rand_distr`; this type plugs into them via [`rand::RngCore`].

use rand::RngCore;

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. Uses the widening-multiply trick; bias is
    /// negligible for bounds far below 2^64 (all our uses).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derive an independent stream for a sub-task (executor id, epoch…).
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn next_below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn next_f64_in_unit_interval_with_sane_mean() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut base = SplitMix64::new(5);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next(), f2.next());
    }

    #[test]
    fn rngcore_fill_bytes_handles_remainder() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_with_rand_distributions() {
        use rand::Rng;
        let mut r = SplitMix64::new(11);
        let v: f64 = r.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&v));
    }
}
