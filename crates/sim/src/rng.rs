//! Deterministic, allocation-free RNG for hot paths (negative sampling,
//! neighbor sampling, synthetic graph generation seeds).
//!
//! [`SplitMix64`] is tiny, passes BigCrush-adjacent smoke tests, and — more
//! importantly here — makes every experiment reproducible from a single
//! `u64` seed. The heavier distributions (normal, exponential, Zipf,
//! Pareto) are implemented as inherent samplers so the workspace needs no
//! external `rand`/`rand_distr` crates (hermetic build policy).

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit state, which mixes
    /// better than the lower).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Uniform in `[0, bound)`. Uses the widening-multiply trick; bias is
    /// negligible for bounds far below 2^64 (all our uses).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill `dest` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Standard normal via Box–Muller (two fresh uniforms per draw; no
    /// cached spare, keeping the generator `Copy` and replay-exact).
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // 1 - U ∈ (0, 1] keeps the log finite.
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        let r = (-2.0 * u.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * v).cos()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`), by inversion.
    pub fn next_exp(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Pareto with minimum `scale` and tail index `shape`, by inversion.
    /// Heavy-tailed service/degree model: P(X > x) = (scale/x)^shape.
    pub fn next_pareto(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        scale * (1.0 - self.next_f64()).powf(-1.0 / shape)
    }

    /// Zipf over `{1, …, n}` with exponent `s > 0`: P(k) ∝ k^-s.
    ///
    /// Rejection-inversion sampling (Hörmann & Derflinger 1996), O(1)
    /// expected draws for any `n` — the skewed key-popularity model for
    /// hot-vertex access patterns.
    pub fn next_zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n >= 1, "zipf needs a non-empty support");
        assert!(s > 0.0, "zipf exponent must be positive");
        if n == 1 {
            return 1;
        }
        // H is the integral of x^-s; h_inv its inverse.
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_inv = |y: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                y.exp()
            } else {
                (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
            }
        };
        let hx0 = h(0.5);
        let hxm = h(n as f64 + 0.5);
        let cut = 1.0 - h_inv(h(1.5) - 1.0);
        loop {
            let u = hx0 + self.next_f64() * (hxm - hx0);
            let x = h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, n as f64);
            if k - x <= cut || u >= h(k + 0.5) - k.powf(-s) {
                return k as u64;
            }
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Derive an independent stream for a sub-task (executor id, epoch…).
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn next_below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn next_f64_in_unit_interval_with_sane_mean() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut base = SplitMix64::new(5);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next(), f2.next());
    }

    #[test]
    fn fill_bytes_handles_remainder() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniform_range_helpers() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let v = r.next_range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.next_f64_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SplitMix64::new(21);
        let n = 50_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let v = r.next_normal(3.0, 2.0);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SplitMix64::new(23);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!((0..1000).all(|_| r.next_exp(4.0) >= 0.0));
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut r = SplitMix64::new(25);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| r.next_pareto(1.0, 2.0)).collect();
        assert!(draws.iter().all(|&x| x >= 1.0));
        // P(X > 2) = (1/2)^2 = 0.25.
        let over = draws.iter().filter(|&&x| x > 2.0).count() as f64 / n as f64;
        assert!((over - 0.25).abs() < 0.01, "tail {over}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut r = SplitMix64::new(27);
        let n = 50_000;
        let mut counts = vec![0u64; 101];
        for _ in 0..n {
            let k = r.next_zipf(100, 1.1);
            assert!((1..=100).contains(&k));
            counts[k as usize] += 1;
        }
        // Rank 1 dominates and frequencies decay.
        assert!(counts[1] > counts[2] && counts[2] > counts[5]);
        assert!(counts[1] as f64 / n as f64 > 0.15, "head mass {}", counts[1]);
        // Degenerate support sizes still work.
        assert_eq!(r.next_zipf(1, 1.5), 1);
        for _ in 0..100 {
            assert!((1..=5).contains(&r.next_zipf(5, 1.0)));
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        SplitMix64::new(31).shuffle(&mut a);
        SplitMix64::new(31).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
