//! Simulation substrate for PSGraph: simulated time, a calibrated cost
//! model for CPU/network/disk, memory budgets with OOM semantics, failure
//! injection, and small utilities (fast hashing, deterministic RNG).
//!
//! Every logical node in the simulated cluster (Spark executor, parameter
//! server, DFS datanode, driver) owns a [`NodeClock`]. Operations charge
//! simulated nanoseconds to the clocks of the nodes they touch, using the
//! constants in [`CostModel`]. A BSP superstep advances the global
//! [`ClusterClock`] by the maximum over the participating node clocks, which
//! reproduces the synchronous-parallel timing of the paper's cluster without
//! needing a thousand machines.

pub mod bytes;
pub mod chaos;
pub mod clock;
pub mod cost;
pub mod failpoint;
pub mod hash;
pub mod memory;
pub mod rng;
pub mod sync;

pub use bytes::{Buf, BufMut, Bytes};
pub use chaos::{ChaosConfig, FaultSchedule, FaultSite, FaultStats};
pub use clock::{ClusterClock, NodeClock, SimTime, Watermark};
pub use cost::CostModel;
pub use failpoint::{FailAction, FailPlan, FailureInjector};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use memory::{MemoryMeter, OutOfMemory};
pub use rng::SplitMix64;
