//! Cheap-to-clone byte buffers and little-endian cursor traits.
//!
//! In-tree replacement for the subset of the `bytes` crate the workspace
//! uses (hermetic build policy — see DESIGN.md): [`Bytes`] is an
//! `Arc<[u8]>` so block replicas and RPC payloads clone by reference
//! count, and [`Buf`]/[`BufMut`] provide the little-endian get/put
//! methods the wire codecs are written against.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

macro_rules! get_le {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(self.take(N));
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

/// Read cursor over a byte source. Getters panic when the source is
/// exhausted (callers length-check via [`Buf::remaining`] first, exactly
/// as with the `bytes` crate).
pub trait Buf {
    fn remaining(&self) -> usize;

    /// Consume and return the next `n` bytes.
    fn take(&mut self, n: usize) -> &[u8];

    fn advance(&mut self, n: usize) {
        self.take(n);
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    get_le! {
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take(dst.len()));
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        (**self).take(n)
    }
}

macro_rules! put_le {
    ($($name:ident($ty:ty)),* $(,)?) => {
        $(
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Append-only write cursor for the little-endian wire encodings.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u32_le(u32),
        put_u64_le(u64),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn le_roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let mut r = &buf[..];
        assert_eq!(r.remaining(), buf.len());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn buf_through_mut_reference() {
        fn read_two(buf: &mut impl Buf) -> (u64, u64) {
            (buf.get_u64_le(), buf.get_u64_le())
        }
        let mut buf = Vec::new();
        buf.put_u64_le(3);
        buf.put_u64_le(9);
        let mut r = &buf[..];
        assert_eq!(read_two(&mut r), (3, 9));
    }

    #[test]
    #[should_panic]
    fn exhausted_get_panics() {
        let mut r: &[u8] = &[1];
        r.get_u64_le();
    }
}
