//! The calibrated cost model for the simulated cluster.
//!
//! Constants default to the paper's hardware: a production cluster wired
//! with 10 GbE, spinning-disk HDFS, and commodity server CPUs. All charges
//! go through this struct so experiments can scale or distort individual
//! resources (e.g. an ablation that makes the network free).

use crate::clock::SimTime;

/// Cost constants for one simulated cluster.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// One-way network latency charged per RPC message.
    pub net_latency: SimTime,
    /// Network bandwidth in bytes/second (10 GbE ≈ 1.25 GB/s, minus
    /// protocol overhead).
    pub net_bandwidth_bps: f64,
    /// Disk seek / open overhead charged per sequential I/O burst.
    pub disk_seek: SimTime,
    /// Sequential disk bandwidth in bytes/second (HDFS-era spinning disks).
    pub disk_bandwidth_bps: f64,
    /// Simple scalar CPU throughput: "primitive operations" per second.
    /// Algorithms charge one op per edge visit / hash probe / float fma.
    pub cpu_ops_per_sec: f64,
    /// JVM ↔ native (JNI) copy bandwidth in bytes/second. The paper moves
    /// graph mini-batches across this boundary for every PyTorch call.
    pub jni_bandwidth_bps: f64,
    /// Per-record serialization overhead factor: Spark-style Java
    /// serialization costs extra CPU ops per byte shuffled.
    pub ser_ops_per_byte: f64,
    /// Detection delay before the master notices a dead node (health-check
    /// period in the paper's master).
    pub failure_detect: SimTime,
    /// Time for the resource manager (Yarn/K8s) to restart a container.
    pub container_restart: SimTime,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            net_latency: SimTime::from_micros(25),
            net_bandwidth_bps: 1.10e9,
            disk_seek: SimTime::from_millis(4),
            disk_bandwidth_bps: 1.5e8,
            cpu_ops_per_sec: 2.0e9,
            jni_bandwidth_bps: 2.0e9,
            ser_ops_per_byte: 2.0,
            failure_detect: SimTime::from_secs(10),
            container_restart: SimTime::from_secs(20),
        }
    }
}

impl CostModel {
    /// Cost of sending `bytes` in one RPC (latency + wire time).
    pub fn net_cost(&self, bytes: u64) -> SimTime {
        self.net_latency + SimTime::from_secs_f64(bytes as f64 / self.net_bandwidth_bps)
    }

    /// Wire time only, for bulk transfers where latency is amortized over
    /// many pipelined messages.
    pub fn net_bulk_cost(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.net_bandwidth_bps)
    }

    /// Cost of one sequential disk burst of `bytes`.
    pub fn disk_cost(&self, bytes: u64) -> SimTime {
        self.disk_seek + SimTime::from_secs_f64(bytes as f64 / self.disk_bandwidth_bps)
    }

    /// Streaming disk cost without the per-burst seek.
    pub fn disk_bulk_cost(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.disk_bandwidth_bps)
    }

    /// Cost of `ops` primitive CPU operations.
    pub fn cpu_cost(&self, ops: u64) -> SimTime {
        SimTime::from_secs_f64(ops as f64 / self.cpu_ops_per_sec)
    }

    /// Cost of copying `bytes` across the JNI boundary (both directions
    /// are charged by the caller).
    pub fn jni_cost(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.jni_bandwidth_bps)
    }

    /// Cost of (de)serializing `bytes` of shuffle data.
    pub fn ser_cost(&self, bytes: u64) -> SimTime {
        self.cpu_cost((bytes as f64 * self.ser_ops_per_byte) as u64)
    }

    /// Total time to recover a failed node: detection + container restart.
    pub fn restart_overhead(&self) -> SimTime {
        self.failure_detect + self.container_restart
    }

    /// A cost model where every resource is `factor`× faster. Used by
    /// ablation benches.
    pub fn scaled(&self, factor: f64) -> CostModel {
        assert!(factor > 0.0, "scale factor must be positive");
        CostModel {
            net_latency: self.net_latency.scale(1.0 / factor),
            net_bandwidth_bps: self.net_bandwidth_bps * factor,
            disk_seek: self.disk_seek.scale(1.0 / factor),
            disk_bandwidth_bps: self.disk_bandwidth_bps * factor,
            cpu_ops_per_sec: self.cpu_ops_per_sec * factor,
            jni_bandwidth_bps: self.jni_bandwidth_bps * factor,
            ser_ops_per_byte: self.ser_ops_per_byte,
            failure_detect: self.failure_detect,
            container_restart: self.container_restart,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_cost_includes_latency_and_wire_time() {
        let m = CostModel::default();
        let c = m.net_cost(1_100_000_000); // ~1 second of wire time
        assert!(c.as_secs_f64() > 0.99 && c.as_secs_f64() < 1.01);
        // Small messages are latency-bound.
        let s = m.net_cost(1);
        assert!(s >= m.net_latency);
    }

    #[test]
    fn bulk_costs_drop_fixed_overheads() {
        let m = CostModel::default();
        assert!(m.net_bulk_cost(1000) < m.net_cost(1000));
        assert!(m.disk_bulk_cost(1000) < m.disk_cost(1000));
    }

    #[test]
    fn disk_slower_than_net_per_byte() {
        // Sanity: the model must keep HDFS slower than the 10 GbE wire,
        // which is what makes Euler's disk-bound preprocessing lose.
        let m = CostModel::default();
        assert!(m.disk_bulk_cost(1 << 30) > m.net_bulk_cost(1 << 30));
    }

    #[test]
    fn cpu_cost_linear() {
        let m = CostModel::default();
        let one = m.cpu_cost(1_000_000);
        let two = m.cpu_cost(2_000_000);
        assert!(two.as_nanos() >= 2 * one.as_nanos() - 2);
    }

    #[test]
    fn scaled_model_speeds_everything_up() {
        let m = CostModel::default();
        let fast = m.scaled(10.0);
        assert!(fast.net_cost(1 << 20) < m.net_cost(1 << 20));
        assert!(fast.disk_cost(1 << 20) < m.disk_cost(1 << 20));
        assert!(fast.cpu_cost(1 << 20) < m.cpu_cost(1 << 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        CostModel::default().scaled(0.0);
    }

    #[test]
    fn restart_overhead_sums_detection_and_restart() {
        let m = CostModel::default();
        assert_eq!(m.restart_overhead(), m.failure_detect + m.container_restart);
    }
}
