//! Memory budgets with OOM semantics.
//!
//! Each simulated executor / PS server owns a [`MemoryMeter`] sized to its
//! (scaled-down) container allocation. Allocations that exceed the budget
//! fail with [`OutOfMemory`], which is how the GraphX baseline dies on
//! K-Core, Triangle Count, and the DS2 workloads exactly as in Fig. 6 of
//! the paper — the OOM is emergent from real allocation tracking, not
//! hard-coded.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when a budgeted allocation does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Which meter rejected the allocation.
    pub owner: String,
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already in use.
    pub in_use: u64,
    /// The budget.
    pub budget: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OOM on {}: requested {} B with {} B in use of {} B budget",
            self.owner, self.requested, self.in_use, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks resident bytes against a budget.
#[derive(Debug)]
pub struct MemoryMeter {
    owner: String,
    budget: u64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl MemoryMeter {
    /// A meter with a hard budget in bytes.
    pub fn new(owner: impl Into<String>, budget: u64) -> Self {
        MemoryMeter {
            owner: owner.into(),
            budget,
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// An effectively unlimited meter (for nodes whose memory is not the
    /// experiment's subject).
    pub fn unbounded(owner: impl Into<String>) -> Self {
        Self::new(owner, u64::MAX)
    }

    pub fn owner(&self) -> &str {
        &self.owner
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    pub fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark since creation / last reset.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Try to allocate `bytes`; fails if the budget would be exceeded.
    pub fn alloc(&self, bytes: u64) -> Result<(), OutOfMemory> {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(bytes);
            if new > self.budget {
                return Err(OutOfMemory {
                    owner: self.owner.clone(),
                    requested: bytes,
                    in_use: cur,
                    budget: self.budget,
                });
            }
            match self
                .in_use
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release `bytes` back to the budget. Releasing more than is in use
    /// clamps to zero (idempotent frees keep callers simple on error paths).
    pub fn free(&self, bytes: u64) {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_sub(bytes);
            match self
                .in_use
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Drop all accounted memory (node restart).
    pub fn clear(&self) {
        self.in_use.store(0, Ordering::Relaxed);
    }
}

/// RAII allocation: frees its bytes when dropped.
#[derive(Debug)]
pub struct Reservation<'a> {
    meter: &'a MemoryMeter,
    bytes: u64,
}

impl<'a> Reservation<'a> {
    /// Reserve `bytes` on `meter`, failing with OOM if it does not fit.
    pub fn new(meter: &'a MemoryMeter, bytes: u64) -> Result<Self, OutOfMemory> {
        meter.alloc(bytes)?;
        Ok(Reservation { meter, bytes })
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow the reservation in place.
    pub fn grow(&mut self, extra: u64) -> Result<(), OutOfMemory> {
        self.meter.alloc(extra)?;
        self.bytes += extra;
        Ok(())
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.meter.free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_budget_succeeds() {
        let m = MemoryMeter::new("exec-0", 100);
        assert!(m.alloc(60).is_ok());
        assert!(m.alloc(40).is_ok());
        assert_eq!(m.in_use(), 100);
    }

    #[test]
    fn alloc_over_budget_fails_with_details() {
        let m = MemoryMeter::new("exec-0", 100);
        m.alloc(90).unwrap();
        let err = m.alloc(20).unwrap_err();
        assert_eq!(err.owner, "exec-0");
        assert_eq!(err.requested, 20);
        assert_eq!(err.in_use, 90);
        assert_eq!(err.budget, 100);
        assert!(err.to_string().contains("OOM on exec-0"));
    }

    #[test]
    fn free_returns_capacity() {
        let m = MemoryMeter::new("x", 100);
        m.alloc(100).unwrap();
        m.free(50);
        assert!(m.alloc(50).is_ok());
    }

    #[test]
    fn over_free_clamps_to_zero() {
        let m = MemoryMeter::new("x", 100);
        m.alloc(10).unwrap();
        m.free(1000);
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let m = MemoryMeter::new("x", 1000);
        m.alloc(700).unwrap();
        m.free(600);
        m.alloc(100).unwrap();
        assert_eq!(m.peak(), 700);
        assert_eq!(m.in_use(), 200);
    }

    #[test]
    fn unbounded_never_fails() {
        let m = MemoryMeter::unbounded("driver");
        assert!(m.alloc(u64::MAX / 2).is_ok());
        assert!(m.alloc(u64::MAX / 2).is_ok());
    }

    #[test]
    fn reservation_frees_on_drop() {
        let m = MemoryMeter::new("x", 100);
        {
            let mut r = Reservation::new(&m, 80).unwrap();
            assert_eq!(m.in_use(), 80);
            r.grow(20).unwrap();
            assert_eq!(r.bytes(), 100);
            assert!(r.grow(1).is_err());
        }
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn concurrent_allocs_respect_budget() {
        use std::sync::Arc;
        let m = Arc::new(MemoryMeter::new("x", 1000));
        let mut handles = vec![];
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for _ in 0..1000 {
                    if m.alloc(1).is_ok() {
                        got += 1;
                    }
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total <= 1000);
        assert_eq!(m.in_use(), total);
    }
}
