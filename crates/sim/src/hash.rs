//! A fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! Vertex ids are dense integers; SipHash (std's default) is needlessly slow
//! for them and HashDoS is not a concern inside a simulator. Hand-rolled to
//! stay inside the approved dependency list (see DESIGN.md §5).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// One-shot hash of a `u64` key — used by the hash partitioners so that
/// partition placement is stable across processes and runs.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
    }

    #[test]
    fn hashmap_roundtrip() {
        let mut m: FxHashMap<u64, String> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i.to_string());
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i).unwrap(), &i.to_string());
        }
    }

    #[test]
    fn hashset_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn byte_writes_consistent_with_chunking() {
        // The same logical bytes hash identically regardless of how they
        // are fed in (single write), exercising remainder handling.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Low-entropy sequential keys must spread over buckets: check that
        // 10k sequential ids fall into >200 distinct 8-bit buckets' worth
        // of high bits.
        let mut buckets = FxHashSet::default();
        for i in 0..10_000u64 {
            buckets.insert(hash_u64(i) >> 56);
        }
        assert!(buckets.len() > 200, "only {} buckets", buckets.len());
    }
}
