//! Poison-free locks over `std::sync`.
//!
//! The workspace builds offline with zero external crates (see DESIGN.md,
//! "Hermetic build policy"), so the `parking_lot` API everyone wrote
//! against is provided here as thin wrappers: `lock()` / `read()` /
//! `write()` return guards directly instead of a `LockResult`. A poisoned
//! lock means a holder panicked mid-critical-section; simulation state is
//! unrecoverable at that point, so we propagate the panic rather than
//! surface `Result`s at every call site.

use std::sync::{self, LockResult};
use std::time::Duration;

/// Mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(_) => panic!("lock poisoned: a holder panicked mid-critical-section"),
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock whose `read()` / `write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Condition variable paired with [`Mutex`], with the same poison-free
/// contract: waits return the guard directly. Used by the harness thread
/// pool for worker parking and scope-completion signalling.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<'a, T>(&self, guard: sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T> {
        unpoison(self.0.wait(guard))
    }

    /// Wait with a timeout; returns the guard and whether the wait timed
    /// out. Timed waits make missed-notify bugs self-healing, so the pool
    /// uses them exclusively.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: sync::MutexGuard<'a, T>,
        dur: Duration,
    ) -> (sync::MutexGuard<'a, T>, bool) {
        let (g, res) = unpoison(self.0.wait_timeout(guard, dur));
        (g, res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_notifies_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        while !*g {
            let (ng, _timed_out) = cv.wait_timeout(g, Duration::from_millis(50));
            g = ng;
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_actually_exclusive() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
