//! Simulated time: [`SimTime`] durations/instants, per-node clocks, and a
//! cluster-wide clock with BSP barrier semantics.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated instant or duration, in nanoseconds.
///
/// `SimTime` is used both as a point on a node's timeline and as a length of
/// time; the arithmetic is identical and keeping one type avoids a large
/// amount of conversion noise in the cost-charging call sites.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    pub fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    pub fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9) as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Scale by a floating factor (used by the cost model's global knob).
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor) as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering: picks the largest sensible unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 3600.0 {
            write!(f, "{:.2}h", secs / 3600.0)
        } else if secs >= 60.0 {
            write!(f, "{:.2}min", secs / 60.0)
        } else if secs >= 1.0 {
            write!(f, "{secs:.2}s")
        } else if secs >= 1e-3 {
            write!(f, "{:.2}ms", secs * 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The simulated clock of one logical node (executor, PS server, datanode).
///
/// Thread-safe: tasks running on a shared thread pool can charge costs to
/// the node they logically execute on.
#[derive(Debug, Default)]
pub struct NodeClock {
    nanos: AtomicU64,
}

impl NodeClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current local time.
    pub fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::Relaxed))
    }

    /// Charge `cost` to this node's timeline.
    pub fn advance(&self, cost: SimTime) {
        self.nanos.fetch_add(cost.0, Ordering::Relaxed);
    }

    /// Move the clock forward to `t` if it is currently behind (models a
    /// node waiting at a barrier or for an RPC response issued at `t`).
    pub fn sync_to(&self, t: SimTime) {
        self.nanos.fetch_max(t.0, Ordering::Relaxed);
    }

    /// Reset to a given time (used when restarting a failed node: the
    /// replacement starts at the failure-detection time).
    pub fn reset_to(&self, t: SimTime) {
        self.nanos.store(t.0, Ordering::Relaxed);
    }
}

/// Cluster-wide simulated clock implementing BSP barrier semantics.
///
/// Nodes run their supersteps concurrently (in real threads) but on
/// independent simulated timelines; [`ClusterClock::barrier`] advances the
/// global time to the maximum of the participants and re-synchronizes all
/// of them, exactly like a synchronization barrier in the paper's BSP mode.
#[derive(Debug, Default)]
pub struct ClusterClock {
    global: NodeClock,
}

impl ClusterClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> SimTime {
        self.global.now()
    }

    /// Advance global time directly (driver-side sequential work).
    pub fn advance(&self, cost: SimTime) {
        self.global.advance(cost);
    }

    /// BSP barrier over `nodes`: global time jumps to the slowest
    /// participant, and every participant is synchronized to that time.
    pub fn barrier<'a, I>(&self, nodes: I) -> SimTime
    where
        I: IntoIterator<Item = &'a NodeClock> + Clone,
    {
        let mut max = self.global.now();
        for n in nodes.clone() {
            max = max.max(n.now());
        }
        self.global.sync_to(max);
        for n in nodes {
            n.sync_to(max);
        }
        max
    }

    /// Start a node at the current global time (fresh nodes join "now").
    pub fn register(&self, node: &NodeClock) {
        node.sync_to(self.global.now());
    }
}

/// Convenience: a shared cluster clock handle.
pub type SharedClusterClock = Arc<ClusterClock>;

/// Event-time watermark: the monotonically advancing frontier of event
/// timestamps a streaming consumer has fully ingested. Producers stamp
/// events with event time; the ingestor calls [`Watermark::observe`] as it
/// applies them, and freshness is `processing_time - watermark` — how far
/// the serving state lags behind the newest event it has absorbed.
#[derive(Debug, Default)]
pub struct Watermark {
    frontier: AtomicU64,
}

impl Watermark {
    /// A watermark at event time zero (nothing ingested yet).
    pub fn new() -> Self {
        Watermark { frontier: AtomicU64::new(0) }
    }

    /// Advance the frontier to `t` if it is ahead of the current frontier.
    /// Late (out-of-order) events never move the watermark backwards.
    pub fn observe(&self, t: SimTime) {
        self.frontier.fetch_max(t.as_nanos(), Ordering::SeqCst);
    }

    /// The newest event time observed so far.
    pub fn now(&self) -> SimTime {
        SimTime(self.frontier.load(Ordering::SeqCst))
    }

    /// Freshness lag at processing time `at`: how far behind the newest
    /// ingested event the given processing-time instant is. Zero when the
    /// watermark is ahead of `at` (the consumer has caught up).
    pub fn lag(&self, at: SimTime) -> SimTime {
        at.saturating_sub(self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((SimTime::from_secs(7200).as_hours_f64() - 2.0).abs() < 1e-12);
        assert!((SimTime::from_secs(90).as_minutes_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn simtime_arithmetic_saturates() {
        let a = SimTime(u64::MAX - 1);
        assert_eq!((a + SimTime(10)).0, u64::MAX);
        assert_eq!((SimTime(5) - SimTime(10)).0, 0);
        assert_eq!(SimTime(5).saturating_sub(SimTime(10)), SimTime::ZERO);
        let total: SimTime = [SimTime(1), SimTime(2), SimTime(3)].into_iter().sum();
        assert_eq!(total, SimTime(6));
    }

    #[test]
    fn simtime_display_units() {
        assert_eq!(SimTime::from_secs(7200).to_string(), "2.00h");
        assert_eq!(SimTime::from_secs(120).to_string(), "2.00min");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.00s");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.00ms");
        assert_eq!(SimTime(42).to_string(), "42ns");
    }

    #[test]
    fn node_clock_advance_and_sync() {
        let c = NodeClock::new();
        c.advance(SimTime(100));
        assert_eq!(c.now(), SimTime(100));
        c.sync_to(SimTime(50)); // behind: no-op
        assert_eq!(c.now(), SimTime(100));
        c.sync_to(SimTime(200));
        assert_eq!(c.now(), SimTime(200));
        c.reset_to(SimTime(10));
        assert_eq!(c.now(), SimTime(10));
    }

    #[test]
    fn cluster_barrier_takes_max_and_syncs() {
        let cc = ClusterClock::new();
        let a = NodeClock::new();
        let b = NodeClock::new();
        a.advance(SimTime(100));
        b.advance(SimTime(300));
        let t = cc.barrier([&a, &b]);
        assert_eq!(t, SimTime(300));
        assert_eq!(cc.now(), SimTime(300));
        assert_eq!(a.now(), SimTime(300));
        assert_eq!(b.now(), SimTime(300));
    }

    #[test]
    fn cluster_barrier_never_goes_backwards() {
        let cc = ClusterClock::new();
        cc.advance(SimTime(500));
        let a = NodeClock::new();
        a.advance(SimTime(100));
        let t = cc.barrier([&a]);
        assert_eq!(t, SimTime(500));
        assert_eq!(a.now(), SimTime(500));
    }

    #[test]
    fn watermark_is_monotone_and_measures_lag() {
        let w = Watermark::new();
        assert_eq!(w.now(), SimTime::ZERO);
        w.observe(SimTime(100));
        assert_eq!(w.now(), SimTime(100));
        w.observe(SimTime(40)); // late event: frontier holds
        assert_eq!(w.now(), SimTime(100));
        w.observe(SimTime(250));
        assert_eq!(w.lag(SimTime(400)), SimTime(150));
        assert_eq!(w.lag(SimTime(200)), SimTime::ZERO); // caught up
    }

    #[test]
    fn register_joins_at_global_now() {
        let cc = ClusterClock::new();
        cc.advance(SimTime::from_secs(3));
        let n = NodeClock::new();
        cc.register(&n);
        assert_eq!(n.now(), SimTime::from_secs(3));
    }
}
