//! Failure injection for the Table II experiment and for fault-tolerance
//! tests.
//!
//! A [`FailPlan`] lists scripted kills — "kill executor 3 at superstep 5" —
//! and the [`FailureInjector`] is consulted by the engines at the top of
//! each superstep. A kill fires exactly once; recovery is then exercised by
//! the master / lineage machinery of the crates under test.

use crate::sync::Mutex;
use std::sync::Arc;

/// Which kind of node a scripted failure targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Executor,
    Server,
    Datanode,
    /// A serving-tier read replica (`psgraph-serve`).
    Replica,
}

/// What a scripted plan does to its target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailAction {
    /// The node dies (the default — every `kill_*` constructor).
    Kill,
    /// The node comes back, bypassing the monitor's detect/restart
    /// charges — for scripting manual restarts in tests.
    Restart,
}

/// One scripted kill or restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailPlan {
    pub kind: NodeKind,
    /// Index of the node within its kind.
    pub node_id: usize,
    /// Superstep (0-based) at whose start the plan fires.
    pub at_superstep: u64,
    pub action: FailAction,
}

impl FailPlan {
    pub fn kill_executor(node_id: usize, at_superstep: u64) -> Self {
        FailPlan { kind: NodeKind::Executor, node_id, at_superstep, action: FailAction::Kill }
    }

    pub fn kill_server(node_id: usize, at_superstep: u64) -> Self {
        FailPlan { kind: NodeKind::Server, node_id, at_superstep, action: FailAction::Kill }
    }

    pub fn kill_datanode(node_id: usize, at_superstep: u64) -> Self {
        FailPlan { kind: NodeKind::Datanode, node_id, at_superstep, action: FailAction::Kill }
    }

    /// For the serving tier, `at_superstep` is a query index rather than
    /// a BSP superstep — the load generator consults the injector between
    /// queries.
    pub fn kill_replica(node_id: usize, at_superstep: u64) -> Self {
        FailPlan { kind: NodeKind::Replica, node_id, at_superstep, action: FailAction::Kill }
    }

    /// Scripted manual restart of a serving replica (same query-index
    /// timeline as [`FailPlan::kill_replica`]).
    pub fn restart_replica(node_id: usize, at_superstep: u64) -> Self {
        FailPlan { kind: NodeKind::Replica, node_id, at_superstep, action: FailAction::Restart }
    }
}

/// Shared registry of scripted failures. Cheap to clone; thread-safe.
#[derive(Debug, Clone, Default)]
pub struct FailureInjector {
    inner: Arc<Mutex<Vec<FailPlan>>>,
}

impl FailureInjector {
    /// An injector with no scripted failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// An injector pre-loaded with `plans`.
    pub fn with_plans(plans: impl IntoIterator<Item = FailPlan>) -> Self {
        FailureInjector {
            inner: Arc::new(Mutex::new(plans.into_iter().collect())),
        }
    }

    /// Add a scripted failure.
    pub fn schedule(&self, plan: FailPlan) {
        self.inner.lock().push(plan);
    }

    /// Called by engines at the start of `superstep`: returns — and
    /// consumes — every kill that fires now for the given node kind.
    pub fn take_due(&self, kind: NodeKind, superstep: u64) -> Vec<FailPlan> {
        let mut guard = self.inner.lock();
        let mut due = Vec::new();
        guard.retain(|p| {
            if p.kind == kind && p.at_superstep == superstep {
                due.push(p.clone());
                false
            } else {
                true
            }
        });
        due
    }

    /// Whether a specific node dies at this superstep (consumes the plan).
    /// Only [`FailAction::Kill`] plans match — scripted restarts are
    /// delivered via [`FailureInjector::take_due`].
    pub fn should_kill(&self, kind: NodeKind, node_id: usize, superstep: u64) -> bool {
        let mut guard = self.inner.lock();
        let before = guard.len();
        guard.retain(|p| {
            !(p.kind == kind
                && p.node_id == node_id
                && p.at_superstep == superstep
                && p.action == FailAction::Kill)
        });
        guard.len() != before
    }

    /// Number of kills still pending.
    pub fn pending(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_injector_never_kills() {
        let inj = FailureInjector::none();
        assert!(!inj.should_kill(NodeKind::Executor, 0, 0));
        assert!(inj.take_due(NodeKind::Server, 0).is_empty());
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn kill_fires_once_at_the_right_step() {
        let inj = FailureInjector::with_plans([FailPlan::kill_executor(2, 5)]);
        assert!(!inj.should_kill(NodeKind::Executor, 2, 4));
        assert!(!inj.should_kill(NodeKind::Executor, 1, 5));
        assert!(!inj.should_kill(NodeKind::Server, 2, 5));
        assert!(inj.should_kill(NodeKind::Executor, 2, 5));
        // Consumed: does not fire again.
        assert!(!inj.should_kill(NodeKind::Executor, 2, 5));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn take_due_consumes_only_matching() {
        let inj = FailureInjector::with_plans([
            FailPlan::kill_executor(0, 3),
            FailPlan::kill_server(1, 3),
            FailPlan::kill_executor(4, 7),
        ]);
        let due = inj.take_due(NodeKind::Executor, 3);
        assert_eq!(due, vec![FailPlan::kill_executor(0, 3)]);
        assert_eq!(inj.pending(), 2);
        let due = inj.take_due(NodeKind::Server, 3);
        assert_eq!(due, vec![FailPlan::kill_server(1, 3)]);
        assert_eq!(inj.pending(), 1);
    }

    #[test]
    fn schedule_adds_after_construction() {
        let inj = FailureInjector::none();
        inj.schedule(FailPlan::kill_datanode(9, 1));
        assert_eq!(inj.pending(), 1);
        assert!(inj.should_kill(NodeKind::Datanode, 9, 1));
    }

    #[test]
    fn restart_plans_bypass_should_kill() {
        let inj = FailureInjector::with_plans([
            FailPlan::kill_replica(1, 4),
            FailPlan::restart_replica(1, 8),
        ]);
        assert!(inj.should_kill(NodeKind::Replica, 1, 4));
        // The restart at step 8 is not a kill...
        assert!(!inj.should_kill(NodeKind::Replica, 1, 8));
        // ...but take_due still delivers it, action intact.
        let due = inj.take_due(NodeKind::Replica, 8);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].action, FailAction::Restart);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = FailureInjector::none();
        let b = a.clone();
        a.schedule(FailPlan::kill_executor(0, 0));
        assert!(b.should_kill(NodeKind::Executor, 0, 0));
        assert_eq!(a.pending(), 0);
    }
}
