//! Property tests for the simulator substrate (RNG and byte buffers),
//! using the in-tree harness.

use psgraph_harness::prop::{check, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};
use psgraph_sim::{Buf, BufMut, SplitMix64};

#[test]
fn next_below_respects_bound() {
    check(
        "next_below_respects_bound",
        |src: &mut Source| (src.any_u64(), src.u64_range(1, 1 << 40)),
        |&(seed, bound)| {
            let mut rng = SplitMix64::new(seed);
            for _ in 0..100 {
                prop_assert!(rng.next_below(bound) < bound);
            }
            Ok(())
        },
    );
}

#[test]
fn forked_streams_are_independent_and_reproducible() {
    check(
        "forked_streams_are_independent_and_reproducible",
        |src: &mut Source| (src.any_u64(), src.u64_range(0, 1000), src.u64_range(1000, 2000)),
        |&(seed, a, b)| {
            let mut r1 = SplitMix64::new(seed);
            let mut r2 = SplitMix64::new(seed);
            let mut fa = r1.fork(a);
            let mut fa2 = r2.fork(a);
            // Same stream id ⇒ identical sequence.
            for _ in 0..20 {
                prop_assert_eq!(fa.next(), fa2.next());
            }
            // Different stream ids ⇒ sequences diverge somewhere early.
            let mut r3 = SplitMix64::new(seed);
            let mut r4 = SplitMix64::new(seed);
            let mut sa = r3.fork(a);
            let mut sb = r4.fork(b);
            prop_assert!(
                (0..20).any(|_| sa.next() != sb.next()),
                "streams {} and {} never diverged",
                a,
                b
            );
            Ok(())
        },
    );
}

#[test]
fn shuffle_is_a_permutation() {
    check(
        "shuffle_is_a_permutation",
        |src: &mut Source| (src.any_u64(), src.usize_range(0, 200)),
        |&(seed, n)| {
            let mut items: Vec<usize> = (0..n).collect();
            SplitMix64::new(seed).shuffle(&mut items);
            let mut sorted = items.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            Ok(())
        },
    );
}

#[test]
fn byte_buffer_roundtrips_typed_values() {
    check(
        "byte_buffer_roundtrips_typed_values",
        |src: &mut Source| {
            src.vec_with(0, 40, |s| {
                // A random typed value: tag picks the codec.
                match s.choice(4) {
                    0 => (0u8, s.u64_range(0, 256)),
                    1 => (1u8, s.u64_range(0, 1 << 32)),
                    2 => (2u8, s.any_u64()),
                    _ => (3u8, s.any_u64()), // raw bits reinterpreted as f64
                }
            })
        },
        |values| {
            let mut buf: Vec<u8> = Vec::new();
            for &(tag, v) in values {
                match tag {
                    0 => buf.put_u8(v as u8),
                    1 => buf.put_u32_le(v as u32),
                    2 => buf.put_u64_le(v),
                    _ => buf.put_f64_le(f64::from_bits(v)),
                }
            }
            let mut rd: &[u8] = &buf;
            for &(tag, v) in values {
                match tag {
                    0 => prop_assert_eq!(rd.get_u8() as u64, v as u8 as u64),
                    1 => prop_assert_eq!(rd.get_u32_le() as u64, v as u32 as u64),
                    2 => prop_assert_eq!(rd.get_u64_le(), v),
                    _ => prop_assert_eq!(rd.get_f64_le().to_bits(), v),
                }
            }
            prop_assert_eq!(rd.remaining(), 0);
            Ok(())
        },
    );
}
