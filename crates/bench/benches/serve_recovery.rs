//! Serve-tier self-healing bench: a replica kill detected and restarted
//! by the heartbeat [`Monitor`], plus a snapshot-delta hot-swap, on a
//! live 2-shard × 2-replica demo cluster.
//!
//! Two back-to-back runs on the SAME cluster: a clean warm-up, then the
//! measured run with the kill and the swap. Reusing the cluster is the
//! point — the per-run cache counters in [`psgraph_serve::LoadReport`]
//! must not inherit the warm-up's hits (`cache lookups ≤ queries` would
//! fail with cumulative counters). Recorded samples are *simulated*
//! per-query latencies; `metrics` carries detection/restart delays and
//! the recovery p99s. Output lands in `results/BENCH_serve_recovery.json`.

use psgraph_harness::bench::{BenchmarkId, Harness};
use psgraph_ps::snapshot::DeltaWriter;
use psgraph_serve::loadgen;
use psgraph_serve::{
    Monitor, Query, ScriptedAction, ServeCluster, ServeConfig, SwapStats, Value, Workload,
};
use psgraph_sim::failpoint::{FailPlan, FailureInjector};
use psgraph_sim::{CostModel, SimTime};
use std::time::Duration;

fn serve_recovery(c: &mut Harness) {
    let fast = std::env::var("PSGRAPH_BENCH_FAST").is_ok_and(|v| v != "0");
    let queries = if fast { 5_000 } else { 40_000 };
    let n = 4_096u64;
    let mut group = c.benchmark_group("serve_recovery");

    // Detection and restart scaled to the run (≈ 2 % / 8 % of its
    // expected duration), like `repro -- serve`.
    let expected = queries as f64 / 20_000.0;
    let cost = CostModel {
        failure_detect: SimTime::from_secs_f64(expected / 50.0),
        container_restart: SimTime::from_secs_f64(expected / 12.0),
        ..CostModel::default()
    };
    let cfg = ServeConfig { cost: cost.clone(), ..ServeConfig::default() };
    let (mut cluster, truth, backend) =
        ServeCluster::demo_with_ps(n, 16, &cfg).expect("demo cluster");
    let wl = Workload { queries, zipf_s: 1.0, ..Default::default() };

    // Warm-up: no failures, cache fills.
    let warm = loadgen::run(&mut cluster, &wl, &FailureInjector::none(), false);
    group.metric("warmup_hit_rate", warm.hit_rate);

    // Measured run: kill replica 1 halfway (the monitor restarts it),
    // hot-swap a rank delta at three quarters.
    let kill_at = queries / 2;
    let swap_at = queries * 3 / 4;
    let injector = FailureInjector::with_plans([FailPlan::kill_replica(1, kill_at as u64)]);
    let monitor = Monitor::new(cost);
    let patch_ids: Vec<u64> = (0..n / 10).collect();
    let new_ranks: Vec<f64> = patch_ids.iter().map(|&v| truth.ranks[v as usize] + 1.0).collect();
    let mut swap_stats: Option<SwapStats> = None;
    let report;
    {
        let mut actions = [ScriptedAction::new(swap_at, |cluster: &mut ServeCluster| {
            backend
                .ranks
                .push_set(&backend.client, &patch_ids, &new_ranks)
                .expect("rank retrain");
            let mut dw =
                DeltaWriter::new(&backend.dfs, &backend.dir, &backend.manifest, &backend.client);
            dw.vector_f64(&backend.ranks).expect("delta ranks");
            let delta = dw.finish().expect("delta export");
            swap_stats = Some(cluster.swap_in(&delta).expect("hot swap"));
        })];
        report =
            loadgen::run_with(&mut cluster, &wl, &injector, true, Some(&monitor), &mut actions);
    }
    let swap = swap_stats.expect("scripted swap must fire");

    // Per-run counters: at most one cache lookup per query, even though
    // the frontend's cumulative counters already carry the warm-up.
    assert!(
        report.cache_hits + report.cache_misses <= queries as u64,
        "per-run cache counters leaked from the warm-up: {} lookups over {} queries",
        report.cache_hits + report.cache_misses,
        queries
    );
    assert!(report.hit_rate > 0.0 && report.hit_rate <= 1.0);

    // The kill was detected, restarted, and rejoined.
    let events = monitor.events();
    assert_eq!(events.len(), 1, "exactly one recovery");
    assert_eq!(events[0].replica, 1);
    assert_eq!(cluster.live_replicas(), 4, "the replica must be back");
    let kill_t = report.issued_at[kill_at];
    let detect = events[0].detected_at.saturating_sub(kill_t);
    let restart = events[0].rejoined_at.saturating_sub(events[0].detected_at);

    // No stale answers: every post-swap rank of a patched vertex reads
    // the new value bit-for-bit, every pre-swap one the old value.
    let mut stale = 0usize;
    let mut wrong = 0usize;
    for (idx, query, value) in &report.values {
        if let (Query::Rank(v), Value::Rank(r)) = (query, value) {
            if *v < patch_ids.len() as u64 {
                let want =
                    if *idx >= swap_at { new_ranks[*v as usize] } else { truth.ranks[*v as usize] };
                if r.to_bits() != want.to_bits() {
                    if *idx >= swap_at && r.to_bits() == truth.ranks[*v as usize].to_bits() {
                        stale += 1;
                    } else {
                        wrong += 1;
                    }
                }
            }
        }
    }
    assert_eq!(stale, 0, "hot-swap left stale cached ranks");
    assert_eq!(wrong, 0, "served ranks diverged from PS state");

    let p99_pre_kill = report.percentile_where(0.99, |i| i < kill_at);
    let p99_post_rejoin =
        report.percentile_where(0.99, |i| report.issued_at[i] >= events[0].rejoined_at);
    let samples: Vec<Duration> = report
        .latencies
        .iter()
        .map(|(_, l)| Duration::from_nanos(l.as_nanos()))
        .collect();
    group.bench_recorded(BenchmarkId::new("latency", "kill_and_swap"), &samples);
    group
        .metric("run_hit_rate", report.hit_rate)
        .metric("qps", report.qps())
        .metric("answered", report.answered as f64)
        .metric("detect_ms", detect.as_secs_f64() * 1e3)
        .metric("restart_ms", restart.as_secs_f64() * 1e3)
        .metric("p99_pre_kill_ms", p99_pre_kill.as_secs_f64() * 1e3)
        .metric("p99_post_rejoin_ms", p99_post_rejoin.as_secs_f64() * 1e3)
        .metric("swap_regions", swap.regions_applied as f64)
        .metric("swap_shards_rebuilt", swap.shards_rebuilt as f64)
        .metric("swap_keys_invalidated", swap.keys_invalidated as f64)
        .metric("stale_answers", stale as f64)
        .metric("mailbox_dropped", report.mailbox_dropped as f64)
        .metric("mailbox_retried", report.mailbox_retried as f64);
    eprintln!(
        "[sim] serve_recovery: detect {}, restart {}, p99 pre-kill {} → post-rejoin {}, \
         swap {{regions {}, shards {}, keys {}}}, stale {}",
        detect,
        restart,
        p99_pre_kill,
        p99_post_rejoin,
        swap.regions_applied,
        swap.shards_rebuilt,
        swap.keys_invalidated,
        stale
    );
    group.finish();
}

psgraph_harness::bench_main!(serve_recovery);
