//! Micro-bench for Table II: Common Neighbor on DS1′ without failure,
//! with an executor kill, and with a PS-server kill.

use psgraph_harness::bench::{BenchmarkId, Harness};

use psgraph_bench::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use psgraph_core::algos::CommonNeighbor;
use psgraph_core::runner::distribute_edges;
use psgraph_graph::Dataset;
use psgraph_sim::FailPlan;

const SCALE: f64 = 0.01;

#[derive(Clone, Copy)]
enum Kill {
    None,
    Executor,
    Server,
}

fn run(kill: Kill) {
    let g = Dataset::Ds1.generate(SCALE);
    let rule = ScaleRule::new(Dataset::Ds1, SCALE);
    let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS1);
    match kill {
        Kill::None => {}
        Kill::Executor => ctx.cluster().injector().schedule(FailPlan::kill_executor(1, 2)),
        Kill::Server => ctx.ps().injector().schedule(FailPlan::kill_server(1, 2)),
    }
    let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
    CommonNeighbor { checkpoint: true, batch_size: 256 }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap();
}

fn bench_recovery(c: &mut Harness) {
    let mut group = c.benchmark_group("table2_failure_recovery");
    group.sample_size(10);
    for (name, kill) in [
        ("without_failure", Kill::None),
        ("executor_failure", Kill::Executor),
        ("ps_failure", Kill::Server),
    ] {
        group.bench_function(BenchmarkId::new("common_neighbor", name), |b| {
            b.iter(|| run(kill))
        });
    }
    group.finish();
}

psgraph_harness::bench_main!(bench_recovery);
