//! Micro-bench for Fig. 6: wall-clock of the simulated runs for each
//! traditional-graph algorithm, PSGraph vs GraphX. Clusters run
//! *unbounded* here — this bench measures engine wall-time at a small
//! scale; the emergent OOM pattern (which is budget- and scale-
//! calibrated) is the `repro -- fig6` harness's and
//! `fig6::tests::fig6_shape_holds`'s concern. GraphX K-Core/Triangle
//! Count are skipped: unbounded they exhaust host memory by design (that
//! IS the Fig. 6 result).

use std::sync::Arc;

use psgraph_harness::bench::{BenchmarkId, Harness};
use psgraph_harness::Pool;

use psgraph_bench::deploy::{
    graphx_unbounded, psgraph_unbounded, psgraph_unbounded_with_pool, SIM_EXECUTORS,
};
use psgraph_core::algos::{CommonNeighbor, FastUnfolding, KCore, PageRank, TriangleCount};
use psgraph_core::runner::distribute_edges;
use psgraph_graph::Dataset;
use psgraph_graphx::{gx_common_neighbor, gx_fast_unfolding, gx_pagerank, GxGraph};

const SCALE: f64 = 0.01;

fn bench_fig6(c: &mut Harness) {
    let g = Dataset::Ds1.generate(SCALE);
    let mut group = c.benchmark_group("fig6_ds1");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("psgraph", "pagerank"), |b| {
        b.iter(|| {
            let ctx = psgraph_unbounded();
            let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
            PageRank { max_iterations: 10, delta_threshold: 1e-6, ..Default::default() }
                .run(&ctx, &edges, g.num_vertices())
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("graphx", "pagerank"), |b| {
        b.iter(|| {
            let cluster = graphx_unbounded();
            let gx = GxGraph::from_edgelist(&cluster, &g, SIM_EXECUTORS * 6).unwrap();
            gx_pagerank(&gx, 0.85, 10).unwrap()
        })
    });

    group.bench_function(BenchmarkId::new("psgraph", "common_neighbor"), |b| {
        b.iter(|| {
            let ctx = psgraph_unbounded();
            let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
            CommonNeighbor::default().run(&ctx, &edges, g.num_vertices()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("graphx", "common_neighbor"), |b| {
        b.iter(|| {
            let cluster = graphx_unbounded();
            let gx = GxGraph::from_edgelist(&cluster, &g, SIM_EXECUTORS * 6).unwrap();
            gx_common_neighbor(&gx).unwrap()
        })
    });

    group.bench_function(BenchmarkId::new("psgraph", "fast_unfolding"), |b| {
        b.iter(|| {
            let ctx = psgraph_unbounded();
            let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
            FastUnfolding { max_passes: 2, max_sweeps: 3, ..Default::default() }
                .run_unweighted(&ctx, &edges, g.num_vertices())
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("graphx", "fast_unfolding"), |b| {
        b.iter(|| {
            let cluster = graphx_unbounded();
            let gx = GxGraph::from_edgelist(&cluster, &g, SIM_EXECUTORS * 6).unwrap();
            gx_fast_unfolding(&gx, 2, 3).unwrap()
        })
    });

    // GraphX K-Core / Triangle Count: bench the PSGraph side only (see
    // module docs).
    group.bench_function(BenchmarkId::new("psgraph", "kcore"), |b| {
        b.iter(|| {
            let ctx = psgraph_unbounded();
            let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
            KCore { max_iterations: 30 }.run(&ctx, &edges, g.num_vertices()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("psgraph", "triangle_count"), |b| {
        b.iter(|| {
            let ctx = psgraph_unbounded();
            let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
            TriangleCount::default().run(&ctx, &edges, g.num_vertices()).unwrap()
        })
    });
    group.finish();
}

/// Thread-count scaling sweep: the same PageRank run on explicit pools of
/// 1/2/4/8 workers. Simulated time is pool-size-invariant (the cost model
/// divides by simulated cores, not host threads); wall-clock shows the
/// real multi-core scaling. Ranks must be bit-identical at every pool
/// size — the deterministic-reduction rule under test.
fn bench_fig6_scaling(c: &mut Harness) {
    let g = Dataset::Ds1.generate(SCALE);
    let run_pr = |threads: usize| {
        let ctx = psgraph_unbounded_with_pool(Arc::new(Pool::with_perturb(threads, None)));
        let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
        PageRank { max_iterations: 10, delta_threshold: 1e-6, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
    };

    let mut group = c.benchmark_group("fig6_scaling");
    group.sample_size(5).warmup_iters(1);
    let baseline: Vec<u64> = run_pr(1).ranks.iter().map(|r| r.to_bits()).collect();
    let mut means: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let out = run_pr(threads);
        let bits: Vec<u64> = out.ranks.iter().map(|r| r.to_bits()).collect();
        assert_eq!(bits, baseline, "ranks diverge at {threads} threads");
        group.bench_function(BenchmarkId::new("pagerank", format!("threads={threads}")), |b| {
            b.iter_sim(|| run_pr(threads).stats.elapsed.as_nanos())
        });
        means.push((threads, group.last_mean_ns().unwrap()));
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    group.metric("host_cores", host as f64);
    let t1 = means[0].1;
    for &(threads, mean) in &means {
        group.metric(format!("speedup_x{threads}"), t1 / mean);
    }
    // The >=3x-at-8-threads claim needs 8 host cores to manifest; on
    // smaller hosts the sweep still records the curve.
    if host >= 8 {
        let s8 = t1 / means.last().unwrap().1;
        assert!(s8 >= 3.0, "expected >=3x wall speedup at 8 threads, got {s8:.2}x");
    }
    group.finish();
}

psgraph_harness::bench_main!(bench_fig6, bench_fig6_scaling);
