//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Delta PageRank** — increments + sparse pulls (the paper's §IV-A
//!   optimization) vs exact dense behaviour (threshold 0).
//! * **Partitioner** — hash vs range placement for skewed vector access.
//! * **Co-partitioned join** — join reuse of a pre-partitioned table vs
//!   re-shuffling both sides (the GraphX CN fix).
//! * **BSP vs ASP** — superstep barrier cost under stragglers.

use psgraph_harness::bench::{BenchmarkId, Harness};

use psgraph_bench::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use psgraph_core::algos::PageRank;
use psgraph_core::runner::distribute_edges;
use psgraph_dataflow::{Cluster, Rdd};
use psgraph_graph::Dataset;
use psgraph_ps::sync::SyncController;
use psgraph_ps::{Partitioner, RecoveryMode, SyncMode, VectorHandle};
use psgraph_sim::{ClusterClock, NodeClock, SimTime};

const SCALE: f64 = 0.01;

fn ablation_delta_pagerank(c: &mut Harness) {
    let g = Dataset::Ds1.generate(SCALE);
    let rule = ScaleRule::new(Dataset::Ds1, SCALE);
    let mut group = c.benchmark_group("ablation_delta_pagerank");
    group.sample_size(10);
    for (name, threshold) in [("delta_sparse", 1e-4), ("exact_dense", 0.0)] {
        // The harness measures wall clock of the simulator; the design
        // claim is about *simulated* cluster time — print it once.
        {
            let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS1);
            let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
            PageRank { max_iterations: 80, delta_threshold: threshold, ..Default::default() }
                .run(&ctx, &edges, g.num_vertices())
                .unwrap();
            eprintln!("[sim] pagerank/{name}: {}", ctx.now());
        }
        group.bench_function(BenchmarkId::new("pagerank", name), |b| {
            b.iter(|| {
                let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS1);
                let edges =
                    distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
                PageRank { max_iterations: 80, delta_threshold: threshold, ..Default::default() }
                    .run(&ctx, &edges, g.num_vertices())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_partitioner(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_partitioner");
    group.sample_size(20);
    // Skewed access under concurrency: eight executors simultaneously
    // pull a narrow hot id range. Range partitioning funnels every pull
    // into one server's queue; hash spreads the load. The metric is the
    // slowest client's completion time (port queueing is modeled).
    let hot: Vec<u64> = (0..100_000).map(|i| i % 500).collect();
    for (name, partitioner) in [
        ("hash", Partitioner::Hash),
        ("range", Partitioner::Range),
        ("hash_range", Partitioner::HashRange { buckets: 2 }),
    ] {
        {
            let ctx = psgraph_context(
                ScaleRule::new(Dataset::Ds1, SCALE),
                PaperAlloc::PSGRAPH_DS1,
            );
            let v = VectorHandle::<f64>::create(
                ctx.ps(), format!("abl.pre.{name}"), 100_000, partitioner,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            let clients: Vec<NodeClock> = (0..8).map(|_| NodeClock::new()).collect();
            for c in &clients {
                v.pull(c, &hot).unwrap();
            }
            let slowest = clients.iter().map(|c| c.now()).max().unwrap();
            eprintln!("[sim] skewed_pull/{name}: slowest client {slowest}");
        }
        group.bench_function(BenchmarkId::new("skewed_pull", name), |b| {
            let ctx = psgraph_context(
                ScaleRule::new(Dataset::Ds1, SCALE),
                PaperAlloc::PSGRAPH_DS1,
            );
            let v = VectorHandle::<f64>::create(
                ctx.ps(),
                format!("abl.{name}"),
                100_000,
                partitioner,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            b.iter(|| {
                let clients: Vec<NodeClock> = (0..8).map(|_| NodeClock::new()).collect();
                for c in &clients {
                    v.pull(c, &hot).unwrap();
                }
                clients.iter().map(|c| c.now()).max().unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_copartitioned_join(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_copartitioned_join");
    group.sample_size(10);
    let cluster = Cluster::local();
    let big: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i % 10_000, i)).collect();
    let small: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 17 % 10_000, i)).collect();
    let parts = cluster.default_partitions();
    let big_rdd = Rdd::from_vec(&cluster, big, parts).unwrap();
    let big_parted = big_rdd.partition_by_key(parts).unwrap();

    group.bench_function("reshuffle_both_sides", |b| {
        b.iter(|| {
            let s = Rdd::from_vec(&cluster, small.clone(), parts).unwrap();
            s.join(&big_rdd, parts).unwrap().count().unwrap()
        })
    });
    group.bench_function("copartitioned_reuse", |b| {
        b.iter(|| {
            let s = Rdd::from_vec(&cluster, small.clone(), parts).unwrap();
            let sp = s.partition_by_key(parts).unwrap();
            big_parted.join_copartitioned(&sp).unwrap().count().unwrap()
        })
    });
    group.finish();
}

fn ablation_bsp_vs_asp(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_sync_mode");
    group.sample_size(30);
    // Ten supersteps with one straggler: BSP propagates the straggler's
    // delay to everyone; ASP lets the fast workers run ahead. The metric
    // is the fast workers' final simulated time.
    for (name, mode) in [("bsp", SyncMode::Bsp), ("asp", SyncMode::Asp)] {
        group.bench_function(BenchmarkId::new("straggler", name), |b| {
            b.iter(|| {
                let ctrl = SyncController::new(mode);
                let clock = ClusterClock::new();
                let workers: Vec<NodeClock> = (0..8).map(|_| NodeClock::new()).collect();
                for step in 0..10 {
                    for (i, w) in workers.iter().enumerate() {
                        let cost = if i == 0 && step % 3 == 0 { 50 } else { 5 };
                        w.advance(SimTime::from_millis(cost));
                    }
                    ctrl.end_superstep(&clock, workers.iter());
                }
                workers[7].now()
            })
        });
    }
    group.finish();
}

psgraph_harness::bench_main!(
    ablation_delta_pagerank,
    ablation_partitioner,
    ablation_copartitioned_join,
    ablation_bsp_vs_asp,
);
