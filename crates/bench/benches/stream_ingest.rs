//! Streaming ingest bench: drift-RMAT edge events through micro-batch
//! ingestion, incremental PageRank/CC maintenance, and periodic delta
//! hot-swaps into a live serving tier — swept across owner-keyed
//! ingestor shard counts (1/2/4/8).
//!
//! Recorded samples are the wall-clock cost of each delta hot-swap (from
//! the single-ingestor reference run); per shard count the metrics carry
//! ingest throughput, event-time freshness lag (p50/p99 — event-time, so
//! shard-count-invariant by construction) and the final-state digest,
//! which every shard count must reproduce bit-identically. The
//! throughput-scaling assertion only fires on hosts with >= 8 cores
//! (sharding parallelizes mirror planning and partition writes; on a
//! 1-core runner the sweep still proves correctness, not speed). Output
//! lands in `results/BENCH_stream.json`.

use psgraph_bench::stream_exp;
use psgraph_harness::bench::{BenchmarkId, Harness};
use std::time::Duration;

fn stream_ingest(c: &mut Harness) {
    let fast = std::env::var("PSGRAPH_BENCH_FAST").is_ok_and(|v| v != "0");
    let events = if fast { 6_000 } else { 25_000 };
    let mut group = c.benchmark_group("stream");

    let mut reference_digest = None;
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let r = stream_exp::run_stream_with(0.02, events, shards).expect("stream repro");
        assert_eq!(r.wrong, 0, "served answers must match the swap-time PS state");
        assert!(r.cc_ok && r.pr_linf < 1e-6, "incremental maintainers drifted");
        let reference = *reference_digest.get_or_insert(r.state_digest);
        assert_eq!(
            r.state_digest, reference,
            "final PS state at {shards} shards diverged from the single-ingestor reference"
        );

        if shards == 1 {
            let samples: Vec<Duration> = r
                .swap_walls_ms
                .iter()
                .map(|ms| Duration::from_secs_f64(ms / 1e3))
                .collect();
            group.bench_recorded(BenchmarkId::new("swap_wall", "delta"), &samples);
            group
                .metric("events", r.events as f64)
                .metric("batches", r.batches as f64)
                .metric("swaps", r.swaps as f64)
                .metric("dirty_partitions", r.dirty_partitions as f64)
                .metric("skipped_dup_adds", r.skipped_dup_adds as f64)
                .metric("skipped_missing_removes", r.skipped_missing_removes as f64)
                .metric("freshness_p50_ms", r.freshness_p50.as_secs_f64() * 1e3)
                .metric("freshness_p99_ms", r.freshness_p99.as_secs_f64() * 1e3)
                .metric("freshness_max_ms", r.freshness_max.as_secs_f64() * 1e3)
                .metric("swap_wall_mean_ms", r.mean_swap_ms())
                .metric("full_reload_ms", r.full_reload_ms)
                .metric("pr_linf", r.pr_linf)
                .metric("queries_answered", r.answered as f64);
        }
        group
            .metric(format!("events_per_sec_shards{shards}"), r.events_per_sec)
            .metric(
                format!("freshness_p99_ms_shards{shards}"),
                r.freshness_p99.as_secs_f64() * 1e3,
            )
            .metric(
                format!("freshness_p50_ms_shards{shards}"),
                r.freshness_p50.as_secs_f64() * 1e3,
            );
        throughputs.push((shards, r.events_per_sec));
        eprintln!(
            "[sim] stream shards={shards}: {:.0} events/s, {} swaps, freshness p99 {}, digest {:016x}",
            r.events_per_sec, r.swaps, r.freshness_p99, r.state_digest,
        );
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    group.metric("host_cores", host as f64);
    if host >= 8 && !fast {
        let (_, at8) = *throughputs.last().unwrap();
        assert!(
            at8 >= 100_000.0,
            "expected >=100k events/s at 8 shards on an 8-core host, got {at8:.0}"
        );
    }
    group.finish();
}

psgraph_harness::bench_main!(stream_ingest);
