//! Streaming ingest bench: drift-RMAT edge events through micro-batch
//! ingestion, incremental PageRank/CC maintenance, and periodic delta
//! hot-swaps into a live serving tier.
//!
//! Recorded samples are the wall-clock cost of each delta hot-swap; the
//! metrics carry ingest throughput, event-time freshness lag (p50/p99),
//! and the swap-vs-full-reload cost comparison the delta path exists
//! for. Output lands in `results/BENCH_stream.json`.

use psgraph_bench::stream_exp;
use psgraph_harness::bench::{BenchmarkId, Harness};
use std::time::Duration;

fn stream_ingest(c: &mut Harness) {
    let fast = std::env::var("PSGRAPH_BENCH_FAST").is_ok_and(|v| v != "0");
    let events = if fast { 6_000 } else { 25_000 };
    let mut group = c.benchmark_group("stream");

    let r = stream_exp::run_stream(0.02, events).expect("stream repro");
    assert_eq!(r.wrong, 0, "served answers must match the swap-time PS state");
    assert!(r.cc_ok && r.pr_linf < 1e-6, "incremental maintainers drifted");

    let samples: Vec<Duration> = r
        .swap_walls_ms
        .iter()
        .map(|ms| Duration::from_secs_f64(ms / 1e3))
        .collect();
    group.bench_recorded(BenchmarkId::new("swap_wall", "delta"), &samples);
    group
        .metric("events_per_sec", r.events_per_sec)
        .metric("events", r.events as f64)
        .metric("batches", r.batches as f64)
        .metric("swaps", r.swaps as f64)
        .metric("dirty_partitions", r.dirty_partitions as f64)
        .metric("freshness_p50_ms", r.freshness_p50.as_secs_f64() * 1e3)
        .metric("freshness_p99_ms", r.freshness_p99.as_secs_f64() * 1e3)
        .metric("freshness_max_ms", r.freshness_max.as_secs_f64() * 1e3)
        .metric("swap_wall_mean_ms", r.mean_swap_ms())
        .metric("full_reload_ms", r.full_reload_ms)
        .metric("pr_linf", r.pr_linf)
        .metric("queries_answered", r.answered as f64);
    eprintln!(
        "[sim] stream: {:.0} events/s, {} swaps, freshness p99 {}, swap {:.2} ms vs reload {:.2} ms",
        r.events_per_sec,
        r.swaps,
        r.freshness_p99,
        r.mean_swap_ms(),
        r.full_reload_ms,
    );
    group.finish();
}

psgraph_harness::bench_main!(stream_ingest);
