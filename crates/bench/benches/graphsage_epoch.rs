//! Micro-bench for Table I: GraphSage preprocessing + training on
//! DS3′, PSGraph vs the Euler baseline.

use std::sync::Arc;

use psgraph_harness::bench::{BenchmarkId, Harness};

use psgraph_bench::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use psgraph_bench::table1::FEAT_DIM;
use psgraph_core::algos::{GraphSage, GraphSageConfig};
use psgraph_core::runner::distribute_edges;
use psgraph_euler::{preprocess, train, EulerCluster, EulerConfig};
use psgraph_graph::{io, Dataset};
use psgraph_sim::{CostModel, NodeClock};

const SCALE: f64 = 0.02;

fn bench_graphsage(c: &mut Harness) {
    let s = Dataset::generate_ds3_features(SCALE, FEAT_DIM);
    let rule = ScaleRule::new(Dataset::Ds3, SCALE);
    let mut group = c.benchmark_group("table1_graphsage_ds3");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("psgraph", "preprocess+train"), |b| {
        let feats = Arc::new(s.features.clone());
        let labels = Arc::new(s.labels.clone());
        b.iter(|| {
            let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS3);
            let edges =
                distribute_edges(&ctx, &s.graph, ctx.cluster().default_partitions()).unwrap();
            GraphSage::new(GraphSageConfig { feat_dim: FEAT_DIM, epochs: 1, ..Default::default() })
                .run(&ctx, &edges, &feats, &labels, s.graph.num_vertices())
                .unwrap()
        })
    });

    group.bench_function(BenchmarkId::new("euler", "preprocess+train"), |b| {
        b.iter(|| {
            let dfs = psgraph_dfs::Dfs::in_memory();
            let clk = NodeClock::new();
            io::write_text(&dfs, "/raw/e", &s.graph, &clk).unwrap();
            io::write_features(&dfs, "/raw/f", &s.features, &s.labels, &clk).unwrap();
            let cfg = EulerConfig { feat_dim: FEAT_DIM, epochs: 1, ..Default::default() };
            let driver = NodeClock::new();
            let (graph, _report) =
                preprocess(&dfs, "/raw/e", "/raw/f", "/euler", cfg.shards, &driver).unwrap();
            let mut cluster = EulerCluster::new(cfg.workers, cfg.shards, CostModel::default());
            Arc::get_mut(&mut cluster)
                .unwrap()
                .load(&graph.adjacency, &graph.features);
            train(&cluster, &Arc::new(graph), &cfg)
        })
    });
    group.finish();
}

psgraph_harness::bench_main!(bench_graphsage);
