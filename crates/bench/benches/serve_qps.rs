//! Serving-tier QPS/latency bench: hot-key cache on vs off under Zipf(1.0)
//! point-lookup traffic against a 2-shard × 2-replica demo cluster, plus
//! a fixed-vs-adaptive batch-flush ablation (`batch_fixed` holds every
//! batch for the full timeout; the default flushes early when the
//! admission queue drains).
//!
//! The recorded samples are *simulated* per-query latencies (the quantity
//! the SLO is about), not wall clock; `metrics` carries the hit-rate and
//! throughput ablation. Output lands in `results/BENCH_serve.json`.

use psgraph_harness::bench::{BenchmarkId, Harness};
use psgraph_harness::Pool;
use psgraph_serve::loadgen;
use psgraph_serve::{QueryMix, ServeCluster, ServeConfig, SloPolicy, Workload};
use psgraph_sim::failpoint::FailureInjector;
use std::sync::Arc;
use std::time::Duration;

fn serve_cache_ablation(c: &mut Harness) {
    let fast = std::env::var("PSGRAPH_BENCH_FAST").is_ok_and(|v| v != "0");
    let queries = if fast { 5_000 } else { 50_000 };
    let mut group = c.benchmark_group("serve");

    let mut p99_by_name: Vec<(&str, f64)> = Vec::new();
    for (name, budget, adaptive) in [
        ("cache_off", 0u64, true),
        ("batch_fixed", 256 * 1024, false),
        ("cache_on", 256 * 1024, true),
    ] {
        let cfg = ServeConfig {
            cache_budget: budget,
            policy: SloPolicy { adaptive_flush: adaptive, ..SloPolicy::default() },
            ..Default::default()
        };
        let (mut cluster, _truth) = ServeCluster::demo(4_096, 16, &cfg).expect("demo cluster");
        let wl = Workload { queries, zipf_s: 1.0, mix: QueryMix::point_only(), ..Default::default() };
        let report = loadgen::run(&mut cluster, &wl, &FailureInjector::none(), false);
        p99_by_name.push((name, report.percentile(0.99).as_secs_f64() * 1e3));

        let samples: Vec<Duration> = report
            .latencies
            .iter()
            .map(|(_, l)| Duration::from_nanos(l.as_nanos()))
            .collect();
        group.bench_recorded(BenchmarkId::new("latency", name), &samples);
        group
            .metric(format!("{name}_hit_rate"), report.hit_rate)
            .metric(format!("{name}_qps"), report.qps())
            .metric(format!("{name}_answered"), report.answered as f64)
            .metric(format!("{name}_shed"), report.shed as f64)
            .metric(
                format!("{name}_p50_ms"),
                report.percentile(0.50).as_secs_f64() * 1e3,
            )
            .metric(
                format!("{name}_p99_ms"),
                report.percentile(0.99).as_secs_f64() * 1e3,
            )
            .metric(format!("{name}_mailbox_dropped"), report.mailbox_dropped as f64)
            .metric(format!("{name}_mailbox_retried"), report.mailbox_retried as f64);
        eprintln!(
            "[sim] serve/{name}: hit_rate {:.3}, qps {:.0}, p50 {}, p99 {}",
            report.hit_rate,
            report.qps(),
            report.percentile(0.50),
            report.percentile(0.99),
        );

        // The ablation claim: Zipf traffic must turn the budget into hits.
        if budget == 0 {
            assert_eq!(report.cache_hits, 0, "a zero-budget cache cannot hit");
        } else {
            assert!(
                report.hit_rate > 0.2,
                "Zipf(1.0) should hit a 256 KiB cache, got {:.3}",
                report.hit_rate
            );
        }
    }
    // The flush ablation claim: draining the queue early can only take
    // waiting time out of the batch path.
    let p99_of = |want: &str| {
        p99_by_name.iter().find(|(n, _)| *n == want).expect("ablation leg ran").1
    };
    let (fixed, adaptive) = (p99_of("batch_fixed"), p99_of("cache_on"));
    group
        .metric("p99_fixed_flush_ms", fixed)
        .metric("p99_adaptive_flush_ms", adaptive);
    assert!(
        adaptive <= fixed,
        "adaptive flush worsened p99: {adaptive:.3}ms vs fixed {fixed:.3}ms"
    );
    group.finish();
}

/// Thread-count scaling sweep over the heaviest serve op: `TopKAll`
/// scatter-gather queries on frontends pinned to pools of 1/2/4/8
/// workers. Query answers and simulated latencies must be bit-identical
/// at every pool size (shard-order merge rule); wall-clock shows the real
/// scatter scaling.
fn serve_thread_scaling(c: &mut Harness) {
    let fast = std::env::var("PSGRAPH_BENCH_FAST").is_ok_and(|v| v != "0");
    let queries = if fast { 200 } else { 1_000 };
    let wl = Workload {
        queries,
        zipf_s: 1.0,
        mix: QueryMix {
            rank: 0,
            community: 0,
            embedding: 0,
            neighbors: 0,
            khop: 0,
            topk: 0,
            topk_all: 1,
            compound: 0,
        },
        ..Default::default()
    };
    let run_once = |threads: usize, record: bool| {
        let cfg = ServeConfig { cache_budget: 256 * 1024, ..Default::default() }
            .with_pool(Arc::new(Pool::with_perturb(threads, None)));
        let (mut cluster, _truth) = ServeCluster::demo(2_048, 16, &cfg).expect("demo cluster");
        loadgen::run(&mut cluster, &wl, &FailureInjector::none(), record)
    };

    let mut group = c.benchmark_group("serve_scaling");
    group.sample_size(if fast { 3 } else { 5 }).warmup_iters(1);
    let baseline = run_once(1, true);
    let mut means: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let rep = run_once(threads, true);
        assert_eq!(rep.values, baseline.values, "answers diverge at {threads} threads");
        assert_eq!(
            rep.latencies, baseline.latencies,
            "simulated latencies diverge at {threads} threads"
        );
        group.bench_function(BenchmarkId::new("topk_all", format!("threads={threads}")), |b| {
            b.iter_sim(|| run_once(threads, false).makespan.as_nanos())
        });
        means.push((threads, group.last_mean_ns().unwrap()));
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    group.metric("host_cores", host as f64);
    let t1 = means[0].1;
    for &(threads, mean) in &means {
        group.metric(format!("speedup_x{threads}"), t1 / mean);
    }
    if host >= 8 {
        let s8 = t1 / means.last().unwrap().1;
        assert!(s8 >= 3.0, "expected >=3x wall speedup at 8 threads, got {s8:.2}x");
    }
    group.finish();
}

psgraph_harness::bench_main!(serve_cache_ablation, serve_thread_scaling);
