//! Micro-bench for §V-B2: one LINE training epoch on DS1′, with and
//! without the psFunc server-side dot products (the §IV-D optimization).

use psgraph_harness::bench::{BenchmarkId, Harness};

use psgraph_bench::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use psgraph_core::algos::{Line, LineConfig};
use psgraph_core::runner::distribute_edges;
use psgraph_graph::Dataset;

const SCALE: f64 = 0.005;

fn bench_line(c: &mut Harness) {
    let g = Dataset::Ds1.generate(SCALE);
    let rule = ScaleRule::new(Dataset::Ds1, SCALE);
    let mut group = c.benchmark_group("line_epoch_ds1");
    group.sample_size(10);

    for (name, use_psfunc) in [("psfunc", true), ("pull_rows", false)] {
        group.bench_function(BenchmarkId::new("line", name), |b| {
            b.iter(|| {
                let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS2);
                let edges =
                    distribute_edges(&ctx, &g, ctx.cluster().default_partitions()).unwrap();
                Line::new(LineConfig {
                    dim: 128,
                    epochs: 1,
                    use_psfunc,
                    ..Default::default()
                })
                .run(&ctx, &edges, g.num_vertices())
                .unwrap()
            })
        });
    }
    group.finish();
}

psgraph_harness::bench_main!(bench_line);
