//! Regression pin for the copartitioned-join ablation (BENCH_ablation_
//! copartitioned_join): reusing a co-partitioning MUST beat reshuffling
//! both sides. An earlier implementation inverted this on wall clock by
//! cloning both full partitions and building the hash table over the
//! *big* side; `join_copartitioned` now builds over the smaller side by
//! reference.

use psgraph_dataflow::{Cluster, Rdd};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scenario(cluster: &Arc<Cluster>) -> (Rdd<(u64, u64)>, Vec<(u64, u64)>, usize) {
    let big: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i % 10_000, i)).collect();
    let small: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 17 % 10_000, i)).collect();
    let parts = cluster.default_partitions();
    let big_rdd = Rdd::from_vec(cluster, big, parts).unwrap();
    (big_rdd, small, parts)
}

#[test]
fn copartitioned_join_moves_less_data_in_less_simulated_time() {
    let cluster = Cluster::local();
    // Scrambled keys: the bench's `i % 10_000` keys are modularly aligned
    // with round-robin placement, making every shuffle chunk local; taking
    // the *high* bits of a multiplicative scramble restores realistic
    // cross-executor traffic.
    let scramble = |i: u64| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % 10_000;
    let big: Vec<(u64, u64)> = (0..50_000u64).map(|i| (scramble(i), i)).collect();
    let small: Vec<(u64, u64)> = (0..500u64).map(|i| (scramble(i * 31 + 7), i)).collect();
    let parts = cluster.default_partitions();
    let big_rdd = Rdd::from_vec(&cluster, big, parts).unwrap();
    let big_parted = big_rdd.partition_by_key(parts).unwrap();

    let bytes0 = cluster.network().stats().total_bytes();
    let t0 = cluster.now();
    let s = Rdd::from_vec(&cluster, small.clone(), parts).unwrap();
    let n_reshuffle = s.join(&big_rdd, parts).unwrap().count().unwrap();
    let reshuffle_sim = cluster.now().saturating_sub(t0);
    let reshuffle_bytes = cluster.network().stats().total_bytes() - bytes0;

    let bytes1 = cluster.network().stats().total_bytes();
    let t1 = cluster.now();
    let s = Rdd::from_vec(&cluster, small.clone(), parts).unwrap();
    let sp = s.partition_by_key(parts).unwrap();
    let n_copart = big_parted.join_copartitioned(&sp).unwrap().count().unwrap();
    let copart_sim = cluster.now().saturating_sub(t1);
    let copart_bytes = cluster.network().stats().total_bytes() - bytes1;

    assert_eq!(n_reshuffle, n_copart, "both plans must produce the same join");
    assert!(
        copart_sim < reshuffle_sim,
        "copartitioned join must be cheaper in simulated time: {copart_sim:?} \
         vs reshuffle {reshuffle_sim:?}"
    );
    assert!(
        copart_bytes < reshuffle_bytes,
        "copartitioned join must move less data: {copart_bytes} B \
         vs reshuffle {reshuffle_bytes} B"
    );
}

#[test]
fn copartitioned_join_is_not_slower_on_the_host() {
    // The original inversion was wall-clock: 2.5 ms copartitioned vs
    // 1.3 ms reshuffled, from full-partition clones + hashing the 50k-row
    // side. Pin the ordering on medians with a warmup round.
    let cluster = Cluster::local();
    let (big_rdd, small, parts) = scenario(&cluster);
    let big_parted = big_rdd.partition_by_key(parts).unwrap();

    let median = |mut xs: Vec<Duration>| {
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    let time = |f: &dyn Fn() -> usize| {
        f(); // warmup
        median(
            (0..9)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(f());
                    t.elapsed()
                })
                .collect(),
        )
    };

    let reshuffle = time(&|| {
        let s = Rdd::from_vec(&cluster, small.clone(), parts).unwrap();
        s.join(&big_rdd, parts).unwrap().count().unwrap()
    });
    let copart = time(&|| {
        let s = Rdd::from_vec(&cluster, small.clone(), parts).unwrap();
        let sp = s.partition_by_key(parts).unwrap();
        big_parted.join_copartitioned(&sp).unwrap().count().unwrap()
    });

    assert!(
        copart < reshuffle,
        "copartitioned join regressed on wall clock: {copart:?} vs reshuffle {reshuffle:?}"
    );
}
