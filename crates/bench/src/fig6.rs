//! Fig. 6 reproduction: PSGraph vs GraphX on the traditional graph
//! algorithms, with the paper's resource allocations scaled per
//! `deploy::ScaleRule`. OOMs are *emergent*: a run reports OOM iff an
//! executor's memory meter rejects an allocation.

use std::sync::Arc;

use psgraph_core::algos::{CommonNeighbor, FastUnfolding, KCore, PageRank, TriangleCount};
use psgraph_core::runner::distribute_edges;
use psgraph_core::{CoreError, PsGraphContext};
use psgraph_dataflow::DataflowError;
use psgraph_graph::{Dataset, EdgeList};
use psgraph_graphx::{
    gx_common_neighbor, gx_fast_unfolding, gx_kcore, gx_pagerank, gx_triangle_count, GxGraph,
};
use psgraph_sim::SimTime;

use crate::deploy::{graphx_cluster, psgraph_context, PaperAlloc, ScaleRule, SIM_EXECUTORS};
use crate::report::{Cell, Row, Table};

/// Iterations used for PageRank on both systems (the paper runs to
/// convergence; ~30 damped iterations reach machine-precision ranks).
pub const PR_ITERATIONS: u64 = 30;

/// One Fig. 6 cell outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Time(SimTime),
    Oom,
}

impl Outcome {
    pub fn is_oom(&self) -> bool {
        matches!(self, Outcome::Oom)
    }

    fn to_cell(&self) -> Cell {
        match self {
            Outcome::Time(t) => Cell::Text(t.to_string()),
            Outcome::Oom => Cell::Oom,
        }
    }
}

/// One measured Fig. 6 row.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    pub label: &'static str,
    /// Paper's PSGraph hours.
    pub paper_ps_hours: f64,
    /// Paper's GraphX hours (`None` = the paper reports OOM).
    pub paper_gx_hours: Option<f64>,
    pub psgraph: Outcome,
    pub graphx: Outcome,
}

fn ps_outcome(r: std::result::Result<SimTime, CoreError>) -> Result<Outcome, CoreError> {
    match r {
        Ok(t) => Ok(Outcome::Time(t)),
        Err(e) if e.is_oom() => Ok(Outcome::Oom),
        Err(e) => Err(e),
    }
}

fn gx_outcome(r: std::result::Result<SimTime, DataflowError>) -> Result<Outcome, CoreError> {
    match r {
        Ok(t) => Ok(Outcome::Time(t)),
        Err(DataflowError::Oom(_)) => Ok(Outcome::Oom),
        Err(e) => Err(CoreError::Dataflow(e)),
    }
}

type PsJob<'a> = Box<
    dyn FnOnce(&Arc<PsGraphContext>, &psgraph_dataflow::Rdd<(u64, u64)>, u64) -> Result<(), CoreError>
        + 'a,
>;

fn ps_run(
    rule: ScaleRule,
    alloc: PaperAlloc,
    g: &EdgeList,
    f: PsJob<'_>,
) -> Result<Outcome, CoreError> {
    let ctx = psgraph_context(rule, alloc);
    let run = || -> Result<SimTime, CoreError> {
        let edges = distribute_edges(&ctx, g, ctx.cluster().default_partitions())?;
        f(&ctx, &edges, g.num_vertices())?;
        Ok(ctx.now())
    };
    ps_outcome(run())
}

fn gx_run(
    rule: ScaleRule,
    alloc: PaperAlloc,
    g: &EdgeList,
    f: impl FnOnce(&GxGraph) -> Result<(), DataflowError>,
) -> Result<Outcome, CoreError> {
    let cluster = graphx_cluster(rule, alloc);
    let run = || -> Result<SimTime, DataflowError> {
        let gx = GxGraph::from_edgelist(&cluster, g, SIM_EXECUTORS * 6)?;
        f(&gx)?;
        Ok(cluster.now())
    };
    gx_outcome(run())
}

/// Run the full Fig. 6 grid at `scale`.
pub fn run_fig6(scale: f64) -> Result<Vec<Fig6Cell>, CoreError> {
    let ds1 = Dataset::Ds1.generate(scale);
    let ds2 = Dataset::Ds2.generate(scale);
    let r1 = ScaleRule::new(Dataset::Ds1, scale);
    let r2 = ScaleRule::new(Dataset::Ds2, scale);
    let mut out = Vec::new();

    out.push(Fig6Cell {
        label: "PageRank (DS1)",
        paper_ps_hours: 0.5,
        paper_gx_hours: Some(4.0),
        psgraph: ps_run(r1, PaperAlloc::PSGRAPH_DS1, &ds1, Box::new(|ctx, e, n| {
            PageRank {
                max_iterations: PR_ITERATIONS,
                delta_threshold: 1e-6,
                ..Default::default()
            }
            .run(ctx, e, n)
            .map(|_| ())
        }))?,
        graphx: gx_run(r1, PaperAlloc::GRAPHX_DS1, &ds1, |gx| {
            gx_pagerank(gx, 0.85, PR_ITERATIONS).map(|_| ())
        })?,
    });

    out.push(Fig6Cell {
        label: "PageRank (DS2)",
        paper_ps_hours: 7.0,
        paper_gx_hours: None,
        psgraph: ps_run(r2, PaperAlloc::PSGRAPH_DS2, &ds2, Box::new(|ctx, e, n| {
            PageRank {
                max_iterations: PR_ITERATIONS,
                delta_threshold: 1e-6,
                ..Default::default()
            }
            .run(ctx, e, n)
            .map(|_| ())
        }))?,
        graphx: gx_run(r2, PaperAlloc::GRAPHX_DS2, &ds2, |gx| {
            gx_pagerank(gx, 0.85, PR_ITERATIONS).map(|_| ())
        })?,
    });

    out.push(Fig6Cell {
        label: "Common Neighbor (DS1)",
        paper_ps_hours: 0.5,
        paper_gx_hours: Some(1.5),
        psgraph: ps_run(r1, PaperAlloc::PSGRAPH_DS1, &ds1, Box::new(|ctx, e, n| {
            CommonNeighbor::default().run(ctx, e, n).map(|_| ())
        }))?,
        graphx: gx_run(r1, PaperAlloc::GRAPHX_DS1, &ds1, |gx| {
            gx_common_neighbor(gx).map(|_| ())
        })?,
    });

    out.push(Fig6Cell {
        label: "Common Neighbor (DS2)",
        paper_ps_hours: 3.5,
        paper_gx_hours: None,
        psgraph: ps_run(r2, PaperAlloc::PSGRAPH_DS2, &ds2, Box::new(|ctx, e, n| {
            CommonNeighbor::default().run(ctx, e, n).map(|_| ())
        }))?,
        graphx: gx_run(r2, PaperAlloc::GRAPHX_DS2, &ds2, |gx| {
            gx_common_neighbor(gx).map(|_| ())
        })?,
    });

    out.push(Fig6Cell {
        label: "Fast Unfolding (DS1)",
        paper_ps_hours: 3.5,
        paper_gx_hours: Some(10.3),
        psgraph: ps_run(r1, PaperAlloc::PSGRAPH_DS1, &ds1, Box::new(|ctx, e, n| {
            FastUnfolding { max_passes: 3, max_sweeps: 5, ..Default::default() }
                .run_unweighted(ctx, e, n)
                .map(|_| ())
        }))?,
        graphx: gx_run(r1, PaperAlloc::GRAPHX_DS1, &ds1, |gx| {
            gx_fast_unfolding(gx, 3, 5).map(|_| ())
        })?,
    });

    out.push(Fig6Cell {
        label: "K-Core (DS1)",
        paper_ps_hours: 2.0,
        paper_gx_hours: None,
        psgraph: ps_run(r1, PaperAlloc::PSGRAPH_DS1, &ds1, Box::new(|ctx, e, n| {
            KCore::default().run(ctx, e, n).map(|_| ())
        }))?,
        graphx: gx_run(r1, PaperAlloc::GRAPHX_DS1, &ds1, |gx| {
            gx_kcore(gx, 100).map(|_| ())
        })?,
    });

    out.push(Fig6Cell {
        label: "Triangle Count (DS1)",
        paper_ps_hours: 0.7,
        paper_gx_hours: None,
        psgraph: ps_run(r1, PaperAlloc::PSGRAPH_DS1, &ds1, Box::new(|ctx, e, n| {
            TriangleCount::default().run(ctx, e, n).map(|_| ())
        }))?,
        graphx: gx_run(r1, PaperAlloc::GRAPHX_DS1, &ds1, |gx| {
            gx_triangle_count(gx).map(|_| ())
        })?,
    });

    Ok(out)
}

/// Render the grid as a paper-vs-measured table.
pub fn table(cells: &[Fig6Cell]) -> Table {
    let mut t = Table::new(
        "Fig. 6 — traditional graph algorithms (simulated time)",
        &["paper PSGraph", "paper GraphX", "PSGraph", "GraphX", "shape"],
    );
    for c in cells {
        let paper_gx = match c.paper_gx_hours {
            Some(h) => Cell::Hours(h),
            None => Cell::Oom,
        };
        let shape_ok = match (&c.paper_gx_hours, &c.graphx, &c.psgraph) {
            (None, Outcome::Oom, Outcome::Time(_)) => "ok: OOM reproduced",
            (Some(_), Outcome::Time(gx), Outcome::Time(ps)) if gx > ps => "ok: PSGraph wins",
            _ => "MISMATCH",
        };
        t.push(Row::new(
            c.label,
            vec![
                Cell::Hours(c.paper_ps_hours),
                paper_gx,
                c.psgraph.to_cell(),
                c.graphx.to_cell(),
                Cell::Text(shape_ok.to_string()),
            ],
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline reproduction test: the whole Fig. 6 pattern must hold.
    /// Small scale keeps it test-suite friendly.
    #[test]
    fn fig6_shape_holds() {
        let cells = run_fig6(0.05).expect("fig6 must run");
        for c in &cells {
            assert!(
                !c.psgraph.is_oom(),
                "{}: PSGraph must never OOM (paper)",
                c.label
            );
            match c.paper_gx_hours {
                None => assert!(
                    c.graphx.is_oom(),
                    "{}: GraphX must OOM as in the paper",
                    c.label
                ),
                Some(_) => {
                    let (Outcome::Time(gx), Outcome::Time(ps)) = (&c.graphx, &c.psgraph)
                    else {
                        panic!("{}: expected both to finish", c.label);
                    };
                    assert!(
                        gx > ps,
                        "{}: GraphX ({gx}) must be slower than PSGraph ({ps})",
                        c.label
                    );
                }
            }
        }
        let t = table(&cells);
        assert!(t.to_string().contains("PageRank (DS1)"));
    }
}
