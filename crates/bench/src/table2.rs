//! Table II reproduction: failure recovery on Common Neighbor / DS1.
//!
//! Three runs: no failure, one executor killed mid-run, one PS server
//! killed mid-run. The killed server restores its neighbor-table
//! partitions from the HDFS checkpoint; the killed executor reloads its
//! edge partitions through lineage; healthy executors block at the
//! synchronization barrier meanwhile (paper §III-B/C).
//!
//! Recovery overhead is dominated by failure *detection* and container
//! restart — wall-clock constants that do not shrink with the dataset —
//! so the measured overhead is compared against the paper's +5/+6 minutes
//! as an absolute, while the base runtime is simulated-scale.

use psgraph_core::algos::CommonNeighbor;
use psgraph_core::runner::distribute_edges;
use psgraph_core::CoreError;
use psgraph_graph::Dataset;
use psgraph_sim::{FailPlan, SimTime};

use crate::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use crate::report::{Cell, Row, Table};

/// Which failure a run injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failure {
    None,
    Executor,
    Server,
}

/// Measured Table II results.
#[derive(Debug, Clone)]
pub struct Table2Result {
    pub without: SimTime,
    pub executor_failure: SimTime,
    pub server_failure: SimTime,
    /// All three runs produced identical counts (paper: "ensure the
    /// correctness of the algorithm output").
    pub outputs_match: bool,
}

type RunOutput = (SimTime, Vec<(u64, u64, u64)>);

fn run_one(scale: f64, failure: Failure) -> Result<RunOutput, CoreError> {
    let g = Dataset::Ds1.generate(scale);
    let rule = ScaleRule::new(Dataset::Ds1, scale);
    let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS1);
    match failure {
        Failure::None => {}
        Failure::Executor => {
            ctx.cluster().injector().schedule(FailPlan::kill_executor(1, 2));
        }
        Failure::Server => {
            ctx.ps().injector().schedule(FailPlan::kill_server(1, 2));
        }
    }
    let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions())?;
    let out = CommonNeighbor { checkpoint: true, ..Default::default() }
        .run(&ctx, &edges, g.num_vertices())?;
    let mut counts = out.counts;
    counts.sort_unstable();
    Ok((ctx.now(), counts))
}

/// Run all three Table II configurations at `scale`.
pub fn run_table2(scale: f64) -> Result<Table2Result, CoreError> {
    let (without, base) = run_one(scale, Failure::None)?;
    let (executor_failure, a) = run_one(scale, Failure::Executor)?;
    let (server_failure, b) = run_one(scale, Failure::Server)?;
    Ok(Table2Result {
        without,
        executor_failure,
        server_failure,
        outputs_match: base == a && base == b,
    })
}

/// Render paper-vs-measured.
pub fn table(r: &Table2Result) -> Table {
    let mut t = Table::new(
        "Table II — failure recovery (Common Neighbor, DS1)",
        &["paper", "measured", "overhead"],
    );
    t.push(Row::new(
        "without failure",
        vec![
            Cell::Minutes(30.0),
            Cell::Text(r.without.to_string()),
            Cell::Na,
        ],
    ));
    t.push(Row::new(
        "executor failure",
        vec![
            Cell::Minutes(35.0),
            Cell::Text(r.executor_failure.to_string()),
            Cell::Text(r.executor_failure.saturating_sub(r.without).to_string()),
        ],
    ));
    t.push(Row::new(
        "PS failure",
        vec![
            Cell::Minutes(36.0),
            Cell::Text(r.server_failure.to_string()),
            Cell::Text(r.server_failure.saturating_sub(r.without).to_string()),
        ],
    ));
    t.push(Row::new(
        "outputs identical",
        vec![
            Cell::Text("yes".into()),
            Cell::Text(if r.outputs_match { "yes" } else { "NO" }.into()),
            Cell::Na,
        ],
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let r = run_table2(0.02).expect("table2 must run");
        // Shape: both failures recover and cost roughly one
        // detection+restart overhead extra (paper: +5/+6 minutes on a
        // 30-minute run). The paper's slight PS-vs-executor ordering is
        // driven by checkpoint-read volume, which shrinks with the scaled
        // dataset — at simulation scale the two overheads are within
        // noise of each other, so we assert near-equality, not order.
        let overhead_exec = r.executor_failure.saturating_sub(r.without);
        let overhead_srv = r.server_failure.saturating_sub(r.without);
        // Queueing order differs slightly between the paired runs (real
        // thread interleaving), so allow a small tolerance around the
        // 30-second detection+restart constant.
        let restart = psgraph_sim::CostModel::default().restart_overhead();
        let floor = restart.scale(0.95);
        assert!(overhead_exec >= floor, "exec overhead {overhead_exec}");
        assert!(overhead_srv >= floor, "server overhead {overhead_srv}");
        let ratio = overhead_srv.as_secs_f64() / overhead_exec.as_secs_f64();
        assert!(
            (0.8..1.5).contains(&ratio),
            "overheads should be comparable: server {overhead_srv} vs exec {overhead_exec}"
        );
        assert!(r.outputs_match, "failures must not change results");
    }
}
