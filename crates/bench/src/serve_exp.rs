//! `repro -- serve`: the online-serving reproduction over trained PS state.
//!
//! Pipeline: train PageRank + Label Propagation + LINE on DS3′, push the
//! results into named PS objects, snapshot them to the DFS
//! ([`psgraph_ps::SnapshotWriter`]), load the snapshot into a
//! 2-shard × 2-replica serving tier, and replay a Zipf(1.0) open-loop
//! stream against it. Three scripted events exercise self-healing:
//!
//! 1. At `queries/2` a [`psgraph_sim::FailPlan::kill_replica`] takes one
//!    replica down. A [`psgraph_serve::Monitor`] heartbeat loop detects
//!    the death, charges a container restart from the cost model, and
//!    rejoins the replica — tail latency degrades, then recovers.
//! 2. At `3·queries/4` the PS "keeps training": a slice of the ranks and
//!    communities and a few embedding rows change, a
//!    [`psgraph_ps::snapshot::DeltaWriter`] exports only the dirty
//!    partitions, and the delta is hot-swapped into the live tier.
//! 3. Every recorded answer is checked bit-for-bit — pre-swap queries
//!    against the original PS state, post-swap queries against the
//!    updated one. `stale` counts post-swap answers that still reflect
//!    the old state (a cache-invalidation bug); it must be 0.

use psgraph_core::algos::{LabelPropagation, Line, LineConfig, PageRank};
use psgraph_core::runner::distribute_edges;
use psgraph_core::CoreError;
use psgraph_graph::Dataset;
use psgraph_ps::snapshot::DeltaWriter;
use psgraph_ps::{
    ColMatrixHandle, CsrHandle, Partitioner, RecoveryMode, SnapshotWriter, VectorHandle,
};
use psgraph_serve::frontend::reference;
use psgraph_serve::{
    Monitor, ObjectMap, Query, ScriptedAction, ServeCluster, ServeConfig, SwapStats, Value,
    Workload,
};
use psgraph_sim::failpoint::{FailPlan, FailureInjector};
use psgraph_sim::{CostModel, NodeClock, SimTime};

use crate::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use crate::report::{Cell, Row, Table};

/// Embedding width for the served LINE model (the paper's online models
/// are narrower than the dim-128 offline runs).
const SERVE_DIM: usize = 16;

/// Open-loop arrival rate the serve repro drives (the [`Workload`]
/// default); the recovery cost model is scaled to `queries / SERVE_QPS`.
const SERVE_QPS: f64 = 20_000.0;

/// Measured serving results.
#[derive(Debug, Clone)]
pub struct ServeRepro {
    pub num_vertices: u64,
    pub issued: usize,
    pub answered: usize,
    pub shed: usize,
    pub failed: usize,
    pub hit_rate: f64,
    pub qps: f64,
    pub p50: SimTime,
    pub p95: SimTime,
    pub p99: SimTime,
    pub max: SimTime,
    /// p99 over queries issued before / after the replica kill.
    pub p99_pre_kill: SimTime,
    pub p99_post_kill: SimTime,
    /// p99 over queries issued after the killed replica rejoined.
    pub p99_post_rejoin: SimTime,
    /// Query index at which the kill fires.
    pub kill_at: usize,
    /// When the monitor's heartbeat declared the replica dead.
    pub detected_at: SimTime,
    /// When the restarted replica rejoined the rotation.
    pub rejoined_at: SimTime,
    /// Query index at which the delta hot-swap fires.
    pub swap_at: usize,
    /// What the hot-swap rebuilt and invalidated.
    pub swap: SwapStats,
    /// Post-swap answers that still reflected pre-swap state. Must be 0.
    pub stale: usize,
    pub live_replicas: usize,
    /// Answers that matched neither the pre- nor post-swap PS state.
    /// Must be 0.
    pub wrong: usize,
    /// Simulated time spent training the served models.
    pub train_time: SimTime,
}

use psgraph_core::truth::out_adjacency;

/// Does `value` answer `query` bit-exactly against this model state?
fn answer_matches(
    query: &Query,
    value: &Value,
    ranks: &[f64],
    labels: &[u64],
    embeddings: &[Vec<f32>],
    adjacency: &[Vec<u64>],
    shards: usize,
) -> bool {
    match (query, value) {
        (Query::Rank(v), Value::Rank(r)) => r.to_bits() == ranks[*v as usize].to_bits(),
        (Query::Community(v), Value::Community(c)) => *c == labels[*v as usize],
        (Query::Embedding(v), Value::Embedding(e)) => {
            e.len() == embeddings[*v as usize].len()
                && e.iter()
                    .zip(&embeddings[*v as usize])
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        }
        (Query::Neighbors(v), Value::Neighbors(ns)) => ns == &adjacency[*v as usize],
        (Query::KHop { v, hops }, Value::Vertices(vs)) => {
            vs == &reference::khop(adjacency, *v, *hops)
        }
        (Query::TopK { v, k }, Value::Ranked(r)) => {
            let want = reference::topk(embeddings, adjacency, *v, *k, shards);
            r.len() == want.len()
                && r.iter()
                    .zip(&want)
                    .all(|((gv, gs), (wv, ws))| gv == wv && gs.to_bits() == ws.to_bits())
        }
        _ => false,
    }
}

/// Train on DS3′ at `scale`, snapshot, and serve `queries` Zipf queries
/// with a mid-run replica kill (auto-restarted) and delta hot-swap.
pub fn run_serve(scale: f64, queries: usize) -> Result<ServeRepro, CoreError> {
    let g = Dataset::Ds3.generate(scale);
    let n = g.num_vertices();
    let rule = ScaleRule::new(Dataset::Ds3, scale);
    let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS3);
    let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions())?;

    // Train the three served models on the deployment's PS.
    let ranks = PageRank { max_iterations: 10, ..Default::default() }
        .run(&ctx, &edges, n)?
        .ranks;
    let labels = LabelPropagation { max_iterations: 5 }.run(&ctx, &edges, n)?.labels;
    let line = Line::new(LineConfig { dim: SERVE_DIM, epochs: 2, ..Default::default() })
        .run(&ctx, &edges, n)?;
    let train_time = ctx.now();

    // The serving copy of the embeddings goes through `push_add` into a
    // zero-initialized matrix; `0.0 + x` is what comes back out, so use
    // that as the bit-level truth (it only differs from `x` for -0.0).
    let embeddings: Vec<Vec<f32>> = line
        .embeddings
        .iter()
        .map(|row| row.iter().map(|x| 0.0f32 + *x).collect())
        .collect();
    let adjacency = out_adjacency(g.edges(), n);

    // Publish the trained state as named PS objects and snapshot them.
    let client = NodeClock::new();
    client.sync_to(train_time);
    let ids: Vec<u64> = (0..n).collect();
    let ps = ctx.ps();
    let hr = VectorHandle::<f64>::create(
        ps,
        "serve.rank",
        n,
        Partitioner::Range,
        RecoveryMode::Consistent,
    )?;
    hr.push_set(&client, &ids, &ranks)?;
    let hc = VectorHandle::<u64>::create(
        ps,
        "serve.community",
        n,
        Partitioner::Range,
        RecoveryMode::Consistent,
    )?;
    hc.push_set(&client, &ids, &labels)?;
    let hm = ColMatrixHandle::create(ps, "serve.embed", n, SERVE_DIM, RecoveryMode::Inconsistent)?;
    hm.push_add_rows(&client, &ids, &embeddings)?;
    let tables: Vec<(u64, Vec<u64>)> = adjacency
        .iter()
        .enumerate()
        .map(|(i, ns)| (i as u64, ns.clone()))
        .collect();
    let ha = CsrHandle::build(ps, "serve.adj", n, &tables, &client, RecoveryMode::Consistent)?;

    let mut w = SnapshotWriter::new(ctx.dfs(), "/serve/snapshot", &client);
    w.vector_f64(&hr)?;
    w.vector_u64(&hc)?;
    w.colmatrix(&hm)?;
    w.adjacency(&ha)?;
    let manifest = w.finish()?;

    // Bring up 2 shards × 2 replicas over the snapshot. The default cost
    // model's detection and restart delays (10 s + 20 s, sized for YARN
    // containers) would dwarf a run of `queries / SERVE_QPS` simulated
    // seconds, so scale them to the run the way the paper's Table II
    // relates recovery time to job runtime: detection ≈ 2 % and restart
    // ≈ 8 % of the expected duration — an online-tier process respawn,
    // not a batch container.
    let expected = queries as f64 / SERVE_QPS;
    let cost = CostModel {
        failure_detect: SimTime::from_secs_f64(expected / 50.0),
        container_restart: SimTime::from_secs_f64(expected / 12.0),
        ..CostModel::default()
    };
    let cfg = ServeConfig { cost: cost.clone(), ..ServeConfig::default() };
    let objects = ObjectMap {
        ranks: Some("serve.rank".into()),
        communities: Some("serve.community".into()),
        embeddings: Some("serve.embed".into()),
        adjacency: Some("serve.adj".into()),
    };
    let mut cluster = ServeCluster::load(ctx.dfs(), "/serve/snapshot", &objects, &cfg, &client)
        .map_err(|e| CoreError::Invalid(format!("serve: {e}")))?;

    // The mid-run "continued training": a tenth of the ranks and
    // communities move (dirtying only the PS partitions that cover them
    // — the delta must stay partial) and a few embedding rows take a
    // gradient step (dirtying every column partition). Adjacency is left
    // untouched, so the delta must omit it entirely. Truth is computed
    // client-side with the same f32/f64 operations the PS applies, so
    // the post-swap comparison stays bit-exact.
    let patch_ids: Vec<u64> = (0..(n / 10).max(1)).collect();
    let ranks_patch: Vec<f64> =
        patch_ids.iter().map(|&v| ranks[v as usize] * 0.5 + 1.0).collect();
    let labels_patch: Vec<u64> = patch_ids.iter().map(|&v| labels[v as usize] + 1_000).collect();
    let embed_ids: Vec<u64> = (0..n.min(4)).collect();
    let embed_step: Vec<Vec<f32>> =
        embed_ids.iter().map(|_| vec![0.25f32; SERVE_DIM]).collect();

    let mut ranks1 = ranks.clone();
    let mut labels1 = labels.clone();
    let mut embeddings1 = embeddings.clone();
    for (i, &v) in patch_ids.iter().enumerate() {
        ranks1[v as usize] = ranks_patch[i];
        labels1[v as usize] = labels_patch[i];
    }
    for &v in &embed_ids {
        for x in &mut embeddings1[v as usize] {
            *x += 0.25;
        }
    }

    // Replay the Zipf stream: one replica dies halfway (the monitor
    // restarts it), the delta swaps in at three quarters.
    let kill_at = queries / 2;
    let swap_at = queries * 3 / 4;
    let wl = Workload { queries, ..Default::default() };
    let injector = FailureInjector::with_plans([FailPlan::kill_replica(1, kill_at as u64)]);
    let monitor = Monitor::new(cost);
    let mut swap_stats: Option<SwapStats> = None;
    let report;
    {
        let mut actions = [ScriptedAction::new(swap_at, |cluster: &mut ServeCluster| {
            hr.push_set(&client, &patch_ids, &ranks_patch).expect("rank retrain");
            hc.push_set(&client, &patch_ids, &labels_patch).expect("community retrain");
            hm.push_add_rows(&client, &embed_ids, &embed_step).expect("embed retrain");
            let mut dw = DeltaWriter::new(ctx.dfs(), "/serve/snapshot", &manifest, &client);
            dw.vector_f64(&hr).expect("delta ranks");
            dw.vector_u64(&hc).expect("delta communities");
            dw.colmatrix(&hm).expect("delta embeddings");
            let untouched = dw.adjacency(&ha).expect("delta adjacency");
            assert_eq!(untouched, 0, "adjacency never changed — no partition may export");
            let delta = dw.finish().expect("delta export");
            swap_stats = Some(cluster.swap_in(&delta).expect("hot swap"));
        })];
        report = psgraph_serve::loadgen::run_with(
            &mut cluster,
            &wl,
            &injector,
            true,
            Some(&monitor),
            &mut actions,
        );
    }
    let swap = swap_stats.expect("the scripted swap must fire");
    let events = monitor.events();
    let (detected_at, rejoined_at) = events
        .first()
        .map(|e| (e.detected_at, e.rejoined_at))
        .unwrap_or((SimTime::ZERO, SimTime::ZERO));

    // Pre-swap answers must match the original PS state; post-swap
    // answers the updated one. An answer matching only the old state
    // after the swap is a stale cache entry.
    let shards = cfg.shards;
    let mut wrong = 0usize;
    let mut stale = 0usize;
    for (idx, query, value) in &report.values {
        let ok0 =
            answer_matches(query, value, &ranks, &labels, &embeddings, &adjacency, shards);
        if *idx < swap_at {
            if !ok0 {
                wrong += 1;
            }
        } else if !answer_matches(query, value, &ranks1, &labels1, &embeddings1, &adjacency, shards)
        {
            if ok0 {
                stale += 1;
            } else {
                wrong += 1;
            }
        }
    }

    Ok(ServeRepro {
        num_vertices: n,
        issued: report.issued,
        answered: report.answered,
        shed: report.shed,
        failed: report.failed,
        hit_rate: report.hit_rate,
        qps: report.qps(),
        p50: report.percentile(0.50),
        p95: report.percentile(0.95),
        p99: report.percentile(0.99),
        max: report.max_latency(),
        p99_pre_kill: report.percentile_where(0.99, |i| i < kill_at),
        p99_post_kill: report.percentile_where(0.99, |i| i >= kill_at),
        p99_post_rejoin: if events.is_empty() {
            SimTime::ZERO
        } else {
            report.percentile_where(0.99, |i| report.issued_at[i] >= rejoined_at)
        },
        kill_at,
        detected_at,
        rejoined_at,
        swap_at,
        swap,
        stale,
        live_replicas: cluster.live_replicas(),
        wrong,
        train_time,
    })
}

/// Render the SLO table.
pub fn table(r: &ServeRepro) -> Table {
    let mut t = Table::new(
        "Serving — DS3′ snapshot, 2 shards × 2 replicas, Zipf(1.0)",
        &["measured"],
    );
    let text = |s: String| vec![Cell::Text(s)];
    t.push(Row::new("vertices served", text(r.num_vertices.to_string())));
    t.push(Row::new("training (simulated)", text(r.train_time.to_string())));
    t.push(Row::new(
        "queries issued / answered",
        text(format!("{} / {}", r.issued, r.answered)),
    ));
    t.push(Row::new(
        "shed / failed",
        text(format!("{} / {}", r.shed, r.failed)),
    ));
    t.push(Row::new("served QPS (simulated)", text(format!("{:.0}", r.qps))));
    t.push(Row::new("cache hit rate", vec![Cell::Percent(r.hit_rate)]));
    t.push(Row::new("p50 latency", text(r.p50.to_string())));
    t.push(Row::new("p95 latency", text(r.p95.to_string())));
    t.push(Row::new("p99 latency", text(r.p99.to_string())));
    t.push(Row::new("max latency", text(r.max.to_string())));
    t.push(Row::new(
        format!("p99 before kill (q < {})", r.kill_at),
        text(r.p99_pre_kill.to_string()),
    ));
    t.push(Row::new(
        "p99 after kill",
        text(r.p99_post_kill.to_string()),
    ));
    t.push(Row::new(
        "kill detected / rejoined at",
        text(format!("{} / {}", r.detected_at, r.rejoined_at)),
    ));
    t.push(Row::new(
        "p99 after rejoin",
        text(r.p99_post_rejoin.to_string()),
    ));
    t.push(Row::new(
        format!("delta hot-swap (q = {})", r.swap_at),
        text(format!(
            "{} regions, {} shards rebuilt, {} keys invalidated",
            r.swap.regions_applied, r.swap.shards_rebuilt, r.swap.keys_invalidated
        )),
    ));
    t.push(Row::new("stale answers after swap", text(r.stale.to_string())));
    t.push(Row::new(
        "replicas live at end",
        text(format!("{}/4", r.live_replicas)),
    ));
    t.push(Row::new("wrong answers", text(r.wrong.to_string())));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_repro_self_heals_with_zero_wrong_or_stale_answers() {
        let r = run_serve(0.02, 3_000).expect("serve repro must run");
        assert_eq!(r.wrong, 0, "served answers must match the live PS state");
        assert_eq!(r.stale, 0, "the hot-swap must invalidate every stale cache entry");
        assert!(r.answered > 0 && r.answered + r.shed + r.failed == r.issued);
        assert!(r.hit_rate > 0.0, "Zipf traffic must hit the cache");
        assert!(r.p50 <= r.p99 && r.p99 <= r.max);
        assert!(r.qps > 0.0);

        // The kill fired, was detected, and the replica rejoined in time.
        assert_eq!(r.live_replicas, 4, "the killed replica must rejoin");
        assert!(r.detected_at > SimTime::ZERO, "the monitor must detect the kill");
        assert!(r.rejoined_at > r.detected_at);
        assert!(
            r.p99_post_rejoin <= r.p99_pre_kill.scale(2.0),
            "p99 after rejoin ({}) must be within 2x of pre-kill ({})",
            r.p99_post_rejoin,
            r.p99_pre_kill
        );

        // The swap was partial (adjacency untouched) yet invalidating.
        assert!(r.swap.regions_applied >= 1);
        assert!(r.swap.shards_rebuilt >= 1);
        assert!(table(&r).to_string().contains("stale answers after swap"));
    }
}
