//! `repro -- serve`: the online-serving reproduction over trained PS state.
//!
//! Pipeline: train PageRank + Label Propagation + LINE on DS3′, push the
//! results into named PS objects, snapshot them to the DFS
//! ([`psgraph_ps::SnapshotWriter`]), load the snapshot into a
//! 2-shard × 2-replica serving tier, and replay a Zipf(1.0) open-loop
//! stream against it. Halfway through, a scripted
//! [`psgraph_sim::FailPlan::kill_replica`] takes one replica down; the
//! run must degrade (tail latency, shed) but never answer wrongly — every
//! recorded answer is checked bit-for-bit against the pre-snapshot truth.

use psgraph_core::algos::{LabelPropagation, Line, LineConfig, PageRank};
use psgraph_core::runner::distribute_edges;
use psgraph_core::CoreError;
use psgraph_graph::Dataset;
use psgraph_ps::{
    ColMatrixHandle, CsrHandle, Partitioner, RecoveryMode, SnapshotWriter, VectorHandle,
};
use psgraph_serve::frontend::reference;
use psgraph_serve::{ObjectMap, Query, ServeCluster, ServeConfig, Value, Workload};
use psgraph_sim::failpoint::{FailPlan, FailureInjector};
use psgraph_sim::{NodeClock, SimTime};

use crate::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use crate::report::{Cell, Row, Table};

/// Embedding width for the served LINE model (the paper's online models
/// are narrower than the dim-128 offline runs).
const SERVE_DIM: usize = 16;

/// Measured serving results.
#[derive(Debug, Clone)]
pub struct ServeRepro {
    pub num_vertices: u64,
    pub issued: usize,
    pub answered: usize,
    pub shed: usize,
    pub failed: usize,
    pub hit_rate: f64,
    pub qps: f64,
    pub p50: SimTime,
    pub p95: SimTime,
    pub p99: SimTime,
    pub max: SimTime,
    /// p99 over queries issued before / after the replica kill.
    pub p99_pre_kill: SimTime,
    pub p99_post_kill: SimTime,
    /// Query index at which the kill fires.
    pub kill_at: usize,
    pub live_replicas: usize,
    /// Answers that disagreed with the pre-snapshot PS state. Must be 0.
    pub wrong: usize,
    /// Simulated time spent training the served models.
    pub train_time: SimTime,
}

/// Sorted, deduplicated out-adjacency — exactly what the CSR snapshot
/// stores, so [`reference::khop`] over it is the serving-tier truth.
fn out_adjacency(edges: &[(u64, u64)], n: u64) -> Vec<Vec<u64>> {
    let mut adj = vec![Vec::new(); n as usize];
    for &(s, d) in edges {
        adj[s as usize].push(d);
    }
    for ns in &mut adj {
        ns.sort_unstable();
        ns.dedup();
    }
    adj
}

/// Train on DS3′ at `scale`, snapshot, and serve `queries` Zipf queries.
pub fn run_serve(scale: f64, queries: usize) -> Result<ServeRepro, CoreError> {
    let g = Dataset::Ds3.generate(scale);
    let n = g.num_vertices();
    let rule = ScaleRule::new(Dataset::Ds3, scale);
    let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS3);
    let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions())?;

    // Train the three served models on the deployment's PS.
    let ranks = PageRank { max_iterations: 10, ..Default::default() }
        .run(&ctx, &edges, n)?
        .ranks;
    let labels = LabelPropagation { max_iterations: 5 }.run(&ctx, &edges, n)?.labels;
    let line = Line::new(LineConfig { dim: SERVE_DIM, epochs: 2, ..Default::default() })
        .run(&ctx, &edges, n)?;
    let train_time = ctx.now();

    // The serving copy of the embeddings goes through `push_add` into a
    // zero-initialized matrix; `0.0 + x` is what comes back out, so use
    // that as the bit-level truth (it only differs from `x` for -0.0).
    let embeddings: Vec<Vec<f32>> = line
        .embeddings
        .iter()
        .map(|row| row.iter().map(|x| 0.0f32 + *x).collect())
        .collect();
    let adjacency = out_adjacency(g.edges(), n);

    // Publish the trained state as named PS objects and snapshot them.
    let client = NodeClock::new();
    client.sync_to(train_time);
    let ids: Vec<u64> = (0..n).collect();
    let ps = ctx.ps();
    let hr = VectorHandle::<f64>::create(
        ps,
        "serve.rank",
        n,
        Partitioner::Range,
        RecoveryMode::Consistent,
    )?;
    hr.push_set(&client, &ids, &ranks)?;
    let hc = VectorHandle::<u64>::create(
        ps,
        "serve.community",
        n,
        Partitioner::Range,
        RecoveryMode::Consistent,
    )?;
    hc.push_set(&client, &ids, &labels)?;
    let hm = ColMatrixHandle::create(ps, "serve.embed", n, SERVE_DIM, RecoveryMode::Inconsistent)?;
    hm.push_add_rows(&client, &ids, &embeddings)?;
    let tables: Vec<(u64, Vec<u64>)> = adjacency
        .iter()
        .enumerate()
        .map(|(i, ns)| (i as u64, ns.clone()))
        .collect();
    let ha = CsrHandle::build(ps, "serve.adj", n, &tables, &client, RecoveryMode::Consistent)?;

    let mut w = SnapshotWriter::new(ctx.dfs(), "/serve/snapshot", &client);
    w.vector_f64(&hr)?;
    w.vector_u64(&hc)?;
    w.colmatrix(&hm)?;
    w.adjacency(&ha)?;
    w.finish()?;

    // Bring up 2 shards × 2 replicas over the snapshot.
    let cfg = ServeConfig::default();
    let objects = ObjectMap {
        ranks: Some("serve.rank".into()),
        communities: Some("serve.community".into()),
        embeddings: Some("serve.embed".into()),
        adjacency: Some("serve.adj".into()),
    };
    let mut cluster = ServeCluster::load(ctx.dfs(), "/serve/snapshot", &objects, &cfg, &client)
        .map_err(|e| CoreError::Invalid(format!("serve: {e}")))?;

    // Replay the Zipf stream; one replica dies halfway through.
    let kill_at = queries / 2;
    let wl = Workload { queries, ..Default::default() };
    let injector = FailureInjector::with_plans([FailPlan::kill_replica(1, kill_at as u64)]);
    let report = psgraph_serve::loadgen::run(&mut cluster, &wl, &injector, true);

    // Every answer must match the pre-snapshot PS state exactly.
    let mut wrong = 0usize;
    for (_, query, value) in &report.values {
        let ok = match (query, value) {
            (Query::Rank(v), Value::Rank(r)) => {
                r.to_bits() == ranks[*v as usize].to_bits()
            }
            (Query::Community(v), Value::Community(c)) => *c == labels[*v as usize],
            (Query::Embedding(v), Value::Embedding(e)) => {
                e.len() == SERVE_DIM
                    && e.iter()
                        .zip(&embeddings[*v as usize])
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }
            (Query::Neighbors(v), Value::Neighbors(ns)) => ns == &adjacency[*v as usize],
            (Query::KHop { v, hops }, Value::Vertices(vs)) => {
                vs == &reference::khop(&adjacency, *v, *hops)
            }
            (Query::TopK { v, k }, Value::Ranked(r)) => {
                let want = reference::topk(&embeddings, &adjacency, *v, *k, cfg.shards);
                r.len() == want.len()
                    && r.iter().zip(&want).all(|((gv, gs), (wv, ws))| {
                        gv == wv && gs.to_bits() == ws.to_bits()
                    })
            }
            _ => false,
        };
        if !ok {
            wrong += 1;
        }
    }

    Ok(ServeRepro {
        num_vertices: n,
        issued: report.issued,
        answered: report.answered,
        shed: report.shed,
        failed: report.failed,
        hit_rate: report.hit_rate,
        qps: report.qps(),
        p50: report.percentile(0.50),
        p95: report.percentile(0.95),
        p99: report.percentile(0.99),
        max: report.max_latency(),
        p99_pre_kill: report.percentile_where(0.99, |i| i < kill_at),
        p99_post_kill: report.percentile_where(0.99, |i| i >= kill_at),
        kill_at,
        live_replicas: cluster.live_replicas(),
        wrong,
        train_time,
    })
}

/// Render the SLO table.
pub fn table(r: &ServeRepro) -> Table {
    let mut t = Table::new(
        "Serving — DS3′ snapshot, 2 shards × 2 replicas, Zipf(1.0)",
        &["measured"],
    );
    let text = |s: String| vec![Cell::Text(s)];
    t.push(Row::new("vertices served", text(r.num_vertices.to_string())));
    t.push(Row::new("training (simulated)", text(r.train_time.to_string())));
    t.push(Row::new(
        "queries issued / answered",
        text(format!("{} / {}", r.issued, r.answered)),
    ));
    t.push(Row::new(
        "shed / failed",
        text(format!("{} / {}", r.shed, r.failed)),
    ));
    t.push(Row::new("served QPS (simulated)", text(format!("{:.0}", r.qps))));
    t.push(Row::new("cache hit rate", vec![Cell::Percent(r.hit_rate)]));
    t.push(Row::new("p50 latency", text(r.p50.to_string())));
    t.push(Row::new("p95 latency", text(r.p95.to_string())));
    t.push(Row::new("p99 latency", text(r.p99.to_string())));
    t.push(Row::new("max latency", text(r.max.to_string())));
    t.push(Row::new(
        format!("p99 before kill (q < {})", r.kill_at),
        text(r.p99_pre_kill.to_string()),
    ));
    t.push(Row::new(
        "p99 after kill",
        text(r.p99_post_kill.to_string()),
    ));
    t.push(Row::new(
        "replicas live at end",
        text(format!("{}/4", r.live_replicas)),
    ));
    t.push(Row::new("wrong answers", text(r.wrong.to_string())));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_repro_survives_kill_with_zero_wrong_answers() {
        let r = run_serve(0.02, 3_000).expect("serve repro must run");
        assert_eq!(r.wrong, 0, "served answers must match pre-snapshot PS state");
        assert_eq!(r.live_replicas, 3, "the scripted kill must have fired");
        assert!(r.answered > 0 && r.answered + r.shed + r.failed == r.issued);
        assert!(r.hit_rate > 0.0, "Zipf traffic must hit the cache");
        assert!(r.p50 <= r.p99 && r.p99 <= r.max);
        assert!(r.qps > 0.0);
        assert!(table(&r).to_string().contains("wrong answers"));
    }
}
