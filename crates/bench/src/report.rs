//! Plain-text result tables (paper-vs-measured).

use std::fmt;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Text(String),
    Hours(f64),
    Minutes(f64),
    Seconds(f64),
    Percent(f64),
    Oom,
    Na,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Hours(h) => write!(f, "{h:.2} h"),
            Cell::Minutes(m) => write!(f, "{m:.1} min"),
            Cell::Seconds(s) => write!(f, "{s:.1} s"),
            Cell::Percent(p) => write!(f, "{:.1}%", p * 100.0),
            Cell::Oom => write!(f, "OOM"),
            Cell::Na => write!(f, "—"),
        }
    }
}

/// One labeled row.
#[derive(Debug, Clone)]
pub struct Row {
    pub label: String,
    pub cells: Vec<Cell>,
}

impl Row {
    pub fn new(label: impl Into<String>, cells: Vec<Cell>) -> Self {
        Row { label: label.into(), cells }
    }
}

/// A result table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        let mut label_w = 0usize;
        for row in &self.rows {
            label_w = label_w.max(row.label.len());
            for (i, c) in row.cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.to_string().len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:label_w$}", "")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, "  {h:>w$}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:label_w$}", row.label)?;
            for (i, c) in row.cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(8);
                write!(f, "  {:>w$}", c.to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Hours(0.5).to_string(), "0.50 h");
        assert_eq!(Cell::Minutes(12.0).to_string(), "12.0 min");
        assert_eq!(Cell::Seconds(7.25).to_string(), "7.2 s");
        assert_eq!(Cell::Percent(0.915).to_string(), "91.5%");
        assert_eq!(Cell::Oom.to_string(), "OOM");
        assert_eq!(Cell::Na.to_string(), "—");
        assert_eq!(Cell::Text("x".into()).to_string(), "x");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig. 6", &["paper", "measured"]);
        t.push(Row::new("PageRank (DS1)", vec![Cell::Hours(0.5), Cell::Hours(0.47)]));
        t.push(Row::new("K-Core (DS1)", vec![Cell::Oom, Cell::Oom]));
        let s = t.to_string();
        assert!(s.contains("== Fig. 6 =="));
        assert!(s.contains("PageRank (DS1)"));
        assert!(s.contains("OOM"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
