//! §V-B2 reproduction: LINE (graph embedding) on DS1.
//!
//! The paper reports 40 minutes/epoch and 4 hours total (embedding size
//! 128) as a reference point — no open-source distributed baseline ran at
//! that scale. We additionally report the psFunc ablation (server-side
//! partial dot products vs pulling whole embedding rows), which is the
//! §IV-D design claim behind those numbers.

use psgraph_core::algos::{Line, LineConfig};
use psgraph_core::runner::distribute_edges;
use psgraph_core::CoreError;
use psgraph_graph::Dataset;
use psgraph_sim::SimTime;

use crate::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use crate::report::{Cell, Row, Table};

/// Measured LINE results.
#[derive(Debug, Clone)]
pub struct LineResult {
    pub epochs: u64,
    pub per_epoch: SimTime,
    pub total: SimTime,
    pub final_loss: f64,
    /// Same run with `use_psfunc = false` (pull whole rows) — the
    /// communication pattern the paper's column partitioning avoids.
    pub per_epoch_no_psfunc: SimTime,
}

/// Run LINE on DS1 at `scale` with the paper's dim-128 second-order setup.
pub fn run_line(scale: f64) -> Result<LineResult, CoreError> {
    let g = Dataset::Ds1.generate(scale);
    let rule = ScaleRule::new(Dataset::Ds1, scale);
    let epochs = 6; // paper: 4 h total at 40 min/epoch

    let run = |use_psfunc: bool| -> Result<(SimTime, f64), CoreError> {
        // §V-B2 claims "the same resources as TG", but a dim-128 embedding
        // plus context table is ~820 GB at DS1 scale — more than the TG
        // experiments' 300 GB server pool. We size the PS pool as in the
        // DS2 runs (200 × 30 GB), which the embedding tables fit.
        let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS2);
        let edges = distribute_edges(&ctx, &g, ctx.cluster().default_partitions())?;
        let out = Line::new(LineConfig {
            dim: 128,
            epochs,
            use_psfunc,
            ..Default::default()
        })
        .run(&ctx, &edges, g.num_vertices())?;
        Ok((out.stats.elapsed, *out.loss_per_epoch.last().unwrap()))
    };

    let (total, final_loss) = run(true)?;
    let (total_rows, _) = run(false)?;
    Ok(LineResult {
        epochs,
        per_epoch: SimTime::from_nanos(total.as_nanos() / epochs),
        total,
        final_loss,
        per_epoch_no_psfunc: SimTime::from_nanos(total_rows.as_nanos() / epochs),
    })
}

/// Render paper-vs-measured.
pub fn table(r: &LineResult) -> Table {
    let mut t = Table::new(
        "§V-B2 — LINE on DS1 (dim 128, second order)",
        &["paper", "measured"],
    );
    t.push(Row::new(
        "per epoch",
        vec![Cell::Minutes(40.0), Cell::Text(r.per_epoch.to_string())],
    ));
    t.push(Row::new(
        "total",
        vec![Cell::Hours(4.0), Cell::Text(r.total.to_string())],
    ));
    t.push(Row::new(
        "per epoch (no psFunc ablation)",
        vec![Cell::Na, Cell::Text(r.per_epoch_no_psfunc.to_string())],
    ));
    t.push(Row::new(
        "final loss",
        vec![Cell::Na, Cell::Text(format!("{:.4}", r.final_loss))],
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_runs_and_psfunc_wins() {
        let r = run_line(0.005).expect("line must run");
        assert!(r.per_epoch > SimTime::ZERO);
        assert!(
            r.per_epoch < r.per_epoch_no_psfunc,
            "psFunc ({}) must beat row pulls ({})",
            r.per_epoch,
            r.per_epoch_no_psfunc
        );
        assert!(r.final_loss.is_finite());
        assert!(table(&r).to_string().contains("per epoch"));
    }
}
