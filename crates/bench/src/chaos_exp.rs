//! `repro -- chaos`: the fault-injection soak — train → serve → drift
//! streaming driven through a seeded [`psgraph_sim::FaultSchedule`] and
//! recovered end to end.
//!
//! One fault-free reference run fixes the ground truth: the final PS
//! content (rank bits, component labels, degree bits, live adjacency)
//! after streaming a fixed drift-RMAT event log. Then the *same* event
//! log is re-run under `>= 20` chaos seeds, each injecting:
//!
//! * **message loss + duplication** on the event transport — every
//!   micro-batch is split into per-shard lanes (ingest runs on a
//!   [`ShardedIngestor`], one owner-keyed writer per source range) and
//!   each lane travels via [`psgraph_net::Network::send_reliable`]
//!   (retry/backoff/deadline) gated by an
//!   [`psgraph_net::IdempotencyFilter`], so a fault can lose or
//!   duplicate one shard's lane while the others land — at-least-once
//!   delivery still applies each lane exactly once, and the min-merged
//!   watermark must survive per-shard faults uncorrupted;
//! * **bounded delay** on every PS / DFS / serve RPC;
//! * **PS crash-points** at arbitrary positions — after an
//!   un-checkpointed batch, *mid-checkpoint* (generation written but
//!   never published), or right after a publish. Recovery rolls every
//!   `Consistent` object back to the last *published* checkpoint
//!   generation, rewinds the ingestor to the checkpoint watermark, and
//!   replays the DFS event log suffix with idempotent reapplication;
//! * **replica kills** on the serving tier (restarted a few batches
//!   later);
//! * **block corruption** on DFS writes, detected by checksums and
//!   survived via replica fallback.
//!
//! Assertions per seed: zero wrong answers, freshness lag within a
//! crash-count-aware bound, and a final PS state **bit-identical** to
//! the fault-free reference. Recovery latency percentiles land in
//! `results/BENCH_chaos.json`. Any failure is reproducible from its
//! printed seed alone: `repro -- chaos --seed <S>` replays just that
//! schedule.

use psgraph_core::algos::{IncrementalCc, IncrementalPageRank, PrState};
use psgraph_core::CoreError;
use psgraph_dfs::Dfs;
use psgraph_graph::Dataset;
use psgraph_harness::json::Json;
use psgraph_net::rpc::{NodeId, ServicePort};
use psgraph_net::{IdempotencyFilter, RetryPolicy};
use psgraph_ps::{Ps, PsConfig, SnapshotWriter};
use psgraph_serve::frontend::Outcome;
use psgraph_serve::{
    GraphTruth, Interpreter, ObjectMap, Plan, PlanOutput, Pred, Query, Scorer, ServeCluster,
    ServeConfig, Source, Stage, Value,
};
use psgraph_sim::{
    ChaosConfig, FaultSchedule, FaultSite, FaultStats, NodeClock, SimTime, SplitMix64,
};
use psgraph_stream::{
    replay_from_log, DriftRmat, EdgeEvent, EventLog, IngestConfig, Ingestor, RefreshConfig,
    RefreshDriver, ShardedIngestor, StreamCheckpoint,
};

use crate::report::{Cell, Row, Table};

/// Events per micro-batch (every shard mailbox sized to match, so even a
/// batch routed entirely to one shard fits).
const BATCH: usize = 256;
/// Owner-keyed ingestor shards the soak streams through. Three shards
/// give asymmetric lanes: seeded faults routinely hit one shard's
/// delivery while the others land, exercising the min-merged watermark
/// under per-shard loss/dup/delay.
const SHARDS: usize = 3;
/// Checkpoint the PS + stream position every this many batches.
const CKPT_EVERY: usize = 6;
/// Verified queries interleaved after every micro-batch.
const QUERIES_PER_BATCH: usize = 2;
/// PS crash-recovery cycles injected per seed at most (keeps a soak
/// seed's wall clock bounded; draws beyond the cap are ignored).
const CRASH_CAP: usize = 3;
/// A killed serve replica is restarted this many batches later.
const REPLICA_DOWN_BATCHES: usize = 3;

const LOG_PATH: &str = "/chaos/events";
const CKPT_PATH: &str = "/chaos/ckpt";

fn se(e: impl std::fmt::Display) -> CoreError {
    CoreError::Invalid(format!("chaos: {e}"))
}

/// Bit-exact digest of the PS-resident stream state.
#[derive(PartialEq, Eq)]
struct Fingerprint {
    rank_bits: Vec<u64>,
    labels: Vec<u64>,
    degree_bits: Vec<u64>,
    adjacency: Vec<Vec<u64>>,
    watermark: SimTime,
}

/// What one soak run (fault-free or seeded) measured.
pub struct SeedOutcome {
    pub seed: u64,
    /// Injected-fault tallies from the schedule's own counters.
    pub faults: FaultStats,
    /// PS crash-recovery cycles actually executed.
    pub ps_crashes: usize,
    /// Serve replica kills injected (each later revived).
    pub replica_kills: usize,
    /// Batches whose first delivery attempt was lost / duplicated.
    pub transport_retries: u64,
    /// Duplicate batch applications absorbed by the idempotency filter.
    pub dup_suppressed: u64,
    /// Corrupt DFS replicas survived via fallback reads.
    pub corrupt_fallbacks: u64,
    /// Batches replayed from the event log during recoveries.
    pub batches_replayed: usize,
    pub queries: usize,
    pub answered: usize,
    /// Answered compound plans (a subset of `answered`), each verified
    /// bit-for-bit against the interpreter over the swap-time truth.
    pub compound_answered: usize,
    /// Queries shed or failed (degraded service is allowed; wrong is not).
    pub unserved: usize,
    /// Answers diverging from the swap-time PS state. Must be 0.
    pub wrong: usize,
    pub freshness_max: SimTime,
    pub freshness_bound: SimTime,
    /// Simulated crash-to-caught-up latency per PS recovery.
    pub recovery_latencies: Vec<SimTime>,
    /// Final PS content equals the fault-free reference bit-for-bit.
    pub state_identical: bool,
}

/// The full soak result.
pub struct ChaosRepro {
    pub num_vertices: u64,
    pub base_edges: usize,
    pub events: usize,
    pub batches: usize,
    pub seeds: Vec<SeedOutcome>,
    /// Recovery latencies pooled across seeds, sorted.
    pub recovery_sorted: Vec<SimTime>,
}

impl ChaosRepro {
    pub fn total_wrong(&self) -> usize {
        self.seeds.iter().map(|s| s.wrong).sum()
    }

    pub fn mismatched_seeds(&self) -> Vec<u64> {
        self.seeds.iter().filter(|s| !s.state_identical).map(|s| s.seed).collect()
    }

    pub fn freshness_violations(&self) -> Vec<u64> {
        self.seeds
            .iter()
            .filter(|s| s.freshness_max > s.freshness_bound)
            .map(|s| s.seed)
            .collect()
    }

    pub fn recovery_percentile(&self, p: f64) -> SimTime {
        if self.recovery_sorted.is_empty() {
            return SimTime::ZERO;
        }
        let rank = ((self.recovery_sorted.len() as f64) * p).ceil() as usize;
        self.recovery_sorted[rank.clamp(1, self.recovery_sorted.len()) - 1]
    }
}

/// Swap-time serving truth (see `stream_exp`).
struct Mirror {
    ranks: Vec<f64>,
    labels: Vec<u64>,
    adj: Vec<Vec<u64>>,
}

fn capture(
    client: &NodeClock,
    ingestor: &ShardedIngestor,
    pr: &IncrementalPageRank,
    st: &PrState,
    cc: &IncrementalCc,
    n: u64,
) -> Result<Mirror, CoreError> {
    let ranks = pr.ranks(st, client)?;
    let ids: Vec<u64> = (0..n).collect();
    let adj =
        ingestor.adjacency().pull(client, &ids)?.into_iter().map(|l| l.to_vec()).collect();
    Ok(Mirror { ranks, labels: cc.labels().to_vec(), adj })
}

impl Mirror {
    /// The interpreter-ready view of the swap-time state (the stream
    /// publishes no embeddings, so compound plans score by rank).
    fn truth(&self, n: u64) -> GraphTruth {
        let mut t = GraphTruth::new(n);
        t.ranks = Some(self.ranks.clone());
        t.communities = Some(self.labels.clone());
        t.adjacency = Some(self.adj.clone());
        t
    }
}

fn answer_matches(query: &Query, value: &Value, m: &Mirror) -> bool {
    match (query, value) {
        (Query::Rank(v), Value::Rank(r)) => r.to_bits() == m.ranks[*v as usize].to_bits(),
        (Query::Community(v), Value::Community(c)) => *c == m.labels[*v as usize],
        (Query::Neighbors(v), Value::Neighbors(ns)) => ns == &m.adj[*v as usize],
        _ => false,
    }
}

fn fingerprint(
    client: &NodeClock,
    ingestor: &ShardedIngestor,
    pr: &IncrementalPageRank,
    st: &PrState,
    cc: &IncrementalCc,
    n: u64,
) -> Result<Fingerprint, CoreError> {
    let ids: Vec<u64> = (0..n).collect();
    Ok(Fingerprint {
        rank_bits: pr.ranks(st, client)?.iter().map(|r| r.to_bits()).collect(),
        labels: cc.labels().to_vec(),
        degree_bits: ingestor
            .degrees()
            .pull(client, &ids)
            .map_err(se)?
            .iter()
            .map(|d| d.to_bits())
            .collect(),
        adjacency: ingestor
            .adjacency()
            .pull(client, &ids)
            .map_err(se)?
            .into_iter()
            .map(|l| l.to_vec())
            .collect(),
        watermark: ingestor.watermark(),
    })
}

struct RunResult {
    print: Fingerprint,
    outcome: SeedOutcome,
}

/// One complete soak run over `events`: bootstrap, serve, stream with
/// periodic checkpoints + delta hot-swaps, and (when `chaos` is a live
/// schedule) injected faults with full recovery.
fn run_once(
    base: &psgraph_graph::EdgeList,
    events: &[EdgeEvent],
    events_per_sec: f64,
    chaos: FaultSchedule,
) -> Result<RunResult, CoreError> {
    let n = base.num_vertices();
    let ps = Ps::new(PsConfig::default());
    let dfs = Dfs::in_memory();
    let client = NodeClock::new();
    let active = chaos.is_active();
    if active {
        ps.network().attach_chaos(chaos.clone());
        dfs.network().attach_chaos(chaos.clone());
    }

    // Train: sharded mutable ingest state + incremental maintainers,
    // converged on the base graph.
    let icfg = IngestConfig { prefix: "stream".into(), mailbox_cap: BATCH };
    let mut ingestor = ShardedIngestor::create(&ps, &icfg, n, SHARDS).map_err(se)?;
    ingestor.bootstrap(&client, base.edges()).map_err(se)?;
    let pr = IncrementalPageRank::default();
    let mut pr_state = pr.create_state(&ps, "stream.pr", n)?;
    pr.init_full(&mut pr_state, &client, ingestor.adjacency())?;
    let mut cc = IncrementalCc::create(&ps, "stream.cc", n)?;
    cc.bootstrap(&client, ingestor.adjacency())?;

    // Serve: snapshot the trained state, load the tier over it.
    let mut w = SnapshotWriter::new(&dfs, "/chaos/snapshot", &client);
    w.vector_f64(&pr_state.ranks)?;
    w.vector_u64(&cc.labels)?;
    w.neighbor_table(ingestor.adjacency())?;
    let manifest = w.finish()?;
    let objects = ObjectMap {
        ranks: Some("stream.pr.ranks".into()),
        communities: Some("stream.cc.labels".into()),
        embeddings: None,
        adjacency: Some("stream.adj".into()),
    };
    let scfg = ServeConfig::default();
    let mut cluster =
        ServeCluster::load(&dfs, "/chaos/snapshot", &objects, &scfg, &client).map_err(se)?;
    if active {
        cluster.network().attach_chaos(chaos.clone());
    }
    let rcfg = RefreshConfig::default();
    let swap_every = rcfg.swap_every_batches;
    let mut driver = RefreshDriver::new("/chaos/snapshot", manifest, rcfg);
    let mut mirror = capture(&client, &ingestor, &pr, &pr_state, &cc, n)?;
    let mut truth = mirror.truth(n);

    // Durable stream: the event log and the initial checkpoint pair, so a
    // crash at *any* later point has something published to roll back to.
    EventLog::write(&dfs, LOG_PATH, events, &client).map_err(se)?;
    let mut generation = 0u64;
    ps.checkpoint_all_generation(&dfs, generation)?;
    StreamCheckpoint {
        generation,
        batches_done: 0,
        events_done: 0,
        watermark: ingestor.watermark(),
    }
    .write(&dfs, CKPT_PATH, &client)
    .map_err(se)?;

    let nbatches = events.len().div_ceil(BATCH);
    let transport_port = ServicePort::new(NodeId::Executor(0));
    let policy = RetryPolicy::default();
    let filter = IdempotencyFilter::new();
    let num_replicas = cluster.replicas().len();

    // The freshness bound scales with the injected crash budget: each
    // crash can wipe (and replay) up to a checkpoint interval of batches
    // and suppress publishing while catching up.
    let span = |batches: usize| {
        SimTime::from_secs_f64(batches as f64 * BATCH as f64 / events_per_sec)
    };
    let crash_budget = if active { CRASH_CAP } else { 0 };
    let freshness_bound = span(2 * swap_every + crash_budget * (CKPT_EVERY + swap_every))
        + SimTime::from_secs(5).scale(crash_budget as f64);

    let mut rng = SplitMix64::new(0x50AC ^ chaos.seed());
    let mut pending: Vec<(usize, SimTime)> = Vec::new();
    let mut lags: Vec<SimTime> = Vec::new();
    let mut queries = 0usize;
    let mut answered = 0usize;
    let mut compound_answered = 0usize;
    let mut unserved = 0usize;
    let mut wrong = 0usize;
    let mut ps_crashes = 0usize;
    let mut replica_kills = 0usize;
    let mut transport_retries = 0u64;
    let mut batches_replayed = 0usize;
    let mut incarnation = 0u64;
    // Highest batch index ever applied; publishing is suppressed while
    // replay catches back up to it.
    let mut high_water = 0usize;
    let mut recoveries_inflight: Vec<(SimTime, usize)> = Vec::new();
    let mut recovery_latencies: Vec<SimTime> = Vec::new();
    let mut revives: Vec<(usize, usize)> = Vec::new();

    let mut b = 0usize;
    while b < nbatches {
        let lo = b * BATCH;
        let hi = (lo + BATCH).min(events.len());
        let evs = &events[lo..hi];

        // Deliver the batch, one reliable lane per owner shard. Under
        // chaos each lane is its own keyed message: a seeded fault can
        // lose or duplicate shard 1's lane while shard 0's lands, lost
        // sends retry with backoff, and duplicated deliveries are
        // absorbed by the idempotency filter (keyed per incarnation — a
        // post-crash replay is a legitimately new delivery).
        if active {
            for shard in 0..SHARDS {
                let lane: Vec<EdgeEvent> =
                    evs.iter().copied().filter(|e| ingestor.owner(e) == shard).collect();
                if lane.is_empty() {
                    continue;
                }
                let key = (incarnation << 40) | ((b * SHARDS + shard) as u64);
                let ing = &mut ingestor;
                let receipt = ps
                    .network()
                    .send_reliable(
                        &client,
                        &transport_port,
                        lane.len() as u64 * 25,
                        lane.len() as u64 * 4,
                        16,
                        &policy,
                        FaultSite::Ingest,
                        key,
                        &mut || {
                            filter.apply_once(key, || {
                                for ev in &lane {
                                    if !ing.offer(NodeId::Driver, *ev) {
                                        ing.note_offer_retry(ev);
                                    }
                                }
                            });
                        },
                    )
                    .map_err(se)?;
                transport_retries += (receipt.attempts - 1) as u64;
            }
        } else {
            for ev in evs {
                assert!(ingestor.offer(NodeId::Driver, *ev), "mailboxes sized to the batch");
            }
        }

        // Apply + maintain: one logical micro-batch drained across all
        // shards, effects merged source-sorted, applied in arrival order.
        let fx = ingestor.drain_all().map_err(se)?;
        pr.on_batch(&mut pr_state, &client, &fx.effects)?;
        pr.propagate(&mut pr_state, &client, ingestor.adjacency())?;
        cc.on_batch(&client, &fx.applied, ingestor.adjacency())?;
        pending.push((b, fx.watermark));
        if b < high_water {
            batches_replayed += 1;
        }
        recoveries_inflight.retain(|&(t0, target)| {
            if b >= target {
                recovery_latencies.push(client.now().saturating_sub(t0));
                false
            } else {
                true
            }
        });
        high_water = high_water.max(b);
        let catching_up = b < high_water;

        // Serve-tier replica kills (revived a few batches later) — only
        // on first visits, so replay never re-kills deterministically.
        if active && b == high_water {
            revives.retain(|&(due, id)| {
                if b >= due {
                    cluster.revive_replica(id);
                    false
                } else {
                    true
                }
            });
            if chaos.crash(FaultSite::ReplicaCrash, b as u64, 0) {
                let victim = chaos.pick(FaultSite::ReplicaCrash, b as u64, 1, num_replicas);
                if cluster.kill_replica(victim) {
                    replica_kills += 1;
                    revives.push((b + REPLICA_DOWN_BATCHES, victim));
                }
            }
        }

        // Checkpoint cadence and PS crash-points. The crash draw is keyed
        // by (batch, incarnation): deterministic from the seed, but a
        // replayed batch draws differently, so recovery always makes
        // progress instead of re-crashing forever.
        let due_ckpt = (b + 1) % CKPT_EVERY == 0;
        let crash_now = active
            && ps_crashes < CRASH_CAP
            && chaos.crash(FaultSite::PsCrash, b as u64, incarnation);
        let crash_point = if crash_now {
            chaos.pick(FaultSite::PsCrash, b as u64, incarnation + 1, 3)
        } else {
            3 // no crash
        };

        // Crash-point 1 with a checkpoint due: the generation is written
        // but the crash lands before the StreamCheckpoint publish —
        // recovery must come up from the *previous* published pair.
        if due_ckpt && crash_point != 0 {
            generation += 1;
            ps.checkpoint_all_generation(&dfs, generation)?;
            if !(crash_now && crash_point == 1) {
                StreamCheckpoint {
                    generation,
                    batches_done: (b + 1) as u64,
                    events_done: hi as u64,
                    watermark: fx.watermark,
                }
                .write(&dfs, CKPT_PATH, &client)
                .map_err(se)?;
                if generation >= 2 {
                    ps.discard_checkpoint_generation(&dfs, generation - 2);
                }
            }
        }

        if crash_now {
            // Kill every PS server at this instant, restart, and recover:
            // all Consistent objects roll back to the last *published*
            // generation, the ingestor rewinds to its watermark, and the
            // event-log suffix will replay through the main loop.
            let t0 = client.now();
            for s in 0..ps.num_servers() {
                ps.kill_server(s);
            }
            for s in 0..ps.num_servers() {
                ps.restart_server(s, t0);
            }
            let ck = StreamCheckpoint::read(&dfs, CKPT_PATH, &client).map_err(se)?;
            ps.recover_server_from_generation(0, &dfs, &client, ck.generation)?;
            ingestor.reset_for_replay(ck.watermark);
            pr_state.reset_after_recovery();
            cc.restore_from_ps(&client)?;
            pending.retain(|&(bi, _)| bi < ck.batches_done as usize);
            recoveries_inflight.push((t0, b));
            ps_crashes += 1;
            incarnation += 1;
            b = ck.batches_done as usize;
            continue;
        }

        // Delta hot-swap cadence — only effective batches advance it
        // (replayed all-duplicate batches are no-ops), and it is
        // suppressed while a recovery is still replaying (publishing a
        // rolled-back PS would serve time-travel).
        if driver.tick(!fx.effects.is_empty()) && !catching_up {
            if let Some(rec) = driver
                .refresh(
                    &dfs,
                    &client,
                    &mut cluster,
                    &pr_state.ranks,
                    &cc.labels,
                    ingestor.adjacency(),
                    ingestor.watermark(),
                )
                .map_err(se)?
            {
                for (_, wmark) in pending.drain(..) {
                    lags.push(rec.at.saturating_sub(wmark));
                }
                mirror = capture(&client, &ingestor, &pr, &pr_state, &cc, n)?;
                truth = mirror.truth(n);
            }
        }

        // Interleaved queries, verified bit-for-bit against the swap-time
        // truth. Shed/failed (dead replicas, load) is degraded service;
        // a *wrong* answer is a correctness bug.
        for _ in 0..QUERIES_PER_BATCH {
            let v = rng.next_below(n);
            let at = client.now();
            match rng.next_below(4) {
                // Compound plan leg: an All-source filter → score → top-k
                // pipeline over the published community labels, checked
                // bit-for-bit against the interpreter on the swap-time
                // truth. Faults may shed it; they must not corrupt it.
                3 => {
                    let plan = Plan {
                        source: Source::All,
                        stages: vec![
                            Stage::Filter(Pred::CommunityEq(mirror.labels[v as usize])),
                            Stage::Score(Scorer::Rank),
                            Stage::TopK(8),
                        ],
                    };
                    for (_, outcome) in cluster.frontend_mut().execute_plan_now(queries, at, &plan)
                    {
                        match outcome {
                            Outcome::Answered { value, .. } => {
                                answered += 1;
                                compound_answered += 1;
                                let ok = match (Interpreter::new(&truth, 1).run(&plan), &value) {
                                    (Ok(PlanOutput::Ranked(want)), Value::Ranked(got)) => {
                                        want.len() == got.len()
                                            && want.iter().zip(got).all(|((wv, ws), (gv, gs))| {
                                                wv == gv && ws.to_bits() == gs.to_bits()
                                            })
                                    }
                                    _ => false,
                                };
                                if !ok {
                                    wrong += 1;
                                }
                            }
                            Outcome::Shed { .. } | Outcome::Failed(_) => unserved += 1,
                        }
                    }
                }
                kind => {
                    let q = match kind {
                        0 => Query::Rank(v),
                        1 => Query::Community(v),
                        _ => Query::Neighbors(v),
                    };
                    for (_, outcome) in cluster.frontend_mut().execute_now(queries, at, q) {
                        match outcome {
                            Outcome::Answered { value, .. } => {
                                answered += 1;
                                if !answer_matches(&q, &value, &mirror) {
                                    wrong += 1;
                                }
                            }
                            Outcome::Shed { .. } | Outcome::Failed(_) => unserved += 1,
                        }
                    }
                }
            }
            queries += 1;
        }
        b += 1;
    }

    // Publish the tail so freshness accounting closes out. A `None` here
    // means everything pending was a no-op (nothing dirty since the last
    // swap) — there is nothing to publish, so those batches carry no lag.
    if driver.batches_since_swap() > 0 || !pending.is_empty() {
        if let Some(rec) = driver
            .refresh(
                &dfs,
                &client,
                &mut cluster,
                &pr_state.ranks,
                &cc.labels,
                ingestor.adjacency(),
                ingestor.watermark(),
            )
            .map_err(se)?
        {
            for (_, wmark) in pending.drain(..) {
                lags.push(rec.at.saturating_sub(wmark));
            }
        }
    }

    let print = fingerprint(&client, &ingestor, &pr, &pr_state, &cc, n)?;
    let freshness_max = lags.iter().copied().max().unwrap_or(SimTime::ZERO);
    Ok(RunResult {
        print,
        outcome: SeedOutcome {
            seed: chaos.seed(),
            faults: chaos.stats(),
            ps_crashes,
            replica_kills,
            transport_retries,
            dup_suppressed: filter.suppressed(),
            corrupt_fallbacks: dfs.corrupt_fallbacks(),
            batches_replayed,
            queries,
            answered,
            compound_answered,
            unserved,
            wrong,
            freshness_max,
            freshness_bound,
            recovery_latencies,
            state_identical: false, // settled by the caller
        },
    })
}

/// Run the soak: one fault-free reference plus one chaos run per seed.
/// `seeds` are the schedule seeds (`ChaosConfig::soak`); pass one seed to
/// replay a single failing schedule.
pub fn run_chaos(scale: f64, total_events: usize, seeds: &[u64]) -> Result<ChaosRepro, CoreError> {
    assert!(!seeds.is_empty(), "chaos soak needs at least one seed");
    let base = Dataset::Ds3.generate(scale).dedup();
    let n = base.num_vertices();
    let drift = DriftRmat {
        num_vertices: n,
        remove_fraction: 0.25,
        seed: 0xC4A05,
        ..DriftRmat::default()
    };
    let mut source = drift.start(base.edges());
    let events: Vec<EdgeEvent> = (0..total_events).map(|_| source.next_event()).collect();

    let reference = run_once(&base, &events, drift.events_per_sec, FaultSchedule::off())?;
    assert_eq!(reference.outcome.wrong, 0, "the fault-free reference must serve correctly");

    let mut outcomes = Vec::with_capacity(seeds.len());
    let mut recovery_sorted = Vec::new();
    for &seed in seeds {
        let run = run_once(
            &base,
            &events,
            drift.events_per_sec,
            FaultSchedule::new(ChaosConfig::soak(seed)),
        )?;
        let mut out = run.outcome;
        out.state_identical = run.print == reference.print;
        recovery_sorted.extend(out.recovery_latencies.iter().copied());
        outcomes.push(out);
    }
    recovery_sorted.sort_unstable();

    Ok(ChaosRepro {
        num_vertices: n,
        base_edges: base.edges().len(),
        events: total_events,
        batches: total_events.div_ceil(BATCH),
        seeds: outcomes,
        recovery_sorted,
    })
}

/// The replay command that reproduces one seed's schedule exactly.
pub fn replay_command(seed: u64, scale: f64, events: usize) -> String {
    format!(
        "cargo run -p psgraph-bench --release --bin repro -- chaos --seed {seed} --scale {scale} --events {events}"
    )
}

/// Write the soak summary (recovery-latency percentiles, fault tallies,
/// per-seed outcomes) to `results/BENCH_chaos.json`.
pub fn write_report(r: &ChaosRepro) -> std::io::Result<std::path::PathBuf> {
    let dir = psgraph_harness::bench::out_dir();
    std::fs::create_dir_all(&dir)?;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let agg = |f: fn(&SeedOutcome) -> u64| -> i64 {
        r.seeds.iter().map(f).sum::<u64>() as i64
    };
    let seeds: Vec<Json> = r
        .seeds
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("seed".into(), Json::Int(s.seed as i64)),
                ("ps_crashes".into(), Json::Int(s.ps_crashes as i64)),
                ("replica_kills".into(), Json::Int(s.replica_kills as i64)),
                ("losses".into(), Json::Int(s.faults.losses as i64)),
                ("duplicates".into(), Json::Int(s.faults.duplicates as i64)),
                ("delays".into(), Json::Int(s.faults.delays as i64)),
                ("corruptions".into(), Json::Int(s.faults.corruptions as i64)),
                ("dup_suppressed".into(), Json::Int(s.dup_suppressed as i64)),
                ("corrupt_fallbacks".into(), Json::Int(s.corrupt_fallbacks as i64)),
                ("batches_replayed".into(), Json::Int(s.batches_replayed as i64)),
                ("wrong".into(), Json::Int(s.wrong as i64)),
                ("unserved".into(), Json::Int(s.unserved as i64)),
                ("compound_answered".into(), Json::Int(s.compound_answered as i64)),
                ("freshness_max_ns".into(), Json::Int(s.freshness_max.as_nanos() as i64)),
                ("state_identical".into(), Json::Bool(s.state_identical)),
                (
                    "recovery_ns".into(),
                    Json::Arr(
                        s.recovery_latencies
                            .iter()
                            .map(|l| Json::Int(l.as_nanos() as i64))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let json = Json::Obj(vec![
        ("group".into(), Json::str("chaos")),
        ("unit".into(), Json::str("ns")),
        ("timestamp_unix".into(), Json::Int(ts as i64)),
        ("num_vertices".into(), Json::Int(r.num_vertices as i64)),
        ("events".into(), Json::Int(r.events as i64)),
        ("batches".into(), Json::Int(r.batches as i64)),
        ("seeds".into(), Json::Int(r.seeds.len() as i64)),
        ("wrong_total".into(), Json::Int(r.total_wrong() as i64)),
        (
            "state_mismatches".into(),
            Json::Int(r.mismatched_seeds().len() as i64),
        ),
        ("recoveries".into(), Json::Int(r.recovery_sorted.len() as i64)),
        (
            "recovery_p50_ns".into(),
            Json::Int(r.recovery_percentile(0.50).as_nanos() as i64),
        ),
        (
            "recovery_p99_ns".into(),
            Json::Int(r.recovery_percentile(0.99).as_nanos() as i64),
        ),
        (
            "recovery_max_ns".into(),
            Json::Int(
                r.recovery_sorted.last().copied().unwrap_or(SimTime::ZERO).as_nanos() as i64,
            ),
        ),
        ("ps_crashes_total".into(), Json::Int(agg(|s| s.ps_crashes as u64))),
        ("replica_kills_total".into(), Json::Int(agg(|s| s.replica_kills as u64))),
        ("losses_total".into(), Json::Int(agg(|s| s.faults.losses))),
        ("duplicates_total".into(), Json::Int(agg(|s| s.faults.duplicates))),
        ("delays_total".into(), Json::Int(agg(|s| s.faults.delays))),
        ("corruptions_total".into(), Json::Int(agg(|s| s.faults.corruptions))),
        ("per_seed".into(), Json::Arr(seeds)),
    ]);
    let path = dir.join("BENCH_chaos.json");
    std::fs::write(&path, json.pretty())?;
    Ok(path)
}

/// Render the soak table.
pub fn table(r: &ChaosRepro) -> Table {
    let mut t = Table::new(
        "Chaos soak — loss+dup+delay+crash+corruption over seeded schedules",
        &["measured"],
    );
    let text = |s: String| vec![Cell::Text(s)];
    t.push(Row::new(
        "vertices / base edges",
        text(format!("{} / {}", r.num_vertices, r.base_edges)),
    ));
    t.push(Row::new(
        format!("events per run ({} batches of ≤{BATCH})", r.batches),
        text(r.events.to_string()),
    ));
    t.push(Row::new("fault-schedule seeds", text(r.seeds.len().to_string())));
    let sum = |f: fn(&SeedOutcome) -> u64| r.seeds.iter().map(f).sum::<u64>();
    t.push(Row::new(
        "injected loss / dup / delay / corruption",
        text(format!(
            "{} / {} / {} / {}",
            sum(|s| s.faults.losses),
            sum(|s| s.faults.duplicates),
            sum(|s| s.faults.delays),
            sum(|s| s.faults.corruptions)
        )),
    ));
    t.push(Row::new(
        "PS crash-recoveries / replica kills",
        text(format!(
            "{} / {}",
            sum(|s| s.ps_crashes as u64),
            sum(|s| s.replica_kills as u64)
        )),
    ));
    t.push(Row::new(
        "transport retries / dups absorbed / corrupt reads survived",
        text(format!(
            "{} / {} / {}",
            sum(|s| s.transport_retries),
            sum(|s| s.dup_suppressed),
            sum(|s| s.corrupt_fallbacks)
        )),
    ));
    t.push(Row::new(
        "event-log batches replayed",
        text(sum(|s| s.batches_replayed as u64).to_string()),
    ));
    t.push(Row::new(
        "queries answered / unserved (degraded)",
        text(format!(
            "{} / {}",
            sum(|s| s.answered as u64),
            sum(|s| s.unserved as u64)
        )),
    ));
    t.push(Row::new(
        "compound plans answered (verified vs interpreter)",
        text(sum(|s| s.compound_answered as u64).to_string()),
    ));
    t.push(Row::new("wrong answers", text(r.total_wrong().to_string())));
    t.push(Row::new(
        "final-state mismatches vs fault-free",
        text(r.mismatched_seeds().len().to_string()),
    ));
    t.push(Row::new(
        "recovery latency p50 / p99 / max (simulated)",
        text(format!(
            "{} / {} / {}",
            r.recovery_percentile(0.50),
            r.recovery_percentile(0.99),
            r.recovery_sorted.last().copied().unwrap_or(SimTime::ZERO)
        )),
    ));
    let worst_fresh = r
        .seeds
        .iter()
        .map(|s| s.freshness_max)
        .max()
        .unwrap_or(SimTime::ZERO);
    let bound = r
        .seeds
        .iter()
        .map(|s| s.freshness_bound)
        .max()
        .unwrap_or(SimTime::ZERO);
    t.push(Row::new(
        "freshness lag worst / bound",
        text(format!("{worst_fresh} / {bound}")),
    ));
    t
}

/// Replay helper used by docs and the property suite: re-drive a suffix
/// of an event log through a fresh ingestor (no faults), returning the
/// batch count — the building block `run_once` recovery uses.
pub fn replay_suffix(
    dfs: &Dfs,
    client: &NodeClock,
    ingestor: &mut Ingestor,
    from_event: usize,
    to_event: usize,
) -> Result<usize, CoreError> {
    replay_from_log(dfs, LOG_PATH, client, ingestor, from_event, to_event, BATCH, |_, _| Ok(()))
        .map_err(se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_soak_small_sweep_is_correct_and_bit_identical() {
        let r = run_chaos(0.02, 2_560, &[11, 12, 13]).expect("chaos soak must run");
        assert_eq!(r.total_wrong(), 0, "chaos produced wrong answers");
        assert!(
            r.mismatched_seeds().is_empty(),
            "final PS state diverged for seeds {:?} — replay with e.g. `{}`",
            r.mismatched_seeds(),
            replay_command(r.mismatched_seeds()[0], 0.02, 2_560),
        );
        assert!(
            r.freshness_violations().is_empty(),
            "freshness bound violated for seeds {:?}",
            r.freshness_violations()
        );
        let injected: u64 = r
            .seeds
            .iter()
            .map(|s| s.faults.losses + s.faults.duplicates + s.faults.delays)
            .sum();
        assert!(injected > 0, "the soak schedule must actually inject faults");
        assert!(
            r.seeds.iter().any(|s| s.ps_crashes > 0),
            "at least one seed must exercise PS crash recovery"
        );
        assert!(
            r.seeds.iter().all(|s| s.ps_crashes == 0 || !s.recovery_latencies.is_empty()),
            "every crash must report a recovery latency"
        );
    }

    #[test]
    fn chaos_runs_are_deterministic_per_seed() {
        let a = run_chaos(0.02, 1_280, &[7]).expect("run a");
        let b = run_chaos(0.02, 1_280, &[7]).expect("run b");
        let (sa, sb) = (&a.seeds[0], &b.seeds[0]);
        assert_eq!(sa.faults, sb.faults, "fault tallies must replay bit-identically");
        assert_eq!(sa.ps_crashes, sb.ps_crashes);
        assert_eq!(sa.wrong, sb.wrong);
        assert_eq!(sa.recovery_latencies, sb.recovery_latencies);
        assert_eq!(sa.freshness_max, sb.freshness_max);
    }
}
