//! Deployment sizing: one rule maps the paper's cluster allocations to
//! simulated budgets; nothing is tuned per algorithm.
//!
//! The paper's allocations (§V-B):
//!
//! | run | executors | exec mem | servers | server mem |
//! |---|---|---|---|---|
//! | PSGraph DS1 (TG) | 100 | 20 GB | 20 | 15 GB |
//! | GraphX DS1 | 100 | 55 GB | — | — |
//! | PSGraph DS2 | 300 | 30 GB | 200 | 30 GB |
//! | GraphX DS2 | 500 | 55 GB | — | — |
//! | PSGraph DS3 (GNN) | 30 × 10 GB | | 30 | 10 GB |
//! | Euler DS3 | 90 × 50 GB | | — | — |
//!
//! **Scaling rule.** A dataset instance is `σ = paper_vertices /
//! sim_vertices` times smaller than the paper's, so every *total* memory
//! pool is divided by `σ`. The executor pool is additionally divided by
//! [`JVM_EXPANSION`]: Spark's deserialized JVM objects are a few times
//! larger than this simulator's byte estimates (headers, boxed fields,
//! `ArrayBuffer[Any]` growth — Spark's own tuning guide says "2–5×"), so
//! the budget *usable by our accounting* shrinks by that factor. It is one
//! global constant shared by PSGraph's and GraphX's executors (both are
//! Spark executors); PS servers store primitive arrays (Angel-style) and
//! take no expansion. Calibration is documented in EXPERIMENTS.md.

use std::sync::Arc;

use psgraph_core::{PsGraphConfig, PsGraphContext};
use psgraph_dataflow::{Cluster, ClusterConfig};
use psgraph_graph::Dataset;

/// Net correction between this simulator's byte accounting and a real
/// Spark executor's usable heap, calibrated once and applied to every
/// executor budget (PSGraph's and GraphX's alike; see EXPERIMENTS.md
/// "Calibration"). Two opposing effects meet here: JVM representations
/// are *larger* than our estimates beyond the explicit record/element
/// overheads we already charge (GC headroom, fragmentation), while our
/// eager engine *materializes* transient stage outputs that Spark
/// pipelines without ever storing. The measured net factor is 0.5 (i.e.
/// budgets are doubled in our units).
pub const JVM_EXPANSION: f64 = 0.5;

/// Simulated cluster width (each simulated executor stands in for
/// `paper_executors / SIM_EXECUTORS` real ones).
pub const SIM_EXECUTORS: usize = 8;
pub const SIM_SERVERS: usize = 4;

/// Paper resource allocations for one run.
#[derive(Debug, Clone, Copy)]
pub struct PaperAlloc {
    pub executors: u64,
    pub exec_mem_gb: u64,
    pub servers: u64,
    pub server_mem_gb: u64,
}

impl PaperAlloc {
    pub const PSGRAPH_DS1: PaperAlloc =
        PaperAlloc { executors: 100, exec_mem_gb: 20, servers: 20, server_mem_gb: 15 };
    pub const GRAPHX_DS1: PaperAlloc =
        PaperAlloc { executors: 100, exec_mem_gb: 55, servers: 0, server_mem_gb: 0 };
    pub const PSGRAPH_DS2: PaperAlloc =
        PaperAlloc { executors: 300, exec_mem_gb: 30, servers: 200, server_mem_gb: 30 };
    pub const GRAPHX_DS2: PaperAlloc =
        PaperAlloc { executors: 500, exec_mem_gb: 55, servers: 0, server_mem_gb: 0 };
    pub const PSGRAPH_DS3: PaperAlloc =
        PaperAlloc { executors: 30, exec_mem_gb: 10, servers: 30, server_mem_gb: 10 };
    pub const EULER_DS3: PaperAlloc =
        PaperAlloc { executors: 90, exec_mem_gb: 50, servers: 0, server_mem_gb: 0 };

    pub fn total_exec_bytes(&self) -> f64 {
        (self.executors * self.exec_mem_gb) as f64 * (1u64 << 30) as f64
    }

    pub fn total_server_bytes(&self) -> f64 {
        (self.servers * self.server_mem_gb) as f64 * (1u64 << 30) as f64
    }
}

/// The scaling rule for one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRule {
    pub dataset: Dataset,
    /// Dataset scale knob (1.0 = the default presets in `psgraph_graph`).
    pub scale: f64,
}

impl ScaleRule {
    pub fn new(dataset: Dataset, scale: f64) -> Self {
        ScaleRule { dataset, scale }
    }

    /// σ: how many times smaller than the paper's dataset this run is.
    pub fn sigma(&self) -> f64 {
        self.dataset.scale_down(self.scale)
    }

    /// Per-simulated-executor budget in our accounting units.
    pub fn exec_budget(&self, alloc: PaperAlloc) -> u64 {
        (alloc.total_exec_bytes() / self.sigma() / JVM_EXPANSION / SIM_EXECUTORS as f64)
            .max(64.0 * 1024.0) as u64
    }

    /// Per-simulated-server budget. The same [`JVM_EXPANSION`] correction
    /// applies: with only 4 simulated servers standing in for 20–200 real
    /// ones, per-node placement skew (hash imbalance, hub vertices) is
    /// proportionally larger, so budgets get the same granularity
    /// correction as executors.
    pub fn server_budget(&self, alloc: PaperAlloc) -> u64 {
        (alloc.total_server_bytes() / self.sigma() / JVM_EXPANSION / SIM_SERVERS as f64)
            .max(64.0 * 1024.0) as u64
    }
}

/// Per-record JVM overhead for GraphX clusters: the triplet machinery
/// needs deserialized object caching (tuple headers + boxed fields).
/// PSGraph's pipelines persist serialized (Kryo), so their clusters keep
/// the default 0 and pay (already-modeled) CPU on access instead.
pub const GRAPHX_RECORD_OVERHEAD: u64 = 32;

/// A GraphX cluster sized per the paper + rule.
pub fn graphx_cluster(rule: ScaleRule, alloc: PaperAlloc) -> Arc<Cluster> {
    let mut cfg = ClusterConfig::default()
        .with_executors(SIM_EXECUTORS)
        .with_memory(rule.exec_budget(alloc));
    cfg.default_partitions = SIM_EXECUTORS * 6;
    cfg.record_overhead = GRAPHX_RECORD_OVERHEAD;
    Cluster::new(cfg)
}

/// A PSGraph deployment sized per the paper + rule.
pub fn psgraph_context(rule: ScaleRule, alloc: PaperAlloc) -> Arc<PsGraphContext> {
    let mut cfg = PsGraphConfig::sized(
        SIM_EXECUTORS,
        rule.exec_budget(alloc),
        SIM_SERVERS,
        rule.server_budget(alloc),
    );
    // More, smaller partitions (as the paper's 100–500-executor runs
    // would have): shrinks per-task shuffle transients and hub buckets.
    cfg.cluster.default_partitions = SIM_EXECUTORS * 6;
    PsGraphContext::new(cfg)
}

/// An unbounded PSGraph deployment (calibration probes).
pub fn psgraph_unbounded() -> Arc<PsGraphContext> {
    let mut cfg = PsGraphConfig::sized(SIM_EXECUTORS, u64::MAX, SIM_SERVERS, u64::MAX);
    cfg.cluster.default_partitions = SIM_EXECUTORS * 6;
    PsGraphContext::new(cfg)
}

/// [`psgraph_unbounded`] pinned to an explicit thread pool (thread-count
/// scaling sweeps).
pub fn psgraph_unbounded_with_pool(
    pool: Arc<psgraph_harness::Pool>,
) -> Arc<PsGraphContext> {
    let mut cfg =
        PsGraphConfig::sized(SIM_EXECUTORS, u64::MAX, SIM_SERVERS, u64::MAX).with_pool(pool);
    cfg.cluster.default_partitions = SIM_EXECUTORS * 6;
    PsGraphContext::new(cfg)
}

/// An unbounded GraphX cluster (calibration probes).
pub fn graphx_unbounded() -> Arc<Cluster> {
    let mut cfg = ClusterConfig::default()
        .with_executors(SIM_EXECUTORS)
        .with_memory(u64::MAX);
    cfg.default_partitions = SIM_EXECUTORS * 6;
    cfg.record_overhead = GRAPHX_RECORD_OVERHEAD;
    Cluster::new(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_tracks_scale() {
        let r1 = ScaleRule::new(Dataset::Ds1, 1.0);
        assert!((r1.sigma() - 4000.0).abs() < 1.0);
        let r01 = ScaleRule::new(Dataset::Ds1, 0.1);
        assert!(r01.sigma() > 9.0 * r1.sigma());
    }

    #[test]
    fn budgets_scale_with_allocation() {
        let rule = ScaleRule::new(Dataset::Ds1, 0.1);
        let gx = rule.exec_budget(PaperAlloc::GRAPHX_DS1);
        let psg = rule.exec_budget(PaperAlloc::PSGRAPH_DS1);
        // 55 GB vs 20 GB per executor, same count.
        let ratio = gx as f64 / psg as f64;
        assert!((ratio - 2.75).abs() < 0.01, "ratio {ratio}");
        assert!(rule.server_budget(PaperAlloc::PSGRAPH_DS1) > 0);
    }

    #[test]
    fn ds2_budget_per_edge_is_tighter_than_ds1() {
        // Paper: DS1 GraphX gets 5.5 TB for 11 B edges (500 B/edge); DS2
        // gets 27.5 TB for 140 B edges (196 B/edge). The rule must keep
        // that squeeze.
        let ds1 = ScaleRule::new(Dataset::Ds1, 0.1);
        let ds2 = ScaleRule::new(Dataset::Ds2, 0.1);
        let per_edge_ds1 = ds1.exec_budget(PaperAlloc::GRAPHX_DS1) as f64 * SIM_EXECUTORS as f64
            / Dataset::Ds1.spec(0.1).edges as f64;
        let per_edge_ds2 = ds2.exec_budget(PaperAlloc::GRAPHX_DS2) as f64 * SIM_EXECUTORS as f64
            / Dataset::Ds2.spec(0.1).edges as f64;
        let squeeze = per_edge_ds1 / per_edge_ds2;
        assert!((squeeze - 500.0 / 196.0).abs() < 0.2, "squeeze {squeeze}");
    }

    #[test]
    fn clusters_construct_with_budgets() {
        let rule = ScaleRule::new(Dataset::Ds1, 0.02);
        let gx = graphx_cluster(rule, PaperAlloc::GRAPHX_DS1);
        assert_eq!(gx.num_executors(), SIM_EXECUTORS);
        let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS1);
        assert_eq!(ctx.ps().num_servers(), SIM_SERVERS);
    }
}
