//! Experiment harness: deployments, scaling rules, and result tables for
//! reproducing every figure and table of the paper's evaluation (§V).
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! measured results.

pub mod chaos_exp;
pub mod deploy;
pub mod fig6;
pub mod line_exp;
pub mod query_exp;
pub mod report;
pub mod serve_exp;
pub mod stream_exp;
pub mod table1;
pub mod table2;

pub use deploy::{graphx_cluster, psgraph_context, ScaleRule, JVM_EXPANSION};
pub use report::{Cell, Row, Table};
