//! Table I reproduction: GraphSage on DS3 — PSGraph vs Euler.
//!
//! Both systems consume the same raw inputs from the DFS (a text edge
//! log plus a feature/label table). Euler runs its three sequential disk
//! passes and then trains against its per-vertex graph service; PSGraph
//! preprocesses inside the Spark pipeline (groupBy, PS push) and trains
//! with batched PS pulls and server-side Adam.

use std::sync::Arc;

use psgraph_core::algos::{GraphSage, GraphSageConfig};
use psgraph_core::runner::distribute_edges;
use psgraph_core::CoreError;
use psgraph_euler::{preprocess, train, EulerCluster, EulerConfig};
use psgraph_graph::{io, Dataset};
use psgraph_sim::{CostModel, NodeClock, SimTime};

use crate::deploy::{psgraph_context, PaperAlloc, ScaleRule};
use crate::report::{Cell, Row, Table};

/// Feature dimensionality for the synthetic DS3 classification task.
pub const FEAT_DIM: usize = 16;

/// One system's measured Table I row.
#[derive(Debug, Clone)]
pub struct GnnResult {
    pub preprocess: SimTime,
    pub per_epoch: SimTime,
    pub accuracy: f64,
}

/// Both systems' results.
#[derive(Debug, Clone)]
pub struct Table1Result {
    pub euler: GnnResult,
    pub psgraph: GnnResult,
}

/// Run the Table I experiment at `scale`.
pub fn run_table1(scale: f64) -> Result<Table1Result, CoreError> {
    let s = Dataset::generate_ds3_features(scale, FEAT_DIM);
    let epochs = 3u64;

    // ---- Euler ----
    let dfs = psgraph_dfs::Dfs::in_memory();
    let loader = NodeClock::new();
    io::write_text(&dfs, "/raw/edges.txt", &s.graph, &loader)?;
    io::write_features(&dfs, "/raw/features.bin", &s.features, &s.labels, &loader)?;
    let cfg = EulerConfig {
        workers: 4,
        shards: 4,
        feat_dim: FEAT_DIM,
        epochs,
        ..Default::default()
    };
    let driver = NodeClock::new();
    let (egraph, report) =
        preprocess(&dfs, "/raw/edges.txt", "/raw/features.bin", "/euler", cfg.shards, &driver)
            .map_err(|e| CoreError::Dfs(e.to_string()))?;
    let mut cluster = EulerCluster::new(cfg.workers, cfg.shards, CostModel::default());
    Arc::get_mut(&mut cluster)
        .expect("fresh cluster")
        .load(&egraph.adjacency, &egraph.features);
    let eout = train(&cluster, &Arc::new(egraph), &cfg);
    let euler = GnnResult {
        preprocess: report.total(),
        per_epoch: SimTime::from_nanos(
            eout.epoch_times.iter().map(|t| t.as_nanos()).sum::<u64>() / epochs,
        ),
        accuracy: eout.test_accuracy,
    };

    // ---- PSGraph ----
    let rule = ScaleRule::new(Dataset::Ds3, scale);
    let ctx = psgraph_context(rule, PaperAlloc::PSGRAPH_DS3);
    // Same raw input: parse the text log through the Spark pipeline.
    io::write_text(ctx.dfs(), "/raw/edges.txt", &s.graph, ctx.cluster().driver())?;
    let parsed = io::read_text(ctx.dfs(), "/raw/edges.txt", ctx.cluster().driver())?;
    let edges = distribute_edges(&ctx, &parsed, ctx.cluster().default_partitions())?;
    let feats = Arc::new(s.features.clone());
    let labels = Arc::new(s.labels.clone());
    let out = GraphSage::new(GraphSageConfig {
        feat_dim: FEAT_DIM,
        epochs,
        ..Default::default()
    })
    .run(&ctx, &edges, &feats, &labels, s.graph.num_vertices())?;
    let psgraph = GnnResult {
        preprocess: out.preprocess_time,
        per_epoch: SimTime::from_nanos(
            out.epoch_times.iter().map(|t| t.as_nanos()).sum::<u64>() / epochs,
        ),
        accuracy: out.test_accuracy,
    };

    Ok(Table1Result { euler, psgraph })
}

/// Render paper-vs-measured.
pub fn table(r: &Table1Result) -> Table {
    let mut t = Table::new(
        "Table I — GraphSage on DS3",
        &["paper prep", "prep", "paper epoch", "epoch", "paper acc", "acc"],
    );
    t.push(Row::new(
        "Euler",
        vec![
            Cell::Hours(8.0),
            Cell::Text(r.euler.preprocess.to_string()),
            Cell::Seconds(200.0),
            Cell::Text(r.euler.per_epoch.to_string()),
            Cell::Percent(0.915),
            Cell::Percent(r.euler.accuracy),
        ],
    ));
    t.push(Row::new(
        "PSGraph",
        vec![
            Cell::Minutes(12.0),
            Cell::Text(r.psgraph.preprocess.to_string()),
            Cell::Seconds(7.0),
            Cell::Text(r.psgraph.per_epoch.to_string()),
            Cell::Percent(0.916),
            Cell::Percent(r.psgraph.accuracy),
        ],
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let r = run_table1(0.05).expect("table1 must run");
        // Shape: PSGraph preprocesses much faster, trains faster per
        // epoch, and reaches comparable accuracy.
        assert!(
            r.psgraph.preprocess.as_nanos() * 5 < r.euler.preprocess.as_nanos(),
            "prep: psgraph {} vs euler {}",
            r.psgraph.preprocess,
            r.euler.preprocess
        );
        assert!(
            r.psgraph.per_epoch < r.euler.per_epoch,
            "epoch: psgraph {} vs euler {}",
            r.psgraph.per_epoch,
            r.euler.per_epoch
        );
        assert!(r.psgraph.accuracy > 0.8, "psgraph acc {}", r.psgraph.accuracy);
        assert!(r.euler.accuracy > 0.8, "euler acc {}", r.euler.accuracy);
        assert!((r.psgraph.accuracy - r.euler.accuracy).abs() < 0.1);
    }
}
