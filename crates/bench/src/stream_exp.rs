//! `repro -- stream`: the streaming-ingestion reproduction — closing the
//! train → serve → refresh loop end to end.
//!
//! Pipeline: bootstrap DS3′ into the mutable ingest state (tombstone
//! neighbor table + degree vector), converge incremental PageRank and
//! connected components, snapshot everything, and load a serving tier.
//! Then a drift-parameterized RMAT source emits timestamped edge
//! add/remove events which are applied in micro-batches:
//!
//! 1. Each batch updates the neighbor table, re-pushes PageRank residuals
//!    and unions / recomputes components. With `--shards N` the batch is
//!    routed across N ingestor shards keyed by edge owner (source-range
//!    tiling) and drained as one logical batch whose watermark is the
//!    min-merge across shards ([`ShardedIngestor`]).
//! 2. Every `swap_every_batches` *effective* batches a [`RefreshDriver`]
//!    exports a [`psgraph_ps::snapshot::DeltaWriter`] delta of the
//!    dirtied partitions and hot-swaps it into the live replicas.
//! 3. Queries are interleaved throughout and checked bit-for-bit against
//!    the *swap-time* PS state (the tier serves the last published
//!    snapshot, not the live PS) — `wrong` must be 0.
//! 4. At the end the incremental PageRank is compared against a
//!    from-scratch recompute (L∞ must stay under 1e-6), the component
//!    labels against [`metrics::connected_components`] of the live
//!    edges, and the whole final state (adjacency + degrees + ranks +
//!    labels) is folded into `state_digest` — the digest must be
//!    bit-identical across every shard count.
//!
//! The freshness metric: a micro-batch's lag is the event-time gap
//! between its watermark (latest event it applied) and the watermark of
//! the swap that first published it. With a swap every `K` batches the
//! lag is bounded by the event-time span of `K` batches. All freshness
//! numbers are event-time, so they are identical across shard counts and
//! pool sizes; only the wall-clock rows (events/s, swap cost) vary.

use std::time::Instant;

use psgraph_core::algos::{IncrementalCc, IncrementalPageRank, PrState};
use psgraph_core::CoreError;
use psgraph_dfs::Dfs;
use psgraph_graph::{metrics, Dataset, EdgeList};
use psgraph_net::rpc::NodeId;
use psgraph_ps::{NeighborTableHandle, Ps, PsConfig, SnapshotWriter, VectorHandle};
use psgraph_serve::frontend::Outcome;
use psgraph_serve::{ObjectMap, Query, ServeCluster, ServeConfig, Value};
use psgraph_sim::{NodeClock, SimTime, SplitMix64};
use psgraph_stream::{
    BatchEffect, DriftRmat, EdgeEvent, IngestConfig, IngestStats, Ingestor, RefreshConfig,
    RefreshDriver, ShardedIngestor,
};

use crate::report::{Cell, Row, Table};

/// Events per micro-batch; every ingest mailbox is sized to match, so
/// within a batch no offer is rejected even if all events route to one
/// shard (backpressure is unit-tested in `psgraph-stream`).
const BATCH: usize = 512;

/// Verified queries interleaved after every micro-batch.
const QUERIES_PER_BATCH: usize = 4;

/// Measured streaming results.
#[derive(Debug, Clone)]
pub struct StreamRepro {
    pub num_vertices: u64,
    pub base_edges: usize,
    /// Ingestor shards the stream was routed across (1 = the plain
    /// single-ingestor reference path).
    pub shards: usize,
    /// Events emitted by the drift source.
    pub events: usize,
    pub batches: usize,
    pub applied_adds: u64,
    pub applied_removes: u64,
    /// At-least-once duplicates (add of a live edge).
    pub skipped_dup_adds: u64,
    /// Removes of absent edges.
    pub skipped_missing_removes: u64,
    pub live_edges: usize,
    /// Delta hot-swaps into the serving tier.
    pub swaps: usize,
    /// Dirty partitions exported across all swaps.
    pub dirty_partitions: usize,
    pub swap_every_batches: usize,
    /// Worst observed effective-batches-until-published; must stay
    /// within the configured swap cadence.
    pub max_batches_to_publish: usize,
    /// Event-time lag from a batch's watermark to its publishing swap.
    pub freshness_p50: SimTime,
    pub freshness_p99: SimTime,
    pub freshness_max: SimTime,
    /// 2× the expected event-time span of one swap interval.
    pub freshness_bound: SimTime,
    pub queries: usize,
    pub answered: usize,
    /// Answers that did not match the swap-time PS state. Must be 0.
    pub wrong: usize,
    /// L∞ between incremental PageRank and a from-scratch recompute.
    pub pr_linf: f64,
    /// Incremental component labels equal the reference labels.
    pub cc_ok: bool,
    pub components: usize,
    /// Event-time high-water mark at the end of the run (min-merged
    /// across shards when sharded).
    pub final_watermark: SimTime,
    /// FNV-1a fold of the final adjacency lists, degree bits, rank bits
    /// and component labels — bit-identical across shard counts.
    pub state_digest: u64,
    /// Wall-clock ingest + maintain + swap throughput.
    pub events_per_sec: f64,
    /// Wall-clock cost of each delta swap, milliseconds.
    pub swap_walls_ms: Vec<f64>,
    /// Wall-clock cost of a full refresh (export every object + cold
    /// load), for comparison.
    pub full_reload_ms: f64,
}

impl StreamRepro {
    pub fn mean_swap_ms(&self) -> f64 {
        if self.swap_walls_ms.is_empty() {
            0.0
        } else {
            self.swap_walls_ms.iter().sum::<f64>() / self.swap_walls_ms.len() as f64
        }
    }

    pub fn skipped_total(&self) -> u64 {
        self.skipped_dup_adds + self.skipped_missing_removes
    }
}

fn se(e: impl std::fmt::Display) -> CoreError {
    CoreError::Invalid(format!("stream: {e}"))
}

/// One or many writers behind a common surface: `Single` is the
/// reference path (one mailbox, one watermark, the driver's clock);
/// `Sharded` routes by edge owner and drains all shards as one logical
/// batch on per-shard clocks.
enum Ingest {
    Single(Ingestor),
    Sharded(ShardedIngestor),
}

impl Ingest {
    fn create(
        ps: &std::sync::Arc<Ps>,
        cfg: &IngestConfig,
        n: u64,
        shards: usize,
    ) -> Result<Ingest, CoreError> {
        Ok(if shards <= 1 {
            Ingest::Single(Ingestor::create(ps, cfg, n).map_err(se)?)
        } else {
            Ingest::Sharded(ShardedIngestor::create(ps, cfg, n, shards).map_err(se)?)
        })
    }

    fn bootstrap(&self, client: &NodeClock, edges: &[(u64, u64)]) -> Result<(), CoreError> {
        match self {
            Ingest::Single(i) => i.bootstrap(client, edges).map_err(se),
            Ingest::Sharded(s) => s.bootstrap(client, edges).map_err(se),
        }
    }

    fn adjacency(&self) -> &NeighborTableHandle {
        match self {
            Ingest::Single(i) => &i.adjacency,
            Ingest::Sharded(s) => s.adjacency(),
        }
    }

    fn degrees(&self) -> &VectorHandle<f64> {
        match self {
            Ingest::Single(i) => &i.degrees,
            Ingest::Sharded(s) => s.degrees(),
        }
    }

    fn offer(&mut self, from: NodeId, ev: EdgeEvent) -> bool {
        match self {
            Ingest::Single(i) => i.offer(from, ev),
            Ingest::Sharded(s) => s.offer(from, ev),
        }
    }

    fn drain(&mut self, client: &NodeClock) -> Result<BatchEffect, CoreError> {
        match self {
            Ingest::Single(i) => i.apply_pending(client).map_err(se),
            Ingest::Sharded(s) => s.drain_all().map_err(se),
        }
    }

    fn watermark(&self) -> SimTime {
        match self {
            Ingest::Single(i) => i.watermark(),
            Ingest::Sharded(s) => s.watermark(),
        }
    }

    fn stats(&self) -> IngestStats {
        match self {
            Ingest::Single(i) => i.stats(),
            Ingest::Sharded(s) => s.stats(),
        }
    }
}

/// The PS state at the instant of the last publish — what the serving
/// tier must answer with until the next swap.
struct Mirror {
    ranks: Vec<f64>,
    labels: Vec<u64>,
    adj: Vec<Vec<u64>>,
}

fn capture(
    client: &NodeClock,
    adjacency: &NeighborTableHandle,
    pr: &IncrementalPageRank,
    st: &PrState,
    cc: &IncrementalCc,
    n: u64,
) -> Result<Mirror, CoreError> {
    let ranks = pr.ranks(st, client)?;
    let ids: Vec<u64> = (0..n).collect();
    let adj = adjacency.pull(client, &ids)?.into_iter().map(|l| l.to_vec()).collect();
    Ok(Mirror { ranks, labels: cc.labels().to_vec(), adj })
}

fn answer_matches(query: &Query, value: &Value, m: &Mirror) -> bool {
    match (query, value) {
        (Query::Rank(v), Value::Rank(r)) => r.to_bits() == m.ranks[*v as usize].to_bits(),
        (Query::Community(v), Value::Community(c)) => *c == m.labels[*v as usize],
        (Query::Neighbors(v), Value::Neighbors(ns)) => ns == &m.adj[*v as usize],
        _ => false,
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Bit-exact fold of the final streamed state: adjacency lists (length +
/// neighbors per source, in source order), degree bits, rank bits,
/// component labels. Two runs produced identical PS state iff their
/// digests match.
fn state_digest(
    client: &NodeClock,
    adjacency: &NeighborTableHandle,
    degrees: &VectorHandle<f64>,
    ranks: &[f64],
    labels: &[u64],
    n: u64,
) -> Result<u64, CoreError> {
    let ids: Vec<u64> = (0..n).collect();
    let lists = adjacency.pull(client, &ids)?;
    let degs = degrees.pull(client, &ids)?;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for l in &lists {
        fnv1a(&mut h, &(l.len() as u64).to_le_bytes());
        for &d in l.iter() {
            fnv1a(&mut h, &d.to_le_bytes());
        }
    }
    for &d in &degs {
        fnv1a(&mut h, &d.to_bits().to_le_bytes());
    }
    for &r in ranks {
        fnv1a(&mut h, &r.to_bits().to_le_bytes());
    }
    for &l in labels {
        fnv1a(&mut h, &l.to_le_bytes());
    }
    Ok(h)
}

/// Export everything dirtied since the last swap, install it on the live
/// tier, settle the freshness accounting for the batches it published,
/// and re-capture the serving-truth mirror. Returns `None` when the
/// driver skipped the swap because nothing was dirty — the tier (and the
/// mirror) are unchanged and pending batches stay pending.
#[allow(clippy::too_many_arguments)]
fn publish(
    driver: &mut RefreshDriver,
    dfs: &Dfs,
    client: &NodeClock,
    cluster: &mut ServeCluster,
    ingest: &Ingest,
    pr: &IncrementalPageRank,
    pr_state: &PrState,
    cc: &IncrementalCc,
    n: u64,
    effective_batches: usize,
    pending: &mut Vec<(usize, SimTime)>,
    lags: &mut Vec<SimTime>,
    max_batches_to_publish: &mut usize,
    walls_ms: &mut Vec<f64>,
) -> Result<Option<Mirror>, CoreError> {
    let t0 = Instant::now();
    let rec = driver
        .refresh(
            dfs,
            client,
            cluster,
            &pr_state.ranks,
            &cc.labels,
            ingest.adjacency(),
            ingest.watermark(),
        )
        .map_err(se)?;
    let Some(rec) = rec else { return Ok(None) };
    walls_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    for (bi, wmark) in pending.drain(..) {
        lags.push(rec.at.saturating_sub(wmark));
        *max_batches_to_publish = (*max_batches_to_publish).max(effective_batches - bi);
    }
    capture(client, ingest.adjacency(), pr, pr_state, cc, n).map(Some)
}

fn percentile(sorted: &[SimTime], p: f64) -> SimTime {
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Bootstrap DS3′ at `scale`, serve it, then stream `total_events` drift
/// events through micro-batches with periodic delta hot-swaps —
/// single-ingestor reference path (`shards = 1`).
pub fn run_stream(scale: f64, total_events: usize) -> Result<StreamRepro, CoreError> {
    run_stream_with(scale, total_events, 1)
}

/// [`run_stream`] with the event stream routed across `shards` ingestor
/// shards keyed by edge owner. `shards = 1` is the plain [`Ingestor`]
/// path; every shard count must end with the same `state_digest`.
pub fn run_stream_with(
    scale: f64,
    total_events: usize,
    shards: usize,
) -> Result<StreamRepro, CoreError> {
    let g = Dataset::Ds3.generate(scale).dedup();
    let n = g.num_vertices();
    let base_edges = g.edges().len();
    let ps = Ps::new(PsConfig::default());
    let dfs = Dfs::in_memory();
    let client = NodeClock::new();

    // Mutable ingest state + incremental maintainers, converged on the
    // base graph.
    let icfg = IngestConfig { prefix: "stream".into(), mailbox_cap: BATCH };
    let mut ingest = Ingest::create(&ps, &icfg, n, shards)?;
    ingest.bootstrap(&client, g.edges())?;
    let pr = IncrementalPageRank::default();
    let mut pr_state = pr.create_state(&ps, "stream.pr", n)?;
    pr.init_full(&mut pr_state, &client, ingest.adjacency())?;
    let mut cc = IncrementalCc::create(&ps, "stream.cc", n)?;
    cc.bootstrap(&client, ingest.adjacency())?;

    // Snapshot the trained state and bring up the serving tier over it.
    let mut w = SnapshotWriter::new(&dfs, "/stream/snapshot", &client);
    w.vector_f64(&pr_state.ranks)?;
    w.vector_u64(&cc.labels)?;
    w.neighbor_table(ingest.adjacency())?;
    let manifest = w.finish()?;
    let objects = ObjectMap {
        ranks: Some("stream.pr.ranks".into()),
        communities: Some("stream.cc.labels".into()),
        embeddings: None,
        adjacency: Some("stream.adj".into()),
    };
    let scfg = ServeConfig::default();
    let mut cluster =
        ServeCluster::load(&dfs, "/stream/snapshot", &objects, &scfg, &client).map_err(se)?;
    let rcfg = RefreshConfig::default();
    let swap_every = rcfg.swap_every_batches;
    let mut driver = RefreshDriver::new("/stream/snapshot", manifest, rcfg);
    let mut mirror = capture(&client, ingest.adjacency(), &pr, &pr_state, &cc, n)?;

    // The drifting event source, seeded with the base edge set so
    // removals can name live edges from the start.
    let drift = DriftRmat {
        num_vertices: n,
        remove_fraction: 0.25,
        seed: 0xD51F,
        ..DriftRmat::default()
    };
    let mut source = drift.start(g.edges());
    let expected_interval =
        SimTime::from_secs_f64(swap_every as f64 * BATCH as f64 / drift.events_per_sec);
    let freshness_bound = expected_interval.scale(2.0);

    let mut rng = SplitMix64::new(0xBEEF);
    let mut pending: Vec<(usize, SimTime)> = Vec::new();
    let mut lags: Vec<SimTime> = Vec::new();
    let mut max_batches_to_publish = 0usize;
    let mut swap_walls_ms: Vec<f64> = Vec::new();
    let mut queries = 0usize;
    let mut answered = 0usize;
    let mut wrong = 0usize;
    let mut batches = 0usize;
    let mut effective_batches = 0usize;
    let mut emitted = 0usize;

    let ingest_t0 = Instant::now();
    while emitted < total_events {
        let take = BATCH.min(total_events - emitted);
        for _ in 0..take {
            let ev = source.next_event();
            assert!(ingest.offer(NodeId::Driver, ev), "mailboxes sized to the batch");
        }
        emitted += take;

        let fx = ingest.drain(&client)?;
        let effective = !fx.effects.is_empty();
        pr.on_batch(&mut pr_state, &client, &fx.effects)?;
        pr.propagate(&mut pr_state, &client, ingest.adjacency())?;
        cc.on_batch(&client, &fx.applied, ingest.adjacency())?;
        batches += 1;
        if effective {
            pending.push((effective_batches, fx.watermark));
            effective_batches += 1;
        }

        if driver.tick(effective) {
            if let Some(m) = publish(
                &mut driver,
                &dfs,
                &client,
                &mut cluster,
                &ingest,
                &pr,
                &pr_state,
                &cc,
                n,
                effective_batches,
                &mut pending,
                &mut lags,
                &mut max_batches_to_publish,
                &mut swap_walls_ms,
            )? {
                mirror = m;
            }
        }

        // Interleaved queries, verified against the swap-time truth.
        for _ in 0..QUERIES_PER_BATCH {
            let v = rng.next_below(n);
            let q = match rng.next_below(3) {
                0 => Query::Rank(v),
                1 => Query::Community(v),
                _ => Query::Neighbors(v),
            };
            let at = client.now();
            for (_, outcome) in cluster.frontend_mut().execute_now(queries, at, q) {
                if let Outcome::Answered { value, .. } = outcome {
                    answered += 1;
                    if !answer_matches(&q, &value, &mirror) {
                        wrong += 1;
                    }
                }
            }
            queries += 1;
        }
    }
    // Publish the tail so the tier ends bit-identical to the PS.
    if driver.batches_since_swap() > 0 {
        if let Some(m) = publish(
            &mut driver,
            &dfs,
            &client,
            &mut cluster,
            &ingest,
            &pr,
            &pr_state,
            &cc,
            n,
            effective_batches,
            &mut pending,
            &mut lags,
            &mut max_batches_to_publish,
            &mut swap_walls_ms,
        )? {
            mirror = m;
        }
    }
    let ingest_wall = ingest_t0.elapsed();
    let events_per_sec = emitted as f64 / ingest_wall.as_secs_f64().max(1e-9);
    drop(mirror);

    // Incremental vs from-scratch: PageRank within 1e-6 L∞, components
    // equal to the reference labels of the live edge set.
    let mut full = pr.create_state(&ps, "stream.fullck", n)?;
    pr.init_full(&mut full, &client, ingest.adjacency())?;
    let inc = pr.ranks(&pr_state, &client)?;
    let fr = pr.ranks(&full, &client)?;
    let pr_linf =
        inc.iter().zip(&fr).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);

    let ids: Vec<u64> = (0..n).collect();
    let lists = ingest.adjacency().pull(&client, &ids)?;
    let mut live = Vec::new();
    for (s, l) in lists.iter().enumerate() {
        for &d in l.iter() {
            live.push((s as u64, d));
        }
    }
    let live_edges = live.len();
    let truth = metrics::connected_components(&EdgeList::new(n, live));
    let cc_ok = cc.labels() == truth.as_slice();
    let components = {
        let mut u = truth;
        u.sort_unstable();
        u.dedup();
        u.len()
    };
    let digest = state_digest(&client, ingest.adjacency(), ingest.degrees(), &inc, cc.labels(), n)?;

    // Swap cost vs a full refresh of the same final state. Both sides
    // include their export: the delta path exports dirty partitions and
    // installs a patch; the full path re-exports every object and cold
    // loads the tier.
    let reload_t0 = Instant::now();
    let mut fw = SnapshotWriter::new(&dfs, "/stream/full", &client);
    fw.vector_f64(&pr_state.ranks)?;
    fw.vector_u64(&cc.labels)?;
    fw.neighbor_table(ingest.adjacency())?;
    fw.finish()?;
    let reload = ServeCluster::load(&dfs, "/stream/full", &objects, &scfg, &client).map_err(se)?;
    let full_reload_ms = reload_t0.elapsed().as_secs_f64() * 1e3;
    drop(reload);

    lags.sort_unstable();
    let stats = ingest.stats();
    Ok(StreamRepro {
        num_vertices: n,
        base_edges,
        shards: shards.max(1),
        events: emitted,
        batches,
        applied_adds: stats.applied_adds,
        applied_removes: stats.applied_removes,
        skipped_dup_adds: stats.skipped_dup_adds,
        skipped_missing_removes: stats.skipped_missing_removes,
        live_edges,
        swaps: driver.swaps().len(),
        dirty_partitions: driver.swaps().iter().map(|s| s.dirty_partitions).sum(),
        swap_every_batches: swap_every,
        max_batches_to_publish,
        freshness_p50: percentile(&lags, 0.50),
        freshness_p99: percentile(&lags, 0.99),
        freshness_max: lags.last().copied().unwrap_or(SimTime::ZERO),
        freshness_bound,
        queries,
        answered,
        wrong,
        pr_linf,
        cc_ok,
        components,
        final_watermark: ingest.watermark(),
        state_digest: digest,
        events_per_sec,
        swap_walls_ms,
        full_reload_ms,
    })
}

/// Render the streaming table.
pub fn table(r: &StreamRepro) -> Table {
    let mut t = Table::new(
        "Streaming — DS3′ base, drift-RMAT events, delta hot-swap refresh",
        &["measured"],
    );
    let text = |s: String| vec![Cell::Text(s)];
    t.push(Row::new("vertices / base edges", text(format!("{} / {}", r.num_vertices, r.base_edges))));
    t.push(Row::new("ingestor shards", text(r.shards.to_string())));
    t.push(Row::new(
        format!("events streamed ({} batches of ≤{BATCH})", r.batches),
        text(r.events.to_string()),
    ));
    t.push(Row::new(
        "applied adds / removes",
        text(format!("{} / {}", r.applied_adds, r.applied_removes)),
    ));
    t.push(Row::new(
        "skipped dup adds / missing removes",
        text(format!("{} / {}", r.skipped_dup_adds, r.skipped_missing_removes)),
    ));
    t.push(Row::new("live edges at end", text(r.live_edges.to_string())));
    t.push(Row::new(
        format!("delta hot-swaps (every {} batches)", r.swap_every_batches),
        text(format!("{} ({} dirty partitions)", r.swaps, r.dirty_partitions)),
    ));
    t.push(Row::new(
        "batches until published (worst)",
        text(r.max_batches_to_publish.to_string()),
    ));
    t.push(Row::new(
        "freshness lag p50 / p99 / max",
        text(format!("{} / {} / {}", r.freshness_p50, r.freshness_p99, r.freshness_max)),
    ));
    t.push(Row::new("freshness bound (2× swap interval)", text(r.freshness_bound.to_string())));
    t.push(Row::new(
        "queries issued / answered",
        text(format!("{} / {}", r.queries, r.answered)),
    ));
    t.push(Row::new("wrong answers", text(r.wrong.to_string())));
    t.push(Row::new("incremental PageRank L∞ vs recompute", text(format!("{:.2e}", r.pr_linf))));
    t.push(Row::new(
        "components (labels match reference)",
        text(format!("{} ({})", r.components, if r.cc_ok { "yes" } else { "NO" })),
    ));
    t.push(Row::new("event-time watermark", text(r.final_watermark.to_string())));
    t.push(Row::new("final state digest", text(format!("{:016x}", r.state_digest))));
    t.push(Row::new("ingest throughput (wall)", text(format!("{:.0} events/s", r.events_per_sec))));
    t.push(Row::new(
        "swap cost (wall, mean) vs full refresh",
        text(format!("{:.2} ms vs {:.2} ms", r.mean_swap_ms(), r.full_reload_ms)),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_repro_stays_fresh_and_correct() {
        let r = run_stream(0.02, 5_000).expect("stream repro must run");
        assert_eq!(r.wrong, 0, "served answers must match the swap-time PS state");
        assert!(r.answered > 0, "queries must be answered");
        assert!(r.swaps >= 2, "expected a scheduled swap plus the tail swap");
        assert!(r.pr_linf < 1e-6, "incremental PageRank drifted: L∞ {}", r.pr_linf);
        assert!(r.cc_ok, "incremental components diverged from the reference");
        assert!(
            r.max_batches_to_publish <= r.swap_every_batches,
            "a batch waited {} batches to publish, cadence is {}",
            r.max_batches_to_publish,
            r.swap_every_batches
        );
        assert!(
            r.freshness_max <= r.freshness_bound,
            "freshness lag {} exceeded bound {}",
            r.freshness_max,
            r.freshness_bound
        );
        assert!(r.applied_removes > 0, "the drift stream must remove edges");
        assert!(
            r.skipped_dup_adds > 0,
            "an RMAT stream must produce at-least-once duplicates"
        );
        assert!(table(&r).to_string().contains("freshness lag"));
    }

    #[test]
    fn sharded_stream_is_bit_identical_to_single_ingestor() {
        let single = run_stream_with(0.01, 2_000, 1).expect("reference run");
        let sharded = run_stream_with(0.01, 2_000, 4).expect("sharded run");
        assert_eq!(
            sharded.state_digest, single.state_digest,
            "sharded final PS state must be bit-identical to the reference"
        );
        assert_eq!(sharded.wrong, 0);
        assert_eq!(sharded.applied_adds, single.applied_adds);
        assert_eq!(sharded.applied_removes, single.applied_removes);
        assert_eq!(sharded.skipped_dup_adds, single.skipped_dup_adds);
        assert_eq!(sharded.skipped_missing_removes, single.skipped_missing_removes);
        assert_eq!(sharded.swaps, single.swaps);
        // Freshness is event-time, so it is shard-count-invariant too.
        assert_eq!(sharded.freshness_p99, single.freshness_p99);
        assert_eq!(sharded.final_watermark, single.final_watermark);
    }
}
