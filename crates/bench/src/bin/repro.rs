//! Regenerate every table and figure of the paper's evaluation (§V).
//!
//! ```text
//! cargo run -p psgraph-bench --release --bin repro -- [fig6|line|table1|table2|serve|stream|chaos|all] [--scale S] [--queries N] [--events N] [--shards N] [--seeds N] [--seed S] [--threads T]
//! ```
//!
//! Default scale is 0.05 (DS1′ = 10 k vertices / 137.5 k edges). Budgets
//! scale with the datasets per `deploy::ScaleRule`; reported times are
//! *simulated* cluster time (see DESIGN.md §2 "Simulated time").
//! `--queries` sizes the `serve` stream (default 100 000); `--events`
//! sizes the `stream` edge-event stream (default 50 000; the chaos soak
//! defaults to 12 000 per run unless `--events` is given explicitly);
//! `--shards` routes the stream across N owner-keyed ingestor shards
//! (default 1; with N > 1 the run also replays a single-ingestor
//! reference and asserts the final PS state digests are bit-identical);
//! `--seeds` sizes the chaos fault-schedule sweep (default 20) and
//! `--seed` replays exactly one failing schedule; `--threads` sizes the
//! global work-stealing pool (default: host parallelism; the simulated
//! times are thread-count-invariant, only wall clock changes).

use psgraph_bench::{chaos_exp, fig6, line_exp, query_exp, serve_exp, stream_exp, table1, table2};

/// First seed of the standard chaos sweep; sweep seed `i` is `BASE + i`,
/// so any failure is nameable (and replayable) as a single integer.
const CHAOS_SEED_BASE: u64 = 0xC0FFEE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 0.05f64;
    let mut queries = 100_000usize;
    let mut events = 50_000usize;
    let mut events_explicit = false;
    let mut shards = 1usize;
    let mut chaos_seeds = 20usize;
    let mut chaos_seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number");
            }
            "--queries" => {
                queries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--queries needs a count");
            }
            "--events" => {
                events = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--events needs a count");
                events_explicit = true;
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--shards needs a count");
                assert!(shards > 0, "--shards must be positive");
            }
            "--seeds" => {
                chaos_seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds needs a count");
                assert!(chaos_seeds > 0, "--seeds must be positive");
            }
            "--seed" => {
                chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs a schedule seed"),
                );
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a count");
                assert!(t > 0, "--threads must be positive");
                // Must happen before anything touches Pool::global().
                std::env::set_var("POOL_THREADS", t.to_string());
            }
            other => which = other.to_string(),
        }
    }
    assert!(scale > 0.0, "scale must be positive");
    assert!(queries > 0, "queries must be positive");
    assert!(events > 0, "events must be positive");
    println!("psgraph repro — scale {scale} (DS1′ = {} vertices / {} edges)\n",
        psgraph_graph::Dataset::Ds1.spec(scale).vertices,
        psgraph_graph::Dataset::Ds1.spec(scale).edges);

    let do_all = which == "all";
    if do_all || which == "fig6" {
        let t0 = std::time::Instant::now();
        let cells = fig6::run_fig6(scale).expect("fig6");
        println!("{}", fig6::table(&cells));
        println!("(fig6 wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "line" {
        let t0 = std::time::Instant::now();
        let r = line_exp::run_line(scale).expect("line");
        println!("{}", line_exp::table(&r));
        println!("(line wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "table1" {
        let t0 = std::time::Instant::now();
        let r = table1::run_table1(scale).expect("table1");
        println!("{}", table1::table(&r));
        println!("(table1 wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "table2" {
        let t0 = std::time::Instant::now();
        let r = table2::run_table2(scale).expect("table2");
        println!("{}", table2::table(&r));
        println!("(table2 wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "serve" {
        let t0 = std::time::Instant::now();
        let r = serve_exp::run_serve(scale, queries).expect("serve");
        println!("{}", serve_exp::table(&r));
        assert_eq!(r.wrong, 0, "serving returned wrong answers");
        assert_eq!(r.stale, 0, "stale cached answers survived the hot-swap");
        assert!(
            r.rejoined_at > psgraph_sim::SimTime::ZERO,
            "the killed replica never rejoined"
        );
        assert_eq!(r.live_replicas, 4, "a replica was still down at the end");
        assert!(
            r.p99_post_rejoin <= r.p99_pre_kill.scale(2.0),
            "p99 after rejoin ({}) did not recover to within 2x of pre-kill ({})",
            r.p99_post_rejoin,
            r.p99_pre_kill
        );
        println!("(serve wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "query" {
        let t0 = std::time::Instant::now();
        let r = query_exp::run_query(scale, queries).expect("query");
        println!("{}", query_exp::table(&r));
        assert_eq!(r.wrong, 0, "a served plan or query diverged from the interpreter");
        assert!(r.plans_answered > 0, "the mixed workload answered no compound plans");
        assert!(
            r.auto.counters.pushed_plans > 0,
            "the cost-based planner never pushed a stage prefix"
        );
        assert!(
            r.auto.counters.shard_bytes < r.frontend_only.counters.shard_bytes,
            "pushdown must move strictly fewer shard→frontend bytes ({} vs {})",
            r.auto.counters.shard_bytes,
            r.frontend_only.counters.shard_bytes
        );
        match query_exp::write_report(&r) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write BENCH_query.json: {e}"),
        }
        println!("(query wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "stream" {
        let t0 = std::time::Instant::now();
        let r = stream_exp::run_stream_with(scale, events, shards).expect("stream");
        println!("{}", stream_exp::table(&r));
        if shards > 1 {
            let reference = stream_exp::run_stream(scale, events).expect("stream reference");
            assert_eq!(
                r.state_digest, reference.state_digest,
                "sharded final PS state diverged from the single-ingestor reference"
            );
        }
        assert_eq!(r.wrong, 0, "served answers diverged from the swap-time PS state");
        assert!(r.swaps >= 1, "at least one delta hot-swap must run");
        assert!(
            r.pr_linf < 1e-6,
            "incremental PageRank drifted from a full recompute: L∞ {}",
            r.pr_linf
        );
        assert!(r.cc_ok, "incremental components diverged from the reference");
        assert!(
            r.max_batches_to_publish <= r.swap_every_batches,
            "a micro-batch waited {} batches to publish, cadence is {}",
            r.max_batches_to_publish,
            r.swap_every_batches
        );
        assert!(
            r.freshness_max <= r.freshness_bound,
            "freshness lag {} exceeded the swap-interval bound {}",
            r.freshness_max,
            r.freshness_bound
        );
        println!("(stream wall clock: {:?})\n", t0.elapsed());
    }
    if do_all || which == "chaos" {
        let t0 = std::time::Instant::now();
        // A full event stream per seeded run is overkill for fault
        // coverage; soak a shorter stream per schedule unless the caller
        // sized it explicitly.
        let chaos_events = if events_explicit { events } else { 12_000.min(events) };
        let seeds: Vec<u64> = match chaos_seed {
            Some(s) => vec![s],
            None => (0..chaos_seeds as u64).map(|i| CHAOS_SEED_BASE + i).collect(),
        };
        let r = chaos_exp::run_chaos(scale, chaos_events, &seeds).expect("chaos");
        println!("{}", chaos_exp::table(&r));
        match chaos_exp::write_report(&r) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write BENCH_chaos.json: {e}"),
        }
        let replay = |seed: u64| chaos_exp::replay_command(seed, scale, chaos_events);
        if let Some(bad) = r.seeds.iter().find(|s| s.wrong > 0) {
            panic!(
                "chaos seed {} served {} wrong answers — replay with:\n  {}",
                bad.seed,
                bad.wrong,
                replay(bad.seed)
            );
        }
        if let Some(&seed) = r.mismatched_seeds().first() {
            panic!(
                "chaos seed {seed} ended with PS state diverging from the fault-free run — replay with:\n  {}",
                replay(seed)
            );
        }
        if let Some(&seed) = r.freshness_violations().first() {
            panic!(
                "chaos seed {seed} exceeded the freshness bound — replay with:\n  {}",
                replay(seed)
            );
        }
        assert!(
            r.seeds.iter().any(|s| s.ps_crashes > 0),
            "the sweep never drew a PS crash — widen the seed set"
        );
        assert!(
            r.seeds.iter().any(|s| s.compound_answered > 0),
            "the soak never served a compound plan — widen the query mix"
        );
        println!("(chaos wall clock: {:?})\n", t0.elapsed());
    }
}
