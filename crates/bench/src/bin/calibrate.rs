#![allow(clippy::type_complexity)]
//! Calibration probe: run every Fig. 6 workload on *unbounded* clusters
//! and report peak executor/server memory per edge, plus simulated
//! runtimes. Used to pick `JVM_EXPANSION` and validate that the paper's
//! OOM pattern is achievable from one global rule (see EXPERIMENTS.md).

use std::sync::Arc;

use psgraph_bench::deploy::{graphx_unbounded, psgraph_unbounded, SIM_EXECUTORS};
use psgraph_core::algos::{CommonNeighbor, FastUnfolding, KCore, PageRank, TriangleCount};
use psgraph_core::runner::distribute_edges;
use psgraph_graph::Dataset;
use psgraph_graphx::{
    gx_common_neighbor, gx_fast_unfolding, gx_kcore, gx_pagerank, gx_triangle_count, GxGraph,
};

fn peak_exec(cluster: &Arc<psgraph_dataflow::Cluster>) -> u64 {
    (0..cluster.num_executors())
        .map(|i| cluster.executor(i).memory().peak())
        .max()
        .unwrap_or(0)
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    for ds in [Dataset::Ds1, Dataset::Ds2] {
        let g = ds.generate(scale);
        let edges_per_exec = g.num_edges() as f64 / SIM_EXECUTORS as f64;
        println!(
            "=== {ds} scale {scale}: {} vertices, {} edges ({edges_per_exec:.0} edges/exec)",
            g.num_vertices(),
            g.num_edges()
        );

        // GraphX probes.
        let probes: Vec<(&str, Box<dyn Fn(&GxGraph)>)> = vec![
            ("gx-pagerank", Box::new(|gx: &GxGraph| {
                gx_pagerank(gx, 0.85, 10).unwrap();
            })),
            ("gx-cn", Box::new(|gx: &GxGraph| {
                gx_common_neighbor(gx).unwrap();
            })),
            ("gx-fu", Box::new(|gx: &GxGraph| {
                gx_fast_unfolding(gx, 2, 3).unwrap();
            })),
            ("gx-kcore", Box::new(|gx: &GxGraph| {
                gx_kcore(gx, 10).unwrap();
            })),
            ("gx-tc", Box::new(|gx: &GxGraph| {
                gx_triangle_count(gx).unwrap();
            })),
        ];
        for (name, run) in probes {
            if ds == Dataset::Ds2 && (name == "gx-fu" || name == "gx-kcore" || name == "gx-tc" || name == "gx-cn") {
                continue; // paper only runs PR + CN on DS2; CN's unbounded
                          // probe would exhaust host memory (it OOMs under
                          // any realistic budget — see fig6).
            }
            let c = graphx_unbounded();
            let gx = GxGraph::from_edgelist(&c, &g, SIM_EXECUTORS * 6).unwrap();
            let t0 = std::time::Instant::now();
            run(&gx);
            let peak = peak_exec(&c);
            println!(
                "  {name:12} peak/exec {:>12} B  ({:>6.1} B/edge-share)  sim {:>10}  wall {:?}",
                peak,
                peak as f64 / edges_per_exec / 2.0,
                c.now(),
                t0.elapsed()
            );
        }

        // PSGraph probes.
        let psg: Vec<(&str, Box<dyn Fn(&Arc<psgraph_core::PsGraphContext>, &psgraph_dataflow::Rdd<(u64, u64)>, u64)>)> = vec![
            ("ps-pagerank", Box::new(|ctx, e, n| {
                PageRank { max_iterations: 10, ..Default::default() }.run(ctx, e, n).unwrap();
            })),
            ("ps-cn", Box::new(|ctx, e, n| {
                CommonNeighbor::default().run(ctx, e, n).unwrap();
            })),
            ("ps-fu", Box::new(|ctx, e, n| {
                FastUnfolding { max_passes: 2, max_sweeps: 3, ..Default::default() }
                    .run_unweighted(ctx, e, n)
                    .unwrap();
            })),
            ("ps-kcore", Box::new(|ctx, e, n| {
                KCore { max_iterations: 30 }.run(ctx, e, n).unwrap();
            })),
            ("ps-tc", Box::new(|ctx, e, n| {
                TriangleCount::default().run(ctx, e, n).unwrap();
            })),
        ];
        for (name, run) in psg {
            if ds == Dataset::Ds2 && (name == "ps-fu" || name == "ps-kcore" || name == "ps-tc") {
                continue;
            }
            let ctx = psgraph_unbounded();
            let edges = distribute_edges(&ctx, &g, SIM_EXECUTORS * 6).unwrap();
            let t0 = std::time::Instant::now();
            run(&ctx, &edges, g.num_vertices());
            let peak = peak_exec(ctx.cluster());
            let ps_peak: u64 = (0..ctx.ps().num_servers())
                .map(|i| ctx.ps().server(i).memory().peak())
                .max()
                .unwrap_or(0);
            println!(
                "  {name:12} peak/exec {:>12} B ({:>6.1} B/edge-share) ps {:>10} B  sim {:>10}  wall {:?}",
                peak,
                peak as f64 / edges_per_exec / 2.0,
                ps_peak,
                ctx.now(),
                t0.elapsed()
            );
        }
    }
}
