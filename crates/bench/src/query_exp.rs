//! Declarative query-plan experiment: mixed compound-plan serving with
//! every answer checked against the single-node interpreter, plus the
//! pushdown ablation (`PushPolicy::Auto` vs `FrontendOnly`) the
//! cost-based planner is judged by.
//!
//! Two legs:
//!
//! 1. **Mixed correctness** — a Zipf workload blending every legacy
//!    query shape with compound plans (including the full
//!    filter → expand → score → top-k pipeline) against a synthetic
//!    random graph. Every answered legacy query is verified against the
//!    frontend `reference` oracle and every answered plan bit-exactly
//!    against [`Interpreter`]; `wrong` must be 0.
//! 2. **Pushdown ablation** — the same plan-only workload replayed on
//!    two fresh clusters differing only in push policy. Answers must be
//!    identical, and the `Auto` leg must move strictly fewer bytes
//!    shard→frontend than the frontend-only baseline.
//!
//! `repro -- query` drives both and `write_report` lands the result in
//! `results/BENCH_query.json`.

use psgraph_core::truth::TruthBuilder;
use psgraph_core::CoreError;
use psgraph_harness::json::Json;
use psgraph_serve::loadgen::{self, LoadReport};
use psgraph_serve::{
    reference, ExpandMode, Interpreter, Mode, Plan, PlanCounters, PlanOutput, Pred, PushPolicy,
    Query, QueryMix, Scorer, ServeCluster, ServeConfig, Source, Stage, Value, Workload,
};
use psgraph_sim::failpoint::FailureInjector;
use psgraph_sim::{SimTime, SplitMix64};

use crate::report::{Cell, Row, Table};

/// Embedding width of the synthetic graph.
const QUERY_DIM: usize = 16;

/// One ablation leg's measurements.
#[derive(Debug, Clone)]
pub struct AblationLeg {
    pub counters: PlanCounters,
    pub answered: usize,
    pub p50: SimTime,
    pub p99: SimTime,
}

/// What `repro -- query` reports.
#[derive(Debug, Clone)]
pub struct QueryRepro {
    pub num_vertices: u64,
    pub dim: usize,
    pub shards: usize,
    pub queries: usize,
    pub answered: usize,
    pub shed: usize,
    pub failed: usize,
    /// Answered compound plans in the mixed leg.
    pub plans_answered: usize,
    /// Answers (legacy or plan) that did not match their oracle. Must
    /// be 0.
    pub wrong: usize,
    /// Plan-executor counters for the mixed leg.
    pub mixed: PlanCounters,
    /// Ablation: cost-based pushdown.
    pub auto: AblationLeg,
    /// Ablation: everything evaluated at the frontend.
    pub frontend_only: AblationLeg,
}

/// Synthetic truth arrays: grid-valued embeddings (multiples of 0.25,
/// so `0.0 + x` round-trips bit-exactly through the PS load path) and
/// sorted, deduplicated adjacency (what the CSR snapshot stores).
fn synth_graph(n: u64, seed: u64) -> (Vec<f64>, Vec<u64>, Vec<Vec<u64>>, Vec<Vec<f32>>) {
    let mut rng = SplitMix64::new(seed);
    let ranks: Vec<f64> = (0..n).map(|_| rng.next_below(1_000) as f64 / 1_000.0).collect();
    let communities: Vec<u64> = (0..n).map(|_| rng.next_below(16)).collect();
    let adjacency: Vec<Vec<u64>> = (0..n)
        .map(|_| {
            let deg = 1 + rng.next_below(6) as usize;
            let mut ns: Vec<u64> = (0..deg).map(|_| rng.next_below(n)).collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        })
        .collect();
    let embeddings: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..QUERY_DIM).map(|_| (rng.next_below(9) as f32 - 4.0) * 0.25).collect()
        })
        .collect();
    (ranks, communities, adjacency, embeddings)
}

/// The compound shapes the mixed leg draws (re-anchored per query).
/// The first is the full filter → expand → score → top-k pipeline.
fn mixed_palette() -> Vec<Plan> {
    vec![
        Plan {
            source: Source::Seed(0),
            stages: vec![
                Stage::Filter(Pred::DegreeAtLeast(1)),
                Stage::Expand { hops: 2, cap: 4096, mode: ExpandMode::Frontier },
                Stage::Score(Scorer::Dot(0)),
                Stage::TopK(8),
            ],
        },
        Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::CommunityEq(3)),
                Stage::Score(Scorer::Rank),
                Stage::TopK(8),
            ],
        },
        Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::RankAtLeast(0.5)),
                Stage::Collect { cap: 32 },
            ],
        },
        Plan {
            source: Source::Seed(0),
            stages: vec![
                Stage::Expand { hops: 1, cap: 4096, mode: ExpandMode::Union },
                Stage::Score(Scorer::Degree),
                Stage::TopK(4),
            ],
        },
        Plan {
            source: Source::All,
            stages: vec![Stage::Score(Scorer::Dot(0)), Stage::TopK(8)],
        },
    ]
}

/// All-source shapes only: the ablation isolates pushdown, and seed
/// plans are refused by the planner under either policy.
fn ablation_palette() -> Vec<Plan> {
    vec![
        Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::CommunityEq(3)),
                Stage::Score(Scorer::Rank),
                Stage::TopK(8),
            ],
        },
        Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::RankAtLeast(0.5)),
                Stage::Collect { cap: 32 },
            ],
        },
        Plan {
            source: Source::All,
            stages: vec![Stage::Score(Scorer::Dot(0)), Stage::TopK(8)],
        },
        Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::DegreeAtLeast(2)),
                Stage::Filter(Pred::CommunityNe(0)),
                Stage::Score(Scorer::Rank),
                Stage::TopK(16),
            ],
        },
    ]
}

/// Does a plan's served value match the interpreter's output bit for
/// bit?
fn plan_matches(value: &Value, want: &PlanOutput) -> bool {
    match (value, want) {
        (Value::Vertices(got), PlanOutput::Vertices(w)) => got == w,
        (Value::Ranked(got), PlanOutput::Ranked(w)) => {
            got.len() == w.len()
                && got
                    .iter()
                    .zip(w)
                    .all(|((gv, gs), (wv, ws))| gv == wv && gs.to_bits() == ws.to_bits())
        }
        _ => false,
    }
}

fn cluster(
    arrays: &(Vec<f64>, Vec<u64>, Vec<Vec<u64>>, Vec<Vec<f32>>),
    shards: usize,
    push: PushPolicy,
) -> Result<ServeCluster, psgraph_serve::ServeError> {
    let (ranks, communities, adjacency, embeddings) = arrays;
    let cfg = ServeConfig { shards, push, ..ServeConfig::default() };
    ServeCluster::from_arrays(
        Some(ranks),
        Some(communities),
        Some(adjacency),
        Some(embeddings),
        &cfg,
    )
}

/// Run both legs. `scale` sizes the synthetic graph like the other
/// experiments; `queries` sizes the mixed leg (the ablation replays a
/// tenth of it, clamped to [500, 5000]).
pub fn run_query(scale: f64, queries: usize) -> Result<QueryRepro, CoreError> {
    let n = ((16_384.0 * scale) as u64).max(512);
    let shards = 4usize;
    let arrays = synth_graph(n, 0xBEEF);
    let (ranks, communities, adjacency, embeddings) = &arrays;
    let truth = TruthBuilder::new(n)
        .ranks(ranks.clone())
        .communities(communities.clone())
        .adjacency(adjacency.clone())
        .embeddings(embeddings.clone())
        .build();
    let interp = Interpreter::new(&truth, shards);

    // Leg 1: mixed legacy + compound traffic, everything verified.
    let mut mixed_cluster =
        cluster(&arrays, shards, PushPolicy::Auto).map_err(|e| CoreError::Invalid(e.to_string()))?;
    let wl = Workload {
        queries,
        zipf_s: 1.0,
        seed: 11,
        mix: QueryMix {
            rank: 20,
            community: 10,
            embedding: 15,
            neighbors: 10,
            khop: 10,
            topk: 10,
            topk_all: 10,
            compound: 15,
        },
        plan_palette: mixed_palette(),
        ..Workload::default()
    };
    let report = loadgen::run(&mut mixed_cluster, &wl, &FailureInjector::none(), true);

    let mut wrong = 0usize;
    for (_, q, value) in &report.values {
        let ok = match (q, value) {
            (Query::Rank(v), Value::Rank(r)) => r.to_bits() == ranks[*v as usize].to_bits(),
            (Query::Community(v), Value::Community(c)) => *c == communities[*v as usize],
            (Query::Embedding(v), Value::Embedding(e)) => {
                e.iter()
                    .zip(&embeddings[*v as usize])
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && e.len() == embeddings[*v as usize].len()
            }
            (Query::Neighbors(v), Value::Neighbors(ns)) => ns == &adjacency[*v as usize],
            (Query::KHop { v, hops }, Value::Vertices(vs)) => {
                vs == &reference::khop(adjacency, *v, *hops)
            }
            (Query::TopK { v, k }, Value::Ranked(r)) => {
                let want = reference::topk(embeddings, adjacency, *v, *k, shards);
                plan_matches(&Value::Ranked(r.clone()), &PlanOutput::Ranked(want))
            }
            (Query::TopKAll { v, k }, Value::Ranked(r)) => {
                let want = reference::topk_all(embeddings, *v, *k);
                plan_matches(&Value::Ranked(r.clone()), &PlanOutput::Ranked(want))
            }
            _ => false,
        };
        if !ok {
            wrong += 1;
        }
    }
    for (_, plan, value) in &report.plans {
        match interp.run(plan) {
            Ok(want) => {
                if !plan_matches(value, &want) {
                    wrong += 1;
                }
            }
            Err(_) => wrong += 1,
        }
    }

    // Leg 2: plan-only ablation, closed-loop so admission never sheds
    // and both policies see the identical request stream.
    let leg_queries = (queries / 10).clamp(500, 5_000);
    let leg_wl = Workload {
        queries: leg_queries,
        zipf_s: 1.0,
        seed: 23,
        mix: QueryMix {
            rank: 0,
            community: 0,
            embedding: 0,
            neighbors: 0,
            khop: 0,
            topk: 0,
            topk_all: 0,
            compound: 1,
        },
        mode: Mode::Closed { workers: 1, think: SimTime::from_micros(100) },
        plan_palette: ablation_palette(),
        ..Workload::default()
    };
    let run_leg = |push: PushPolicy| -> Result<(AblationLeg, LoadReport), CoreError> {
        let mut c = cluster(&arrays, shards, push).map_err(|e| CoreError::Invalid(e.to_string()))?;
        let rep = loadgen::run(&mut c, &leg_wl, &FailureInjector::none(), true);
        assert_eq!(rep.shed, 0, "closed-loop ablation leg must not shed");
        assert_eq!(rep.failed, 0, "ablation leg must not fail");
        let leg = AblationLeg {
            counters: rep.plan_counters,
            answered: rep.answered,
            p50: rep.percentile(0.50),
            p99: rep.percentile(0.99),
        };
        Ok((leg, rep))
    };
    let (auto, auto_rep) = run_leg(PushPolicy::Auto)?;
    let (frontend_only, fo_rep) = run_leg(PushPolicy::FrontendOnly)?;
    assert_eq!(
        auto_rep.plans, fo_rep.plans,
        "pushdown changed plan answers — the deterministic-reduction rule is broken"
    );
    for (_, plan, value) in &auto_rep.plans {
        match interp.run(plan) {
            Ok(want) => {
                if !plan_matches(value, &want) {
                    wrong += 1;
                }
            }
            Err(_) => wrong += 1,
        }
    }

    Ok(QueryRepro {
        num_vertices: n,
        dim: QUERY_DIM,
        shards,
        queries,
        answered: report.answered,
        shed: report.shed,
        failed: report.failed,
        plans_answered: report.plans.len(),
        wrong,
        mixed: report.plan_counters,
        auto,
        frontend_only,
    })
}

/// Render the experiment table.
pub fn table(r: &QueryRepro) -> Table {
    let mut t = Table::new(
        "Query plans — compound serving vs interpreter, pushdown ablation",
        &["measured"],
    );
    let text = |s: String| vec![Cell::Text(s)];
    t.push(Row::new(
        "graph (vertices / dim / shards)",
        text(format!("{} / {} / {}", r.num_vertices, r.dim, r.shards)),
    ));
    t.push(Row::new(
        "mixed leg (answered / shed / failed)",
        text(format!("{} / {} / {}", r.answered, r.shed, r.failed)),
    ));
    t.push(Row::new("compound plans answered", text(format!("{}", r.plans_answered))));
    t.push(Row::new("wrong answers (must be 0)", text(format!("{}", r.wrong))));
    t.push(Row::new(
        "mixed pushdown (pushed / stages / bytes)",
        text(format!(
            "{} / {} / {}",
            r.mixed.pushed_plans, r.mixed.stages_pushed, r.mixed.shard_bytes
        )),
    ));
    t.push(Row::new(
        "mixed rows pruned (filter/score/topk/collect)",
        text(format!(
            "{} / {} / {} / {}",
            r.mixed.pruned_filter, r.mixed.pruned_score, r.mixed.pruned_topk,
            r.mixed.pruned_collect
        )),
    ));
    t.push(Row::new(
        "ablation shard→frontend bytes (auto vs frontend-only)",
        text(format!(
            "{} vs {} ({:.1}% of baseline)",
            r.auto.counters.shard_bytes,
            r.frontend_only.counters.shard_bytes,
            100.0 * r.auto.counters.shard_bytes as f64
                / r.frontend_only.counters.shard_bytes.max(1) as f64
        )),
    ));
    t.push(Row::new(
        "ablation p50 / p99 (auto)",
        text(format!("{} / {}", r.auto.p50, r.auto.p99)),
    ));
    t.push(Row::new(
        "ablation p50 / p99 (frontend-only)",
        text(format!("{} / {}", r.frontend_only.p50, r.frontend_only.p99)),
    ));
    t
}

fn counters_json(c: &PlanCounters) -> Json {
    Json::Obj(vec![
        ("plans".into(), Json::Int(c.plans as i64)),
        ("pushed_plans".into(), Json::Int(c.pushed_plans as i64)),
        ("stages_pushed".into(), Json::Int(c.stages_pushed as i64)),
        ("shard_bytes".into(), Json::Int(c.shard_bytes as i64)),
        ("pruned_filter".into(), Json::Int(c.pruned_filter as i64)),
        ("pruned_score".into(), Json::Int(c.pruned_score as i64)),
        ("pruned_topk".into(), Json::Int(c.pruned_topk as i64)),
        ("pruned_collect".into(), Json::Int(c.pruned_collect as i64)),
        ("rows_pruned".into(), Json::Int(c.rows_pruned() as i64)),
    ])
}

/// Write the experiment summary to `results/BENCH_query.json`.
pub fn write_report(r: &QueryRepro) -> std::io::Result<std::path::PathBuf> {
    let dir = psgraph_harness::bench::out_dir();
    std::fs::create_dir_all(&dir)?;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let leg = |l: &AblationLeg| {
        Json::Obj(vec![
            ("counters".into(), counters_json(&l.counters)),
            ("answered".into(), Json::Int(l.answered as i64)),
            ("p50_ns".into(), Json::Int(l.p50.as_nanos() as i64)),
            ("p99_ns".into(), Json::Int(l.p99.as_nanos() as i64)),
        ])
    };
    let json = Json::Obj(vec![
        ("group".into(), Json::str("query")),
        ("unit".into(), Json::str("ns")),
        ("timestamp_unix".into(), Json::Int(ts as i64)),
        ("num_vertices".into(), Json::Int(r.num_vertices as i64)),
        ("dim".into(), Json::Int(r.dim as i64)),
        ("shards".into(), Json::Int(r.shards as i64)),
        ("queries".into(), Json::Int(r.queries as i64)),
        ("answered".into(), Json::Int(r.answered as i64)),
        ("shed".into(), Json::Int(r.shed as i64)),
        ("failed".into(), Json::Int(r.failed as i64)),
        ("plans_answered".into(), Json::Int(r.plans_answered as i64)),
        ("wrong".into(), Json::Int(r.wrong as i64)),
        ("mixed".into(), counters_json(&r.mixed)),
        ("pushdown_auto".into(), leg(&r.auto)),
        ("frontend_only".into(), leg(&r.frontend_only)),
        (
            "pushdown_bytes_ratio".into(),
            Json::Float(
                r.auto.counters.shard_bytes as f64
                    / r.frontend_only.counters.shard_bytes.max(1) as f64,
            ),
        ),
    ]);
    let path = dir.join("BENCH_query.json");
    std::fs::write(&path, json.pretty())?;
    Ok(path)
}
