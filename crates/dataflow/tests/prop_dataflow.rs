//! Property tests for the dataflow engine, using the in-tree harness.

use psgraph_dataflow::{Cluster, Rdd};
use psgraph_harness::prop::{check, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};

#[test]
fn map_filter_composition_matches_vec_semantics() {
    check(
        "map_filter_composition_matches_vec_semantics",
        |src: &mut Source| {
            (src.vec_with(0, 200, |s| s.u64_range(0, 1000)), src.usize_range(1, 10))
        },
        |(data, parts)| {
            let cluster = Cluster::local();
            let rdd = Rdd::from_vec(&cluster, data.clone(), *parts).unwrap();
            let mut got = rdd
                .map(|&x| x * 3 + 1)
                .unwrap()
                .filter(|&x| x % 2 == 0)
                .unwrap()
                .collect()
                .unwrap();
            got.sort_unstable();
            let mut expected: Vec<u64> =
                data.iter().map(|&x| x * 3 + 1).filter(|&x| x % 2 == 0).collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
            Ok(())
        },
    );
}

#[test]
fn count_is_partition_count_invariant() {
    check(
        "count_is_partition_count_invariant",
        |src: &mut Source| {
            (
                src.vec_with(0, 300, |s| s.u64_range(0, 50)),
                src.usize_range(1, 12),
                src.usize_range(1, 12),
            )
        },
        |(data, p1, p2)| {
            let cluster = Cluster::local();
            let a = Rdd::from_vec(&cluster, data.clone(), *p1).unwrap();
            let b = Rdd::from_vec(&cluster, data.clone(), *p2).unwrap();
            prop_assert_eq!(a.count().unwrap(), data.len());
            prop_assert_eq!(b.count().unwrap(), data.len());
            Ok(())
        },
    );
}

#[test]
fn reduce_by_key_is_partition_count_invariant() {
    check(
        "reduce_by_key_is_partition_count_invariant",
        |src: &mut Source| {
            (
                src.vec_with(0, 150, |s| (s.u64_range(0, 10), s.u64_range(0, 100))),
                src.usize_range(1, 9),
                src.usize_range(1, 9),
            )
        },
        |(pairs, p1, p2)| {
            let cluster = Cluster::local();
            let run = |parts: usize| {
                let rdd = Rdd::from_vec(&cluster, pairs.clone(), parts).unwrap();
                let mut out =
                    rdd.reduce_by_key(parts, |a, b| a + b).unwrap().collect().unwrap();
                out.sort_unstable();
                out
            };
            let r1 = run(*p1);
            prop_assert_eq!(r1, run(*p2));
            prop_assert!(r1.len() <= pairs.len());
            Ok(())
        },
    );
}
