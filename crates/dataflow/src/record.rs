//! The [`Record`] trait: what can live inside an [`crate::Rdd`].
//!
//! Memory accounting needs a per-value byte estimate, and the estimate must
//! be *data dependent* (a neighbor list of a billion-follower celebrity is
//! not the same size as a leaf vertex's) — that skew is precisely what blows
//! up GraphX's join buffers on power-law graphs. `approx_bytes` models the
//! JVM-object footprint Spark would pay: payload plus per-object overhead.

/// Per-object overhead charged for every heap record (JVM object header +
/// reference, the overhead GraphX pays for boxed rows).
pub const OBJ_OVERHEAD: u64 = 16;

/// A value that can be stored in an RDD partition.
pub trait Record: Clone + Send + Sync + 'static {
    /// Approximate in-memory footprint in bytes (raw payload view, as a
    /// serialized/Kryo cache would store it).
    fn approx_bytes(&self) -> u64;

    /// Number of boxed elements this value holds when cached
    /// **deserialized** in a JVM (elements of `ArrayBuffer[Any]`-style
    /// collections). Clusters with a nonzero `record_overhead` charge it
    /// per boxed element as well as per record — Spark's tuning guide
    /// calls this the main reason deserialized collections are "2–5×
    /// larger than raw data". Primitive-array storage (the PS's
    /// Angel-style stores) never pays it.
    fn boxed_elems(&self) -> u64 {
        0
    }
}

macro_rules! prim_record {
    ($($t:ty),*) => {
        $(impl Record for $t {
            #[inline]
            fn approx_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        })*
    };
}

prim_record!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, ());

impl Record for String {
    fn approx_bytes(&self) -> u64 {
        self.len() as u64 + OBJ_OVERHEAD
    }
}

impl<T: Record> Record for Vec<T> {
    fn approx_bytes(&self) -> u64 {
        self.iter().map(Record::approx_bytes).sum::<u64>() + OBJ_OVERHEAD
    }

    fn boxed_elems(&self) -> u64 {
        self.len() as u64 + self.iter().map(Record::boxed_elems).sum::<u64>()
    }
}

impl<T: Record> Record for Box<[T]> {
    fn approx_bytes(&self) -> u64 {
        self.iter().map(Record::approx_bytes).sum::<u64>() + OBJ_OVERHEAD
    }

    fn boxed_elems(&self) -> u64 {
        self.len() as u64 + self.iter().map(Record::boxed_elems).sum::<u64>()
    }
}

impl<T: Record> Record for Option<T> {
    fn approx_bytes(&self) -> u64 {
        match self {
            Some(v) => v.approx_bytes(),
            None => std::mem::size_of::<Option<T>>() as u64,
        }
    }

    fn boxed_elems(&self) -> u64 {
        self.as_ref().map_or(0, Record::boxed_elems)
    }
}

impl<T: Record> Record for std::sync::Arc<T> {
    fn approx_bytes(&self) -> u64 {
        // Shared: charge only the pointer; the pointee is charged where
        // it was created.
        std::mem::size_of::<usize>() as u64
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    fn approx_bytes(&self) -> u64 {
        self.0.approx_bytes() + self.1.approx_bytes()
    }

    fn boxed_elems(&self) -> u64 {
        self.0.boxed_elems() + self.1.boxed_elems()
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    fn approx_bytes(&self) -> u64 {
        self.0.approx_bytes() + self.1.approx_bytes() + self.2.approx_bytes()
    }

    fn boxed_elems(&self) -> u64 {
        self.0.boxed_elems() + self.1.boxed_elems() + self.2.boxed_elems()
    }
}

impl<A: Record, B: Record, C: Record, D: Record> Record for (A, B, C, D) {
    fn approx_bytes(&self) -> u64 {
        self.0.approx_bytes()
            + self.1.approx_bytes()
            + self.2.approx_bytes()
            + self.3.approx_bytes()
    }
}

/// Total footprint of a slice of records (used when sizing partitions).
pub fn slice_bytes<T: Record>(items: &[T]) -> u64 {
    items.iter().map(Record::approx_bytes).sum()
}

/// Total boxed-element count of a slice (deserialized-cache accounting).
pub fn slice_boxed_elems<T: Record>(items: &[T]) -> u64 {
    items.iter().map(Record::boxed_elems).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(1u8.approx_bytes(), 1);
        assert_eq!(1u64.approx_bytes(), 8);
        assert_eq!(1.0f64.approx_bytes(), 8);
        assert_eq!(true.approx_bytes(), 1);
        assert_eq!(().approx_bytes(), 0);
    }

    #[test]
    fn composite_sizes_are_data_dependent() {
        let small: Vec<u64> = vec![1];
        let big: Vec<u64> = vec![0; 1000];
        assert!(big.approx_bytes() > small.approx_bytes());
        assert_eq!(big.approx_bytes(), 8 * 1000 + OBJ_OVERHEAD);
        assert_eq!(big.boxed_elems(), 1000);
        assert_eq!((1u64, big.clone()).boxed_elems(), 1000);
        assert_eq!(Some(big).boxed_elems(), 1000);
        assert_eq!(7u64.boxed_elems(), 0);
        assert_eq!((1u64, 2u64).approx_bytes(), 16);
        assert_eq!((1u64, 2u64, 3.0f64).approx_bytes(), 24);
        assert_eq!((1u64, 2u64, 3u64, 4u64).approx_bytes(), 32);
    }

    #[test]
    fn string_charges_length_plus_overhead() {
        assert_eq!("abc".to_string().approx_bytes(), 3 + OBJ_OVERHEAD);
    }

    #[test]
    fn option_and_arc() {
        assert_eq!(Some(7u64).approx_bytes(), 8);
        let none: Option<u64> = None;
        assert!(none.approx_bytes() <= 16);
        let a = std::sync::Arc::new(vec![0u64; 100]);
        assert_eq!(a.approx_bytes(), 8);
    }

    #[test]
    fn slice_bytes_sums() {
        let v = vec![(1u64, 2u64), (3, 4)];
        assert_eq!(slice_bytes(&v), 32);
        assert_eq!(slice_bytes::<u64>(&[]), 0);
    }
}
