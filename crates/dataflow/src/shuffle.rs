//! Wide (shuffle) operations: `group_by_key`, `reduce_by_key`, `join`,
//! `partition_by`, `distinct`.
//!
//! The shuffle follows Spark's hash shuffle:
//!
//! * **Map side** — each input partition is bucketed by `hash(key) % R`,
//!   serialized, and spilled to local disk (we charge serialization CPU
//!   and disk-write time; the bucketed data itself is "on disk", i.e. not
//!   held against the executor's memory budget).
//! * **Reduce side** — each output partition fetches its buckets (disk
//!   read + network for remote buckets + deserialization), then
//!   aggregates in an in-memory hash table. The hash table and the
//!   materialized output *are* charged against the memory budget — this
//!   is exactly where GraphX's join-based message passing explodes on
//!   power-law graphs (Fig. 6).

use psgraph_sim::FxHashMap;
use std::hash::Hash;
use std::sync::Arc;

use psgraph_sim::sync::Mutex;
use psgraph_sim::memory::Reservation;

use crate::cluster::Executor;
use crate::error::Result;
use crate::rdd::{Provenance, Rdd};
use crate::record::{slice_bytes, Record};

/// CPU ops charged per record for hashing/bucketing.
const HASH_OPS: u64 = 6;
/// Extra transient memory factor for hash-table overhead during
/// aggregation (bucket array, entry headers — the JVM pays more).
const HASH_TABLE_OVERHEAD_NUM: u64 = 1;
const HASH_TABLE_OVERHEAD_DEN: u64 = 2;

/// Deterministic shuffle partition of a key.
#[inline]
pub fn key_partition<K: Hash>(key: &K, num_out: usize) -> usize {
    use std::hash::Hasher;
    let mut h = psgraph_sim::FxHasher::default();
    key.hash(&mut h);
    (h.finish() % num_out as u64) as usize
}

/// One map task's output destined for one reduce partition.
struct BucketChunk<K, V> {
    /// Map partition that produced this chunk — the reduce side merges
    /// chunks in `from_part` order so output bytes never depend on the
    /// (scheduling-dependent) order map tasks finished.
    from_part: usize,
    from_exec: usize,
    bytes: u64,
    pairs: Vec<(K, V)>,
}

type ShuffleOutput<K, V> = Vec<Mutex<Vec<BucketChunk<K, V>>>>;

/// A pipelined map-side extractor: parent record → (key, value) pairs.
type FlatMapFn<T, K, V> = Arc<dyn Fn(&T, &mut Vec<(K, V)>) + Send + Sync>;

/// A map-side combiner (pre-aggregation within one map task).
type CombineFn<K, V> = Arc<dyn Fn(&mut Vec<(K, V)>) + Send + Sync>;

/// The reduce-side aggregation producing the output partition.
type AggFn<K, V, U> = Arc<dyn Fn(Vec<(K, V)>) -> Vec<U> + Send + Sync>;

/// Map side of the shuffle: flat-map `parent` records through `fm` and
/// bucket the pairs into `num_out` partitions. `fm` models Spark's stage
/// pipelining: the mapped pairs go straight into the shuffle write
/// without ever existing as a materialized RDD. `combine` optionally
/// pre-aggregates within each map task (map-side combine, as
/// `reduceByKey` does) to cut shuffle volume.
fn shuffle_map_side<T, K, V>(
    parent: &Rdd<T>,
    num_out: usize,
    fm: FlatMapFn<T, K, V>,
    combine: Option<CombineFn<K, V>>,
) -> Result<Arc<ShuffleOutput<K, V>>>
where
    T: Record,
    K: Record + Hash + Eq,
    V: Record,
{
    let out: Arc<ShuffleOutput<K, V>> =
        Arc::new((0..num_out).map(|_| Mutex::new(Vec::new())).collect());
    let cluster = Arc::clone(parent.cluster());
    let cluster2 = Arc::clone(&cluster);
    let out2 = Arc::clone(&out);

    cluster2.run_stage(parent.num_partitions(), move |p, exec| {
        let data = parent.partition(p)?;
        let in_bytes = slice_bytes(&data);
        // Transient working set while bucketing one partition.
        let _reservation = Reservation::new(exec.memory(), in_bytes)?;

        exec.charge_cpu(cluster.cost(), data.len() as u64 * HASH_OPS);
        let mut buckets: Vec<Vec<(K, V)>> = (0..num_out).map(|_| Vec::new()).collect();
        let mut scratch = Vec::new();
        for t in data.iter() {
            fm(t, &mut scratch);
            for (k, v) in scratch.drain(..) {
                let b = key_partition(&k, num_out);
                buckets[b].push((k, v));
            }
        }
        if let Some(combine) = &combine {
            for b in &mut buckets {
                combine(b);
            }
            exec.charge_cpu(cluster.cost(), data.len() as u64 * HASH_OPS);
        }
        // Serialize + spill each bucket to local disk.
        for (out_p, pairs) in buckets.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            let bytes = slice_bytes(&pairs);
            exec.clock().advance(cluster.cost().ser_cost(bytes));
            exec.clock().advance(cluster.cost().disk_bulk_cost(bytes));
            out2[out_p]
                .lock()
                .push(BucketChunk { from_part: p, from_exec: exec.id(), bytes, pairs });
        }
        Ok(())
    })?;

    Ok(out)
}

/// Reduce-side fetch for output partition `p`: charges disk/network/deser
/// and returns the merged pair stream plus its byte volume. The chunks
/// stay retained (shuffle files persist on local disk / the external
/// shuffle service until the shuffled RDD is dropped, as in Spark), which
/// is also what the shuffled RDD's provenance replays on recovery.
fn fetch_bucket<K, V>(
    chunks: &[BucketChunk<K, V>],
    exec: &Executor,
    cost: &psgraph_sim::CostModel,
    network: &psgraph_net::Network,
) -> (Vec<(K, V)>, u64)
where
    K: Record,
    V: Record,
{
    // Canonical merge order: by producing map partition, not by the
    // (scheduling-dependent) order map tasks appended their chunks.
    let mut order: Vec<usize> = (0..chunks.len()).collect();
    order.sort_unstable_by_key(|&i| chunks[i].from_part);
    let mut merged = Vec::new();
    let mut total_bytes = 0u64;
    for &i in &order {
        let chunk = &chunks[i];
        exec.clock().advance(cost.disk_bulk_cost(chunk.bytes));
        if chunk.from_exec != exec.id() {
            network.bulk_fetch(exec.clock(), chunk.bytes);
        }
        exec.clock().advance(cost.ser_cost(chunk.bytes));
        total_bytes += chunk.bytes;
        merged.extend(chunk.pairs.iter().cloned());
    }
    (merged, total_bytes)
}

/// Identity extractor for pair RDDs.
fn identity_fm<K: Record, V: Record>() -> FlatMapFn<(K, V), K, V> {
    Arc::new(|kv: &(K, V), out: &mut Vec<(K, V)>| out.push(kv.clone()))
}

/// Generic shuffled RDD: map side, then per-output aggregation `agg`.
fn shuffled<K, V, U>(
    parent: &Rdd<(K, V)>,
    name: &str,
    num_out: usize,
    combine: Option<CombineFn<K, V>>,
    agg: AggFn<K, V, U>,
) -> Result<Rdd<U>>
where
    K: Record + Hash + Eq,
    V: Record,
    U: Record,
{
    shuffled_from(parent, identity_fm(), name, num_out, combine, agg)
}

/// Generic shuffled RDD from any parent type via a pipelined extractor.
fn shuffled_from<T, K, V, U>(
    parent: &Rdd<T>,
    fm: FlatMapFn<T, K, V>,
    name: &str,
    num_out: usize,
    combine: Option<CombineFn<K, V>>,
    agg: AggFn<K, V, U>,
) -> Result<Rdd<U>>
where
    T: Record,
    K: Record + Hash + Eq,
    V: Record,
    U: Record,
{
    assert!(num_out > 0, "need at least one output partition");
    let buckets = shuffle_map_side(parent, num_out, fm, combine)?;
    let cluster = Arc::clone(parent.cluster());

    // Provenance replays the retained shuffle files — NOT the parent
    // lineage. Shuffle files live on local disk behind the external
    // shuffle service (standard Yarn deployments, as at Tencent) and
    // survive executor restarts; crucially this means a shuffled RDD does
    // not pin its ancestors in memory, exactly like Spark, where only the
    // driver's lineage metadata persists across stages.
    let buckets_prov = Arc::clone(&buckets);
    let agg_prov = Arc::clone(&agg);
    let cluster_prov = Arc::clone(&cluster);
    let prov: Provenance<U> = Arc::new(move |p, exec| {
        let guard = buckets_prov[p].lock();
        let (merged, _) =
            fetch_bucket(&guard, exec, cluster_prov.cost(), cluster_prov.network());
        Ok(agg_prov(merged))
    });

    let cluster2 = Arc::clone(&cluster);
    let buckets2 = Arc::clone(&buckets);
    Rdd::materialize(&cluster, name, num_out, Some(prov), move |p, exec| {
        let guard = buckets2[p].lock();
        let (merged, in_bytes) =
            fetch_bucket(&guard, exec, cluster2.cost(), cluster2.network());
        drop(guard);
        // Hash-table overhead while aggregating.
        let overhead = in_bytes * HASH_TABLE_OVERHEAD_NUM / HASH_TABLE_OVERHEAD_DEN + 64;
        let _reservation = Reservation::new(exec.memory(), in_bytes + overhead)?;
        exec.charge_cpu(cluster2.cost(), merged.len() as u64 * HASH_OPS);
        Ok(agg(merged))
    })
}

impl<K, V> Rdd<(K, V)>
where
    K: Record + Hash + Eq,
    V: Record,
{
    /// Group values by key into `num_out` partitions (full shuffle, no
    /// map-side combine — this is the expensive `groupBy` the paper uses
    /// to build neighbor tables).
    pub fn group_by_key(&self, num_out: usize) -> Result<Rdd<(K, Vec<V>)>> {
        shuffled(
            self,
            "group_by_key",
            num_out,
            None,
            Arc::new(|pairs: Vec<(K, V)>| {
                let mut map: FxHashMap<K, Vec<V>> = FxHashMap::default();
                for (k, v) in pairs {
                    map.entry(k).or_default().push(v);
                }
                map.into_iter().collect()
            }),
        )
    }

    /// Like [`Rdd::group_by_key`] but post-processes each group in place
    /// inside the aggregation (e.g. sort + dedup), avoiding a second
    /// materialized copy of the grouped data.
    pub fn group_by_key_with(
        &self,
        num_out: usize,
        post: impl Fn(&K, &mut Vec<V>) + Send + Sync + 'static,
    ) -> Result<Rdd<(K, Vec<V>)>> {
        let post = Arc::new(post);
        shuffled(
            self,
            "group_by_key_with",
            num_out,
            None,
            Arc::new(move |pairs: Vec<(K, V)>| {
                let mut map: FxHashMap<K, Vec<V>> = FxHashMap::default();
                for (k, v) in pairs {
                    map.entry(k).or_default().push(v);
                }
                map.into_iter()
                    .map(|(k, mut vs)| {
                        post(&k, &mut vs);
                        (k, vs)
                    })
                    .collect()
            }),
        )
    }

    /// Combine values per key with `f` (map-side combine included).
    pub fn reduce_by_key(
        &self,
        num_out: usize,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Result<Rdd<(K, V)>> {
        let f = Arc::new(f);
        let f_combine = Arc::clone(&f);
        let combine: CombineFn<K, V> =
            Arc::new(move |pairs: &mut Vec<(K, V)>| {
                let mut map: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in pairs.drain(..) {
                    match map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let nv = f_combine(e.get(), &v);
                            e.insert(nv);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                pairs.extend(map);
            });
        let f_agg = Arc::clone(&f);
        shuffled(
            self,
            "reduce_by_key",
            num_out,
            Some(combine),
            Arc::new(move |pairs: Vec<(K, V)>| {
                let mut map: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in pairs {
                    match map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let nv = f_agg(e.get(), &v);
                            e.insert(nv);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                map.into_iter().collect()
            }),
        )
    }

    /// Inner hash join. Both sides are co-partitioned into `num_out`
    /// partitions; the left side is the build side (its hash table is
    /// charged to memory), the right side streams. Output cardinality is
    /// the sum over keys of |left(k)| × |right(k)| — on skewed graphs this
    /// is the memory bomb that kills GraphX.
    pub fn join<W>(&self, other: &Rdd<(K, W)>, num_out: usize) -> Result<Rdd<(K, (V, W))>>
    where
        W: Record,
    {
        assert!(num_out > 0, "need at least one output partition");
        let left_buckets = shuffle_map_side(self, num_out, identity_fm(), None)?;
        let right_buckets = shuffle_map_side(other, num_out, identity_fm(), None)?;
        let cluster = Arc::clone(self.cluster());

        // Provenance replays the retained shuffle files (see `shuffled`).
        let lb_prov = Arc::clone(&left_buckets);
        let rb_prov = Arc::clone(&right_buckets);
        let cluster_prov = Arc::clone(&cluster);
        let prov: Provenance<(K, (V, W))> = Arc::new(move |p, exec| {
            let (l, _) = fetch_bucket(
                &lb_prov[p].lock(), exec, cluster_prov.cost(), cluster_prov.network(),
            );
            let (r, _) = fetch_bucket(
                &rb_prov[p].lock(), exec, cluster_prov.cost(), cluster_prov.network(),
            );
            Ok(hash_join(l, r))
        });

        let cluster2 = Arc::clone(&cluster);
        Rdd::materialize(&cluster, "join", num_out, Some(prov), move |p, exec| {
            let (left, lbytes) =
                fetch_bucket(&left_buckets[p].lock(), exec, cluster2.cost(), cluster2.network());
            let (right, rbytes) =
                fetch_bucket(&right_buckets[p].lock(), exec, cluster2.cost(), cluster2.network());
            // Build-side hash table + streamed probe side working set.
            let overhead =
                lbytes + lbytes * HASH_TABLE_OVERHEAD_NUM / HASH_TABLE_OVERHEAD_DEN + rbytes + 64;
            let _reservation = Reservation::new(exec.memory(), overhead)?;
            exec.charge_cpu(
                cluster2.cost(),
                (left.len() + right.len()) as u64 * HASH_OPS,
            );
            Ok(hash_join(left, right))
        })
    }

    /// Repartition by key without aggregation.
    pub fn partition_by_key(&self, num_out: usize) -> Result<Rdd<(K, V)>> {
        shuffled(self, "partition_by_key", num_out, None, Arc::new(|pairs| pairs))
    }

    /// Hash join against an already hash-partitioned table with the same
    /// partition count (the caller guarantees co-partitioning — e.g. both
    /// sides came from [`Rdd::partition_by_key`] with `num_out`
    /// partitions). No shuffle moves: each partition joins locally, as
    /// Spark does when the partitioners match (GraphX's standard
    /// vertex-table join path). The build side is `self`.
    pub fn join_copartitioned<W>(&self, other: &Rdd<(K, W)>) -> Result<Rdd<(K, (V, W))>>
    where
        W: Record,
    {
        let num_out = self.num_partitions();
        if other.num_partitions() != num_out {
            return Err(crate::DataflowError::Other(format!(
                "join_copartitioned: {} vs {} partitions",
                num_out,
                other.num_partitions()
            )));
        }
        let cluster = Arc::clone(self.cluster());
        let left = self.clone();
        let right = other.clone();
        let left_prov = self.clone();
        let right_prov = other.clone();
        let prov: Provenance<(K, (V, W))> = Arc::new(move |p, exec| {
            let l = left_prov.partition_or_recompute(p, exec)?;
            let r = right_prov.partition_or_recompute(p, exec)?;
            Ok(hash_join_ref(&l, &r))
        });
        let cluster2 = Arc::clone(&cluster);
        Rdd::materialize(&cluster, "join_copart", num_out, Some(prov), move |p, exec| {
            let l = left.partition(p)?;
            let r = right.partition(p)?;
            let lbytes = slice_bytes(&l);
            let rbytes = slice_bytes(&r);
            // The hash table is built over the *smaller* side, by
            // reference — only that side's bytes carry table overhead.
            let build_bytes = lbytes.min(rbytes);
            let overhead =
                build_bytes + build_bytes * HASH_TABLE_OVERHEAD_NUM / HASH_TABLE_OVERHEAD_DEN + 64;
            let _reservation = Reservation::new(exec.memory(), overhead)?;
            exec.charge_cpu(cluster2.cost(), (l.len() + r.len()) as u64 * HASH_OPS);
            Ok(hash_join_ref(&l, &r))
        })
    }

    /// Count records per key.
    pub fn count_by_key(&self, num_out: usize) -> Result<Rdd<(K, u64)>> {
        let ones = self.map(|(k, _v)| (k.clone(), 1u64))?;
        ones.reduce_by_key(num_out, |a, b| a + b)
    }
}

fn hash_join<K, V, W>(left: Vec<(K, V)>, right: Vec<(K, W)>) -> Vec<(K, (V, W))>
where
    K: Record + Hash + Eq,
    V: Record,
    W: Record,
{
    let mut table: FxHashMap<K, Vec<V>> = FxHashMap::default();
    for (k, v) in left {
        table.entry(k).or_default().push(v);
    }
    let mut out = Vec::new();
    for (k, w) in right {
        if let Some(vs) = table.get(&k) {
            for v in vs {
                out.push((k.clone(), (v.clone(), w.clone())));
            }
        }
    }
    out
}

/// Hash join over borrowed partitions: builds the table over the
/// *smaller* side by reference and clones only matched records. The
/// copartitioned fast path must not pay full-partition clones — that is
/// precisely the work it exists to skip.
fn hash_join_ref<K, V, W>(left: &[(K, V)], right: &[(K, W)]) -> Vec<(K, (V, W))>
where
    K: Record + Hash + Eq,
    V: Record,
    W: Record,
{
    let mut out = Vec::new();
    if left.len() <= right.len() {
        let mut table: FxHashMap<&K, Vec<&V>> = FxHashMap::default();
        for (k, v) in left {
            table.entry(k).or_default().push(v);
        }
        for (k, w) in right {
            if let Some(vs) = table.get(k) {
                for &v in vs {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
        }
    } else {
        let mut table: FxHashMap<&K, Vec<&W>> = FxHashMap::default();
        for (k, w) in right {
            table.entry(k).or_default().push(w);
        }
        // Stream the left (probe) side in order so output order matches
        // the build-left `hash_join` convention: left record order major,
        // right matches minor.
        for (k, v) in left {
            if let Some(ws) = table.get(k) {
                for &w in ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
        }
    }
    out
}

impl<T: Record> Rdd<T> {
    /// Pipelined `flat_map(fm).reduce_by_key(f)`: the mapped pairs go
    /// straight into the shuffle write without a materialized
    /// intermediate RDD — Spark's stage fusion.
    pub fn flat_map_reduce_by_key<K, V>(
        &self,
        num_out: usize,
        fm: impl Fn(&T, &mut Vec<(K, V)>) + Send + Sync + 'static,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Result<Rdd<(K, V)>>
    where
        K: Record + Hash + Eq,
        V: Record,
    {
        let f = Arc::new(f);
        let f_combine = Arc::clone(&f);
        let combine: CombineFn<K, V> =
            Arc::new(move |pairs: &mut Vec<(K, V)>| {
                let mut map: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in pairs.drain(..) {
                    match map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let nv = f_combine(e.get(), &v);
                            e.insert(nv);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                pairs.extend(map);
            });
        let f_agg = Arc::clone(&f);
        shuffled_from(
            self,
            Arc::new(fm),
            "flat_map_reduce_by_key",
            num_out,
            Some(combine),
            Arc::new(move |pairs: Vec<(K, V)>| {
                let mut map: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in pairs {
                    match map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let nv = f_agg(e.get(), &v);
                            e.insert(nv);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
                map.into_iter().collect()
            }),
        )
    }

    /// Pipelined `flat_map(fm).group_by_key()` with in-aggregation
    /// post-processing of each group.
    pub fn flat_map_group_by_key_with<K, V>(
        &self,
        num_out: usize,
        fm: impl Fn(&T, &mut Vec<(K, V)>) + Send + Sync + 'static,
        post: impl Fn(&K, &mut Vec<V>) + Send + Sync + 'static,
    ) -> Result<Rdd<(K, Vec<V>)>>
    where
        K: Record + Hash + Eq,
        V: Record,
    {
        let post = Arc::new(post);
        shuffled_from(
            self,
            Arc::new(fm),
            "flat_map_group_by_key",
            num_out,
            None,
            Arc::new(move |pairs: Vec<(K, V)>| {
                let mut map: FxHashMap<K, Vec<V>> = FxHashMap::default();
                for (k, v) in pairs {
                    map.entry(k).or_default().push(v);
                }
                map.into_iter()
                    .map(|(k, mut vs)| {
                        post(&k, &mut vs);
                        (k, vs)
                    })
                    .collect()
            }),
        )
    }
}

impl<T> Rdd<T>
where
    T: Record + Hash + Eq,
{
    /// Distinct records (shuffle-based dedup).
    pub fn distinct(&self, num_out: usize) -> Result<Rdd<T>> {
        let keyed = self.map(|t| (t.clone(), ()))?;
        let reduced = keyed.reduce_by_key(num_out, |_a, _b| ())?;
        reduced.map(|(k, _unit)| k.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};

    fn cluster() -> Arc<Cluster> {
        Cluster::local()
    }

    #[test]
    fn group_by_key_groups_all_values() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, i)).collect();
        let rdd = Rdd::from_vec(&c, pairs, 8).unwrap();
        let grouped = rdd.group_by_key(4).unwrap();
        let mut out = grouped.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 5);
        for (k, vs) in out {
            assert_eq!(vs.len(), 20);
            assert!(vs.iter().all(|v| v % 5 == k));
        }
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, 1)).collect();
        let rdd = Rdd::from_vec(&c, pairs, 8).unwrap();
        let reduced = rdd.reduce_by_key(4, |a, b| a + b).unwrap();
        let mut out = reduced.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..10u64).map(|k| (k, 100u64)).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i * 7 % 13, i)).collect();
        let rdd = Rdd::from_vec(&c, pairs.clone(), 6).unwrap();
        let mut reduced = rdd.reduce_by_key(3, |a, b| a + b).unwrap().collect().unwrap();
        reduced.sort_unstable();
        let mut reference: FxHashMap<u64, u64> = FxHashMap::default();
        for (k, v) in pairs {
            *reference.entry(k).or_default() += v;
        }
        let mut reference: Vec<(u64, u64)> = reference.into_iter().collect();
        reference.sort_unstable();
        assert_eq!(reduced, reference);
    }

    #[test]
    fn join_produces_cross_product_per_key() {
        let c = cluster();
        let left = Rdd::from_vec(&c, vec![(1u64, 10u64), (1, 11), (2, 20)], 4).unwrap();
        let right = Rdd::from_vec(&c, vec![(1u64, 100u64), (2, 200), (3, 300)], 4).unwrap();
        let joined = left.join(&right, 4).unwrap();
        let mut out = joined.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(1, (10, 100)), (1, (11, 100)), (2, (20, 200))]);
    }

    #[test]
    fn partition_by_key_preserves_data_and_colocates_keys() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..64).map(|i| (i % 8, i)).collect();
        let rdd = Rdd::from_vec(&c, pairs.clone(), 8).unwrap();
        let parted = rdd.partition_by_key(4).unwrap();
        assert_eq!(parted.count().unwrap(), 64);
        for p in 0..4 {
            let part = parted.partition(p).unwrap();
            for (k, _) in part.iter() {
                assert_eq!(key_partition(k, 4), p);
            }
        }
    }

    #[test]
    fn count_by_key_counts() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..90).map(|i| (i % 3, i)).collect();
        let rdd = Rdd::from_vec(&c, pairs, 4).unwrap();
        let mut out = rdd.count_by_key(2).unwrap().collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 30), (1, 30), (2, 30)]);
    }

    #[test]
    fn distinct_dedups() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, vec![1u64, 2, 2, 3, 3, 3], 3).unwrap();
        let mut out = rdd.distinct(2).unwrap().collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn shuffle_charges_time() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i % 100, i)).collect();
        let rdd = Rdd::from_vec(&c, pairs, 8).unwrap();
        let before = c.now();
        let _g = rdd.group_by_key(8).unwrap();
        assert!(c.now() > before, "shuffle must consume simulated time");
    }

    #[test]
    fn skewed_join_ooms_on_small_budget() {
        // One hot key on both sides → quadratic join output. A GraphX-sized
        // partition with a small container must OOM.
        let cfg = ClusterConfig::default().with_memory(512 << 10);
        let c = Cluster::new(cfg);
        let hot: Vec<(u64, u64)> = (0..2000).map(|i| (0u64, i)).collect();
        let left = Rdd::from_vec(&c, hot.clone(), 4).unwrap();
        let right = Rdd::from_vec(&c, hot, 4).unwrap();
        let err = left.join(&right, 4).unwrap_err();
        assert!(matches!(err, crate::DataflowError::Oom(_)), "got {err}");
        // And the meters are clean afterwards (no leak from the failure).
        drop((left, right));
        for i in 0..c.num_executors() {
            assert_eq!(c.executor(i).memory().in_use(), 0);
        }
    }

    #[test]
    fn group_by_key_empty_rdd() {
        let c = cluster();
        let rdd: Rdd<(u64, u64)> = Rdd::from_vec(&c, vec![], 4).unwrap();
        let grouped = rdd.group_by_key(2).unwrap();
        assert_eq!(grouped.count().unwrap(), 0);
    }

    #[test]
    fn shuffled_rdd_recovers_through_lineage() {
        let c = cluster();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1)).collect();
        let rdd = Rdd::from_vec(&c, pairs, 8).unwrap();
        let reduced = rdd.reduce_by_key(4, |a, b| a + b).unwrap();
        c.kill_executor(1);
        c.restart_executor(1);
        reduced.recover().unwrap();
        let mut out = reduced.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..10u64).map(|k| (k, 10u64)).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_reduce_by_key_fused() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..100u64).collect(), 4).unwrap();
        let mut out = rdd
            .flat_map_reduce_by_key(
                4,
                |&x, buf| {
                    buf.push((x % 3, 1u64));
                    if x % 2 == 0 {
                        buf.push((100 + x % 3, x));
                    }
                },
                |a, b| a + b,
            )
            .unwrap()
            .collect()
            .unwrap();
        out.sort_unstable();
        // Counts per residue class of 100 items: 34, 33, 33.
        assert_eq!(out[0], (0, 34));
        assert_eq!(out[1], (1, 33));
        assert_eq!(out[2], (2, 33));
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn flat_map_group_by_key_with_fused() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, vec![5u64, 3, 5, 1, 3, 5], 3).unwrap();
        let mut out = rdd
            .flat_map_group_by_key_with(
                2,
                |&x, buf| buf.push((x % 2, x)),
                |_k, vs| {
                    vs.sort_unstable();
                    vs.dedup();
                },
            )
            .unwrap()
            .collect()
            .unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out, vec![(1, vec![1, 3, 5])]);
    }

    #[test]
    fn fused_ops_do_not_materialize_intermediates() {
        // The pipelined extractor's output must never be charged as a
        // resident RDD: peak memory with the fused op stays well below
        // the unfused flat_map+reduce path.
        let data: Vec<u64> = (0..20_000).collect();
        let peak_of = |fused: bool| {
            let c = cluster();
            let rdd = Rdd::from_vec(&c, data.clone(), 8).unwrap();
            let base: u64 = (0..c.num_executors())
                .map(|i| c.executor(i).memory().peak())
                .sum();
            let _out = if fused {
                rdd.flat_map_reduce_by_key(
                    8,
                    |&x, buf| {
                        buf.push((x % 1000, x));
                        buf.push((x % 999, x));
                    },
                    |a, b| a + b,
                )
                .unwrap()
            } else {
                rdd.flat_map(|&x| vec![(x % 1000, x), (x % 999, x)])
                    .unwrap()
                    .reduce_by_key(8, |a, b| a + b)
                    .unwrap()
            };
            let after: u64 = (0..c.num_executors())
                .map(|i| c.executor(i).memory().peak())
                .sum();
            after - base
        };
        let fused_peak = peak_of(true);
        let unfused_peak = peak_of(false);
        assert!(
            fused_peak < unfused_peak,
            "fused {fused_peak} should stay below unfused {unfused_peak}"
        );
    }

    #[test]
    fn key_partition_is_deterministic_and_in_range() {
        for k in 0u64..1000 {
            let p = key_partition(&k, 7);
            assert!(p < 7);
            assert_eq!(p, key_partition(&k, 7));
        }
    }
}
