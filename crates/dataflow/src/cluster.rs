//! The simulated Spark cluster: a driver plus a pool of executors.

use psgraph_harness::Pool;
use psgraph_net::Network;
use psgraph_sim::sync::Mutex;
use psgraph_sim::{
    ClusterClock, CostModel, FailureInjector, MemoryMeter, NodeClock, SimTime,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{DataflowError, Result};

/// Cluster sizing, mirroring the paper's resource allocations (executor
/// count, cores, and container memory — scaled down with the datasets).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of executors (paper: 100 for DS1, 300–500 for DS2).
    pub executors: usize,
    /// Cores per executor; compute cost is divided by this.
    pub cores_per_executor: usize,
    /// Memory budget per executor in bytes (paper: 20–55 GB).
    pub memory_per_executor: u64,
    /// Default partition count for new RDDs (Spark default: 2–3× cores).
    pub default_partitions: usize,
    /// CPU ops charged per record for a generic narrow transformation.
    pub ops_per_record: u64,
    /// Extra bytes charged per cached record, modeling the JVM-object
    /// cost of **deserialized** RDD caching (headers + boxed tuple
    /// fields). GraphX's triplet machinery requires deserialized caching
    /// (set ~32); jobs that persist with Kryo serialization
    /// (`MEMORY_ONLY_SER`, as PSGraph's production pipelines do) set 0 and
    /// pay deserialization CPU on access instead.
    pub record_overhead: u64,
    /// Cost model shared with the rest of the simulated datacenter.
    pub cost: CostModel,
    /// Thread pool that executes stage tasks (`None` = the process-wide
    /// [`Pool::global`]). Benches and determinism tests install explicit
    /// pools to sweep thread counts.
    pub pool: Option<Arc<Pool>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let executors = 4;
        ClusterConfig {
            executors,
            cores_per_executor: 2,
            memory_per_executor: 1 << 30,
            default_partitions: executors * 2,
            ops_per_record: 8,
            record_overhead: 0,
            cost: CostModel::default(),
            pool: None,
        }
    }
}

impl ClusterConfig {
    pub fn with_executors(mut self, n: usize) -> Self {
        self.executors = n;
        self.default_partitions = n * 2;
        self
    }

    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_per_executor = bytes;
        self
    }

    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }
}

/// One executor: clock + memory budget + liveness + incarnation counter.
///
/// The incarnation counter invalidates partition data cached on the
/// executor when it is killed: data written under incarnation `k` is
/// unreadable once the executor is restarted as incarnation `k+1`.
#[derive(Debug)]
pub struct Executor {
    id: usize,
    cores: usize,
    clock: NodeClock,
    memory: MemoryMeter,
    alive: AtomicBool,
    incarnation: AtomicU64,
}

impl Executor {
    fn new(id: usize, cores: usize, memory: u64) -> Self {
        Executor {
            id,
            cores,
            clock: NodeClock::new(),
            memory: MemoryMeter::new(format!("executor-{id}"), memory),
            alive: AtomicBool::new(true),
            incarnation: AtomicU64::new(0),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn cores(&self) -> usize {
        self.cores
    }

    pub fn clock(&self) -> &NodeClock {
        &self.clock
    }

    pub fn memory(&self) -> &MemoryMeter {
        &self.memory
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::Acquire)
    }

    /// Charge `ops` of data-parallel CPU work (split across cores).
    pub fn charge_cpu(&self, cost: &CostModel, ops: u64) {
        self.clock
            .advance(cost.cpu_cost(ops.div_ceil(self.cores as u64)));
    }

    /// Charge sequential (single-core) CPU work.
    pub fn charge_cpu_serial(&self, cost: &CostModel, ops: u64) {
        self.clock.advance(cost.cpu_cost(ops));
    }

    fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        self.incarnation.fetch_add(1, Ordering::AcqRel);
        self.memory.clear();
    }

    fn restart(&self, at: SimTime) {
        self.clock.reset_to(at);
        self.alive.store(true, Ordering::Release);
    }
}

/// The simulated Spark cluster.
pub struct Cluster {
    config: ClusterConfig,
    network: Network,
    clock: ClusterClock,
    driver: NodeClock,
    executors: Vec<Arc<Executor>>,
    injector: FailureInjector,
    stages_run: AtomicU64,
    pool: Arc<Pool>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("executors", &self.executors.len())
            .field("stages_run", &self.stages_run.load(Ordering::Relaxed))
            .finish()
    }
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        assert!(config.executors > 0, "need at least one executor");
        assert!(config.cores_per_executor > 0, "need at least one core");
        let executors = (0..config.executors)
            .map(|i| {
                Arc::new(Executor::new(
                    i,
                    config.cores_per_executor,
                    config.memory_per_executor,
                ))
            })
            .collect();
        let network = Network::new(config.cost.clone());
        let pool = config
            .pool
            .clone()
            .unwrap_or_else(|| Arc::clone(Pool::global()));
        Arc::new(Cluster {
            config,
            network,
            clock: ClusterClock::new(),
            driver: NodeClock::new(),
            executors,
            injector: FailureInjector::none(),
            stages_run: AtomicU64::new(0),
            pool,
        })
    }

    /// A small default cluster (tests, examples).
    pub fn local() -> Arc<Self> {
        Cluster::new(ClusterConfig::default())
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    pub fn network(&self) -> &Network {
        &self.network
    }

    pub fn clock(&self) -> &ClusterClock {
        &self.clock
    }

    pub fn driver(&self) -> &NodeClock {
        &self.driver
    }

    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// The thread pool stage tasks execute on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    pub fn num_executors(&self) -> usize {
        self.executors.len()
    }

    pub fn default_partitions(&self) -> usize {
        self.config.default_partitions
    }

    pub fn executor(&self, i: usize) -> &Arc<Executor> {
        &self.executors[i]
    }

    /// Home executor of partition `p` (fixed modulo placement, as with
    /// Spark's preferred locations once an RDD is cached).
    pub fn executor_for(&self, partition: usize) -> &Arc<Executor> {
        &self.executors[partition % self.executors.len()]
    }

    /// Simulated time elapsed so far (global barrier clock).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of stages executed (diagnostics / tests).
    pub fn stages_run(&self) -> u64 {
        self.stages_run.load(Ordering::Relaxed)
    }

    /// Kill an executor: memory cleared, cached partitions invalidated.
    pub fn kill_executor(&self, id: usize) {
        self.executors[id].kill();
    }

    /// Restart an executor. Charges the master's failure-detection +
    /// container-restart overhead to the global clock, and the replacement
    /// joins at that time.
    pub fn restart_executor(&self, id: usize) {
        self.clock.advance(self.config.cost.restart_overhead());
        self.executors[id].restart(self.clock.now());
    }

    /// Run one stage of `tasks` partition-indexed tasks.
    ///
    /// Tasks are grouped by home executor and each executor group runs as
    /// one task on the shared work-stealing pool (real parallelism up to
    /// the pool's thread count), charging simulated costs to its own
    /// clock. Within a group, partitions execute serially in partition
    /// order, and results land in partition-indexed slots — the
    /// deterministic reduction rule, so the output is bit-identical for
    /// any pool size. A BSP barrier over all live executors closes the
    /// stage. Returns per-partition results in partition order, or the
    /// first error (OOM / executor-lost) encountered.
    pub fn run_stage<R, F>(&self, tasks: usize, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(usize, &Executor) -> Result<R> + Send + Sync,
    {
        self.stages_run.fetch_add(1, Ordering::Relaxed);
        // Stages start from the current global time.
        for e in &self.executors {
            if e.is_alive() {
                self.clock.register(&e.clock);
            }
        }

        let mut by_exec: Vec<Vec<usize>> = vec![Vec::new(); self.executors.len()];
        for p in 0..tasks {
            by_exec[p % self.executors.len()].push(p);
        }

        let results: Mutex<Vec<Option<R>>> =
            Mutex::new((0..tasks).map(|_| None).collect());
        let first_err: Mutex<Option<DataflowError>> = Mutex::new(None);

        self.pool.scope(|scope| {
            for (eid, parts) in by_exec.iter().enumerate() {
                if parts.is_empty() {
                    continue;
                }
                let exec = Arc::clone(&self.executors[eid]);
                let f = &f;
                let results = &results;
                let first_err = &first_err;
                scope.spawn(move |_| {
                    for &p in parts {
                        if first_err.lock().is_some() {
                            return;
                        }
                        if !exec.is_alive() {
                            let mut g = first_err.lock();
                            if g.is_none() {
                                *g = Some(DataflowError::ExecutorLost { id: exec.id() });
                            }
                            return;
                        }
                        match f(p, &exec) {
                            Ok(r) => results.lock()[p] = Some(r),
                            Err(e) => {
                                let mut g = first_err.lock();
                                if g.is_none() {
                                    *g = Some(e);
                                }
                                return;
                            }
                        }
                    }
                });
            }
        });

        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }

        self.clock
            .barrier(self.executors.iter().filter(|e| e.is_alive()).map(|e| e.clock()));

        let out = results.into_inner();
        let mut v = Vec::with_capacity(tasks);
        for (p, r) in out.into_iter().enumerate() {
            match r {
                Some(r) => v.push(r),
                None => {
                    return Err(DataflowError::Other(format!(
                        "task for partition {p} produced no result"
                    )))
                }
            }
        }
        Ok(v)
    }

    /// Consume any failure-injection plans due at `superstep`, killing the
    /// targeted executors. Returns the ids killed.
    pub fn apply_failures(&self, superstep: u64) -> Vec<usize> {
        use psgraph_sim::failpoint::NodeKind;
        let due = self.injector.take_due(NodeKind::Executor, superstep);
        let mut killed = Vec::with_capacity(due.len());
        for plan in due {
            if plan.node_id < self.executors.len() {
                self.kill_executor(plan.node_id);
                killed.push(plan.node_id);
            }
        }
        killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_runs_all_tasks_in_partition_order() {
        let c = Cluster::local();
        let out = c.run_stage(10, |p, _e| Ok(p * 2)).unwrap();
        assert_eq!(out, (0..10).map(|p| p * 2).collect::<Vec<_>>());
        assert_eq!(c.stages_run(), 1);
    }

    #[test]
    fn stage_charges_time_and_barriers() {
        let c = Cluster::local();
        let before = c.now();
        c.run_stage(8, |_p, e| {
            e.charge_cpu(c.cost(), 2_000_000_000);
            Ok(())
        })
        .unwrap();
        let after = c.now();
        assert!(after > before);
        // All live executors synchronized to the barrier.
        for i in 0..c.num_executors() {
            assert_eq!(c.executor(i).clock().now(), after);
        }
    }

    #[test]
    fn cores_divide_parallel_work() {
        let cfg1 = ClusterConfig { executors: 1, cores_per_executor: 1, ..Default::default() };
        let cfg4 = ClusterConfig { executors: 1, cores_per_executor: 4, ..Default::default() };
        let c1 = Cluster::new(cfg1);
        let c4 = Cluster::new(cfg4);
        c1.run_stage(1, |_p, e| {
            e.charge_cpu(c1.cost(), 4_000_000);
            Ok(())
        })
        .unwrap();
        c4.run_stage(1, |_p, e| {
            e.charge_cpu(c4.cost(), 4_000_000);
            Ok(())
        })
        .unwrap();
        assert!(c4.now() < c1.now());
    }

    #[test]
    fn error_aborts_stage() {
        let c = Cluster::local();
        let err = c
            .run_stage(4, |p, _e| {
                if p == 2 {
                    Err(DataflowError::Other("boom".into()))
                } else {
                    Ok(p)
                }
            })
            .unwrap_err();
        assert!(matches!(err, DataflowError::Other(_)));
    }

    #[test]
    fn dead_executor_fails_its_tasks() {
        let c = Cluster::local();
        c.kill_executor(1);
        let err = c.run_stage(8, |p, _e| Ok(p)).unwrap_err();
        assert_eq!(err, DataflowError::ExecutorLost { id: 1 });
    }

    #[test]
    fn restart_charges_overhead_and_revives() {
        let c = Cluster::local();
        c.kill_executor(0);
        assert!(!c.executor(0).is_alive());
        let inc = c.executor(0).incarnation();
        let before = c.now();
        c.restart_executor(0);
        assert!(c.executor(0).is_alive());
        assert_eq!(c.executor(0).incarnation(), inc); // bump happens at kill
        assert_eq!(c.now(), before + c.cost().restart_overhead());
        // Stage runs again.
        c.run_stage(8, |p, _e| Ok(p)).unwrap();
    }

    #[test]
    fn kill_bumps_incarnation_and_clears_memory() {
        let c = Cluster::local();
        c.executor(2).memory().alloc(1000).unwrap();
        let inc = c.executor(2).incarnation();
        c.kill_executor(2);
        assert_eq!(c.executor(2).incarnation(), inc + 1);
        assert_eq!(c.executor(2).memory().in_use(), 0);
    }

    #[test]
    fn apply_failures_consumes_plans() {
        use psgraph_sim::FailPlan;
        let c = Cluster::local();
        c.injector().schedule(FailPlan::kill_executor(3, 2));
        assert!(c.apply_failures(1).is_empty());
        assert_eq!(c.apply_failures(2), vec![3]);
        assert!(!c.executor(3).is_alive());
        assert!(c.apply_failures(2).is_empty());
    }

    #[test]
    fn executor_placement_is_stable() {
        let c = Cluster::local();
        assert_eq!(c.executor_for(0).id(), 0);
        assert_eq!(c.executor_for(5).id(), 5 % c.num_executors());
        assert_eq!(c.executor_for(5).id(), c.executor_for(5).id());
    }

    #[test]
    fn parallel_stage_uses_multiple_threads() {
        // Smoke test: tasks on different executors can overlap in real
        // time. Uses an explicit 4-thread pool so the test holds under
        // any `POOL_THREADS` setting (CI runs the suite at 1 and max).
        let pool = Arc::new(Pool::with_perturb(4, None));
        let c = Cluster::new(ClusterConfig::default().with_pool(pool));
        let t0 = std::time::Instant::now();
        c.run_stage(4, |_p, _e| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            Ok(())
        })
        .unwrap();
        // 4 tasks on 4 executors: well under 4 × 50 ms if parallel.
        assert!(t0.elapsed() < std::time::Duration::from_millis(190));
    }
}
