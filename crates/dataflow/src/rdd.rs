//! Partitioned, memory-accounted, lineage-tracked datasets.
//!
//! An [`Rdd`] is materialized eagerly (this simulator has no lazy DAG
//! optimizer — stage fusion is modeled by `map_partitions`), but carries a
//! *provenance* closure: the recipe to rebuild any partition from its
//! stable source. When an executor dies, partitions written under its old
//! incarnation become unreadable and [`Rdd::recover`] recomputes exactly
//! those through the provenance chain — Spark's lineage recovery in
//! miniature (paper §III-C "Failure recovery").

use psgraph_sim::sync::RwLock;
use std::sync::Arc;

use crate::cluster::{Cluster, Executor};
use crate::error::{DataflowError, Result};
use crate::record::{slice_bytes, Record};

/// The recipe to (re)compute a partition from a stable source.
pub type Provenance<T> = Arc<dyn Fn(usize, &Executor) -> Result<Vec<T>> + Send + Sync>;

struct PartitionSlot<T> {
    /// Partition contents, plus the executor incarnation that wrote them.
    data: RwLock<Option<(Arc<Vec<T>>, u64)>>,
}

impl<T> Default for PartitionSlot<T> {
    fn default() -> Self {
        PartitionSlot { data: RwLock::new(None) }
    }
}

struct RddInner<T: Record> {
    cluster: Arc<Cluster>,
    name: String,
    parts: Vec<PartitionSlot<T>>,
    /// Bytes charged per partition (for Drop-time release).
    charged: Vec<psgraph_sim::sync::Mutex<u64>>,
}

impl<T: Record> Drop for RddInner<T> {
    fn drop(&mut self) {
        for (p, charged) in self.charged.iter().enumerate() {
            let bytes = *charged.lock();
            if bytes > 0 {
                self.cluster.executor_for(p).memory().free(bytes);
            }
        }
    }
}

/// A partitioned distributed dataset. Cheap to clone (shared partitions).
pub struct Rdd<T: Record> {
    inner: Arc<RddInner<T>>,
    provenance: Option<Provenance<T>>,
}

impl<T: Record> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd { inner: Arc::clone(&self.inner), provenance: self.provenance.clone() }
    }
}

impl<T: Record> std::fmt::Debug for Rdd<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rdd")
            .field("name", &self.inner.name)
            .field("partitions", &self.inner.parts.len())
            .finish()
    }
}

impl<T: Record> Rdd<T> {
    /// Materialize an RDD by running `compute` for every partition on its
    /// home executor. `provenance` (if any) must be an *independent* recipe
    /// reaching back to a stable source — it is what `recover` replays.
    pub fn materialize<F>(
        cluster: &Arc<Cluster>,
        name: impl Into<String>,
        partitions: usize,
        provenance: Option<Provenance<T>>,
        compute: F,
    ) -> Result<Self>
    where
        F: Fn(usize, &Executor) -> Result<Vec<T>> + Send + Sync,
    {
        assert!(partitions > 0, "rdd needs at least one partition");
        let inner = Arc::new(RddInner {
            cluster: Arc::clone(cluster),
            name: name.into(),
            parts: (0..partitions).map(|_| PartitionSlot::default()).collect(),
            charged: (0..partitions).map(|_| psgraph_sim::sync::Mutex::new(0)).collect(),
        });

        let inner2 = Arc::clone(&inner);
        cluster.run_stage(partitions, move |p, exec| {
            let data = compute(p, exec)?;
            store_partition(&inner2, p, exec, data)
        })?;

        Ok(Rdd { inner, provenance })
    }

    /// Distribute a driver-side vector across the cluster (round-robin).
    /// The source vector itself is the stable source: provenance re-slices
    /// it, so this RDD is always recoverable.
    pub fn from_vec(cluster: &Arc<Cluster>, data: Vec<T>, partitions: usize) -> Result<Self> {
        let source = Arc::new(data);
        let n = partitions.max(1);
        let src = Arc::clone(&source);
        let slice = move |p: usize| -> Vec<T> {
            src.iter()
                .enumerate()
                .filter(|(i, _)| i % n == p)
                .map(|(_, v)| v.clone())
                .collect()
        };
        let slice2 = slice.clone();
        let prov: Provenance<T> = Arc::new(move |p, _exec| Ok(slice2(p)));
        Rdd::materialize(cluster, "from_vec", n, Some(prov), move |p, _exec| Ok(slice(p)))
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.inner.cluster
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    pub fn has_lineage(&self) -> bool {
        self.provenance.is_some()
    }

    /// Read partition `p`, failing if its home executor is dead or the
    /// data was lost to a restart.
    pub fn partition(&self, p: usize) -> Result<Arc<Vec<T>>> {
        let exec = self.inner.cluster.executor_for(p);
        if !exec.is_alive() {
            return Err(DataflowError::ExecutorLost { id: exec.id() });
        }
        let guard = self.inner.parts[p].data.read();
        match &*guard {
            Some((data, inc)) if *inc == exec.incarnation() => Ok(Arc::clone(data)),
            _ => Err(DataflowError::ExecutorLost { id: exec.id() }),
        }
    }

    /// Like [`Rdd::partition`] but falls back to recomputing through
    /// lineage (without re-caching), as Spark does for uncached ancestors.
    pub fn partition_or_recompute(&self, p: usize, exec: &Executor) -> Result<Arc<Vec<T>>> {
        match self.partition(p) {
            Ok(d) => Ok(d),
            Err(DataflowError::ExecutorLost { .. }) => match &self.provenance {
                Some(prov) => Ok(Arc::new(prov(p, exec)?)),
                None => Err(DataflowError::NoLineage { rdd: self.inner.name.clone() }),
            },
            Err(e) => Err(e),
        }
    }

    /// Rebuild every partition lost to executor failure, on the (restarted)
    /// home executors. No-op for healthy partitions.
    pub fn recover(&self) -> Result<()> {
        let lost: Vec<usize> = (0..self.num_partitions())
            .filter(|&p| self.partition(p).is_err())
            .collect();
        if lost.is_empty() {
            return Ok(());
        }
        let prov = self
            .provenance
            .clone()
            .ok_or_else(|| DataflowError::NoLineage { rdd: self.inner.name.clone() })?;
        for p in lost {
            let exec = self.inner.cluster.executor_for(p);
            if !exec.is_alive() {
                return Err(DataflowError::ExecutorLost { id: exec.id() });
            }
            // Free anything still charged for the stale copy.
            let mut charged = self.inner.charged[p].lock();
            if *charged > 0 {
                exec.memory().free(*charged);
                *charged = 0;
            }
            drop(charged);
            let data = prov(p, exec)?;
            store_partition(&self.inner, p, exec, data)?;
        }
        Ok(())
    }

    /// Total number of records.
    pub fn count(&self) -> Result<usize> {
        let counts = self.inner.cluster.run_stage(self.num_partitions(), |p, _exec| {
            Ok(self.partition(p)?.len())
        })?;
        Ok(counts.into_iter().sum())
    }

    /// Gather all records to the driver (charges collect traffic).
    pub fn collect(&self) -> Result<Vec<T>> {
        let cluster = &self.inner.cluster;
        let mut out = Vec::new();
        for p in 0..self.num_partitions() {
            let part = self.partition(p)?;
            let bytes = slice_bytes(&part);
            cluster
                .network()
                .bulk_fetch(cluster.driver(), bytes);
            out.extend(part.iter().cloned());
        }
        cluster.clock().barrier([cluster.driver()]);
        Ok(out)
    }

    /// Narrow transformation: apply `f` to every record.
    pub fn map<U: Record>(
        &self,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> Result<Rdd<U>> {
        let ops = self.inner.cluster.config().ops_per_record;
        self.map_partitions(move |items| items.iter().map(&f).collect(), ops)
    }

    /// Narrow transformation: keep records satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Result<Rdd<T>> {
        let ops = self.inner.cluster.config().ops_per_record;
        self.map_partitions(
            move |items| items.iter().filter(|t| pred(t)).cloned().collect(),
            ops,
        )
    }

    /// Narrow transformation: one-to-many.
    pub fn flat_map<U: Record>(
        &self,
        f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static,
    ) -> Result<Rdd<U>> {
        let ops = self.inner.cluster.config().ops_per_record;
        self.map_partitions(move |items| items.iter().flat_map(&f).collect(), ops)
    }

    /// The workhorse narrow op: transform a whole partition at once,
    /// charging `ops_per_record × |partition|` of CPU. Provenance composes:
    /// the child can be rebuilt by recomputing the parent partition (or
    /// reading the parent's live copy) and re-applying `f`.
    pub fn map_partitions<U: Record>(
        &self,
        f: impl Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
        ops_per_record: u64,
    ) -> Result<Rdd<U>> {
        let f = Arc::new(f);
        let parent = self.clone();
        let parent_for_prov = self.clone();
        let f_prov = Arc::clone(&f);
        let prov: Provenance<U> = Arc::new(move |p, exec| {
            let src = parent_for_prov.partition_or_recompute(p, exec)?;
            Ok(f_prov(&src))
        });
        let cluster = Arc::clone(&self.inner.cluster);
        let cluster2 = Arc::clone(&cluster);
        let name = format!("{}→map", self.inner.name);
        Rdd::materialize(&cluster, name, self.num_partitions(), Some(prov), move |p, exec| {
            let src = parent.partition(p)?;
            exec.charge_cpu(cluster2.cost(), src.len() as u64 * ops_per_record);
            Ok(f(&src))
        })
    }

    /// Concatenate two RDDs (narrow union: partitions interleave).
    pub fn union(&self, other: &Rdd<T>) -> Result<Rdd<T>> {
        let a = self.clone();
        let b = other.clone();
        let na = self.num_partitions();
        let total = na + other.num_partitions();
        let a2 = a.clone();
        let b2 = b.clone();
        let prov: Provenance<T> = Arc::new(move |p, exec| {
            if p < na {
                Ok(a2.partition_or_recompute(p, exec)?.as_ref().clone())
            } else {
                Ok(b2.partition_or_recompute(p - na, exec)?.as_ref().clone())
            }
        });
        let cluster = Arc::clone(&self.inner.cluster);
        Rdd::materialize(&cluster, "union", total, Some(prov), move |p, _exec| {
            if p < na {
                Ok(a.partition(p)?.as_ref().clone())
            } else {
                Ok(b.partition(p - na)?.as_ref().clone())
            }
        })
    }

    /// Fold every record into an accumulator on the driver.
    pub fn fold<A>(&self, init: A, f: impl Fn(A, &T) -> A) -> Result<A> {
        let mut acc = init;
        for p in 0..self.num_partitions() {
            let part = self.partition(p)?;
            for item in part.iter() {
                acc = f(acc, item);
            }
        }
        Ok(acc)
    }

    /// Drop the lineage chain, keeping the materialized data.
    ///
    /// Provenance closures hold their ancestor RDDs alive (and therefore
    /// the ancestors' cached partitions and memory charges). Iterative
    /// jobs that derive state-N+1 from state-N must sever the chain each
    /// iteration or the whole history stays resident — the same reason
    /// Spark programs `unpersist` superseded RDDs / `checkpoint`
    /// periodically in iterative workloads. The severed RDD is no longer
    /// recoverable through lineage (recover it by recomputing from its
    /// source before severing, or accept job restart semantics).
    pub fn sever_lineage(&self) -> Rdd<T> {
        Rdd { inner: Arc::clone(&self.inner), provenance: None }
    }

    /// Bytes currently charged for this RDD across all executors.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.charged.iter().map(|c| *c.lock()).sum()
    }
}

/// Write `data` into slot `p`, charging the executor's memory meter.
fn store_partition<T: Record>(
    inner: &Arc<RddInner<T>>,
    p: usize,
    exec: &Executor,
    data: Vec<T>,
) -> Result<()> {
    let overhead = inner.cluster.config().record_overhead;
    let bytes = slice_bytes(&data)
        + (data.len() as u64 + crate::record::slice_boxed_elems(&data)) * overhead
        + 64; // partition object overhead
    exec.memory().alloc(bytes)?;
    *inner.charged[p].lock() = bytes;
    *inner.parts[p].data.write() = Some((Arc::new(data), exec.incarnation()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Arc<Cluster> {
        Cluster::local()
    }

    #[test]
    fn from_vec_distributes_and_collects() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..100u64).collect(), 8).unwrap();
        assert_eq!(rdd.num_partitions(), 8);
        assert_eq!(rdd.count().unwrap(), 100);
        let mut got = rdd.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..10u64).collect(), 4).unwrap();
        let out = rdd
            .map(|x| x * 2)
            .unwrap()
            .filter(|x| *x % 4 == 0)
            .unwrap()
            .flat_map(|x| vec![*x, *x + 1])
            .unwrap();
        let mut got = out.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 5, 8, 9, 12, 13, 16, 17]);
    }

    #[test]
    fn memory_charged_and_released() {
        let c = cluster();
        let used_before: u64 = (0..c.num_executors()).map(|i| c.executor(i).memory().in_use()).sum();
        let rdd = Rdd::from_vec(&c, vec![0u64; 10_000], 4).unwrap();
        let used_mid: u64 = (0..c.num_executors()).map(|i| c.executor(i).memory().in_use()).sum();
        assert!(used_mid >= used_before + 80_000);
        assert!(rdd.resident_bytes() >= 80_000);
        drop(rdd);
        let used_after: u64 = (0..c.num_executors()).map(|i| c.executor(i).memory().in_use()).sum();
        assert_eq!(used_after, used_before);
    }

    #[test]
    fn oom_when_partition_exceeds_budget() {
        let cfg = crate::ClusterConfig::default().with_memory(1000);
        let c = Cluster::new(cfg);
        let err = Rdd::from_vec(&c, vec![0u64; 100_000], 4).unwrap_err();
        assert!(matches!(err, DataflowError::Oom(_)), "got {err}");
    }

    #[test]
    fn failed_rdd_frees_partial_allocations() {
        let cfg = crate::ClusterConfig::default().with_memory(1000);
        let c = Cluster::new(cfg);
        let _ = Rdd::from_vec(&c, vec![0u64; 100_000], 4);
        for i in 0..c.num_executors() {
            assert_eq!(c.executor(i).memory().in_use(), 0, "executor {i} leaked");
        }
    }

    #[test]
    fn executor_kill_loses_partition_and_recover_rebuilds() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..100u64).collect(), 8).unwrap();
        let mapped = rdd.map(|x| x + 1).unwrap();
        c.kill_executor(1);
        assert!(matches!(
            mapped.partition(1),
            Err(DataflowError::ExecutorLost { id: 1 })
        ));
        assert!(mapped.collect().is_err());
        c.restart_executor(1);
        mapped.recover().unwrap();
        let mut got = mapped.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, (1..101).collect::<Vec<u64>>());
    }

    #[test]
    fn recover_without_lineage_fails() {
        let c = cluster();
        let rdd: Rdd<u64> =
            Rdd::materialize(&c, "no-lineage", 4, None, |_p, _e| Ok(vec![1, 2, 3])).unwrap();
        c.kill_executor(0);
        c.restart_executor(0);
        assert!(matches!(rdd.recover(), Err(DataflowError::NoLineage { .. })));
    }

    #[test]
    fn recovery_is_partition_precise() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..64u64).collect(), 8).unwrap();
        c.kill_executor(2);
        c.restart_executor(2);
        rdd.recover().unwrap();
        // Only partitions 2 and 6 (home: executor 2) were rebuilt; totals intact.
        assert_eq!(rdd.count().unwrap(), 64);
    }

    #[test]
    fn union_concatenates() {
        let c = cluster();
        let a = Rdd::from_vec(&c, vec![1u64, 2], 2).unwrap();
        let b = Rdd::from_vec(&c, vec![3u64, 4, 5], 2).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.num_partitions(), 4);
        let mut got = u.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fold_accumulates() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (1..=10u64).collect(), 3).unwrap();
        let sum = rdd.fold(0u64, |acc, x| acc + x).unwrap();
        assert_eq!(sum, 55);
    }

    #[test]
    fn collect_charges_driver_time() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, vec![0u64; 100_000], 4).unwrap();
        let before = c.driver().now();
        rdd.collect().unwrap();
        assert!(c.driver().now() > before);
    }

    #[test]
    fn map_charges_compute_time() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..100_000u64).collect(), 8).unwrap();
        let before = c.now();
        let _m = rdd.map(|x| x + 1).unwrap();
        assert!(c.now() > before);
    }

    #[test]
    fn lineage_chain_recovers_through_multiple_maps() {
        let c = cluster();
        let rdd = Rdd::from_vec(&c, (0..40u64).collect(), 4).unwrap();
        let m1 = rdd.map(|x| x * 10).unwrap();
        let m2 = m1.map(|x| x + 1).unwrap();
        drop(rdd);
        drop(m1); // ancestors gone; provenance closures keep the recipes
        c.kill_executor(3);
        c.restart_executor(3);
        m2.recover().unwrap();
        let mut got = m2.collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..40).map(|x| x * 10 + 1).collect::<Vec<u64>>());
    }
}
