//! A Spark-like distributed dataflow engine, simulated in-process.
//!
//! This is the "computation engine" layer of PSGraph (paper §III-C): a
//! driver plus a pool of executors, each with a fixed number of cores and a
//! memory budget scaled from the paper's container sizes. Datasets are
//! partitioned [`Rdd`]s; narrow operations (map/filter/flatMap) run
//! partition-local, and wide operations (groupByKey/reduceByKey/join) run a
//! hash shuffle whose serialization, disk-spill, network, and hash-table
//! costs are charged to simulated clocks and memory meters.
//!
//! Two properties matter for reproducing the paper:
//!
//! 1. **Shuffle is expensive.** Map outputs are serialized and spilled to
//!    (simulated) disk, then fetched over the (simulated) network and
//!    hash-aggregated in memory — the exact mechanism that makes GraphX's
//!    join-based message passing slow.
//! 2. **Memory is finite.** Cached partitions, shuffle buffers, and join
//!    hash tables all draw from per-executor [`MemoryMeter`]s
//!    (`psgraph_sim::MemoryMeter`); exceeding the budget aborts the job
//!    with OOM, which is how the GraphX baseline fails on K-Core, Triangle
//!    Count, and the DS2 dataset in Fig. 6.
//!
//! Executor failure is injected via `psgraph_sim::FailureInjector`; lost
//! partitions are rebuilt through lineage ([`Rdd::recover`]), mirroring
//! Spark's recompute-from-source recovery described in §III-C.

pub mod cluster;
pub mod error;
pub mod rdd;
pub mod record;
pub mod shuffle;

pub use cluster::{Cluster, ClusterConfig, Executor};
pub use error::DataflowError;
pub use rdd::Rdd;
pub use record::Record;
