//! Dataflow error type.

use psgraph_sim::OutOfMemory;
use std::fmt;

/// Errors surfaced by the dataflow engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// An allocation exceeded an executor's memory budget — the Spark
    /// container would have been killed with an OOM.
    Oom(OutOfMemory),
    /// An executor died (failure injection) while holding needed state.
    ExecutorLost { id: usize },
    /// A lost partition could not be rebuilt because the RDD has no
    /// lineage back to a stable source (never materialized from one, or
    /// the lineage was truncated). Spark would fail the job the same way.
    NoLineage { rdd: String },
    /// Underlying DFS failure while (re)reading source data.
    Dfs(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Oom(e) => write!(f, "dataflow OOM: {e}"),
            DataflowError::ExecutorLost { id } => write!(f, "executor {id} lost"),
            DataflowError::NoLineage { rdd } => {
                write!(f, "cannot recover rdd {rdd}: no lineage to a stable source")
            }
            DataflowError::Dfs(e) => write!(f, "dfs error: {e}"),
            DataflowError::Other(e) => write!(f, "dataflow error: {e}"),
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<OutOfMemory> for DataflowError {
    fn from(e: OutOfMemory) -> Self {
        DataflowError::Oom(e)
    }
}

impl From<psgraph_dfs::DfsError> for DataflowError {
    fn from(e: psgraph_dfs::DfsError) -> Self {
        DataflowError::Dfs(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DataflowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let oom = OutOfMemory { owner: "exec-1".into(), requested: 10, in_use: 5, budget: 8 };
        let e: DataflowError = oom.into();
        assert!(e.to_string().contains("OOM"));
        let e: DataflowError = psgraph_dfs::DfsError::NotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        assert!(DataflowError::ExecutorLost { id: 3 }.to_string().contains('3'));
        assert!(DataflowError::NoLineage { rdd: "edges".into() }
            .to_string()
            .contains("edges"));
        assert!(DataflowError::Other("boom".into()).to_string().contains("boom"));
    }
}
