//! RPC timing: charge request/response costs to simulated clocks and queue
//! service time on the callee.

use psgraph_sim::sync::Mutex;
use psgraph_sim::{CostModel, FaultSchedule, FaultSite, NodeClock, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Address of a logical node in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    Driver,
    Master,
    Executor(usize),
    Server(usize),
    Datanode(usize),
    /// A read replica in the serving tier (see `psgraph-serve`).
    Replica(usize),
}

impl NodeId {
    /// Stable numeric key for chaos hashing: `(tag << 32) | index`. Two
    /// distinct nodes never collide, and the mapping is independent of
    /// construction order.
    pub fn as_key(self) -> u64 {
        match self {
            NodeId::Driver => 0,
            NodeId::Master => 1 << 32,
            NodeId::Executor(i) => (2 << 32) | i as u64,
            NodeId::Server(i) => (3 << 32) | i as u64,
            NodeId::Datanode(i) => (4 << 32) | i as u64,
            NodeId::Replica(i) => (5 << 32) | i as u64,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Driver => write!(f, "driver"),
            NodeId::Master => write!(f, "master"),
            NodeId::Executor(i) => write!(f, "executor-{i}"),
            NodeId::Server(i) => write!(f, "server-{i}"),
            NodeId::Datanode(i) => write!(f, "datanode-{i}"),
            NodeId::Replica(i) => write!(f, "replica-{i}"),
        }
    }
}

/// Aggregate traffic counters for one simulated network.
#[derive(Debug, Default)]
pub struct NetworkStats {
    pub rpc_count: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub bytes_received: AtomicU64,
}

impl NetworkStats {
    pub fn rpcs(&self) -> u64 {
        self.rpc_count.load(Ordering::Relaxed)
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent() + self.bytes_received()
    }

    pub fn reset(&self) {
        self.rpc_count.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
    }
}

/// The service side of a node: its clock plus a FIFO availability horizon.
///
/// Concurrent RPCs to the same port serialize in simulated time — the
/// second request starts service only when the first finishes — which is
/// what makes an under-provisioned parameter server a bottleneck.
#[derive(Debug)]
pub struct ServicePort {
    id: NodeId,
    clock: NodeClock,
    next_free: Mutex<SimTime>,
}

impl ServicePort {
    pub fn new(id: NodeId) -> Self {
        ServicePort {
            id,
            clock: NodeClock::new(),
            next_free: Mutex::new(SimTime::ZERO),
        }
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn clock(&self) -> &NodeClock {
        &self.clock
    }

    /// Reserve the port from `arrival` for `service`: returns the completion
    /// time. Requests arriving while the port is busy wait their turn.
    pub fn serve(&self, arrival: SimTime, service: SimTime) -> SimTime {
        let mut free = self.next_free.lock();
        let start = free.max(arrival);
        let done = start + service;
        *free = done;
        self.clock.sync_to(done);
        done
    }

    /// Reset after a node restart: the replacement is idle from `t`.
    pub fn reset(&self, t: SimTime) {
        *self.next_free.lock() = t;
        self.clock.reset_to(t);
    }
}

/// Chaos attachment point shared by every clone of a [`Network`]. The
/// `active` flag is checked lock-free so fault-free runs pay one relaxed
/// atomic load per RPC and stay bit-identical to a build without chaos.
#[derive(Debug, Default)]
struct ChaosCell {
    active: AtomicBool,
    sched: Mutex<FaultSchedule>,
}

/// The simulated network: cost model + stats. Cheap to clone and share.
#[derive(Debug, Clone)]
pub struct Network {
    cost: Arc<CostModel>,
    stats: Arc<NetworkStats>,
    chaos: Arc<ChaosCell>,
}

impl Network {
    pub fn new(cost: CostModel) -> Self {
        Network {
            cost: Arc::new(cost),
            stats: Arc::new(NetworkStats::default()),
            chaos: Arc::new(ChaosCell::default()),
        }
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Attach a fault schedule: every clone of this network (and every
    /// subsystem holding one) starts consulting it. Attaching
    /// [`FaultSchedule::off`] detaches.
    pub fn attach_chaos(&self, sched: FaultSchedule) {
        let active = sched.is_active();
        *self.chaos.sched.lock() = sched;
        self.chaos.active.store(active, Ordering::Release);
    }

    /// The currently attached fault schedule (off by default).
    pub fn chaos(&self) -> FaultSchedule {
        self.chaos.sched.lock().clone()
    }

    /// Cheap check-then-clone: `None` unless a live schedule is attached.
    pub(crate) fn chaos_if_active(&self) -> Option<FaultSchedule> {
        if self.chaos.active.load(Ordering::Acquire) {
            Some(self.chaos.sched.lock().clone())
        } else {
            None
        }
    }

    /// A synchronous RPC from `client` to `port`.
    ///
    /// Timeline: the request leaves the client now, travels
    /// `net_cost(req_bytes)`, queues at the port, is served for
    /// `cpu_cost(server_ops)`, and the response travels
    /// `net_cost(resp_bytes)` back. The client blocks (its clock jumps to
    /// the response arrival). Returns the round-trip simulated duration.
    pub fn rpc(
        &self,
        client: &NodeClock,
        port: &ServicePort,
        req_bytes: u64,
        server_ops: u64,
        resp_bytes: u64,
    ) -> SimTime {
        let sent_at = client.now();
        let mut arrival = sent_at + self.cost.net_cost(req_bytes);
        if let Some(chaos) = self.chaos_if_active() {
            // Keyed by the call *shape* (callee + sizes + work), not by a
            // draw counter: the same logical call is perturbed identically
            // on every run and under any thread interleaving, which keeps
            // chaos runs replayable from the seed alone (determinism rule,
            // DESIGN.md "Fault model").
            let lane = req_bytes ^ resp_bytes.rotate_left(21) ^ server_ops.rotate_left(42);
            arrival += chaos.delay(FaultSite::Rpc, port.id.as_key(), lane);
        }
        let done = port.serve(arrival, self.cost.cpu_cost(server_ops));
        let back = done + self.cost.net_cost(resp_bytes);
        client.sync_to(back);
        self.stats.rpc_count.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_sent.fetch_add(req_bytes, Ordering::Relaxed);
        self.stats.bytes_received.fetch_add(resp_bytes, Ordering::Relaxed);
        back.saturating_sub(sent_at)
    }

    /// Fire-and-forget message (e.g. heartbeats): charges the sender only
    /// the serialization/latency cost, and delivers at the computed arrival.
    pub fn one_way(&self, from: &NodeClock, to: &NodeClock, bytes: u64) -> SimTime {
        let arrival = from.now() + self.cost.net_cost(bytes);
        from.advance(self.cost.net_latency);
        to.sync_to(arrival);
        self.stats.rpc_count.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        arrival
    }

    /// Bulk point-to-point transfer (shuffle fetch): pipelined, so only
    /// wire time plus a single latency is charged to the receiver.
    pub fn bulk_fetch(&self, receiver: &NodeClock, bytes: u64) -> SimTime {
        let cost = self.cost.net_latency + self.cost.net_bulk_cost(bytes);
        receiver.advance(cost);
        self.stats.rpc_count.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(CostModel::default())
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::Executor(3).to_string(), "executor-3");
        assert_eq!(NodeId::Server(0).to_string(), "server-0");
        assert_eq!(NodeId::Driver.to_string(), "driver");
        assert_eq!(NodeId::Master.to_string(), "master");
        assert_eq!(NodeId::Datanode(7).to_string(), "datanode-7");
        assert_eq!(NodeId::Replica(2).to_string(), "replica-2");
    }

    #[test]
    fn rpc_advances_client_past_round_trip() {
        let n = net();
        let client = NodeClock::new();
        let port = ServicePort::new(NodeId::Server(0));
        let rtt = n.rpc(&client, &port, 1000, 1000, 1000);
        assert!(rtt > SimTime::ZERO);
        assert_eq!(client.now().as_nanos(), rtt.as_nanos());
        // Two latencies minimum.
        assert!(rtt >= n.cost_model().net_latency + n.cost_model().net_latency);
    }

    #[test]
    fn concurrent_rpcs_serialize_on_port() {
        let n = net();
        let c1 = NodeClock::new();
        let c2 = NodeClock::new();
        let port = ServicePort::new(NodeId::Server(0));
        // Both requests arrive at the same time; heavy service work.
        let ops = 2_000_000_000; // 1 simulated second of server CPU
        n.rpc(&c1, &port, 10, ops, 10);
        n.rpc(&c2, &port, 10, ops, 10);
        // The second client waited for the first's service slot.
        assert!(c2.now().as_secs_f64() > 1.9, "c2 at {}", c2.now());
        assert!(c1.now().as_secs_f64() < 1.1, "c1 at {}", c1.now());
    }

    #[test]
    fn port_serve_respects_arrival_time() {
        let port = ServicePort::new(NodeId::Server(1));
        let done = port.serve(SimTime::from_secs(5), SimTime::from_secs(1));
        assert_eq!(done, SimTime::from_secs(6));
        // An earlier-arriving request now queues behind.
        let done2 = port.serve(SimTime::from_secs(0), SimTime::from_secs(1));
        assert_eq!(done2, SimTime::from_secs(7));
        assert_eq!(port.clock().now(), SimTime::from_secs(7));
    }

    #[test]
    fn port_reset_clears_queue_horizon() {
        let port = ServicePort::new(NodeId::Server(0));
        port.serve(SimTime::ZERO, SimTime::from_secs(100));
        port.reset(SimTime::from_secs(1));
        let done = port.serve(SimTime::from_secs(1), SimTime::from_secs(1));
        assert_eq!(done, SimTime::from_secs(2));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let n = net();
        let c = NodeClock::new();
        let port = ServicePort::new(NodeId::Server(0));
        n.rpc(&c, &port, 100, 0, 200);
        n.bulk_fetch(&c, 50);
        assert_eq!(n.stats().rpcs(), 2);
        assert_eq!(n.stats().bytes_sent(), 100);
        assert_eq!(n.stats().bytes_received(), 250);
        assert_eq!(n.stats().total_bytes(), 350);
        n.stats().reset();
        assert_eq!(n.stats().total_bytes(), 0);
    }

    #[test]
    fn one_way_delivers_at_arrival() {
        let n = net();
        let from = NodeClock::new();
        let to = NodeClock::new();
        from.advance(SimTime::from_secs(1));
        let arrival = n.one_way(&from, &to, 1_000);
        assert!(arrival > SimTime::from_secs(1));
        assert_eq!(to.now(), arrival);
        // Sender only paid latency, not full wire time of a big message.
        assert!(from.now() < arrival + SimTime::from_secs(1));
    }

    #[test]
    fn attached_chaos_perturbs_rpc_latency_deterministically() {
        use psgraph_sim::ChaosConfig;
        let cfg = ChaosConfig {
            seed: 7,
            p_delay: 1.0,
            max_delay: SimTime(1_000_000),
            ..ChaosConfig::off()
        };
        let plain = {
            let n = net();
            let c = NodeClock::new();
            let port = ServicePort::new(NodeId::Server(0));
            n.rpc(&c, &port, 1000, 1000, 1000)
        };
        let run = || {
            let n = net();
            n.attach_chaos(FaultSchedule::new(cfg));
            let c = NodeClock::new();
            let port = ServicePort::new(NodeId::Server(0));
            n.rpc(&c, &port, 1000, 1000, 1000)
        };
        let (a, b) = (run(), run());
        assert!(a > plain, "chaos delay did not lengthen the rtt: {a} vs {plain}");
        assert_eq!(a, b, "same seed + same call shape must perturb identically");
        // Detaching restores the exact fault-free timeline.
        let n = net();
        n.attach_chaos(FaultSchedule::new(cfg));
        n.attach_chaos(FaultSchedule::off());
        let c = NodeClock::new();
        let port = ServicePort::new(NodeId::Server(0));
        assert_eq!(n.rpc(&c, &port, 1000, 1000, 1000), plain);
    }

    #[test]
    fn node_id_keys_are_unique() {
        let ids = [
            NodeId::Driver,
            NodeId::Master,
            NodeId::Executor(0),
            NodeId::Executor(1),
            NodeId::Server(0),
            NodeId::Server(1),
            NodeId::Datanode(0),
            NodeId::Replica(0),
            NodeId::Replica(1),
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a.as_key(), b.as_key(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bulk_fetch_cheaper_than_per_item_rpcs() {
        let n = net();
        let a = NodeClock::new();
        let b = NodeClock::new();
        let port = ServicePort::new(NodeId::Executor(0));
        let bulk = n.bulk_fetch(&a, 1_000_000);
        let mut rpc_total = SimTime::ZERO;
        for _ in 0..100 {
            rpc_total += n.rpc(&b, &port, 10_000, 0, 0);
        }
        assert!(bulk < rpc_total, "bulk {bulk} vs rpcs {rpc_total}");
    }
}
