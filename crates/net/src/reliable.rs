//! Reliable keyed delivery over the lossy (chaos-injected) network:
//! at-least-once retry with exponential backoff and a per-delivery
//! deadline, paired with an [`IdempotencyFilter`] that turns at-least-once
//! transport into exactly-once *effects*.
//!
//! The failure model distinguishes the two legs of an RPC:
//!
//! * **request loss** — the server never saw it; retrying is harmless.
//! * **response loss** — the server applied the effect but the client
//!   cannot know, so it retries and the effect is offered *again*. Without
//!   idempotency keys a duplicated PS increment would be double-applied;
//!   the filter absorbs the second application.
//!
//! Duplication by the network itself (the receiver sees one send twice) is
//! handled the same way. All fault draws are keyed by
//! `(site, key, attempt)` so a chaos run replays bit-identically from its
//! seed (see `sim::chaos`).

use crate::rpc::{Network, ServicePort};
use psgraph_sim::sync::Mutex;
use psgraph_sim::{FaultSite, FxHashSet, NodeClock, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Retry/backoff/deadline knobs for one reliable delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Give up after this many send attempts.
    pub max_attempts: u32,
    /// Wait after the first failed attempt; doubles per retry.
    pub base_backoff: SimTime,
    /// Total simulated-time budget from first send to success.
    pub deadline: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            base_backoff: SimTime(1_000_000), // 1 ms
            deadline: SimTime::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based failed attempt):
    /// `base << attempt`, capped at 1024x base to keep the doubling from
    /// overflowing pathological configurations.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        SimTime(self.base_backoff.as_nanos().saturating_mul(1u64 << attempt.min(10)))
    }
}

/// Why a reliable delivery gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryError {
    /// The per-delivery deadline elapsed before any attempt succeeded.
    DeadlineExceeded { key: u64, attempts: u32, waited: SimTime },
    /// Every allowed attempt was lost.
    AttemptsExhausted { key: u64, attempts: u32 },
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryError::DeadlineExceeded { key, attempts, waited } => write!(
                f,
                "delivery of key {key} missed its deadline after {attempts} attempts ({waited} waited)"
            ),
            DeliveryError::AttemptsExhausted { key, attempts } => {
                write!(f, "delivery of key {key} lost on all {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DeliveryError {}

/// What happened while delivering one keyed message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryReceipt {
    /// Send attempts made (1 on the fault-free path).
    pub attempts: u32,
    /// Times the receiver-side effect closure ran (>1 means the
    /// idempotency filter had work to do).
    pub applications: u32,
    /// Request legs lost in transit.
    pub lost_requests: u32,
    /// Responses lost after the server applied the effect.
    pub lost_responses: u32,
    /// Network-duplicated deliveries.
    pub duplicates: u32,
    /// First-send to acknowledged-response, in simulated time.
    pub rtt: SimTime,
}

/// Exactly-once gate over at-least-once delivery: the first caller of
/// [`IdempotencyFilter::first_time`] for a key wins; replays and network
/// duplicates are counted and suppressed.
#[derive(Debug, Default)]
pub struct IdempotencyFilter {
    seen: Mutex<FxHashSet<u64>>,
    suppressed: AtomicU64,
}

impl IdempotencyFilter {
    pub fn new() -> Self {
        Self::default()
    }

    /// True exactly once per key.
    pub fn first_time(&self, key: u64) -> bool {
        let fresh = self.seen.lock().insert(key);
        if !fresh {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Run `effect` only on the first sighting of `key`; report whether it
    /// ran.
    pub fn apply_once(&self, key: u64, effect: impl FnOnce()) -> bool {
        let fresh = self.first_time(key);
        if fresh {
            effect();
        }
        fresh
    }

    /// Distinct keys seen.
    pub fn len(&self) -> usize {
        self.seen.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.seen.lock().is_empty()
    }

    /// Duplicate applications absorbed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

impl Network {
    /// Deliver one keyed message to `port`, retrying through injected
    /// loss/duplication/delay until acknowledged or the policy gives up.
    ///
    /// `deliver` is the receiver-side effect; it runs once per time the
    /// server *sees* the request — possibly more than once under response
    /// loss or duplication — so non-idempotent effects must be gated with
    /// an [`IdempotencyFilter`] keyed by `key`. Timing: each attempt
    /// charges the request wire time (+ injected delay), queues on the
    /// port, and returns the response; failed attempts charge an
    /// exponential-backoff timeout to the client clock. Without an active
    /// chaos schedule this is exactly one [`Network::rpc`].
    #[allow(clippy::too_many_arguments)]
    pub fn send_reliable(
        &self,
        client: &NodeClock,
        port: &ServicePort,
        req_bytes: u64,
        server_ops: u64,
        resp_bytes: u64,
        policy: &RetryPolicy,
        site: FaultSite,
        key: u64,
        deliver: &mut dyn FnMut(),
    ) -> Result<DeliveryReceipt, DeliveryError> {
        let Some(chaos) = self.chaos_if_active() else {
            let rtt = self.rpc(client, port, req_bytes, server_ops, resp_bytes);
            deliver();
            return Ok(DeliveryReceipt { attempts: 1, applications: 1, rtt, ..Default::default() });
        };

        let first_sent = client.now();
        let mut receipt = DeliveryReceipt::default();
        for attempt in 0..policy.max_attempts {
            let waited = client.now().saturating_sub(first_sent);
            if waited > policy.deadline {
                return Err(DeliveryError::DeadlineExceeded {
                    key,
                    attempts: receipt.attempts,
                    waited,
                });
            }
            receipt.attempts += 1;
            let lane = attempt as u64;
            if chaos.lose_request(site, key, lane) {
                receipt.lost_requests += 1;
                client.advance(policy.backoff(attempt));
                continue;
            }
            // The request reached the server: its effect happens exactly
            // here, whether or not the client ever learns of it.
            let arrival =
                client.now() + self.cost_model().net_cost(req_bytes) + chaos.delay(site, key, lane);
            let done = port.serve(arrival, self.cost_model().cpu_cost(server_ops));
            deliver();
            receipt.applications += 1;
            if chaos.duplicate(site, key, lane) {
                receipt.duplicates += 1;
                deliver();
                receipt.applications += 1;
            }
            self.stats().rpc_count.fetch_add(1, Ordering::Relaxed);
            self.stats().bytes_sent.fetch_add(req_bytes, Ordering::Relaxed);
            if chaos.lose_response(site, key, lane) {
                receipt.lost_responses += 1;
                client.advance(policy.backoff(attempt));
                continue;
            }
            let back = done + self.cost_model().net_cost(resp_bytes);
            client.sync_to(back);
            self.stats().bytes_received.fetch_add(resp_bytes, Ordering::Relaxed);
            receipt.rtt = client.now().saturating_sub(first_sent);
            return Ok(receipt);
        }
        Err(DeliveryError::AttemptsExhausted { key, attempts: receipt.attempts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::NodeId;
    use psgraph_sim::{ChaosConfig, CostModel, FaultSchedule};
    use std::sync::atomic::AtomicU32;

    fn net_with(cfg: ChaosConfig) -> Network {
        let n = Network::new(CostModel::default());
        n.attach_chaos(FaultSchedule::new(cfg));
        n
    }

    #[test]
    fn fault_free_path_is_one_plain_rpc() {
        let plain = Network::new(CostModel::default());
        let c0 = NodeClock::new();
        let p0 = ServicePort::new(NodeId::Server(0));
        let rtt0 = plain.rpc(&c0, &p0, 100, 50, 100);

        let n = Network::new(CostModel::default());
        let c = NodeClock::new();
        let p = ServicePort::new(NodeId::Server(0));
        let mut hits = 0;
        let r = n
            .send_reliable(
                &c,
                &p,
                100,
                50,
                100,
                &RetryPolicy::default(),
                FaultSite::Delivery,
                9,
                &mut || hits += 1,
            )
            .unwrap();
        assert_eq!((r.attempts, r.applications, hits), (1, 1, 1));
        assert_eq!(r.rtt, rtt0);
        assert_eq!(c.now(), c0.now());
    }

    #[test]
    fn request_loss_retries_and_charges_backoff() {
        // p_loss = 0.5: scan for a key whose first request leg is lost.
        let cfg = ChaosConfig { seed: 11, p_loss: 0.5, ..ChaosConfig::off() };
        let sched = FaultSchedule::new(cfg);
        let key = (0..10_000u64)
            .find(|&k| {
                sched.lose_request(FaultSite::Delivery, k, 0)
                    && !sched.lose_request(FaultSite::Delivery, k, 1)
                    && !sched.lose_response(FaultSite::Delivery, k, 1)
            })
            .expect("must exist at p=0.5");
        let n = net_with(cfg);
        let c = NodeClock::new();
        let p = ServicePort::new(NodeId::Server(0));
        let policy = RetryPolicy::default();
        let mut hits = 0;
        let r = n
            .send_reliable(&c, &p, 10, 10, 10, &policy, FaultSite::Delivery, key, &mut || {
                hits += 1
            })
            .unwrap();
        assert_eq!(r.attempts, 2);
        assert_eq!(r.lost_requests, 1);
        assert_eq!(hits, 1, "a lost request never reached the server");
        assert!(c.now() >= policy.backoff(0), "backoff was not charged");
    }

    #[test]
    fn response_loss_reapplies_but_filter_makes_it_exactly_once() {
        let cfg = ChaosConfig { seed: 21, p_loss: 0.5, ..ChaosConfig::off() };
        let sched = FaultSchedule::new(cfg);
        // First attempt: request arrives, response lost. Second attempt clean.
        let key = (0..20_000u64)
            .find(|&k| {
                !sched.lose_request(FaultSite::Delivery, k, 0)
                    && sched.lose_response(FaultSite::Delivery, k, 0)
                    && !sched.lose_request(FaultSite::Delivery, k, 1)
                    && !sched.lose_response(FaultSite::Delivery, k, 1)
            })
            .expect("must exist at p=0.5");
        let n = net_with(cfg);
        let c = NodeClock::new();
        let p = ServicePort::new(NodeId::Server(0));
        let filter = IdempotencyFilter::new();
        let effects = AtomicU32::new(0);
        let r = n
            .send_reliable(
                &c,
                &p,
                10,
                10,
                10,
                &RetryPolicy::default(),
                FaultSite::Delivery,
                key,
                &mut || {
                    filter.apply_once(key, || {
                        effects.fetch_add(1, Ordering::Relaxed);
                    });
                },
            )
            .unwrap();
        assert_eq!(r.lost_responses, 1);
        assert!(r.applications >= 2, "server saw the request twice");
        assert_eq!(effects.load(Ordering::Relaxed), 1, "double-applied despite filter");
        assert_eq!(filter.suppressed(), (r.applications - 1) as u64);
    }

    #[test]
    fn total_loss_exhausts_attempts() {
        let cfg = ChaosConfig { seed: 1, p_loss: 1.0, ..ChaosConfig::off() };
        let n = net_with(cfg);
        let c = NodeClock::new();
        let p = ServicePort::new(NodeId::Server(0));
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut hits = 0;
        let err = n
            .send_reliable(&c, &p, 10, 10, 10, &policy, FaultSite::Delivery, 5, &mut || hits += 1)
            .unwrap_err();
        assert_eq!(err, DeliveryError::AttemptsExhausted { key: 5, attempts: 3 });
        assert_eq!(hits, 0);
    }

    #[test]
    fn deadline_cuts_off_long_retry_chains() {
        let cfg = ChaosConfig { seed: 1, p_loss: 1.0, ..ChaosConfig::off() };
        let n = net_with(cfg);
        let c = NodeClock::new();
        let p = ServicePort::new(NodeId::Server(0));
        let policy = RetryPolicy {
            max_attempts: 64,
            base_backoff: SimTime::from_secs(1),
            deadline: SimTime::from_secs(3),
        };
        let err = n
            .send_reliable(&c, &p, 10, 10, 10, &policy, FaultSite::Delivery, 5, &mut || {})
            .unwrap_err();
        assert!(
            matches!(err, DeliveryError::DeadlineExceeded { key: 5, .. }),
            "expected deadline, got {err}"
        );
    }

    #[test]
    fn duplication_is_visible_and_absorbable() {
        let cfg = ChaosConfig { seed: 2, p_duplicate: 1.0, ..ChaosConfig::off() };
        let n = net_with(cfg);
        let c = NodeClock::new();
        let p = ServicePort::new(NodeId::Server(0));
        let filter = IdempotencyFilter::new();
        let effects = AtomicU32::new(0);
        let r = n
            .send_reliable(
                &c,
                &p,
                10,
                10,
                10,
                &RetryPolicy::default(),
                FaultSite::Delivery,
                3,
                &mut || {
                    filter.apply_once(3, || {
                        effects.fetch_add(1, Ordering::Relaxed);
                    });
                },
            )
            .unwrap();
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.applications, 2);
        assert_eq!(effects.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reliable_delivery_replays_bit_identically_from_the_seed() {
        let cfg = ChaosConfig { p_loss: 0.3, p_duplicate: 0.2, ..ChaosConfig::soak(77) };
        let run = || {
            let n = net_with(cfg);
            let c = NodeClock::new();
            let p = ServicePort::new(NodeId::Server(0));
            let mut receipts = Vec::new();
            for key in 0..200u64 {
                let r = n
                    .send_reliable(
                        &c,
                        &p,
                        64,
                        32,
                        64,
                        &RetryPolicy::default(),
                        FaultSite::Delivery,
                        key,
                        &mut || {},
                    )
                    .unwrap();
                receipts.push(r);
            }
            (receipts, c.now())
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
        assert!(ra.iter().any(|r| r.attempts > 1), "chaos never fired at p=0.3");
    }

    #[test]
    fn idempotency_filter_basics() {
        let f = IdempotencyFilter::new();
        assert!(f.is_empty());
        assert!(f.first_time(1));
        assert!(!f.first_time(1));
        assert!(f.first_time(2));
        assert_eq!(f.len(), 2);
        assert_eq!(f.suppressed(), 1);
    }
}
