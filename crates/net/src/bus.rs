//! A typed mailbox for asynchronous control-plane messages (heartbeats,
//! failure notifications). Data-plane traffic goes through [`crate::rpc`];
//! mailboxes exist for components that poll, like the PS master's health
//! checker.

use psgraph_sim::sync::Mutex;
use psgraph_sim::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::rpc::NodeId;

/// Snapshot of one mailbox's admission history. Backpressure loss used to
/// be invisible (`try_post` returning `false` was the only trace); these
/// counters make it observable in load reports and bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxCounters {
    /// Messages admitted into the queue.
    pub accepted: u64,
    /// Posts refused because the mailbox was full (or chaos-dropped).
    pub dropped: u64,
    /// Sender-side retries after a refused post (reported via
    /// [`Mailbox::note_retry`] / [`Sender::note_retry`]).
    pub retried: u64,
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    dropped: AtomicU64,
    retried: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> MailboxCounters {
        MailboxCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
        }
    }
}

/// A control-plane message with simulated send time.
#[derive(Debug, Clone, PartialEq)]
pub struct Message<T> {
    pub from: NodeId,
    pub sent_at: SimTime,
    pub payload: T,
}

/// Shared queue state: the deque plus a capacity (`usize::MAX` =
/// unbounded).
#[derive(Debug)]
struct Shared<T> {
    queue: Mutex<VecDeque<Message<T>>>,
    capacity: usize,
    counters: Counters,
}

/// A cloneable producer handle onto a [`Mailbox`].
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Sender<T> {
    /// Post a message. On a bounded mailbox that is full this reports
    /// backpressure by handing the message back; on an unbounded mailbox
    /// it always succeeds.
    pub fn send(&self, msg: Message<T>) -> Result<(), Message<T>> {
        let mut queue = self.shared.queue.lock();
        if queue.len() >= self.shared.capacity {
            self.shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(msg);
        }
        queue.push_back(msg);
        self.shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Record that this producer retried after a refused post.
    pub fn note_retry(&self) {
        self.shared.counters.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission counters of the mailbox this sender feeds.
    pub fn counters(&self) -> MailboxCounters {
        self.shared.counters.snapshot()
    }
}

/// MPSC mailbox — unbounded by default ([`Mailbox::new`]), or with a hard
/// capacity ([`Mailbox::bounded`]) whose producers see backpressure.
#[derive(Debug)]
pub struct Mailbox<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox {
            shared: Arc::new(Shared {
                queue: Mutex::default(),
                capacity: usize::MAX,
                counters: Counters::default(),
            }),
        }
    }

    /// A mailbox holding at most `capacity` pending messages. Posting to
    /// a full one fails ([`Mailbox::try_post`] / [`Sender::send`]) — the
    /// admission-control building block for bounded request queues.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity mailbox would reject everything");
        Mailbox {
            shared: Arc::new(Shared {
                queue: Mutex::default(),
                capacity,
                counters: Counters::default(),
            }),
        }
    }

    /// The capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A sender handle that producers can keep.
    pub fn sender(&self) -> Sender<T> {
        Sender { shared: Arc::clone(&self.shared) }
    }

    /// Post a message. Panics if the mailbox is bounded and full — callers
    /// of bounded mailboxes must use [`Mailbox::try_post`] (or
    /// [`Sender::send`]) and handle the backpressure.
    pub fn post(&self, from: NodeId, sent_at: SimTime, payload: T) {
        assert!(
            self.try_post(from, sent_at, payload),
            "post to a full bounded mailbox (capacity {}); use try_post",
            self.shared.capacity
        );
    }

    /// Post a message unless the mailbox is full; reports whether it was
    /// accepted.
    #[must_use]
    pub fn try_post(&self, from: NodeId, sent_at: SimTime, payload: T) -> bool {
        let mut queue = self.shared.queue.lock();
        if queue.len() >= self.shared.capacity {
            self.shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        queue.push_back(Message { from, sent_at, payload });
        self.shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Record that a producer retried after a refused post — keeps
    /// at-least-once senders' extra work visible next to the drops that
    /// caused it.
    pub fn note_retry(&self) {
        self.shared.counters.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission counters: accepted/dropped/retried since creation.
    pub fn counters(&self) -> MailboxCounters {
        self.shared.counters.snapshot()
    }

    /// Drain every pending message.
    pub fn drain(&self) -> Vec<Message<T>> {
        self.shared.queue.lock().drain(..).collect()
    }

    /// Non-blocking single receive.
    pub fn try_recv(&self) -> Option<Message<T>> {
        self.shared.queue.lock().pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.shared.queue.lock().is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_drain_in_order() {
        let mb: Mailbox<u32> = Mailbox::new();
        mb.post(NodeId::Executor(0), SimTime::from_secs(1), 10);
        mb.post(NodeId::Executor(1), SimTime::from_secs(2), 20);
        let msgs = mb.drain();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, 10);
        assert_eq!(msgs[0].from, NodeId::Executor(0));
        assert_eq!(msgs[1].payload, 20);
        assert!(mb.is_empty());
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mb: Mailbox<()> = Mailbox::new();
        assert!(mb.try_recv().is_none());
        assert_eq!(mb.capacity(), usize::MAX);
    }

    #[test]
    fn bounded_mailbox_reports_backpressure() {
        let mb: Mailbox<u32> = Mailbox::bounded(2);
        assert_eq!(mb.capacity(), 2);
        assert!(mb.try_post(NodeId::Driver, SimTime::ZERO, 1));
        assert!(mb.try_post(NodeId::Driver, SimTime::ZERO, 2));
        // Full: try_post refuses, Sender::send hands the message back.
        assert!(!mb.try_post(NodeId::Driver, SimTime::ZERO, 3));
        let tx = mb.sender();
        let rejected = tx
            .send(Message { from: NodeId::Driver, sent_at: SimTime::ZERO, payload: 4 })
            .unwrap_err();
        assert_eq!(rejected.payload, 4);
        // Draining frees capacity again.
        assert_eq!(mb.try_recv().unwrap().payload, 1);
        assert!(mb.try_post(NodeId::Driver, SimTime::ZERO, 5));
        let got: Vec<u32> = mb.drain().into_iter().map(|m| m.payload).collect();
        assert_eq!(got, vec![2, 5]);
    }

    #[test]
    fn counters_track_accepts_drops_and_retries() {
        let mb: Mailbox<u32> = Mailbox::bounded(2);
        assert!(mb.try_post(NodeId::Driver, SimTime::ZERO, 1));
        assert!(mb.try_post(NodeId::Driver, SimTime::ZERO, 2));
        assert!(!mb.try_post(NodeId::Driver, SimTime::ZERO, 3));
        mb.note_retry();
        let tx = mb.sender();
        assert!(tx
            .send(Message { from: NodeId::Driver, sent_at: SimTime::ZERO, payload: 4 })
            .is_err());
        tx.note_retry();
        let c = mb.counters();
        assert_eq!(c, MailboxCounters { accepted: 2, dropped: 2, retried: 2 });
        // Sender and mailbox share one counter set.
        assert_eq!(tx.counters(), c);
        // Draining frees space; the next accept is counted too.
        mb.drain();
        assert!(mb.try_post(NodeId::Driver, SimTime::ZERO, 5));
        assert_eq!(mb.counters().accepted, 3);
    }

    #[test]
    #[should_panic(expected = "full bounded mailbox")]
    fn post_to_full_bounded_mailbox_panics() {
        let mb: Mailbox<()> = Mailbox::bounded(1);
        mb.post(NodeId::Driver, SimTime::ZERO, ());
        mb.post(NodeId::Driver, SimTime::ZERO, ());
    }

    #[test]
    fn sender_handle_posts_from_other_threads() {
        let mb: Mailbox<usize> = Mailbox::new();
        let tx = mb.sender();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    tx.send(Message {
                        from: NodeId::Server(i),
                        sent_at: SimTime::ZERO,
                        payload: i,
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mb.len(), 4);
        let mut got: Vec<usize> = mb.drain().into_iter().map(|m| m.payload).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
