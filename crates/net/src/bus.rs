//! A typed mailbox for asynchronous control-plane messages (heartbeats,
//! failure notifications). Data-plane traffic goes through [`crate::rpc`];
//! mailboxes exist for components that poll, like the PS master's health
//! checker.

use psgraph_sim::sync::Mutex;
use psgraph_sim::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::rpc::NodeId;

/// A control-plane message with simulated send time.
#[derive(Debug, Clone, PartialEq)]
pub struct Message<T> {
    pub from: NodeId,
    pub sent_at: SimTime,
    pub payload: T,
}

/// A cloneable producer handle onto a [`Mailbox`].
#[derive(Debug)]
pub struct Sender<T> {
    queue: Arc<Mutex<VecDeque<Message<T>>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Sender<T> {
    /// Post a message. Infallible (the queue is unbounded and lives as
    /// long as any sender), but returns `Result` to keep the familiar
    /// channel `send()` shape.
    #[allow(clippy::result_unit_err)]
    pub fn send(&self, msg: Message<T>) -> Result<(), ()> {
        self.queue.lock().push_back(msg);
        Ok(())
    }
}

/// Unbounded MPSC mailbox.
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: Arc<Mutex<VecDeque<Message<T>>>>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox { queue: Arc::default() }
    }

    /// A sender handle that producers can keep.
    pub fn sender(&self) -> Sender<T> {
        Sender { queue: Arc::clone(&self.queue) }
    }

    /// Post a message.
    pub fn post(&self, from: NodeId, sent_at: SimTime, payload: T) {
        self.queue.lock().push_back(Message { from, sent_at, payload });
    }

    /// Drain every pending message.
    pub fn drain(&self) -> Vec<Message<T>> {
        self.queue.lock().drain(..).collect()
    }

    /// Non-blocking single receive.
    pub fn try_recv(&self) -> Option<Message<T>> {
        self.queue.lock().pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_drain_in_order() {
        let mb: Mailbox<u32> = Mailbox::new();
        mb.post(NodeId::Executor(0), SimTime::from_secs(1), 10);
        mb.post(NodeId::Executor(1), SimTime::from_secs(2), 20);
        let msgs = mb.drain();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, 10);
        assert_eq!(msgs[0].from, NodeId::Executor(0));
        assert_eq!(msgs[1].payload, 20);
        assert!(mb.is_empty());
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mb: Mailbox<()> = Mailbox::new();
        assert!(mb.try_recv().is_none());
    }

    #[test]
    fn sender_handle_posts_from_other_threads() {
        let mb: Mailbox<usize> = Mailbox::new();
        let tx = mb.sender();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    tx.send(Message {
                        from: NodeId::Server(i),
                        sent_at: SimTime::ZERO,
                        payload: i,
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mb.len(), 4);
        let mut got: Vec<usize> = mb.drain().into_iter().map(|m| m.payload).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
