//! In-process network simulation for the PSGraph cluster.
//!
//! Data moves between logical nodes by ordinary function calls (everything
//! lives in one address space), so this crate's job is *timing and
//! accounting*, not transport: every RPC charges latency + wire time to the
//! caller, queues on the callee's service port, and updates global traffic
//! statistics. The model is a simplified single-server queue per port —
//! good enough to reproduce the communication-bound behaviour of the
//! paper's parameter server under 10 GbE.

pub mod bus;
pub mod reliable;
pub mod rpc;

pub use bus::{Mailbox, MailboxCounters, Message, Sender};
pub use reliable::{DeliveryError, DeliveryReceipt, IdempotencyFilter, RetryPolicy};
pub use rpc::{Network, NetworkStats, NodeId, ServicePort};
