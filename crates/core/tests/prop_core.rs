//! Property tests for algorithm invariants that hold on any graph, using
//! the in-tree harness.

use psgraph_core::algos::{ConnectedComponents, KCore, TriangleCount};
use psgraph_core::runner::distribute_edges;
use psgraph_core::PsGraphContext;
use psgraph_harness::prop::{check_with, Config, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};
use psgraph_graph::EdgeList;

fn arb_graph(src: &mut Source) -> EdgeList {
    let n = src.u64_range(4, 40);
    let edges = src.vec_with(1, 120, |s| (s.u64_range(0, n), s.u64_range(0, n)));
    EdgeList::new(n, edges).dedup()
}

#[test]
fn coreness_never_exceeds_degree() {
    check_with(
        "coreness_never_exceeds_degree",
        &Config::with_cases(10),
        arb_graph,
        |g| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            let deg = g.undirected().out_degrees();
            for (v, (&c, &d)) in out.coreness.iter().zip(&deg).enumerate() {
                prop_assert!(c <= d, "vertex {}: coreness {} > degree {}", v, c, d);
            }
            Ok(())
        },
    );
}

#[test]
fn triangle_count_bounded_by_edge_triples() {
    check_with(
        "triangle_count_bounded_by_edge_triples",
        &Config::with_cases(10),
        arb_graph,
        |g| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out = TriangleCount::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            // m undirected edges allow at most m·(m-1)/3 triangles — a
            // loose sanity bound that catches double counting.
            let m = g.undirected().edges().len() as u64 / 2;
            prop_assert!(
                out.triangles <= m.saturating_mul(m.saturating_sub(1)) / 3 + 1,
                "{} triangles from {} edges",
                out.triangles,
                m
            );
            Ok(())
        },
    );
}

#[test]
fn component_labels_are_constant_within_an_edge() {
    check_with(
        "component_labels_are_constant_within_an_edge",
        &Config::with_cases(10),
        arb_graph,
        |g| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out =
                ConnectedComponents::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            for &(s, d) in g.edges() {
                prop_assert_eq!(
                    out.labels[s as usize],
                    out.labels[d as usize],
                    "edge ({}, {}) spans components",
                    s,
                    d
                );
            }
            Ok(())
        },
    );
}
