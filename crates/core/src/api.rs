//! The paper's programming interface (Listing 1): a `GraphAlgo` with a
//! `transform` method, driven by a `GraphRunner` that loads the dataset,
//! runs the algorithm, and saves the output.
//!
//! ```text
//! class GraphRunner {
//!   def main(args) = {
//!     SparkContext.getOrCreate(); PSContext.getOrCreate()
//!     val algo   = new GraphAlgo(params)
//!     val graph  = GraphIO.load(params)
//!     val output = algo.transform(graph)
//!     GraphIO.save(output)
//!   }
//! }
//! ```

use std::sync::Arc;

use psgraph_dataflow::Rdd;

use crate::algos::{ConnectedComponents, KCore, LabelPropagation, PageRank};
use crate::context::PsGraphContext;
use crate::error::Result;
use crate::runner;

/// An algorithm that transforms an edge dataset into per-vertex values —
/// the `GraphAlgo.transform(dataset)` of Listing 1. Implemented by every
/// traditional-graph algorithm whose output is a vertex table.
pub trait GraphAlgorithm {
    /// Human-readable job name (used for output paths / logs).
    fn name(&self) -> &'static str;

    /// Run on an edge RDD; return `(vertex, value)` rows.
    fn transform(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<Vec<(u64, f64)>>;
}

impl GraphAlgorithm for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn transform(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<Vec<(u64, f64)>> {
        let out = self.run(ctx, edges, num_vertices)?;
        Ok(out.ranks.iter().enumerate().map(|(v, &r)| (v as u64, r)).collect())
    }
}

impl GraphAlgorithm for KCore {
    fn name(&self) -> &'static str {
        "kcore"
    }

    fn transform(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<Vec<(u64, f64)>> {
        let out = self.run(ctx, edges, num_vertices)?;
        Ok(out.coreness.iter().enumerate().map(|(v, &c)| (v as u64, c as f64)).collect())
    }
}

impl GraphAlgorithm for LabelPropagation {
    fn name(&self) -> &'static str {
        "label_propagation"
    }

    fn transform(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<Vec<(u64, f64)>> {
        let out = self.run(ctx, edges, num_vertices)?;
        Ok(out.labels.iter().enumerate().map(|(v, &l)| (v as u64, l as f64)).collect())
    }
}

impl GraphAlgorithm for ConnectedComponents {
    fn name(&self) -> &'static str {
        "connected_components"
    }

    fn transform(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<Vec<(u64, f64)>> {
        let out = self.run(ctx, edges, num_vertices)?;
        Ok(out.labels.iter().enumerate().map(|(v, &l)| (v as u64, l as f64)).collect())
    }
}

/// Listing 1's `GraphRunner.main`: load from the DFS, transform, save.
/// Returns the output DFS path.
pub fn run_job(
    ctx: &Arc<PsGraphContext>,
    algo: &dyn GraphAlgorithm,
    input_path: &str,
    num_vertices: u64,
) -> Result<String> {
    let edges = runner::load_edges(ctx, input_path)?;
    let output = algo.transform(ctx, &edges, num_vertices)?;
    let out_path = format!("/out/{}.bin", algo.name());
    runner::save_vertex_values(ctx, &out_path, &output)?;
    Ok(out_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_graph::{gen, io, metrics};

    #[test]
    fn run_job_executes_listing1_flow() {
        let ctx = PsGraphContext::local();
        let g = gen::rmat(100, 600, Default::default(), 501).dedup();
        io::write_binary(ctx.dfs(), "/in/g.bin", &g, ctx.cluster().driver()).unwrap();

        let path = run_job(&ctx, &KCore::default(), "/in/g.bin", 100).unwrap();
        assert_eq!(path, "/out/kcore.bin");
        let saved = runner::load_vertex_values(&ctx, &path).unwrap();
        let exact = metrics::kcore_exact(&g);
        for (v, x) in saved {
            assert_eq!(x as u64, exact[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn multiple_algorithms_through_the_same_runner() {
        let ctx = PsGraphContext::local();
        let g = gen::rmat(60, 300, Default::default(), 503).dedup();
        io::write_binary(ctx.dfs(), "/in/g.bin", &g, ctx.cluster().driver()).unwrap();
        let algos: Vec<Box<dyn GraphAlgorithm>> = vec![
            Box::new(PageRank { max_iterations: 10, ..Default::default() }),
            Box::new(KCore::default()),
            Box::new(LabelPropagation::default()),
            Box::new(ConnectedComponents::default()),
        ];
        let mut paths = Vec::new();
        for a in &algos {
            paths.push(run_job(&ctx, a.as_ref(), "/in/g.bin", 60).unwrap());
        }
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert!(ctx.dfs().exists(p), "{p} missing");
        }
        // PS must be clean between jobs (objects unregistered).
        assert_eq!(ctx.ps().resident_bytes(), 0);
    }
}
