//! `PsGraphContext`: the paper's `SparkContext` + `PSContext` pair plus the
//! master's failure-recovery policy (§III-B, §III-C).

use std::sync::Arc;

use psgraph_dataflow::{Cluster, ClusterConfig};
use psgraph_dfs::{Dfs, DfsConfig};
use psgraph_net::Network;
use psgraph_ps::sync::SyncController;
use psgraph_ps::{Master, Ps, PsConfig, SyncMode};
use psgraph_sim::{CostModel, SimTime};

use crate::error::Result;

/// Everything needed to stand up one PSGraph deployment.
#[derive(Debug, Clone)]
pub struct PsGraphConfig {
    pub cluster: ClusterConfig,
    pub ps: PsConfig,
    pub dfs: DfsConfig,
    pub sync: SyncMode,
}

impl Default for PsGraphConfig {
    fn default() -> Self {
        PsGraphConfig {
            cluster: ClusterConfig::default(),
            ps: PsConfig::default(),
            dfs: DfsConfig::default(),
            sync: SyncMode::Bsp,
        }
    }
}

impl PsGraphConfig {
    /// Share one cost model across the whole simulated datacenter.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cluster.cost = cost.clone();
        self.ps.cost = cost;
        self
    }

    /// Run the cluster's stage tasks and the PS's psFunc fan-out on one
    /// explicit thread pool (thread-count sweeps, determinism tests).
    pub fn with_pool(mut self, pool: std::sync::Arc<psgraph_harness::Pool>) -> Self {
        self.cluster.pool = Some(std::sync::Arc::clone(&pool));
        self.ps.pool = Some(pool);
        self
    }

    /// Paper-style sizing: `executors × exec_mem` + `servers × server_mem`.
    pub fn sized(
        executors: usize,
        exec_mem: u64,
        servers: usize,
        server_mem: u64,
    ) -> Self {
        let mut cfg = PsGraphConfig::default();
        cfg.cluster = cfg.cluster.with_executors(executors).with_memory(exec_mem);
        cfg.ps.servers = servers;
        cfg.ps.memory_per_server = server_mem;
        cfg
    }
}

/// Execution statistics returned by every algorithm run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Supersteps / iterations executed.
    pub supersteps: u64,
    /// Simulated wall-clock the job took.
    pub elapsed: SimTime,
    /// Bytes moved over the Spark-side network (shuffles, collects).
    pub spark_net_bytes: u64,
    /// Bytes moved over the PS network (pull/push).
    pub ps_net_bytes: u64,
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} supersteps in {} (spark {} MB, ps {} MB over the wire)",
            self.supersteps,
            self.elapsed,
            self.spark_net_bytes / (1 << 20),
            self.ps_net_bytes / (1 << 20),
        )
    }
}

/// One PSGraph deployment: Spark cluster + PS cluster + DFS.
pub struct PsGraphContext {
    cluster: Arc<Cluster>,
    ps: Arc<Ps>,
    dfs: Arc<Dfs>,
    sync: SyncController,
    master: Master,
}

impl std::fmt::Debug for PsGraphContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PsGraphContext")
            .field("executors", &self.cluster.num_executors())
            .field("servers", &self.ps.num_servers())
            .finish()
    }
}

impl PsGraphContext {
    pub fn new(config: PsGraphConfig) -> Arc<Self> {
        let cluster = Cluster::new(config.cluster.clone());
        let ps = Ps::new(config.ps.clone());
        let dfs = Arc::new(Dfs::new(config.dfs.clone(), Network::new(config.ps.cost.clone())));
        Arc::new(PsGraphContext {
            cluster,
            ps,
            dfs,
            sync: SyncController::new(config.sync),
            master: Master::new(),
        })
    }

    /// A small default deployment (tests, examples).
    pub fn local() -> Arc<Self> {
        Self::new(PsGraphConfig::default())
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn ps(&self) -> &Arc<Ps> {
        &self.ps
    }

    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    pub fn sync(&self) -> &SyncController {
        &self.sync
    }

    /// The PS master (health checks, restart + recovery bookkeeping).
    pub fn master(&self) -> &Master {
        &self.master
    }

    pub fn cost(&self) -> &CostModel {
        self.cluster.cost()
    }

    /// Current simulated time (global barrier clock).
    pub fn now(&self) -> SimTime {
        self.cluster.now()
    }

    /// Snapshot network counters (for [`PsGraphContext::stats_since`]).
    pub fn net_snapshot(&self) -> (u64, u64) {
        (
            self.cluster.network().stats().total_bytes(),
            self.ps.network().stats().total_bytes(),
        )
    }

    /// Build run statistics from a start time + network snapshot.
    pub fn stats_since(
        &self,
        start: SimTime,
        snapshot: (u64, u64),
        supersteps: u64,
    ) -> RunStats {
        let (spark0, ps0) = snapshot;
        let (spark1, ps1) = self.net_snapshot();
        RunStats {
            supersteps,
            elapsed: self.now().saturating_sub(start),
            spark_net_bytes: spark1.saturating_sub(spark0),
            ps_net_bytes: ps1.saturating_sub(ps0),
        }
    }

    /// Failure maintenance at the top of superstep `step` (§III-B/C):
    ///
    /// * kills any executor/server whose scripted failure is due,
    /// * has the master detect + restart them (charging detection and
    ///   container-restart overhead to the global clock),
    /// * restores the failed server's partitions from the last checkpoint
    ///   (per-object recovery mode decides failed-only vs everyone),
    /// * blocks the healthy executors at the barrier while this happens.
    ///
    /// RDD recovery (reloading lost partitions through lineage) is the
    /// caller's job — it knows which RDDs matter.
    ///
    /// Returns `(killed executors, killed servers)`.
    pub fn superstep_maintenance(&self, step: u64) -> Result<(Vec<usize>, Vec<usize>)> {
        let killed_execs = self.cluster.apply_failures(step);
        let killed_servers = self.ps.apply_failures(step);

        for &e in &killed_execs {
            self.cluster.restart_executor(e); // charges restart overhead
        }
        if !killed_servers.is_empty() {
            // The master detects the dead servers via its health check,
            // has the resource manager restart them, and restores their
            // checkpointed state (§III-B).
            let recovered =
                self.master.recover_failed(&self.ps, &self.dfs, self.cluster.now())?;
            debug_assert_eq!(recovered, killed_servers);
            self.cluster.clock().barrier([self.master.clock()]);
        }

        if !killed_execs.is_empty() || !killed_servers.is_empty() {
            // Healthy executors block at the synchronization barrier until
            // recovery completes (§III-C).
            let until = self.cluster.now();
            let clocks: Vec<_> = (0..self.cluster.num_executors())
                .map(|i| self.cluster.executor(i).clock())
                .collect();
            self.sync.block_until(self.cluster.clock(), clocks.iter().copied(), until);
        }
        Ok((killed_execs, killed_servers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_ps::{Partitioner, RecoveryMode, VectorHandle};
    use psgraph_sim::{FailPlan, NodeClock};

    #[test]
    fn context_wires_components() {
        let ctx = PsGraphContext::local();
        assert_eq!(ctx.cluster().num_executors(), 4);
        assert_eq!(ctx.ps().num_servers(), 2);
        assert_eq!(ctx.now(), SimTime::ZERO);
    }

    #[test]
    fn sized_config() {
        let cfg = PsGraphConfig::sized(8, 1 << 20, 4, 1 << 21);
        assert_eq!(cfg.cluster.executors, 8);
        assert_eq!(cfg.cluster.memory_per_executor, 1 << 20);
        assert_eq!(cfg.ps.servers, 4);
        assert_eq!(cfg.ps.memory_per_server, 1 << 21);
    }

    #[test]
    fn stats_since_tracks_deltas() {
        let ctx = PsGraphContext::local();
        let start = ctx.now();
        let snap = ctx.net_snapshot();
        let v = VectorHandle::<f64>::create(
            ctx.ps(), "v", 100, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let c = NodeClock::new();
        v.push_add(&c, &[1, 2, 3], &[1.0, 2.0, 3.0]).unwrap();
        let stats = ctx.stats_since(start, snap, 3);
        assert_eq!(stats.supersteps, 3);
        assert!(stats.ps_net_bytes > 0);
        assert_eq!(stats.spark_net_bytes, 0);
        assert!(stats.to_string().contains("3 supersteps"));
    }

    #[test]
    fn maintenance_without_failures_is_free() {
        let ctx = PsGraphContext::local();
        let before = ctx.now();
        let (e, s) = ctx.superstep_maintenance(0).unwrap();
        assert!(e.is_empty() && s.is_empty());
        assert_eq!(ctx.now(), before);
    }

    #[test]
    fn maintenance_recovers_server_from_checkpoint() {
        let ctx = PsGraphContext::local();
        let c = NodeClock::new();
        let v = VectorHandle::<f64>::create(
            ctx.ps(), "state", 64, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.push_set(&c, &[0, 63], &[1.0, 2.0]).unwrap();
        ctx.ps().checkpoint_all(ctx.dfs()).unwrap();
        ctx.ps().injector().schedule(FailPlan::kill_server(0, 5));
        let before = ctx.now();
        let (e, s) = ctx.superstep_maintenance(5).unwrap();
        assert!(e.is_empty());
        assert_eq!(s, vec![0]);
        assert!(ctx.now() > before, "recovery must cost time");
        // Data intact after recovery.
        assert_eq!(v.pull(&c, &[0, 63]).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn maintenance_restarts_executor_and_blocks_peers() {
        let ctx = PsGraphContext::local();
        ctx.cluster().injector().schedule(FailPlan::kill_executor(2, 1));
        let (e, s) = ctx.superstep_maintenance(1).unwrap();
        assert_eq!(e, vec![2]);
        assert!(s.is_empty());
        assert!(ctx.cluster().executor(2).is_alive());
        // Everyone advanced to at least the recovery completion time.
        let t = ctx.now();
        for i in 0..ctx.cluster().num_executors() {
            assert_eq!(ctx.cluster().executor(i).clock().now(), t);
        }
        assert!(t >= ctx.cost().restart_overhead());
    }
}
