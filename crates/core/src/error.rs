//! Unified error type for PSGraph jobs.

use std::fmt;

/// Any failure surfaced while running a PSGraph algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Dataflow(psgraph_dataflow::DataflowError),
    Ps(psgraph_ps::PsError),
    Dfs(String),
    /// Algorithm-level invariant violation or bad configuration.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dataflow(e) => write!(f, "{e}"),
            CoreError::Ps(e) => write!(f, "{e}"),
            CoreError::Dfs(e) => write!(f, "dfs: {e}"),
            CoreError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<psgraph_dataflow::DataflowError> for CoreError {
    fn from(e: psgraph_dataflow::DataflowError) -> Self {
        CoreError::Dataflow(e)
    }
}

impl From<psgraph_ps::PsError> for CoreError {
    fn from(e: psgraph_ps::PsError) -> Self {
        CoreError::Ps(e)
    }
}

impl From<psgraph_dfs::DfsError> for CoreError {
    fn from(e: psgraph_dfs::DfsError) -> Self {
        CoreError::Dfs(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Adapter for PS calls made *inside* dataflow stage closures (which must
/// return `DataflowError`): preserves OOM typing, stringifies the rest.
pub(crate) trait PsResultExt<T> {
    fn df(self) -> std::result::Result<T, psgraph_dataflow::DataflowError>;
}

impl<T> PsResultExt<T> for std::result::Result<T, psgraph_ps::PsError> {
    fn df(self) -> std::result::Result<T, psgraph_dataflow::DataflowError> {
        self.map_err(|e| match e {
            psgraph_ps::PsError::Oom(o) => psgraph_dataflow::DataflowError::Oom(o),
            other => psgraph_dataflow::DataflowError::Other(other.to_string()),
        })
    }
}

impl CoreError {
    /// Whether this is an out-of-memory failure (either side).
    pub fn is_oom(&self) -> bool {
        matches!(
            self,
            CoreError::Dataflow(psgraph_dataflow::DataflowError::Oom(_))
                | CoreError::Ps(psgraph_ps::PsError::Oom(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_sim::OutOfMemory;

    #[test]
    fn conversions_and_is_oom() {
        let oom = OutOfMemory { owner: "x".into(), requested: 1, in_use: 0, budget: 0 };
        let e: CoreError = psgraph_dataflow::DataflowError::Oom(oom.clone()).into();
        assert!(e.is_oom());
        let e: CoreError = psgraph_ps::PsError::Oom(oom).into();
        assert!(e.is_oom());
        let e: CoreError = psgraph_ps::PsError::ServerDown { id: 1 }.into();
        assert!(!e.is_oom());
        let e: CoreError = psgraph_dfs::DfsError::NotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        assert!(CoreError::Invalid("bad".into()).to_string().contains("bad"));
    }
}
