//! `GraphRunner` / `GraphIO` (paper Listing 1): load graph data from the
//! DFS into executor RDDs, convert edge partitioning to vertex
//! partitioning with `groupBy`, and save results.

use std::sync::Arc;

use psgraph_dataflow::rdd::Provenance;
use psgraph_dataflow::{Cluster, Rdd};
use psgraph_graph::io;
use psgraph_graph::EdgeList;
use psgraph_sim::NodeClock;

use crate::context::PsGraphContext;
use crate::error::{CoreError, Result};

/// Load a binary edge file from the DFS into an edge RDD.
///
/// Each executor reads its input split (we charge every partition a
/// `1/partitions` share of the file's disk + network cost, as HDFS splits
/// would). The RDD's lineage reaches back to the DFS path, so executor
/// failures recover by re-reading the split — exactly the paper's
/// "reloads graph data from HDFS and continues training" (§III-C).
pub fn load_edges(ctx: &Arc<PsGraphContext>, path: &str) -> Result<Rdd<(u64, u64)>> {
    let probe = NodeClock::new();
    let graph = Arc::new(io::read_binary(ctx.dfs(), path, &probe)?);
    let bytes = graph.byte_size() + 16;
    let parts = ctx.cluster().default_partitions();
    edges_to_rdd(ctx.cluster(), graph, bytes, parts)
}

/// Distribute an in-memory edge list as if it had been read from an input
/// split of `bytes` total (used by generators and tests; same lineage
/// semantics as [`load_edges`]).
pub fn distribute_edges(
    ctx: &Arc<PsGraphContext>,
    graph: &EdgeList,
    partitions: usize,
) -> Result<Rdd<(u64, u64)>> {
    let bytes = graph.byte_size() + 16;
    edges_to_rdd(
        ctx.cluster(),
        Arc::new(graph.clone()),
        bytes,
        partitions.max(1),
    )
}

fn edges_to_rdd(
    cluster: &Arc<Cluster>,
    graph: Arc<EdgeList>,
    total_bytes: u64,
    parts: usize,
) -> Result<Rdd<(u64, u64)>> {
    let share = total_bytes / parts as u64;
    let graph2 = Arc::clone(&graph);
    let cluster2 = Arc::clone(cluster);
    let split = move |p: usize| -> Vec<(u64, u64)> {
        graph2
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % parts == p)
            .map(|(_, &e)| e)
            .collect()
    };
    let split2 = split.clone();
    let cost_read = move |exec: &psgraph_dataflow::Executor| {
        let cost = cluster2.cost();
        exec.clock().advance(cost.disk_cost(share));
        exec.clock().advance(cost.net_bulk_cost(share));
    };
    let cost_read2 = cost_read.clone();
    let prov: Provenance<(u64, u64)> = Arc::new(move |p, exec| {
        cost_read2(exec);
        Ok(split2(p))
    });
    let cluster3 = Arc::clone(cluster);
    Rdd::materialize(&cluster3, "edges", parts, Some(prov), move |p, exec| {
        cost_read(exec);
        Ok(split(p))
    })
    .map_err(CoreError::from)
}

/// Undirected neighbor tables straight from a directed edge RDD: both
/// edge directions are emitted *inside* the shuffle write (pipelined), so
/// no symmetric edge copy is ever materialized; groups are sorted and
/// deduped inside the aggregation.
pub fn to_undirected_neighbor_tables(
    edges: &Rdd<(u64, u64)>,
) -> Result<Rdd<(u64, Vec<u64>)>> {
    let parts = edges.num_partitions();
    Ok(edges.flat_map_group_by_key_with(
        parts,
        |&(s, d), out| {
            if s != d {
                out.push((s, d));
                out.push((d, s));
            }
        },
        |_src, dsts| {
            dsts.sort_unstable();
            dsts.dedup();
        },
    )?)
}

/// Fig. 4 step 1: `groupBy` the edge RDD into neighbor tables
/// `(src, sorted unique Array[dst])` — edge partitioning → vertex
/// partitioning. Sorting/dedup happens inside the shuffle aggregation
/// (no second materialized copy).
pub fn to_neighbor_tables(edges: &Rdd<(u64, u64)>) -> Result<Rdd<(u64, Vec<u64>)>> {
    let parts = edges.num_partitions();
    Ok(edges.group_by_key_with(parts, |_src, dsts| {
        dsts.sort_unstable();
        dsts.dedup();
    })?)
}

/// Save `(vertex, value)` results to the DFS as a binary table
/// (`GraphIO.save` in Listing 1). The driver gathers and writes.
pub fn save_vertex_values(
    ctx: &Arc<PsGraphContext>,
    path: &str,
    values: &[(u64, f64)],
) -> Result<()> {
    let mut buf = Vec::with_capacity(8 + values.len() * 16);
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for &(v, x) in values {
        buf.extend_from_slice(&v.to_le_bytes());
        buf.extend_from_slice(&x.to_le_bytes());
    }
    ctx.dfs().write(path, &buf, ctx.cluster().driver())?;
    Ok(())
}

/// Read back a `(vertex, value)` table written by [`save_vertex_values`].
pub fn load_vertex_values(ctx: &Arc<PsGraphContext>, path: &str) -> Result<Vec<(u64, f64)>> {
    let bytes = ctx.dfs().read(path, ctx.cluster().driver())?;
    if bytes.len() < 8 {
        return Err(CoreError::Invalid(format!("truncated vertex table {path}")));
    }
    let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    if bytes.len() < 8 + n * 16 {
        return Err(CoreError::Invalid(format!("truncated vertex table {path}")));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let off = 8 + i * 16;
        let v = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let x = f64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
        out.push((v, x));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_graph::gen;

    #[test]
    fn load_edges_roundtrip_through_dfs() {
        let ctx = PsGraphContext::local();
        let g = gen::rmat(100, 400, Default::default(), 3);
        io::write_binary(ctx.dfs(), "/data/g", &g, ctx.cluster().driver()).unwrap();
        let rdd = load_edges(&ctx, "/data/g").unwrap();
        assert_eq!(rdd.count().unwrap(), 400);
        let mut got = rdd.collect().unwrap();
        got.sort_unstable();
        let mut want = g.edges().to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(ctx.now() > psgraph_sim::SimTime::ZERO, "load must cost time");
    }

    #[test]
    fn load_missing_file_errors() {
        let ctx = PsGraphContext::local();
        assert!(load_edges(&ctx, "/nope").is_err());
    }

    #[test]
    fn distribute_and_group_to_neighbor_tables() {
        let ctx = PsGraphContext::local();
        let g = psgraph_graph::EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (3, 0)]);
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let nt = to_neighbor_tables(&edges).unwrap();
        let mut got = nt.collect().unwrap();
        got.sort_by_key(|(v, _)| *v);
        for (_, ns) in &mut got {
            ns.sort_unstable();
        }
        assert_eq!(got, vec![(0, vec![1, 2]), (1, vec![2]), (3, vec![0])]);
    }

    #[test]
    fn edge_rdd_recovers_after_executor_failure() {
        let ctx = PsGraphContext::local();
        let g = gen::rmat(64, 256, Default::default(), 5);
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.cluster().kill_executor(1);
        ctx.cluster().restart_executor(1);
        edges.recover().unwrap();
        assert_eq!(edges.count().unwrap(), 256);
    }

    #[test]
    fn vertex_values_roundtrip() {
        let ctx = PsGraphContext::local();
        let vals = vec![(0u64, 0.5), (7, -1.25), (42, 3.0)];
        save_vertex_values(&ctx, "/out/pr", &vals).unwrap();
        assert_eq!(load_vertex_values(&ctx, "/out/pr").unwrap(), vals);
    }

    #[test]
    fn truncated_vertex_table_detected() {
        let ctx = PsGraphContext::local();
        ctx.dfs().write("/bad", &[1, 2, 3], ctx.cluster().driver()).unwrap();
        assert!(load_vertex_values(&ctx, "/bad").is_err());
        ctx.dfs()
            .write("/bad2", &100u64.to_le_bytes(), ctx.cluster().driver())
            .unwrap();
        assert!(load_vertex_values(&ctx, "/bad2").is_err());
    }
}
