//! Triangle counting (paper §V-B1: "the implementation of triangle count
//! is similar to common neighbor").
//!
//! With the undirected adjacency on the PS, each executor streams its edge
//! batch, pulls both endpoints' neighbor lists, and counts the overlap;
//! `Σ_edges |N(u) ∩ N(v)|` over each undirected edge counted once equals
//! `3 × triangles`.

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{NeighborTableHandle, Partitioner, RecoveryMode};
use psgraph_sim::FxHashSet;

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::Result;

/// Triangle-count job configuration.
#[derive(Debug, Clone)]
pub struct TriangleCount {
    pub batch_size: usize,
}

impl Default for TriangleCount {
    fn default() -> Self {
        TriangleCount { batch_size: 1024 }
    }
}

/// Result: global triangle count plus per-run statistics.
#[derive(Debug, Clone)]
pub struct TriangleOutput {
    pub triangles: u64,
    pub stats: RunStats,
}

impl TriangleCount {
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<TriangleOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();
        let mut supersteps = 0;

        // Canonical undirected edges (a < b), deduped via shuffle.
        let canon = edges.flat_map(|&(s, d)| {
            if s == d {
                vec![]
            } else {
                vec![(s.min(d), s.max(d))]
            }
        })?;
        let canon = canon.distinct(canon.num_partitions())?;

        // Undirected adjacency on the PS (pipelined symmetrize).
        let tables = crate::runner::to_undirected_neighbor_tables(&canon)?;
        let adj = NeighborTableHandle::create(
            ctx.ps(),
            "tc.adj",
            num_vertices,
            Partitioner::Hash,
            RecoveryMode::Inconsistent,
        )?;
        let adj_ref = &adj;
        ctx.cluster()
            .run_stage(tables.num_partitions(), |p, exec| {
                let part = tables.partition(p)?;
                if !part.is_empty() {
                    adj_ref.push(exec.clock(), &part).df()?;
                }
                Ok(())
            })
            .map_err(crate::error::CoreError::from)?;
        supersteps += 1;

        // Stream canonical edges; each common neighbor of (a, b) closes a
        // triangle; every triangle is counted once per of its 3 edges.
        let batch = self.batch_size.max(1);
        let rounds = {
            let counts = ctx
                .cluster()
                .run_stage(canon.num_partitions(), |p, _exec| {
                    Ok(canon.partition(p)?.len().div_ceil(batch))
                })
                .map_err(crate::error::CoreError::from)?;
            counts.into_iter().max().unwrap_or(0)
        };

        let mut total = 0u64;
        for round in 0..rounds {
            let (killed_execs, _) = ctx.superstep_maintenance(supersteps)?;
            if !killed_execs.is_empty() {
                canon.recover()?;
            }
            supersteps += 1;

            let adj_ref = &adj;
            let partials: Vec<u64> = ctx
                .cluster()
                .run_stage(canon.num_partitions(), |p, exec| {
                    let part = canon.partition(p)?;
                    let lo = round * batch;
                    if lo >= part.len() {
                        return Ok(0);
                    }
                    let hi = ((round + 1) * batch).min(part.len());
                    let slice = &part[lo..hi];
                    let mut wanted = Vec::with_capacity(slice.len() * 2);
                    for &(a, b) in slice {
                        wanted.push(a);
                        wanted.push(b);
                    }
                    let neigh = adj_ref.pull(exec.clock(), &wanted).df()?;
                    let mut count = 0u64;
                    let mut work = 0u64;
                    for (k, _) in slice.iter().enumerate() {
                        let na = &neigh[2 * k];
                        let nb = &neigh[2 * k + 1];
                        let (small, large) =
                            if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
                        let set: FxHashSet<u64> = large.iter().copied().collect();
                        count += small.iter().filter(|v| set.contains(v)).count() as u64;
                        work += (small.len() + large.len()) as u64;
                    }
                    exec.charge_cpu(ctx.cluster().cost(), work * 3);
                    Ok(count)
                })
                .map_err(crate::error::CoreError::from)?;
            total += partials.into_iter().sum::<u64>();
        }

        ctx.ps().unregister("tc.adj");
        debug_assert_eq!(total % 3, 0, "each triangle counted exactly 3 times");
        Ok(TriangleOutput {
            triangles: total / 3,
            stats: ctx.stats_since(start, snap, supersteps),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, metrics, EdgeList};

    fn count(g: &EdgeList) -> u64 {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        TriangleCount { batch_size: 16 }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
            .triangles
    }

    #[test]
    fn known_graphs() {
        assert_eq!(count(&gen::complete(4)), 4);
        assert_eq!(count(&gen::complete(6)), 20);
        assert_eq!(count(&gen::ring(8)), 0);
        assert_eq!(count(&EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)])), 1);
    }

    #[test]
    fn duplicate_and_bidirectional_edges_do_not_double_count() {
        let g = EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2), (2, 0), (0, 1), (2, 1)]);
        assert_eq!(count(&g), 1);
    }

    #[test]
    fn random_graph_matches_exact() {
        let g = gen::erdos_renyi(40, 250, 53).dedup();
        assert_eq!(count(&g), metrics::triangles_exact(&g));
    }

    #[test]
    fn powerlaw_graph_matches_exact() {
        let g = gen::rmat(50, 400, Default::default(), 59).dedup();
        assert_eq!(count(&g), metrics::triangles_exact(&g));
    }

    #[test]
    fn stats_are_populated() {
        let ctx = PsGraphContext::local();
        let g = gen::complete(8);
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let out = TriangleCount::default().run(&ctx, &edges, 8).unwrap();
        assert_eq!(out.triangles, 56);
        assert!(out.stats.elapsed > psgraph_sim::SimTime::ZERO);
        assert!(out.stats.ps_net_bytes > 0);
    }
}
