//! Label Propagation community detection (paper §II-B lists it among the
//! traditional graph algorithms PSGraph supports).
//!
//! Labels live on the PS; each superstep every vertex adopts the most
//! frequent label among its neighbors (ties broken toward the smaller
//! label for determinism). Converges when no label changes.

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{Partitioner, RecoveryMode, VectorHandle};
use psgraph_sim::FxHashMap;

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::Result;

/// Label-propagation job configuration.
#[derive(Debug, Clone)]
pub struct LabelPropagation {
    pub max_iterations: u64,
}

impl Default for LabelPropagation {
    fn default() -> Self {
        LabelPropagation { max_iterations: 30 }
    }
}

/// Result: final label per vertex plus statistics.
#[derive(Debug, Clone)]
pub struct LabelPropagationOutput {
    pub labels: Vec<u64>,
    pub stats: RunStats,
}

impl LabelPropagation {
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<LabelPropagationOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();

        let tables = crate::runner::to_undirected_neighbor_tables(edges)?;

        let labels = VectorHandle::<u64>::create(
            ctx.ps(), "lp.labels", num_vertices, Partitioner::Range, RecoveryMode::Consistent,
        )?;
        // Initial label = own vertex id.
        let ids: Vec<u64> = (0..num_vertices).collect();
        labels.push_set(ctx.cluster().driver(), &ids, &ids)?;

        let mut supersteps = 0;
        for step in 0..self.max_iterations {
            let (killed_execs, _) = ctx.superstep_maintenance(step)?;
            if !killed_execs.is_empty() {
                tables.recover()?;
            }
            supersteps += 1;

            let labels_ref = &labels;
            let changes: Vec<u64> = ctx
                .cluster()
                .run_stage(tables.num_partitions(), |p, exec| {
                    let part = tables.partition(p)?;
                    let mut wanted = Vec::new();
                    for (v, ns) in part.iter() {
                        wanted.push(*v);
                        wanted.extend_from_slice(ns);
                    }
                    let got = labels_ref.pull(exec.clock(), &wanted).df()?;
                    let mut cursor = 0;
                    let mut upd_idx = Vec::new();
                    let mut upd_val = Vec::new();
                    let mut work = 0u64;
                    for (v, ns) in part.iter() {
                        let own = got[cursor];
                        cursor += 1;
                        let nlabels = &got[cursor..cursor + ns.len()];
                        cursor += ns.len();
                        if ns.is_empty() {
                            continue;
                        }
                        let mut freq: FxHashMap<u64, u64> = FxHashMap::default();
                        for &l in nlabels {
                            *freq.entry(l).or_default() += 1;
                        }
                        let best = freq
                            .iter()
                            .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                            .max()
                            .map(|(_, std::cmp::Reverse(l))| l)
                            .unwrap();
                        work += ns.len() as u64;
                        if best != own {
                            upd_idx.push(*v);
                            upd_val.push(best);
                        }
                    }
                    exec.charge_cpu(ctx.cluster().cost(), work * 4);
                    if !upd_idx.is_empty() {
                        labels_ref.push_set(exec.clock(), &upd_idx, &upd_val).df()?;
                    }
                    Ok(upd_idx.len() as u64)
                })
                .map_err(crate::error::CoreError::from)?;

            if changes.iter().sum::<u64>() == 0 {
                break;
            }
        }

        let out = labels.pull_all(ctx.cluster().driver())?;
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);
        ctx.ps().unregister("lp.labels");
        Ok(LabelPropagationOutput { labels: out, stats: ctx.stats_since(start, snap, supersteps) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, EdgeList};

    fn run_lp(g: &EdgeList) -> LabelPropagationOutput {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        LabelPropagation::default().run(&ctx, &edges, g.num_vertices()).unwrap()
    }

    #[test]
    fn two_cliques_get_two_labels() {
        // Two K4s joined by one bridge edge.
        let mut edges = gen::complete(4).into_edges();
        for s in 4..8u64 {
            for d in 4..8u64 {
                if s != d {
                    edges.push((s, d));
                }
            }
        }
        edges.push((0, 4));
        let g = EdgeList::new(8, edges);
        let out = run_lp(&g);
        // Each clique converges internally to one label.
        assert_eq!(out.labels[1], out.labels[2]);
        assert_eq!(out.labels[1], out.labels[3]);
        assert_eq!(out.labels[5], out.labels[6]);
        assert_eq!(out.labels[5], out.labels[7]);
    }

    #[test]
    fn isolated_vertex_keeps_own_label() {
        let g = EdgeList::new(5, vec![(0, 1), (1, 0)]);
        let out = run_lp(&g);
        assert_eq!(out.labels[4], 4);
    }

    #[test]
    fn sbm_communities_recovered() {
        let s = gen::sbm2(80, 10.0, 0.2, 2, 0.1, 61);
        let out = run_lp(&s.graph);
        // Majority label within each true community should dominate.
        for half in [0..40usize, 40..80] {
            let mut freq: FxHashMap<u64, usize> = FxHashMap::default();
            for v in half.clone() {
                *freq.entry(out.labels[v]).or_default() += 1;
            }
            let max = freq.values().max().copied().unwrap_or(0);
            assert!(max >= 30, "community not coherent: {max}/40");
        }
    }

    #[test]
    fn converges_and_reports_stats() {
        let out = run_lp(&gen::complete(6));
        assert!(out.stats.supersteps <= 5, "clique converges immediately");
        assert!(out.stats.elapsed > psgraph_sim::SimTime::ZERO);
    }
}
