//! GraphSage on PSGraph (paper §IV-E, Fig. 5, Table I).
//!
//! PS state: vertex features `X` (row matrix, hash-partitioned), the
//! neighbor table `A`, and the layer weights `W¹`/`W²` (+bias rows). Each
//! training step an executor (1) pulls the current weights, (2) samples
//! 2-hop neighborhoods server-side, (3) pulls the sampled vertices'
//! features, (4) crosses the JNI bridge into the tensor runtime, runs
//! forward + backward with autograd, (5) crosses back and pushes the
//! gradients to the PS, where an Adam psFunc applies them. The mean
//! aggregator is used; layer k computes
//! `h^k_v = σ(W^k · concat(h^{k-1}_v, mean h^{k-1}_{N(v)}))`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{MatrixHandle, NeighborTableHandle, Partitioner, RecoveryMode};
use psgraph_sim::{FxHashMap, SimTime};
use psgraph_tensor::{Graph, JniBridge, Linear, Tensor};

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::{CoreError, Result};

/// GraphSage job configuration.
#[derive(Debug, Clone)]
pub struct GraphSageConfig {
    pub feat_dim: usize,
    pub hidden_dim: usize,
    pub num_classes: usize,
    /// Neighbors sampled at hop 1 (paper uses 25, scaled here).
    pub fanout1: usize,
    /// Neighbors sampled at hop 2 (paper uses 10, scaled here).
    pub fanout2: usize,
    pub batch_size: usize,
    pub epochs: u64,
    pub lr: f32,
    pub seed: u64,
    /// Fraction of vertices used for training (rest evaluate).
    pub train_fraction: f64,
}

impl Default for GraphSageConfig {
    fn default() -> Self {
        GraphSageConfig {
            feat_dim: 16,
            hidden_dim: 32,
            num_classes: 2,
            fanout1: 10,
            fanout2: 5,
            batch_size: 64,
            epochs: 3,
            lr: 0.01,
            seed: 7,
            train_fraction: 0.7,
        }
    }
}

/// GraphSage runner.
#[derive(Debug, Clone, Default)]
pub struct GraphSage {
    pub config: GraphSageConfig,
}

/// Result: accuracies, per-epoch losses and simulated epoch times, plus
/// the preprocessing time Table I compares against Euler.
#[derive(Debug, Clone)]
pub struct GraphSageOutput {
    pub train_accuracy: f64,
    pub test_accuracy: f64,
    pub loss_per_epoch: Vec<f64>,
    pub preprocess_time: SimTime,
    pub epoch_times: Vec<SimTime>,
    pub stats: RunStats,
}

/// PS handles produced by preprocessing.
pub struct GraphSageModels {
    pub adj: NeighborTableHandle,
    pub features: MatrixHandle<f32>,
    pub w1: MatrixHandle<f32>,
    pub w2: MatrixHandle<f32>,
}

fn is_train(v: u64, seed: u64, frac: f64) -> bool {
    (psgraph_sim::hash::hash_u64(v ^ seed) % 1000) as f64 / 1000.0 < frac
}

impl GraphSage {
    pub fn new(config: GraphSageConfig) -> Self {
        GraphSage { config }
    }

    /// Preprocessing (Table I "Preprocessing time"): groupBy the edges to
    /// neighbor tables, push adjacency + features to the PS, and create
    /// the weight matrices — all inside the Spark pipeline, no disk
    /// round-trips.
    pub fn preprocess(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        features: &Arc<Vec<Vec<f32>>>,
        num_vertices: u64,
    ) -> Result<(GraphSageModels, SimTime)> {
        let cfg = &self.config;
        let t0 = ctx.now();

        // Undirected adjacency via a pipelined symmetrize + groupBy
        // (in-shuffle dedup).
        let tables = crate::runner::to_undirected_neighbor_tables(edges)?;
        let adj = NeighborTableHandle::create(
            ctx.ps(), "gs.adj", num_vertices, Partitioner::Hash, RecoveryMode::Inconsistent,
        )?;
        let adj_ref = &adj;
        ctx.cluster()
            .run_stage(tables.num_partitions(), |p, exec| {
                let part = tables.partition(p)?;
                if !part.is_empty() {
                    adj_ref.push(exec.clock(), &part).df()?;
                }
                Ok(())
            })
            .map_err(CoreError::from)?;

        // Features: executors push their split of X to the PS.
        let x = MatrixHandle::<f32>::create(
            ctx.ps(), "gs.x", num_vertices, cfg.feat_dim, Partitioner::Hash,
            RecoveryMode::Inconsistent,
        )?;
        let x_ref = &x;
        let feats = Arc::clone(features);
        let nparts = ctx.cluster().default_partitions();
        ctx.cluster()
            .run_stage(nparts, move |p, exec| {
                let ids: Vec<u64> = (0..num_vertices).filter(|v| *v as usize % nparts == p).collect();
                let rows: Vec<Vec<f32>> =
                    ids.iter().map(|&v| feats[v as usize].clone()).collect();
                if !ids.is_empty() {
                    x_ref.push_set_rows(exec.clock(), &ids, &rows).df()?;
                }
                Ok(())
            })
            .map_err(CoreError::from)?;

        // Weight matrices: W¹ is (2f+1) × h (weights + bias row), W² is
        // (2h+1) × classes. The driver loads the "PyTorch model" and
        // pushes the initialized weights (Fig. 5 step 2).
        let w1 = MatrixHandle::<f32>::create(
            ctx.ps(), "gs.w1", (2 * cfg.feat_dim + 1) as u64, cfg.hidden_dim,
            Partitioner::Range, RecoveryMode::Inconsistent,
        )?;
        let w2 = MatrixHandle::<f32>::create(
            ctx.ps(), "gs.w2", (2 * cfg.hidden_dim + 1) as u64, cfg.num_classes,
            Partitioner::Range, RecoveryMode::Inconsistent,
        )?;
        let l1 = Linear::new(2 * cfg.feat_dim, cfg.hidden_dim, cfg.seed);
        let l2 = Linear::new(2 * cfg.hidden_dim, cfg.num_classes, cfg.seed ^ 1);
        push_layer(ctx, &w1, &l1)?;
        push_layer(ctx, &w2, &l2)?;
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);

        let elapsed = ctx.now().saturating_sub(t0);
        Ok((GraphSageModels { adj, features: x, w1, w2 }, elapsed))
    }

    /// Full pipeline: preprocess, train, evaluate.
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        features: &Arc<Vec<Vec<f32>>>,
        labels: &Arc<Vec<usize>>,
        num_vertices: u64,
    ) -> Result<GraphSageOutput> {
        let cfg = &self.config;
        if features.len() as u64 != num_vertices || labels.len() as u64 != num_vertices {
            return Err(CoreError::Invalid("features/labels must cover all vertices".into()));
        }
        let start = ctx.now();
        let snap = ctx.net_snapshot();
        let mut supersteps = 0u64;

        let (models, preprocess_time) = self.preprocess(ctx, edges, features, num_vertices)?;
        supersteps += 1;

        // Vertex splits, distributed round-robin over executors.
        let train: Vec<u64> = (0..num_vertices)
            .filter(|&v| is_train(v, cfg.seed, cfg.train_fraction))
            .collect();
        let test: Vec<u64> =
            (0..num_vertices).filter(|&v| !is_train(v, cfg.seed, cfg.train_fraction)).collect();
        let train_rdd = Rdd::from_vec(ctx.cluster(), train, ctx.cluster().default_partitions())
            .map_err(CoreError::from)?;

        let bridge = Arc::new(JniBridge::new(ctx.cost().clone()));
        let adam_t = Arc::new(AtomicU64::new(0));

        let mut loss_per_epoch = Vec::new();
        let mut epoch_times = Vec::new();
        for epoch in 0..cfg.epochs {
            let (killed_execs, _) = ctx.superstep_maintenance(supersteps)?;
            if !killed_execs.is_empty() {
                train_rdd.recover()?;
            }
            supersteps += 1;
            let e0 = ctx.now();

            let models_ref = &models;
            let bridge_ref = &bridge;
            let adam_ref = &adam_t;
            let labels_ref = labels;
            let losses: Vec<(f64, u64)> = ctx
                .cluster()
                .run_stage(train_rdd.num_partitions(), |p, exec| {
                    let part = train_rdd.partition(p)?;
                    let mut loss_sum = 0.0;
                    let mut batches = 0u64;
                    for (bi, batch) in part.chunks(cfg.batch_size.max(1)).enumerate() {
                        // Fig. 5 step 4a: pull the current weights.
                        let l1 = pull_layer(exec.clock(), &models_ref.w1, 2 * cfg.feat_dim)?;
                        let l2 = pull_layer(exec.clock(), &models_ref.w2, 2 * cfg.hidden_dim)?;
                        let sample_seed =
                            cfg.seed ^ (epoch << 40) ^ ((p as u64) << 20) ^ bi as u64;
                        let (x, s1, m1, s2, m2, batch_ids) = build_batch(
                            ctx, exec, models_ref, batch, cfg, sample_seed,
                        )?;
                        // Fig. 5: JNI-feed the graph mini-batch.
                        bridge_ref.feed(exec.clock(), &[&x, &s1, &m1, &s2, &m2]);

                        let mut g = Graph::new();
                        let (logits, vars) =
                            forward(&mut g, &x, &s1, &m1, &s2, &m2, &l1, &l2);
                        let y: Vec<usize> =
                            batch_ids.iter().map(|&v| labels_ref[v as usize]).collect();
                        let loss = g.softmax_cross_entropy(logits, &y);
                        g.backward(loss);
                        loss_sum += g.scalar(loss) as f64;
                        batches += 1;
                        // Charge the tensor compute to the executor.
                        let flops = (x.len() * cfg.hidden_dim
                            + s1.rows() * 2 * cfg.feat_dim * cfg.hidden_dim
                            + s2.rows() * 2 * cfg.hidden_dim * cfg.num_classes)
                            as u64;
                        exec.charge_cpu(ctx.cluster().cost(), flops * 3);

                        // Fig. 5: gradients cross back over JNI, then go
                        // to the PS where Adam (psFunc) applies them.
                        let gw1 = layer_grads(&g, vars.0, vars.1);
                        let gw2 = layer_grads(&g, vars.2, vars.3);
                        bridge_ref.read_back(exec.clock(), &[&gw1.0, &gw1.1, &gw2.0, &gw2.1]);
                        let t = adam_ref.fetch_add(1, Ordering::Relaxed) + 1;
                        push_grads(exec.clock(), &models_ref.w1, &gw1, cfg.lr, t)?;
                        push_grads(exec.clock(), &models_ref.w2, &gw2, cfg.lr, t)?;
                    }
                    Ok((loss_sum, batches))
                })
                .map_err(CoreError::from)?;

            let (lsum, bsum) = losses.into_iter().fold((0.0, 0), |(l, b), (pl, pb)| {
                (l + pl, b + pb)
            });
            loss_per_epoch.push(if bsum == 0 { 0.0 } else { lsum / bsum as f64 });
            epoch_times.push(ctx.now().saturating_sub(e0));
        }

        // Evaluation (driver-coordinated, same forward path).
        let train2: Vec<u64> = (0..num_vertices)
            .filter(|&v| is_train(v, cfg.seed, cfg.train_fraction))
            .collect();
        let train_accuracy = self.evaluate(ctx, &models, &train2, labels)?;
        let test_accuracy = self.evaluate(ctx, &models, &test, labels)?;
        supersteps += 1;

        for name in ["gs.adj", "gs.x", "gs.w1", "gs.w2", "gs.w1.m", "gs.w1.v", "gs.w2.m", "gs.w2.v"]
        {
            ctx.ps().unregister(name);
        }

        Ok(GraphSageOutput {
            train_accuracy,
            test_accuracy,
            loss_per_epoch,
            preprocess_time,
            epoch_times,
            stats: ctx.stats_since(start, snap, supersteps),
        })
    }

    /// Forward-only accuracy over `vertices`.
    pub fn evaluate(
        &self,
        ctx: &Arc<PsGraphContext>,
        models: &GraphSageModels,
        vertices: &[u64],
        labels: &Arc<Vec<usize>>,
    ) -> Result<f64> {
        if vertices.is_empty() {
            return Ok(0.0);
        }
        let cfg = &self.config;
        let rdd = Rdd::from_vec(
            ctx.cluster(),
            vertices.to_vec(),
            ctx.cluster().default_partitions(),
        )
        .map_err(CoreError::from)?;
        let labels_ref = labels;
        let counts: Vec<(u64, u64)> = ctx
            .cluster()
            .run_stage(rdd.num_partitions(), |p, exec| {
                let part = rdd.partition(p)?;
                let mut correct = 0u64;
                let mut total = 0u64;
                for (bi, batch) in part.chunks(cfg.batch_size.max(1)).enumerate() {
                    let l1 = pull_layer(exec.clock(), &models.w1, 2 * cfg.feat_dim)?;
                    let l2 = pull_layer(exec.clock(), &models.w2, 2 * cfg.hidden_dim)?;
                    let (x, s1, m1, s2, m2, ids) = build_batch(
                        ctx, exec, models, batch, cfg,
                        cfg.seed ^ 0xEAA ^ ((p as u64) << 20) ^ bi as u64,
                    )?;
                    let mut g = Graph::new();
                    let (logits, _) = forward(&mut g, &x, &s1, &m1, &s2, &m2, &l1, &l2);
                    let preds = g.value(logits).argmax_rows();
                    for (pred, &v) in preds.iter().zip(&ids) {
                        if *pred == labels_ref[v as usize] {
                            correct += 1;
                        }
                        total += 1;
                    }
                }
                Ok((correct, total))
            })
            .map_err(CoreError::from)?;
        let (c, t) = counts.into_iter().fold((0, 0), |(c, t), (pc, pt)| (c + pc, t + pt));
        Ok(if t == 0 { 0.0 } else { c as f64 / t as f64 })
    }
}

/// Push a layer's parameters to its PS matrix (weight rows, then bias).
fn push_layer(
    ctx: &Arc<PsGraphContext>,
    m: &MatrixHandle<f32>,
    layer: &Linear,
) -> Result<()> {
    let rows: Vec<u64> = (0..m.rows()).collect();
    let mut data: Vec<Vec<f32>> = Vec::with_capacity(rows.len());
    for r in 0..layer.in_dim() {
        data.push(layer.weight.row(r).to_vec());
    }
    data.push(layer.bias.data().to_vec());
    m.push_set_rows(ctx.cluster().driver(), &rows, &data)?;
    Ok(())
}

/// Pull a layer from its PS matrix.
fn pull_layer(
    clock: &psgraph_sim::NodeClock,
    m: &MatrixHandle<f32>,
    in_dim: usize,
) -> std::result::Result<Linear, psgraph_dataflow::DataflowError> {
    let rows: Vec<u64> = (0..m.rows()).collect();
    let data = m.pull_rows(clock, &rows).df()?;
    let out_dim = m.cols();
    let mut flat = Vec::with_capacity((in_dim + 1) * out_dim);
    for row in &data {
        flat.extend_from_slice(row);
    }
    Ok(Linear::from_flat(in_dim, out_dim, &flat))
}

/// Extract (weight grad, bias grad) tensors for a layer's vars.
fn layer_grads(g: &Graph, wv: psgraph_tensor::Var, bv: psgraph_tensor::Var) -> (Tensor, Tensor) {
    (
        g.grad(wv).cloned().unwrap_or_else(|| Tensor::zeros(1, 1)),
        g.grad(bv).cloned().unwrap_or_else(|| Tensor::zeros(1, 1)),
    )
}

/// Push a layer's gradients to the PS and apply Adam server-side.
fn push_grads(
    clock: &psgraph_sim::NodeClock,
    m: &MatrixHandle<f32>,
    grads: &(Tensor, Tensor),
    lr: f32,
    t: u64,
) -> std::result::Result<(), psgraph_dataflow::DataflowError> {
    let (gw, gb) = grads;
    let mut rows: Vec<u64> = (0..gw.rows() as u64).collect();
    rows.push(m.rows() - 1);
    let mut data: Vec<Vec<f32>> = (0..gw.rows()).map(|r| gw.row(r).to_vec()).collect();
    data.push(gb.data().to_vec());
    m.adam_step(clock, &rows, &data, lr, 0.9, 0.999, 1e-8, t).df()?;
    Ok(())
}

type BatchTensors = (Tensor, Tensor, Tensor, Tensor, Tensor, Vec<u64>);

/// Assemble the mini-batch tensors: features `X` of the 2-hop closure,
/// selection/aggregation matrices for each layer, and the batch ids.
fn build_batch(
    ctx: &Arc<PsGraphContext>,
    exec: &psgraph_dataflow::Executor,
    models: &GraphSageModels,
    batch: &[u64],
    cfg: &GraphSageConfig,
    seed: u64,
) -> std::result::Result<BatchTensors, psgraph_dataflow::DataflowError> {
    // Hop-1 sampling (server-side, only samples cross the wire).
    let n1 = models.adj.sample_neighbors(exec.clock(), batch, cfg.fanout1, seed).df()?;
    // Layer-1 targets: batch ∪ their sampled neighbors.
    let mut l1_ids: Vec<u64> = batch.to_vec();
    let mut seen: FxHashMap<u64, usize> =
        batch.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    for ns in &n1 {
        for &u in ns {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(u) {
                e.insert(l1_ids.len());
                l1_ids.push(u);
            }
        }
    }
    // Hop-2 sampling for every layer-1 target.
    let n2 = models
        .adj
        .sample_neighbors(exec.clock(), &l1_ids, cfg.fanout2, seed ^ 0x2).df()?;
    let mut l2_ids: Vec<u64> = l1_ids.clone();
    let mut seen2: FxHashMap<u64, usize> =
        l1_ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    for ns in &n2 {
        for &u in ns {
            if let std::collections::hash_map::Entry::Vacant(e) = seen2.entry(u) {
                e.insert(l2_ids.len());
                l2_ids.push(u);
            }
        }
    }

    // Pull features of the closure.
    let rows = models.features.pull_rows(exec.clock(), &l2_ids).df()?;
    let mut x = Tensor::zeros(l2_ids.len(), cfg.feat_dim);
    for (r, row) in rows.iter().enumerate() {
        x.row_mut(r).copy_from_slice(row);
    }

    // S1 (|L1| × |L2|) selection, M1 (|L1| × |L2|) mean aggregation.
    let mut s1 = Tensor::zeros(l1_ids.len(), l2_ids.len());
    let mut m1 = Tensor::zeros(l1_ids.len(), l2_ids.len());
    for (r, (v, ns)) in l1_ids.iter().zip(&n2).enumerate() {
        s1.set(r, seen2[v], 1.0);
        if ns.is_empty() {
            m1.set(r, seen2[v], 1.0); // no neighbors: aggregate self
        } else {
            let w = 1.0 / ns.len() as f32;
            for u in ns {
                let c = seen2[u];
                m1.set(r, c, m1.get(r, c) + w);
            }
        }
    }
    // S2/M2 (|B| × |L1|).
    let mut s2 = Tensor::zeros(batch.len(), l1_ids.len());
    let mut m2 = Tensor::zeros(batch.len(), l1_ids.len());
    for (r, (v, ns)) in batch.iter().zip(&n1).enumerate() {
        s2.set(r, seen[v], 1.0);
        if ns.is_empty() {
            m2.set(r, seen[v], 1.0);
        } else {
            let w = 1.0 / ns.len() as f32;
            for u in ns {
                let c = seen[u];
                m2.set(r, c, m2.get(r, c) + w);
            }
        }
    }
    exec.charge_cpu(
        ctx.cluster().cost(),
        (l2_ids.len() * cfg.feat_dim + l1_ids.len() + batch.len()) as u64 * 2,
    );
    Ok((x, s1, m1, s2, m2, batch.to_vec()))
}

type LayerVars =
    (psgraph_tensor::Var, psgraph_tensor::Var, psgraph_tensor::Var, psgraph_tensor::Var);

/// Two-layer GraphSage forward with mean aggregation.
#[allow(clippy::too_many_arguments)]
fn forward(
    g: &mut Graph,
    x: &Tensor,
    s1: &Tensor,
    m1: &Tensor,
    s2: &Tensor,
    m2: &Tensor,
    l1: &Linear,
    l2: &Linear,
) -> (psgraph_tensor::Var, LayerVars) {
    let xv = g.input(x.clone());
    let s1v = g.input(s1.clone());
    let m1v = g.input(m1.clone());
    let s2v = g.input(s2.clone());
    let m2v = g.input(m2.clone());

    // Layer 1 on the L1 closure.
    let own1 = g.matmul(s1v, xv);
    let agg1 = g.matmul(m1v, xv);
    let cat1 = g.concat_cols(own1, agg1);
    let (z1, w1, b1) = l1.forward(g, cat1);
    let h1 = g.relu(z1);

    // Layer 2 on the batch.
    let own2 = g.matmul(s2v, h1);
    let agg2 = g.matmul(m2v, h1);
    let cat2 = g.concat_cols(own2, agg2);
    let (logits, w2, b2) = l2.forward(g, cat2);
    (logits, (w1, b1, w2, b2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::gen;

    type Setup = (Arc<PsGraphContext>, Rdd<(u64, u64)>, Arc<Vec<Vec<f32>>>, Arc<Vec<usize>>);

    fn sbm_setup(n: u64) -> Setup {
        let s = gen::sbm2(n, 8.0, 0.5, 16, 0.8, 77);
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &s.graph, 8).unwrap();
        (ctx, edges, Arc::new(s.features), Arc::new(s.labels))
    }

    #[test]
    fn learns_sbm_classification() {
        let (ctx, edges, feats, labels) = sbm_setup(300);
        let out = GraphSage::new(GraphSageConfig { epochs: 4, ..Default::default() })
            .run(&ctx, &edges, &feats, &labels, 300)
            .unwrap();
        assert!(
            out.test_accuracy > 0.85,
            "test accuracy {} too low",
            out.test_accuracy
        );
        assert!(out.train_accuracy > 0.85);
        assert!(out.loss_per_epoch.last().unwrap() < &out.loss_per_epoch[0]);
        assert_eq!(out.epoch_times.len(), 4);
        assert!(out.preprocess_time > SimTime::ZERO);
        assert!(out.epoch_times.iter().all(|&t| t > SimTime::ZERO));
    }

    #[test]
    fn preprocess_reports_time_and_creates_models() {
        let (ctx, edges, feats, _labels) = sbm_setup(100);
        let gs = GraphSage::default();
        let (models, t) = gs.preprocess(&ctx, &edges, &feats, 100).unwrap();
        assert!(t > SimTime::ZERO);
        assert!(models.adj.len().unwrap() > 0);
        assert_eq!(models.features.rows(), 100);
        assert_eq!(models.w1.rows() as usize, 2 * 16 + 1);
        assert_eq!(models.w2.cols(), 2);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (ctx, edges, feats, labels) = sbm_setup(100);
        let err = GraphSage::default()
            .run(&ctx, &edges, &feats, &labels, 200)
            .unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)));
    }

    #[test]
    fn train_test_split_is_stable_and_covering() {
        let train: Vec<bool> = (0..1000).map(|v| is_train(v, 7, 0.7)).collect();
        let again: Vec<bool> = (0..1000).map(|v| is_train(v, 7, 0.7)).collect();
        assert_eq!(train, again);
        let n_train = train.iter().filter(|&&b| b).count();
        assert!((600..800).contains(&n_train), "split {n_train}");
    }

    #[test]
    fn forward_shapes() {
        let l1 = Linear::new(8, 6, 1);
        let l2 = Linear::new(12, 2, 2);
        let x = Tensor::uniform(10, 4, 1.0, 3);
        let s1 = Tensor::uniform(5, 10, 0.1, 4);
        let m1 = Tensor::uniform(5, 10, 0.1, 5);
        let s2 = Tensor::uniform(3, 5, 0.1, 6);
        let m2 = Tensor::uniform(3, 5, 0.1, 7);
        let mut g = Graph::new();
        let (logits, _) = forward(&mut g, &x, &s1, &m1, &s2, &m2, &l1, &l2);
        assert_eq!((g.value(logits).rows(), g.value(logits).cols()), (3, 2));
    }

    #[test]
    fn survives_executor_failure_during_training() {
        use psgraph_sim::FailPlan;
        let (ctx, edges, feats, labels) = sbm_setup(200);
        ctx.cluster().injector().schedule(FailPlan::kill_executor(1, 2));
        let out = GraphSage::new(GraphSageConfig { epochs: 3, ..Default::default() })
            .run(&ctx, &edges, &feats, &labels, 200)
            .unwrap();
        assert!(out.test_accuracy > 0.7, "accuracy {}", out.test_accuracy);
    }
}
