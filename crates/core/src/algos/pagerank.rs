//! Delta-based PageRank on the parameter server (paper §IV-A, Fig. 4).
//!
//! The PS stores two vectors, `ranks` and `Δranks`. Each superstep:
//!
//! 1. executors hold vertex-partitioned neighbor tables (built once with
//!    `groupBy`),
//! 2. each executor pulls `Δranks` of its local source vertices,
//! 3. computes the damped contributions `d·Δ_src/L(src)` to destinations,
//! 4. the PS adds `Δranks` into `ranks` and zeroes `Δranks` (server-side
//!    `accumulate_and_reset`),
//! 5. executors push the new contributions into `Δranks`.
//!
//! The run converges when `Σ|Δ|` falls below the tolerance. Only rank
//! *increments* cross the network — the sparsity optimization the paper
//! credits for the 8× win over GraphX.

use psgraph_sim::sync::Mutex;
use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{Partitioner, RecoveryMode, VectorHandle};
use psgraph_sim::FxHashMap;

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::Result;
use crate::runner::to_neighbor_tables;

/// PageRank job configuration.
#[derive(Debug, Clone)]
pub struct PageRank {
    pub damping: f64,
    pub max_iterations: u64,
    /// Stop when `Σ|Δ| / n` drops below this.
    pub tolerance: f64,
    /// Drop contributions below this magnitude instead of pushing them
    /// (§IV-A: "the ranks of many vertices barely change after several
    /// iterations; we leverage this sparsity to reduce the communication
    /// cost"). 0.0 = exact.
    pub delta_threshold: f64,
    /// Checkpoint the PS state every `k` supersteps (0 = never). PageRank
    /// is consistency-critical, so recovery rolls every server back.
    pub checkpoint_every: u64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            max_iterations: 50,
            tolerance: 1e-9,
            delta_threshold: 0.0,
            checkpoint_every: 0,
        }
    }
}

/// Result: final (unnormalized) ranks plus run statistics. Divide by the
/// vertex count for the probability-normalized form.
#[derive(Debug, Clone)]
pub struct PageRankOutput {
    pub ranks: Vec<f64>,
    pub stats: RunStats,
}

impl PageRank {
    /// Run on an edge RDD over vertex ids `[0, num_vertices)`.
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<PageRankOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();

        // groupBy: edge partitioning → vertex partitioning (Fig. 4 step 1).
        let tables = to_neighbor_tables(edges)?;

        let ranks = VectorHandle::<f64>::create(
            ctx.ps(), "pr.ranks", num_vertices, Partitioner::Range, RecoveryMode::Consistent,
        )?;
        let dranks = VectorHandle::<f64>::create(
            ctx.ps(), "pr.dranks", num_vertices, Partitioner::Range, RecoveryMode::Consistent,
        )?;
        // Seed: every vertex starts with Δ = (1-d) (unnormalized form).
        let seed: Vec<u64> = (0..num_vertices).collect();
        let seed_vals = vec![1.0 - self.damping; num_vertices as usize];
        dranks.push_set(ctx.cluster().driver(), &seed, &seed_vals)?;
        if self.checkpoint_every > 0 {
            ctx.ps().checkpoint_all(ctx.dfs())?;
        }

        let mut supersteps = 0;
        for step in 0..self.max_iterations {
            let (killed_execs, _killed_servers) = ctx.superstep_maintenance(step)?;
            if !killed_execs.is_empty() {
                tables.recover()?;
            }
            supersteps += 1;

            // Steps 2–3: pull Δ of local sources, compute contributions as
            // (dst, src, value) triples. Keeping the source id lets the
            // driver fold every destination's sum in a canonical order, so
            // the floating-point result is identical no matter how the
            // edge list was partitioned (determinism contract: same seed ⇒
            // bit-identical ranks).
            let damping = self.damping;
            let threshold = self.delta_threshold;
            let dranks_ref = &dranks;
            let staged: Vec<Vec<(u64, u64, f64)>> = ctx
                .cluster()
                .run_stage(tables.num_partitions(), |p, exec| {
                    let part = tables.partition(p)?;
                    let srcs: Vec<u64> = part.iter().map(|(s, _)| *s).collect();
                    let deltas = dranks_ref.pull_sparse(exec.clock(), &srcs).df()?;
                    let mut updates: Vec<(u64, u64, f64)> = Vec::new();
                    let mut work = 0u64;
                    for ((src, neighbors), delta) in part.iter().zip(deltas) {
                        if delta.abs() <= threshold || neighbors.is_empty() {
                            continue;
                        }
                        let contrib = damping * delta / neighbors.len() as f64;
                        for &dst in neighbors {
                            updates.push((dst, *src, contrib));
                        }
                        work += neighbors.len() as u64;
                    }
                    exec.charge_cpu(ctx.cluster().cost(), work * 4);
                    Ok(updates)
                })
                .map_err(crate::error::CoreError::from)?;

            // Canonical fold: bucket contributions by owner partition,
            // then — in parallel across owners — sort each bucket by
            // (dst, src) and sum every destination sequentially. Each
            // destination still accumulates its contributions in the
            // same globally-sorted (src) order as a single sorted pass,
            // so the floating-point result is bit-identical for any
            // partitioning AND any pool size; the expensive sort+fold is
            // what the pool parallelizes. Each destination then gets
            // exactly one add per superstep, from its owner partition.
            let num_parts = tables.num_partitions();
            let mut buckets: Vec<Vec<(u64, u64, f64)>> = vec![Vec::new(); num_parts];
            for (dst, src, c) in staged.into_iter().flatten() {
                buckets[(dst % num_parts as u64) as usize].push((dst, src, c));
            }
            let staged: Vec<FxHashMap<u64, f64>> =
                ctx.cluster().pool().map(buckets, |mut bucket| {
                    bucket.sort_unstable_by_key(|&(dst, src, _)| (dst, src));
                    let mut sums: FxHashMap<u64, f64> = FxHashMap::default();
                    for (dst, _src, c) in bucket {
                        *sums.entry(dst).or_default() += c;
                    }
                    sums
                });

            // Step 4: PS folds Δranks into ranks and resets Δranks.
            ranks.accumulate_and_reset(ctx.cluster().driver(), &dranks)?;
            ctx.cluster().clock().barrier([ctx.cluster().driver()]);

            // Step 5: push the new contributions into Δranks.
            let staged = Arc::new(
                staged.into_iter().map(|m| Mutex::new(Some(m))).collect::<Vec<_>>(),
            );
            let staged2 = Arc::clone(&staged);
            let dranks_ref = &dranks;
            ctx.cluster()
                .run_stage(tables.num_partitions(), move |p, exec| {
                    let Some(updates) = staged2[p].lock().take() else {
                        return Ok(());
                    };
                    if updates.is_empty() {
                        return Ok(());
                    }
                    let (idx, vals): (Vec<u64>, Vec<f64>) = updates.into_iter().unzip();
                    dranks_ref.push_add(exec.clock(), &idx, &vals).df()?;
                    Ok(())
                })
                .map_err(crate::error::CoreError::from)?;

            if self.checkpoint_every > 0 && (step + 1) % self.checkpoint_every == 0 {
                ctx.ps().checkpoint_all(ctx.dfs())?;
            }

            // Convergence check on the driver.
            let residual = dranks.aggregate(ctx.cluster().driver(), f64::abs)?;
            ctx.cluster().clock().barrier([ctx.cluster().driver()]);
            if residual / num_vertices as f64 <= self.tolerance {
                // Fold the final deltas in before reading out.
                ranks.accumulate_and_reset(ctx.cluster().driver(), &dranks)?;
                break;
            }
        }

        // If we exhausted iterations, fold remaining deltas for readout.
        ranks.accumulate_and_reset(ctx.cluster().driver(), &dranks)?;
        let out = ranks.pull_all(ctx.cluster().driver())?;
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);
        ctx.ps().unregister("pr.ranks");
        ctx.ps().unregister("pr.dranks");

        Ok(PageRankOutput {
            ranks: out,
            stats: ctx.stats_since(start, snap, supersteps),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, metrics, EdgeList};

    fn run_pr(g: &EdgeList, iters: u64) -> PageRankOutput {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        PageRank { max_iterations: iters, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
    }

    /// Add a ring closure so every vertex has out-degree ≥ 1 (the delta
    /// formulation drops dangling mass instead of redistributing it, so
    /// exact comparison needs dangling-free inputs).
    fn close_ring(g: &EdgeList) -> EdgeList {
        let n = g.num_vertices();
        let mut edges = g.edges().to_vec();
        for v in 0..n {
            edges.push((v, (v + 1) % n));
        }
        EdgeList::new(n, edges).dedup()
    }

    fn assert_matches_exact(g: &EdgeList, iters: u64) {
        let g = close_ring(g);
        let out = run_pr(&g, iters);
        let exact = metrics::pagerank_exact(&g, 0.85, iters as usize + 20);
        let n = g.num_vertices() as f64;
        // Without dangling vertices the unnormalized delta formulation is
        // exactly n × the normalized reference.
        for (v, (a, b)) in out.ranks.iter().zip(&exact).enumerate() {
            let ga = a / n;
            assert!(
                (ga - b).abs() < 1e-3,
                "vertex {v}: psgraph {ga} vs exact {b}"
            );
        }
    }

    #[test]
    fn uniform_on_ring() {
        let g = gen::ring(16);
        let out = run_pr(&g, 40);
        let first = out.ranks[0];
        assert!(first > 0.9, "ring rank should approach 1.0, got {first}");
        for &r in &out.ranks {
            assert!((r - first).abs() < 1e-6, "ring must be uniform");
        }
        assert!(out.stats.elapsed > psgraph_sim::SimTime::ZERO);
        assert!(out.stats.ps_net_bytes > 0, "PS traffic expected");
    }

    #[test]
    fn hub_gets_highest_rank() {
        let edges = (1..20u64).map(|v| (v, 0)).chain([(0u64, 1u64)]).collect();
        let g = EdgeList::new(20, edges);
        let out = run_pr(&g, 40);
        let hub = out.ranks[0];
        assert!(out.ranks[2..].iter().all(|&r| r < hub), "hub must dominate");
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let g = gen::erdos_renyi(60, 400, 11).dedup();
        assert_matches_exact(&g, 40);
    }

    #[test]
    fn matches_reference_on_powerlaw_graph() {
        let g = gen::rmat(80, 600, Default::default(), 13).dedup();
        assert_matches_exact(&g, 40);
    }

    #[test]
    fn early_convergence_stops_iterating() {
        let g = gen::ring(8);
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let out = PageRank { max_iterations: 500, tolerance: 1e-6, ..Default::default() }
            .run(&ctx, &edges, 8)
            .unwrap();
        assert!(
            out.stats.supersteps < 200,
            "should converge well before 500 iters, took {}",
            out.stats.supersteps
        );
    }

    #[test]
    fn survives_executor_failure_mid_run() {
        use psgraph_sim::FailPlan;
        let g = gen::rmat(64, 400, Default::default(), 17).dedup();
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.cluster().injector().schedule(FailPlan::kill_executor(1, 3));
        let out = PageRank { max_iterations: 20, ..Default::default() }
            .run(&ctx, &edges, 64)
            .unwrap();
        // Same ranking as a failure-free run.
        let ctx2 = PsGraphContext::local();
        let edges2 = distribute_edges(&ctx2, &g, 8).unwrap();
        let clean = PageRank { max_iterations: 20, ..Default::default() }
            .run(&ctx2, &edges2, 64)
            .unwrap();
        for (a, b) in out.ranks.iter().zip(&clean.ranks) {
            assert!((a - b).abs() < 1e-9, "failure must not change results");
        }
    }

    #[test]
    fn survives_server_failure_with_checkpointing() {
        use psgraph_sim::FailPlan;
        let g = gen::rmat(64, 400, Default::default(), 19).dedup();
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.ps().injector().schedule(FailPlan::kill_server(0, 4));
        let out = PageRank { max_iterations: 30, checkpoint_every: 1, ..Default::default() }
            .run(&ctx, &edges, 64)
            .unwrap();
        let ctx2 = PsGraphContext::local();
        let edges2 = distribute_edges(&ctx2, &g, 8).unwrap();
        let clean = PageRank { max_iterations: 30, ..Default::default() }
            .run(&ctx2, &edges2, 64)
            .unwrap();
        // Consistent recovery rolls back to the checkpoint, so results
        // still converge to the same fixed point.
        for (v, (a, b)) in out.ranks.iter().zip(&clean.ranks).enumerate() {
            assert!((a - b).abs() < 1e-3, "vertex {v}: {a} vs {b}");
        }
    }
}
