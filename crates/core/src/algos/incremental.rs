//! Incremental maintenance of PageRank and connected components over a
//! mutating graph — the computation half of the streaming loop
//! (`psgraph-stream` feeds these from micro-batches of edge events).
//!
//! **PageRank** uses Gauss–Southwell residual pushing. The PS holds two
//! vectors, `ranks` and `res`, with the invariant
//!
//! ```text
//! res = (1-d)·1 + d·Aᵀ·ranks − ranks        A[u][x] = 1/out_deg(u)
//! ```
//!
//! so `ranks` converges to the unnormalized fixed point
//! `r = (1-d)·1 + d·Aᵀ·r` as residuals are pushed below a threshold.
//! When an out-list changes, the invariant is repaired *locally*: only
//! the changed row of `A` touches `res`, scaled by the vertex's current
//! rank — no global recompute. Re-pushing then spreads the correction
//! only as far as it matters (|res| > threshold).
//!
//! **Connected components** keeps the min-member-id labeling of
//! [`psgraph_graph::metrics::connected_components`] (weakly connected,
//! edges treated as undirected). Edge adds union two labels in O(smaller
//! component). Edge removals recompute *one* component from its members'
//! live out-lists — bounded by the component size, never the graph.

use std::sync::Arc;

use psgraph_ps::{NeighborTableHandle, Partitioner, Ps, RecoveryMode, VectorHandle};
use psgraph_sim::{FxHashMap, FxHashSet, NodeClock};

use crate::error::{CoreError, Result};

/// Tuning for the residual-push PageRank maintainer.
#[derive(Debug, Clone)]
pub struct IncrementalPageRank {
    pub damping: f64,
    /// Residuals at or below this magnitude are left in place instead of
    /// pushed. Accuracy is ~`threshold · n / (1-d)` in L∞, so the default
    /// keeps modest graphs far inside 1e-6.
    pub threshold: f64,
    /// Safety valve on push rounds per [`IncrementalPageRank::propagate`].
    pub max_rounds: usize,
}

impl Default for IncrementalPageRank {
    fn default() -> Self {
        IncrementalPageRank { damping: 0.85, threshold: 1e-12, max_rounds: 100_000 }
    }
}

/// PS-resident state of one incrementally-maintained PageRank: the rank
/// and residual vectors plus the driver's dirty frontier.
pub struct PrState {
    pub ranks: VectorHandle<f64>,
    residuals: VectorHandle<f64>,
    /// Vertices whose residual may exceed the threshold.
    dirty: FxHashSet<u64>,
    n: u64,
}

impl PrState {
    /// Number of frontier vertices awaiting a push check.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Driver-side reset after PS crash recovery: the rank/residual
    /// vectors were rolled back to a checkpoint taken at a *converged*
    /// batch boundary (empty frontier), so the matching driver state is an
    /// empty dirty set. The event-log replay re-dirties exactly what the
    /// original run did.
    pub fn reset_after_recovery(&mut self) {
        self.dirty.clear();
    }
}

impl IncrementalPageRank {
    /// Allocate `{prefix}.ranks` and `{prefix}.res` on the PS.
    pub fn create_state(&self, ps: &Arc<Ps>, prefix: &str, n: u64) -> Result<PrState> {
        let ranks = VectorHandle::<f64>::create(
            ps,
            format!("{prefix}.ranks"),
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        let residuals = VectorHandle::<f64>::create(
            ps,
            format!("{prefix}.res"),
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        Ok(PrState { ranks, residuals, dirty: FxHashSet::default(), n })
    }

    /// Reset to the from-scratch initial condition (`ranks = 0`,
    /// `res = 1-d` everywhere) and push to convergence — a full
    /// recompute, and the baseline incremental runs are verified against.
    pub fn init_full(
        &self,
        st: &mut PrState,
        client: &NodeClock,
        adj: &NeighborTableHandle,
    ) -> Result<usize> {
        st.ranks.fill(client, 0.0)?;
        st.residuals.fill(client, 1.0 - self.damping)?;
        st.dirty = (0..st.n).collect();
        self.propagate(st, client, adj)
    }

    /// Repair the residual invariant after out-list changes. Each effect
    /// is `(src, old_list, new_list)` — the live out-list before and
    /// after the micro-batch was applied to the neighbor table. Call
    /// [`IncrementalPageRank::propagate`] afterwards to re-converge.
    pub fn on_batch(
        &self,
        st: &mut PrState,
        client: &NodeClock,
        effects: &[(u64, Vec<u64>, Vec<u64>)],
    ) -> Result<()> {
        if effects.is_empty() {
            return Ok(());
        }
        let srcs: Vec<u64> = effects.iter().map(|(s, _, _)| *s).collect();
        let ranks = st.ranks.pull(client, &srcs)?;
        let mut acc: FxHashMap<u64, f64> = FxHashMap::default();
        for ((_, old, new), r_u) in effects.iter().zip(ranks) {
            if r_u == 0.0 || old == new {
                continue;
            }
            let old_set: FxHashSet<u64> = old.iter().copied().collect();
            let new_set: FxHashSet<u64> = new.iter().copied().collect();
            let inv_old = if old.is_empty() { 0.0 } else { 1.0 / old.len() as f64 };
            let inv_new = if new.is_empty() { 0.0 } else { 1.0 / new.len() as f64 };
            // d·r_u·(row_new − row_old) of the transition matrix.
            for &x in new {
                let w = if old_set.contains(&x) { inv_new - inv_old } else { inv_new };
                if w != 0.0 {
                    *acc.entry(x).or_default() += self.damping * r_u * w;
                }
            }
            for &x in old {
                if !new_set.contains(&x) {
                    *acc.entry(x).or_default() -= self.damping * r_u * inv_old;
                }
            }
        }
        let mut upd: Vec<(u64, f64)> = acc.into_iter().filter(|&(_, w)| w != 0.0).collect();
        upd.sort_unstable_by_key(|&(v, _)| v);
        if !upd.is_empty() {
            let (idx, vals): (Vec<u64>, Vec<f64>) = upd.into_iter().unzip();
            st.residuals.push_add(client, &idx, &vals)?;
            st.dirty.extend(idx);
        }
        Ok(())
    }

    /// Push residuals until every vertex is at or below the threshold.
    /// Returns the number of push rounds.
    pub fn propagate(
        &self,
        st: &mut PrState,
        client: &NodeClock,
        adj: &NeighborTableHandle,
    ) -> Result<usize> {
        let mut rounds = 0usize;
        while !st.dirty.is_empty() {
            let mut frontier: Vec<u64> = st.dirty.iter().copied().collect();
            frontier.sort_unstable();
            st.dirty.clear();
            let res = st.residuals.pull(client, &frontier)?;
            let active: Vec<(u64, f64)> = frontier
                .into_iter()
                .zip(res)
                .filter(|&(_, r)| r.abs() > self.threshold)
                .collect();
            if active.is_empty() {
                break;
            }
            rounds += 1;
            if rounds > self.max_rounds {
                return Err(CoreError::Invalid(format!(
                    "incremental pagerank did not converge within {} rounds",
                    self.max_rounds
                )));
            }
            let (idx, vals): (Vec<u64>, Vec<f64>) = active.iter().copied().unzip();
            // Absorb the residual into the rank, then zero it exactly
            // (x + (-x) == 0 in IEEE 754).
            st.ranks.push_add(client, &idx, &vals)?;
            let negs: Vec<f64> = vals.iter().map(|v| -v).collect();
            st.residuals.push_add(client, &idx, &negs)?;
            // Distribute d·res/deg to out-neighbors, folding contributions
            // in source order so the result is partition-independent.
            let lists = adj.pull(client, &idx)?;
            let mut acc: FxHashMap<u64, f64> = FxHashMap::default();
            for ((_, r), list) in active.iter().zip(&lists) {
                if list.is_empty() {
                    continue;
                }
                let contrib = self.damping * r / list.len() as f64;
                for &x in list.iter() {
                    *acc.entry(x).or_default() += contrib;
                }
            }
            let mut upd: Vec<(u64, f64)> = acc.into_iter().collect();
            upd.sort_unstable_by_key(|&(v, _)| v);
            if !upd.is_empty() {
                let (ids, vs): (Vec<u64>, Vec<f64>) = upd.into_iter().unzip();
                st.residuals.push_add(client, &ids, &vs)?;
                st.dirty.extend(ids);
            }
        }
        Ok(rounds)
    }

    /// Current ranks (unnormalized, like [`crate::algos::PageRank`]).
    pub fn ranks(&self, st: &PrState, client: &NodeClock) -> Result<Vec<f64>> {
        Ok(st.ranks.pull_all(client)?)
    }
}

/// Counters from one [`IncrementalCc::on_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Adds that merged two components.
    pub unions: usize,
    /// Removes that triggered a bounded component recompute.
    pub recomputes: usize,
    /// Vertices whose label changed (pushed to the PS).
    pub relabeled: usize,
}

/// Incrementally-maintained weakly-connected components with
/// min-member-id labels, mirroring
/// [`psgraph_graph::metrics::connected_components`].
pub struct IncrementalCc {
    pub labels: VectorHandle<u64>,
    /// Driver-side copy of every label (what the PS holds).
    mirror: Vec<u64>,
    /// Component label → sorted member list.
    members: FxHashMap<u64, Vec<u64>>,
    n: u64,
}

impl IncrementalCc {
    /// Allocate `{prefix}.labels` on the PS; every vertex starts in its
    /// own singleton component.
    pub fn create(ps: &Arc<Ps>, prefix: &str, n: u64) -> Result<Self> {
        let labels = VectorHandle::<u64>::create(
            ps,
            format!("{prefix}.labels"),
            n,
            Partitioner::Range,
            RecoveryMode::Consistent,
        )?;
        let ids: Vec<u64> = (0..n).collect();
        labels.push_set(&NodeClock::new(), &ids, &ids)?;
        let members = ids.iter().map(|&v| (v, vec![v])).collect();
        Ok(IncrementalCc { labels, mirror: ids, members, n })
    }

    /// Union components from the full out-table (initial bootstrap after
    /// base training).
    pub fn bootstrap(&mut self, client: &NodeClock, adj: &NeighborTableHandle) -> Result<()> {
        let ids: Vec<u64> = (0..self.n).collect();
        let lists = adj.pull(client, &ids)?;
        let mut stats = CcStats::default();
        for (u, list) in lists.iter().enumerate() {
            for &w in list.iter() {
                self.union(client, u as u64, w, &mut stats)?;
            }
        }
        Ok(())
    }

    /// Labels as the serving tier and tests see them.
    pub fn labels(&self) -> &[u64] {
        &self.mirror
    }

    /// Rebuild the driver-side mirror and member index from the PS copy
    /// after crash recovery rolled `{prefix}.labels` back to a checkpoint.
    /// Membership lists are grouped in ascending vertex order — the same
    /// canonical order incremental maintenance preserves — so a restored
    /// maintainer replays batches bit-identically to one that never
    /// crashed.
    pub fn restore_from_ps(&mut self, client: &NodeClock) -> Result<()> {
        self.mirror = self.labels.pull_all(client)?;
        let mut members: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for (v, &label) in self.mirror.iter().enumerate() {
            members.entry(label).or_default().push(v as u64);
        }
        self.members = members;
        Ok(())
    }

    /// Apply one micro-batch of edge events that were *actually applied*
    /// to the out-table (`add == true` for insertions). Adds union; each
    /// remove recomputes only the affected component.
    pub fn on_batch(
        &mut self,
        client: &NodeClock,
        events: &[(u64, u64, bool)],
        adj: &NeighborTableHandle,
    ) -> Result<CcStats> {
        let mut stats = CcStats::default();
        for &(u, w, add) in events {
            if add {
                self.union(client, u, w, &mut stats)?;
            } else {
                self.recompute_component(client, u, adj, &mut stats)?;
            }
        }
        Ok(stats)
    }

    fn union(&mut self, client: &NodeClock, u: u64, w: u64, stats: &mut CcStats) -> Result<()> {
        let (lu, lw) = (self.mirror[u as usize], self.mirror[w as usize]);
        if lu == lw {
            return Ok(());
        }
        stats.unions += 1;
        let (winner, loser) = (lu.min(lw), lu.max(lw));
        let moved = self.members.remove(&loser).expect("loser component exists");
        self.relabel(client, &moved, winner, stats)?;
        let into = self.members.get_mut(&winner).expect("winner component exists");
        into.extend_from_slice(&moved);
        into.sort_unstable();
        Ok(())
    }

    /// Re-derive the split of `u`'s component from its members' live
    /// out-lists. Sound because every edge incident to a member has both
    /// endpoints inside the (pre-removal) component, so member out-lists
    /// cover all surviving connectivity.
    fn recompute_component(
        &mut self,
        client: &NodeClock,
        u: u64,
        adj: &NeighborTableHandle,
        stats: &mut CcStats,
    ) -> Result<()> {
        stats.recomputes += 1;
        let label = self.mirror[u as usize];
        let comp = self.members.get(&label).expect("component exists").clone();
        let index: FxHashMap<u64, usize> =
            comp.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut parent: Vec<usize> = (0..comp.len()).collect();
        fn find(parent: &mut [usize], mut v: usize) -> usize {
            while parent[v] != v {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            v
        }
        let lists = adj.pull(client, &comp)?;
        for (i, list) in lists.iter().enumerate() {
            for t in list.iter() {
                // Targets outside the member set belong to other
                // components (the edge to them was already gone when the
                // component formed) — skip defensively.
                let Some(&j) = index.get(t) else { continue };
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                }
            }
        }
        let mut groups: FxHashMap<usize, Vec<u64>> = FxHashMap::default();
        for (i, &v) in comp.iter().enumerate() {
            groups.entry(find(&mut parent, i)).or_default().push(v);
        }
        if groups.len() == 1 {
            return Ok(()); // still connected, labels unchanged
        }
        self.members.remove(&label);
        let mut split: Vec<Vec<u64>> = groups.into_values().collect();
        split.sort_unstable_by_key(|g| g[0]);
        for group in split {
            // `comp` was sorted, so each group is sorted and its first
            // element is the new min-id label.
            let new_label = group[0];
            if new_label != label {
                self.relabel(client, &group, new_label, stats)?;
            }
            self.members.insert(new_label, group);
        }
        Ok(())
    }

    fn relabel(
        &mut self,
        client: &NodeClock,
        vertices: &[u64],
        label: u64,
        stats: &mut CcStats,
    ) -> Result<()> {
        let changed: Vec<u64> =
            vertices.iter().copied().filter(|&v| self.mirror[v as usize] != label).collect();
        if changed.is_empty() {
            return Ok(());
        }
        self.labels.push_set(client, &changed, &vec![label; changed.len()])?;
        for &v in &changed {
            self.mirror[v as usize] = label;
        }
        stats.relabeled += changed.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_graph::{gen, metrics, EdgeList};
    use psgraph_ps::PsConfig;
    use psgraph_sim::SplitMix64;

    fn build_table(
        ps: &Arc<Ps>,
        name: &str,
        client: &NodeClock,
        g: &EdgeList,
    ) -> NeighborTableHandle {
        let n = g.num_vertices();
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
        for &(s, d) in g.edges() {
            lists[s as usize].push(d);
        }
        let entries: Vec<(u64, Vec<u64>)> =
            lists.into_iter().enumerate().map(|(v, l)| (v as u64, l)).collect();
        let h = NeighborTableHandle::create(ps, name, n, Partitioner::Range, RecoveryMode::Consistent).unwrap();
        h.push(client, &entries).unwrap();
        h
    }

    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn full_init_matches_batch_pagerank_fixed_point() {
        let g = gen::rmat(48, 300, Default::default(), 5).dedup();
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let adj = build_table(&ps, "t.adj", &client, &g);
        let pr = IncrementalPageRank::default();
        let mut st = pr.create_state(&ps, "t.pr", g.num_vertices()).unwrap();
        let rounds = pr.init_full(&mut st, &client, &adj).unwrap();
        assert!(rounds > 0);
        let got = pr.ranks(&st, &client).unwrap();
        // Independent driver-side power iteration of the same
        // (dangling-mass-dropping) unnormalized fixed point.
        let n = g.num_vertices() as usize;
        let out: Vec<Vec<u64>> = (0..n as u64)
            .map(|v| adj.pull(&client, &[v]).unwrap().remove(0).to_vec())
            .collect();
        let mut want = vec![0.0f64; n];
        for _ in 0..300 {
            let mut next = vec![1.0 - pr.damping; n];
            for (u, list) in out.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let c = pr.damping * want[u] / list.len() as f64;
                for &x in list {
                    next[x as usize] += c;
                }
            }
            want = next;
        }
        assert!(linf(&got, &want) < 1e-6, "L∞ {}", linf(&got, &want));
    }

    #[test]
    fn incremental_tracks_full_recompute_through_random_edits() {
        let g = gen::rmat(40, 200, Default::default(), 9).dedup();
        let n = g.num_vertices();
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let adj = build_table(&ps, "e.adj", &client, &g);
        let pr = IncrementalPageRank::default();
        let mut st = pr.create_state(&ps, "e.pr", n).unwrap();
        pr.init_full(&mut st, &client, &adj).unwrap();

        let mut rng = SplitMix64::new(42);
        let mut live: Vec<(u64, u64)> = g.edges().to_vec();
        for round in 0..6 {
            // A micro-batch of random adds and removes.
            let mut ops: Vec<(u64, u64, bool)> = Vec::new();
            for _ in 0..10 {
                if !live.is_empty() && rng.next_below(3) == 0 {
                    let i = rng.next_below(live.len() as u64) as usize;
                    let (s, d) = live.swap_remove(i);
                    ops.push((s, d, false));
                } else {
                    let s = rng.next_below(n);
                    let d = rng.next_below(n);
                    if !live.contains(&(s, d)) {
                        live.push((s, d));
                        ops.push((s, d, true));
                    }
                }
            }
            // Capture old lists, apply, capture new lists.
            let mut srcs: Vec<u64> = ops.iter().map(|&(s, _, _)| s).collect();
            srcs.sort_unstable();
            srcs.dedup();
            let old: Vec<Vec<u64>> =
                adj.pull(&client, &srcs).unwrap().iter().map(|l| l.to_vec()).collect();
            adj.update_edges(&client, &ops).unwrap();
            let new: Vec<Vec<u64>> =
                adj.pull(&client, &srcs).unwrap().iter().map(|l| l.to_vec()).collect();
            let effects: Vec<(u64, Vec<u64>, Vec<u64>)> = srcs
                .iter()
                .zip(old.iter().zip(&new))
                .map(|(&s, (o, nl))| (s, o.clone(), nl.clone()))
                .collect();
            pr.on_batch(&mut st, &client, &effects).unwrap();
            pr.propagate(&mut st, &client, &adj).unwrap();

            // Full recompute on the current graph, fresh PS names.
            let mut full =
                pr.create_state(&ps, &format!("e.full{round}"), n).unwrap();
            pr.init_full(&mut full, &client, &adj).unwrap();
            let a = pr.ranks(&st, &client).unwrap();
            let b = pr.ranks(&full, &client).unwrap();
            assert!(linf(&a, &b) < 1e-6, "round {round}: L∞ {}", linf(&a, &b));
        }
    }

    #[test]
    fn cc_bootstrap_matches_reference_labels() {
        let g = gen::rmat(64, 150, Default::default(), 21).dedup();
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let adj = build_table(&ps, "c.adj", &client, &g);
        let mut cc = IncrementalCc::create(&ps, "c.cc", g.num_vertices()).unwrap();
        cc.bootstrap(&client, &adj).unwrap();
        assert_eq!(cc.labels(), metrics::connected_components(&g).as_slice());
        // PS copy agrees with the mirror.
        assert_eq!(cc.labels.pull_all(&client).unwrap(), cc.labels());
    }

    #[test]
    fn cc_tracks_reference_through_adds_and_removes() {
        let n = 32u64;
        let g = gen::erdos_renyi(n, 50, 3).dedup();
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let adj = build_table(&ps, "d.adj", &client, &g);
        let mut cc = IncrementalCc::create(&ps, "d.cc", n).unwrap();
        cc.bootstrap(&client, &adj).unwrap();

        let mut rng = SplitMix64::new(77);
        let mut live: Vec<(u64, u64)> = g.edges().to_vec();
        for round in 0..8 {
            let mut ops: Vec<(u64, u64, bool)> = Vec::new();
            for _ in 0..6 {
                if !live.is_empty() && rng.next_below(2) == 0 {
                    let i = rng.next_below(live.len() as u64) as usize;
                    let (s, d) = live.swap_remove(i);
                    ops.push((s, d, false));
                } else {
                    let s = rng.next_below(n);
                    let d = rng.next_below(n);
                    if s != d && !live.contains(&(s, d)) {
                        live.push((s, d));
                        ops.push((s, d, true));
                    }
                }
            }
            adj.update_edges(&client, &ops).unwrap();
            let stats = cc.on_batch(&client, &ops, &adj).unwrap();
            let reference =
                metrics::connected_components(&EdgeList::new(n, live.clone()));
            assert_eq!(cc.labels(), reference.as_slice(), "round {round} ({stats:?})");
            assert_eq!(cc.labels.pull_all(&client).unwrap(), cc.labels());
        }
    }

    #[test]
    fn cc_split_and_rejoin_one_bridge() {
        // Two triangles joined by a bridge; cutting the bridge splits
        // them, re-adding it merges them back.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
        let ps = Ps::new(PsConfig::default());
        let client = NodeClock::new();
        let g = EdgeList::new(6, edges.clone());
        let adj = build_table(&ps, "b.adj", &client, &g);
        let mut cc = IncrementalCc::create(&ps, "b.cc", 6).unwrap();
        cc.bootstrap(&client, &adj).unwrap();
        assert_eq!(cc.labels(), &[0, 0, 0, 0, 0, 0]);

        adj.update_edges(&client, &[(2, 3, false)]).unwrap();
        let stats = cc.on_batch(&client, &[(2, 3, false)], &adj).unwrap();
        assert_eq!(cc.labels(), &[0, 0, 0, 3, 3, 3]);
        assert_eq!(stats.recomputes, 1);
        assert_eq!(stats.relabeled, 3);

        adj.update_edges(&client, &[(2, 3, true)]).unwrap();
        let stats = cc.on_batch(&client, &[(2, 3, true)], &adj).unwrap();
        assert_eq!(cc.labels(), &[0, 0, 0, 0, 0, 0]);
        assert_eq!(stats.unions, 1);
    }
}
