//! Distributed K-core decomposition (paper §V-B1: "The implementation of
//! K-core is similar to PageRank").
//!
//! Uses the h-index iteration of Montresor, De Pellegrini & Miorandi
//! (2013): start with `core[v] = degree(v)` and repeatedly set `core[v]`
//! to the H-index of its neighbors' current values. The sequence is
//! monotonically non-increasing and converges to the exact coreness. The
//! `coreness` vector lives on the PS; executors hold the (undirected)
//! neighbor tables and push only changed values — the same
//! increment-sparsity trick as PageRank.

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{Partitioner, RecoveryMode, VectorHandle};

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::Result;

/// K-core job configuration.
#[derive(Debug, Clone)]
pub struct KCore {
    pub max_iterations: u64,
}

impl Default for KCore {
    fn default() -> Self {
        KCore { max_iterations: 100 }
    }
}

/// Result: per-vertex coreness plus run statistics.
#[derive(Debug, Clone)]
pub struct KCoreOutput {
    pub coreness: Vec<u64>,
    pub stats: RunStats,
}

/// H-index of a multiset: the largest `h` such that at least `h` values
/// are `≥ h`.
pub fn h_index(values: &mut [u64]) -> u64 {
    values.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if v >= (i + 1) as u64 {
            h = (i + 1) as u64;
        } else {
            break;
        }
    }
    h
}

impl KCore {
    /// Run on an edge RDD (treated as undirected) over `[0, num_vertices)`.
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<KCoreOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();

        // Undirected neighbor tables: both edge directions are emitted
        // inside the shuffle write (pipelined — no symmetric copy), and
        // groups are sorted/deduped inside the aggregation.
        let tables = crate::runner::to_undirected_neighbor_tables(edges)?;

        let core = VectorHandle::<u64>::create(
            ctx.ps(), "kcore.core", num_vertices, Partitioner::Range, RecoveryMode::Consistent,
        )?;

        // Initialize core[v] = degree(v), pushed by the executors.
        let core_ref = &core;
        ctx.cluster()
            .run_stage(tables.num_partitions(), |p, exec| {
                let part = tables.partition(p)?;
                let (idx, vals): (Vec<u64>, Vec<u64>) =
                    part.iter().map(|(v, ns)| (*v, ns.len() as u64)).unzip();
                if !idx.is_empty() {
                    core_ref.push_set(exec.clock(), &idx, &vals).df()?;
                }
                Ok(())
            })
            .map_err(crate::error::CoreError::from)?;

        let mut supersteps = 0;
        for step in 0..self.max_iterations {
            let (killed_execs, _) = ctx.superstep_maintenance(step)?;
            if !killed_execs.is_empty() {
                tables.recover()?;
            }
            supersteps += 1;

            let core_ref = &core;
            let changes: Vec<u64> = ctx
                .cluster()
                .run_stage(tables.num_partitions(), |p, exec| {
                    let part = tables.partition(p)?;
                    // Pull current estimates for all local vertices and
                    // their neighbors in one batch.
                    let mut wanted: Vec<u64> = Vec::new();
                    for (v, ns) in part.iter() {
                        wanted.push(*v);
                        wanted.extend_from_slice(ns);
                    }
                    let got = core_ref.pull(exec.clock(), &wanted).df()?;
                    let mut cursor = 0usize;
                    let mut upd_idx = Vec::new();
                    let mut upd_val = Vec::new();
                    let mut work = 0u64;
                    for (v, ns) in part.iter() {
                        let own = got[cursor];
                        cursor += 1;
                        let mut nvals = got[cursor..cursor + ns.len()].to_vec();
                        cursor += ns.len();
                        let h = h_index(&mut nvals).min(own);
                        work += ns.len() as u64;
                        if h < own {
                            upd_idx.push(*v);
                            upd_val.push(h);
                        }
                    }
                    exec.charge_cpu(ctx.cluster().cost(), work * 6);
                    if !upd_idx.is_empty() {
                        core_ref.push_set(exec.clock(), &upd_idx, &upd_val).df()?;
                    }
                    Ok(upd_idx.len() as u64)
                })
                .map_err(crate::error::CoreError::from)?;

            if changes.iter().sum::<u64>() == 0 {
                break;
            }
        }

        let coreness = core.pull_all(ctx.cluster().driver())?;
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);
        ctx.ps().unregister("kcore.core");

        Ok(KCoreOutput { coreness, stats: ctx.stats_since(start, snap, supersteps) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, metrics, EdgeList};

    fn run_kcore(g: &EdgeList) -> KCoreOutput {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap()
    }

    #[test]
    fn h_index_examples() {
        assert_eq!(h_index(&mut [5, 4, 3, 2, 1]), 3);
        assert_eq!(h_index(&mut [1, 1, 1]), 1);
        assert_eq!(h_index(&mut [10, 10]), 2);
        assert_eq!(h_index(&mut []), 0);
        assert_eq!(h_index(&mut [0, 0]), 0);
    }

    #[test]
    fn clique_plus_tail_matches_exact() {
        let mut edges = gen::complete(5).into_edges();
        edges.push((4, 5));
        edges.push((5, 6));
        let g = EdgeList::new(7, edges);
        let out = run_kcore(&g);
        assert_eq!(out.coreness, metrics::kcore_exact(&g));
        assert_eq!(out.coreness[0], 4);
        assert_eq!(out.coreness[6], 1);
    }

    #[test]
    fn ring_is_all_twos() {
        let out = run_kcore(&gen::ring(12));
        assert!(out.coreness.iter().all(|&c| c == 2), "{:?}", out.coreness);
    }

    #[test]
    fn random_graph_matches_exact() {
        let g = gen::erdos_renyi(50, 300, 23).dedup();
        let out = run_kcore(&g);
        assert_eq!(out.coreness, metrics::kcore_exact(&g));
    }

    #[test]
    fn powerlaw_graph_matches_exact() {
        let g = gen::rmat(60, 400, Default::default(), 29).dedup();
        let out = run_kcore(&g);
        assert_eq!(out.coreness, metrics::kcore_exact(&g));
        assert!(out.stats.supersteps < 100, "h-index converges fast");
    }

    #[test]
    fn isolated_vertices_have_zero_core() {
        let g = EdgeList::new(10, vec![(0, 1), (1, 2), (2, 0)]);
        let out = run_kcore(&g);
        assert_eq!(out.coreness[0], 2);
        assert_eq!(out.coreness[9], 0);
    }

    #[test]
    fn survives_executor_failure() {
        use psgraph_sim::FailPlan;
        let g = gen::rmat(40, 200, Default::default(), 31).dedup();
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.cluster().injector().schedule(FailPlan::kill_executor(0, 2));
        let out = KCore::default().run(&ctx, &edges, 40).unwrap();
        assert_eq!(out.coreness, metrics::kcore_exact(&g));
    }
}
