//! LINE graph embedding (paper §IV-D).
//!
//! Each vertex owns an embedding vector (and, for second-order proximity,
//! a context vector). Both matrices are stored on the PS **partitioned by
//! column**, so every server holds the same dimension slice of `u` and
//! `c`; executors then train with server-side partial dot products and
//! pair-updates (psFunc), moving only `(id, id, coef)` triples and scalar
//! partials over the wire. The `use_psfunc = false` path is the ablation
//! baseline the paper argues against: pull whole embedding rows, compute
//! on the executor, push whole gradient rows back.
//!
//! Optimization uses skip-gram with negative sampling (unigram^{3/4}
//! noise distribution, as in the LINE paper). Updates against already-
//! updated sibling rows within a batch are accepted (Hogwild-style), as
//! in any asynchronous PS deployment.

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{ColMatrixHandle, RecoveryMode};
use psgraph_sim::SplitMix64;

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::{CoreError, Result};

/// Which proximity LINE optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOrder {
    /// First-order: σ(uᵢ·uⱼ) on the single embedding matrix.
    First,
    /// Second-order: σ(uᵢ·cⱼ) against a separate context matrix.
    Second,
}

/// LINE job configuration.
#[derive(Debug, Clone)]
pub struct LineConfig {
    pub dim: usize,
    pub order: LineOrder,
    pub epochs: u64,
    /// Edges per training batch (per executor partition).
    pub batch_size: usize,
    /// Negative samples per positive edge.
    pub negative: usize,
    pub lr: f32,
    pub seed: u64,
    /// Server-side dot products + pair updates (the paper's psFunc
    /// optimization). `false` = pull/push whole rows (ablation baseline).
    pub use_psfunc: bool,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            dim: 32,
            order: LineOrder::Second,
            epochs: 3,
            batch_size: 512,
            negative: 5,
            lr: 0.05,
            seed: 42,
            use_psfunc: true,
        }
    }
}

/// LINE runner.
#[derive(Debug, Clone, Default)]
pub struct Line {
    pub config: LineConfig,
}

/// Result: final embeddings, loss per epoch, statistics.
#[derive(Debug, Clone)]
pub struct LineOutput {
    pub embeddings: Vec<Vec<f32>>,
    pub loss_per_epoch: Vec<f64>,
    pub stats: RunStats,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Cumulative unigram^{3/4} noise table for negative sampling.
fn noise_table(degrees: &[u64]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(degrees.len());
    let mut acc = 0.0;
    for &d in degrees {
        acc += (d as f64).powf(0.75);
        cum.push(acc);
    }
    cum
}

fn sample_noise(cum: &[f64], rng: &mut SplitMix64) -> u64 {
    let total = *cum.last().unwrap_or(&0.0);
    if total <= 0.0 {
        return rng.next_below(cum.len().max(1) as u64);
    }
    let x = rng.next_f64() * total;
    cum.partition_point(|&c| c < x) as u64
}

impl Line {
    pub fn new(config: LineConfig) -> Self {
        Line { config }
    }

    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<LineOutput> {
        let cfg = &self.config;
        if cfg.dim == 0 || num_vertices == 0 {
            return Err(CoreError::Invalid("LINE needs dim > 0 and vertices > 0".into()));
        }
        let start = ctx.now();
        let snap = ctx.net_snapshot();
        let mut supersteps = 0u64;

        let embed = ColMatrixHandle::create(
            ctx.ps(), "line.embed", num_vertices, cfg.dim, RecoveryMode::Inconsistent,
        )?;
        embed.init_uniform(ctx.cluster().driver(), cfg.seed, 0.5 / cfg.dim as f32)?;
        let context = match cfg.order {
            LineOrder::Second => {
                let c = ColMatrixHandle::create(
                    ctx.ps(), "line.ctx", num_vertices, cfg.dim, RecoveryMode::Inconsistent,
                )?;
                c.init_uniform(ctx.cluster().driver(), cfg.seed ^ 0xC0, 0.5 / cfg.dim as f32)?;
                Some(c)
            }
            LineOrder::First => None,
        };
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);

        // Noise distribution from out-degrees (driver-side, shared).
        let degrees = {
            let mut d = vec![0u64; num_vertices as usize];
            for p in 0..edges.num_partitions() {
                for &(s, _) in edges.partition(p)?.iter() {
                    d[s as usize] += 1;
                }
            }
            d
        };
        let noise = Arc::new(noise_table(&degrees));

        let mut loss_per_epoch = Vec::with_capacity(cfg.epochs as usize);
        for epoch in 0..cfg.epochs {
            let (killed_execs, _) = ctx.superstep_maintenance(supersteps)?;
            if !killed_execs.is_empty() {
                edges.recover()?;
            }
            supersteps += 1;

            let embed_ref = &embed;
            let context_ref = &context;
            let noise_ref = &noise;
            let partition_losses: Vec<(f64, u64)> = ctx
                .cluster()
                .run_stage(edges.num_partitions(), move |p, exec| {
                    let part = edges.partition(p)?;
                    let mut rng = SplitMix64::new(
                        cfg.seed ^ (epoch << 32) ^ (p as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut loss = 0.0f64;
                    let mut samples_n = 0u64;
                    for chunk in part.chunks(cfg.batch_size.max(1)) {
                        // Build (src, target, label) samples.
                        let mut samples: Vec<(u64, u64, f64)> =
                            Vec::with_capacity(chunk.len() * (1 + cfg.negative));
                        for &(i, j) in chunk {
                            samples.push((i, j, 1.0));
                            for _ in 0..cfg.negative {
                                let mut neg = sample_noise(noise_ref, &mut rng);
                                if neg == j {
                                    neg = (neg + 1) % num_vertices;
                                }
                                samples.push((i, neg, 0.0));
                            }
                        }
                        samples_n += samples.len() as u64;
                        let target_matrix: &ColMatrixHandle = match cfg.order {
                            LineOrder::Second => context_ref.as_ref().unwrap(),
                            LineOrder::First => embed_ref,
                        };
                        let pairs: Vec<(u64, u64)> =
                            samples.iter().map(|&(i, t, _)| (i, t)).collect();
                        if cfg.use_psfunc {
                            // Server-side dots, then server-side updates.
                            let dots =
                                embed_ref.dot_pairs(exec.clock(), target_matrix, &pairs).df()?;
                            let mut emb_upd = Vec::with_capacity(samples.len());
                            let mut tgt_upd = Vec::with_capacity(samples.len());
                            for (&(i, t, label), &dot) in samples.iter().zip(&dots) {
                                let s = sigmoid(dot);
                                loss -= if label > 0.5 {
                                    s.max(1e-12).ln()
                                } else {
                                    (1.0 - s).max(1e-12).ln()
                                };
                                let coef = cfg.lr as f64 * (label - s);
                                emb_upd.push((i, t, coef));
                                tgt_upd.push((t, i, coef));
                            }
                            embed_ref.axpy_pairs(exec.clock(), target_matrix, &emb_upd).df()?;
                            target_matrix.axpy_pairs(exec.clock(), embed_ref, &tgt_upd).df()?;
                        } else {
                            // Ablation baseline: move whole rows.
                            let srcs: Vec<u64> = samples.iter().map(|&(i, _, _)| i).collect();
                            let tgts: Vec<u64> = samples.iter().map(|&(_, t, _)| t).collect();
                            let urows = embed_ref.pull_rows(exec.clock(), &srcs).df()?;
                            let trows = target_matrix.pull_rows(exec.clock(), &tgts).df()?;
                            let mut emb_g = Vec::with_capacity(samples.len());
                            let mut tgt_g = Vec::with_capacity(samples.len());
                            for (k, &(_, _, label)) in samples.iter().enumerate() {
                                let dot: f64 = urows[k]
                                    .iter()
                                    .zip(&trows[k])
                                    .map(|(a, b)| *a as f64 * *b as f64)
                                    .sum();
                                let s = sigmoid(dot);
                                loss -= if label > 0.5 {
                                    s.max(1e-12).ln()
                                } else {
                                    (1.0 - s).max(1e-12).ln()
                                };
                                let coef = (cfg.lr as f64 * (label - s)) as f32;
                                emb_g.push(trows[k].iter().map(|x| coef * x).collect::<Vec<f32>>());
                                tgt_g.push(urows[k].iter().map(|x| coef * x).collect::<Vec<f32>>());
                            }
                            embed_ref.push_add_rows(exec.clock(), &srcs, &emb_g).df()?;
                            target_matrix.push_add_rows(exec.clock(), &tgts, &tgt_g).df()?;
                        }
                        exec.charge_cpu(
                            ctx.cluster().cost(),
                            samples.len() as u64 * cfg.dim as u64,
                        );
                    }
                    Ok((loss, samples_n))
                })
                .map_err(CoreError::from)?;

            let (loss_sum, n): (f64, u64) = partition_losses
                .into_iter()
                .fold((0.0, 0), |(l, n), (pl, pn)| (l + pl, n + pn));
            loss_per_epoch.push(if n == 0 { 0.0 } else { loss_sum / n as f64 });
        }

        // Final readout.
        let ids: Vec<u64> = (0..num_vertices).collect();
        let embeddings = embed.pull_rows(ctx.cluster().driver(), &ids)?;
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);
        ctx.ps().unregister("line.embed");
        if context.is_some() {
            ctx.ps().unregister("line.ctx");
        }

        Ok(LineOutput {
            embeddings,
            loss_per_epoch,
            stats: ctx.stats_since(start, snap, supersteps),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::EdgeList;

    fn two_cliques() -> EdgeList {
        let mut edges = vec![];
        for s in 0..6u64 {
            for d in 0..6u64 {
                if s != d {
                    edges.push((s, d));
                }
            }
        }
        for s in 6..12u64 {
            for d in 6..12u64 {
                if s != d {
                    edges.push((s, d));
                }
            }
        }
        edges.push((0, 6));
        edges.push((6, 0));
        EdgeList::new(12, edges)
    }

    fn cosine(a: &[f32], b: &[f32]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| *x as f64 * *y as f64).sum();
        let na: f64 = a.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        dot / (na * nb + 1e-12)
    }

    fn run_line(cfg: LineConfig) -> LineOutput {
        let g = two_cliques();
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        Line::new(cfg).run(&ctx, &edges, g.num_vertices()).unwrap()
    }

    #[test]
    fn loss_decreases_second_order() {
        let out = run_line(LineConfig { epochs: 6, dim: 16, ..Default::default() });
        assert_eq!(out.loss_per_epoch.len(), 6);
        let first = out.loss_per_epoch[0];
        let last = *out.loss_per_epoch.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn loss_decreases_first_order() {
        let out = run_line(LineConfig {
            epochs: 6,
            dim: 16,
            order: LineOrder::First,
            ..Default::default()
        });
        let first = out.loss_per_epoch[0];
        let last = *out.loss_per_epoch.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn clique_members_embed_closer_than_strangers() {
        let out = run_line(LineConfig {
            epochs: 12,
            dim: 16,
            order: LineOrder::First,
            lr: 0.1,
            ..Default::default()
        });
        // Average within-clique vs cross-clique cosine similarity.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut wn = 0;
        let mut cn = 0;
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    within += cosine(&out.embeddings[a], &out.embeddings[b]);
                    wn += 1;
                }
            }
            for b in 6..12 {
                cross += cosine(&out.embeddings[a], &out.embeddings[b]);
                cn += 1;
            }
        }
        let within = within / wn as f64;
        let cross = cross / cn as f64;
        assert!(
            within > cross + 0.1,
            "within {within} should exceed cross {cross}"
        );
    }

    #[test]
    fn reproducible_given_seed() {
        // Sampling is seeded per (epoch, partition), so two runs draw the
        // same positive/negative samples; only the *interleaving* of PS
        // updates across executor threads differs (Hogwild). Embeddings
        // must therefore agree to float-accumulation noise, and per-epoch
        // losses (computed from pre-update reads) should be very close.
        let a = run_line(LineConfig { epochs: 2, dim: 8, ..Default::default() });
        let b = run_line(LineConfig { epochs: 2, dim: 8, ..Default::default() });
        for (ra, rb) in a.embeddings.iter().zip(&b.embeddings) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 5e-3, "{x} vs {y}");
            }
        }
        for (la, lb) in a.loss_per_epoch.iter().zip(&b.loss_per_epoch) {
            assert!((la - lb).abs() < 1e-2, "{la} vs {lb}");
        }
    }

    #[test]
    fn psfunc_and_row_paths_both_learn() {
        let fast = run_line(LineConfig { epochs: 4, dim: 16, use_psfunc: true, ..Default::default() });
        let slow = run_line(LineConfig { epochs: 4, dim: 16, use_psfunc: false, ..Default::default() });
        assert!(fast.loss_per_epoch.last().unwrap() < &fast.loss_per_epoch[0]);
        assert!(slow.loss_per_epoch.last().unwrap() < &slow.loss_per_epoch[0]);
        // The psFunc path must be cheaper in simulated time (the §IV-D
        // optimization) — same work, less traffic.
        assert!(
            fast.stats.elapsed < slow.stats.elapsed,
            "psfunc {} vs rows {}",
            fast.stats.elapsed,
            slow.stats.elapsed
        );
        assert!(fast.stats.ps_net_bytes < slow.stats.ps_net_bytes);
    }

    #[test]
    fn invalid_config_rejected() {
        let ctx = PsGraphContext::local();
        let g = two_cliques();
        let edges = distribute_edges(&ctx, &g, 2).unwrap();
        let err = Line::new(LineConfig { dim: 0, ..Default::default() })
            .run(&ctx, &edges, 12)
            .unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)));
    }

    #[test]
    fn noise_table_and_sampling() {
        let cum = noise_table(&[0, 1, 16, 0]);
        assert_eq!(cum.len(), 4);
        let mut rng = SplitMix64::new(5);
        let mut counts = [0u64; 4];
        for _ in 0..2000 {
            counts[sample_noise(&cum, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0, "zero-degree vertex never sampled");
        assert_eq!(counts[3], 0);
        // 16^0.75 = 8 × weight of 1^0.75: vertex 2 ≈ 8× vertex 1.
        assert!(counts[2] > counts[1] * 4, "{counts:?}");
    }
}
