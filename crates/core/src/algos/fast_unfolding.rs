//! Fast Unfolding / Louvain community detection (paper §IV-C).
//!
//! Two PS vectors hold the frequently-accessed models: `vertex2com` (the
//! community of each vertex) and `com2weight` (Σtot — the sum of weighted
//! degrees per community). Each pass runs (1) modularity-optimization
//! sweeps where every vertex greedily moves to the neighbor community with
//! the best ΔQ, then (2) community aggregation, which contracts each
//! community to a single vertex with a dataflow `reduce_by_key` and
//! repeats on the condensed graph. Passes stop when modularity stops
//! improving.
//!
//! The graph is kept in symmetric-directed form (every undirected edge
//! stored in both directions; a self-loop's weight is the full matrix
//! entry `A[cc] = 2 × intra-weight`), so `k_i` is a row sum and
//! `2m = ΣA`. Sweeps alternate vertex parity to avoid the classic
//! two-vertex community oscillation of parallel Louvain.

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{Partitioner, RecoveryMode, VectorHandle};
use psgraph_sim::FxHashMap;

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::{CoreError, Result};

/// Fast-unfolding job configuration.
#[derive(Debug, Clone)]
pub struct FastUnfolding {
    /// Maximum aggregation passes.
    pub max_passes: u64,
    /// Maximum optimization sweeps per pass.
    pub max_sweeps: u64,
    /// Minimum modularity gain to start another pass.
    pub min_gain: f64,
}

impl Default for FastUnfolding {
    fn default() -> Self {
        FastUnfolding { max_passes: 5, max_sweeps: 10, min_gain: 1e-4 }
    }
}

/// Result: community per original vertex, final modularity, statistics.
#[derive(Debug, Clone)]
pub struct FastUnfoldingOutput {
    pub communities: Vec<u64>,
    pub modularity: f64,
    pub stats: RunStats,
}

impl FastUnfolding {
    /// Run on an unweighted edge RDD (unit weights).
    pub fn run_unweighted(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<FastUnfoldingOutput> {
        // Build the symmetric weighted representation in one hop (no
        // intermediate weighted copy pinned by lineage).
        let graph = edges.flat_map(|&(s, d)| {
            if s == d {
                vec![(s, (s, 2.0f64))]
            } else {
                vec![(s, (d, 1.0f64)), (d, (s, 1.0f64))]
            }
        })?;
        self.run_symmetric(ctx, graph, num_vertices)
    }

    /// Run on a weighted edge RDD `(src, dst, weight)` (each undirected
    /// edge listed once; self-loops allowed).
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64, f64)>,
        num_vertices: u64,
    ) -> Result<FastUnfoldingOutput> {
        // Symmetric-directed representation.
        let graph = edges.flat_map(|&(s, d, w)| {
            if s == d {
                vec![(s, (s, 2.0 * w))]
            } else {
                vec![(s, (d, w)), (d, (s, w))]
            }
        })?;
        self.run_symmetric(ctx, graph, num_vertices)
    }

    /// Run on an already-symmetrized `(src, (dst, w))` representation.
    fn run_symmetric(
        &self,
        ctx: &Arc<PsGraphContext>,
        mut graph: Rdd<(u64, (u64, f64))>,
        num_vertices: u64,
    ) -> Result<FastUnfoldingOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();
        let mut supersteps = 0u64;

        // 2m is invariant across passes.
        let two_m = graph.fold(0.0f64, |acc, &(_, (_, w))| acc + w)?;
        if two_m <= 0.0 {
            return Ok(FastUnfoldingOutput {
                communities: (0..num_vertices).collect(),
                modularity: 0.0,
                stats: ctx.stats_since(start, snap, 0),
            });
        }

        // Original-vertex → current community chain.
        let mut assign: Vec<u64> = (0..num_vertices).collect();
        let mut best_q = f64::NEG_INFINITY;

        for pass in 0..self.max_passes {
            let tables = graph.group_by_key(graph.num_partitions())?;

            let vertex2com = VectorHandle::<u64>::create(
                ctx.ps(),
                "fu.vertex2com",
                num_vertices,
                Partitioner::Range,
                RecoveryMode::Consistent,
            )?;
            let com2weight = VectorHandle::<f64>::create(
                ctx.ps(),
                "fu.com2weight",
                num_vertices,
                Partitioner::Range,
                RecoveryMode::Consistent,
            )?;

            // Init: community = self; Σtot(c) = k_c.
            let v2c = &vertex2com;
            let c2w = &com2weight;
            ctx.cluster()
                .run_stage(tables.num_partitions(), |p, exec| {
                    let part = tables.partition(p)?;
                    let mut idx = Vec::with_capacity(part.len());
                    let mut ks = Vec::with_capacity(part.len());
                    for (v, ns) in part.iter() {
                        idx.push(*v);
                        ks.push(ns.iter().map(|&(_, w)| w).sum::<f64>());
                    }
                    if !idx.is_empty() {
                        v2c.push_set(exec.clock(), &idx, &idx).df()?;
                        c2w.push_add(exec.clock(), &idx, &ks).df()?;
                    }
                    Ok(())
                })
                .map_err(CoreError::from)?;
            supersteps += 1;

            // Modularity-optimization sweeps (parity-alternated).
            for sweep in 0..self.max_sweeps {
                let (killed_execs, _) = ctx.superstep_maintenance(supersteps)?;
                if !killed_execs.is_empty() {
                    tables.recover()?;
                    graph.recover()?;
                }
                supersteps += 1;

                let mut moves = 0u64;
                for parity in 0..2u64 {
                    let v2c = &vertex2com;
                    let c2w = &com2weight;
                    let moved: Vec<u64> = ctx
                        .cluster()
                        .run_stage(tables.num_partitions(), |p, exec| {
                            let part = tables.partition(p)?;
                            let mut wanted = Vec::new();
                            for (v, ns) in part.iter() {
                                if v % 2 != parity {
                                    continue;
                                }
                                wanted.push(*v);
                                for &(u, _) in ns {
                                    wanted.push(u);
                                }
                            }
                            if wanted.is_empty() {
                                return Ok(0);
                            }
                            let coms = v2c.pull(exec.clock(), &wanted).df()?;
                            // Σtot for every referenced community.
                            let tot = c2w.pull(exec.clock(), &coms).df()?;
                            let com_of: FxHashMap<u64, u64> =
                                wanted.iter().copied().zip(coms.iter().copied()).collect();
                            let tot_of: FxHashMap<u64, f64> =
                                coms.iter().copied().zip(tot.iter().copied()).collect();

                            let mut mv = 0u64;
                            let mut upd_v = Vec::new();
                            let mut upd_c = Vec::new();
                            let mut w_idx = Vec::new();
                            let mut w_val = Vec::new();
                            let mut work = 0u64;
                            for (v, ns) in part.iter() {
                                if v % 2 != parity {
                                    continue;
                                }
                                let own = com_of[v];
                                let k_i: f64 = ns.iter().map(|&(_, w)| w).sum();
                                // k_{i,in}(C) over neighbor communities.
                                let mut kin: FxHashMap<u64, f64> = FxHashMap::default();
                                for &(u, w) in ns {
                                    if u == *v {
                                        continue;
                                    }
                                    *kin.entry(com_of[&u]).or_default() += w;
                                }
                                kin.entry(own).or_default();
                                work += ns.len() as u64;
                                let gain = |c: u64, kin_c: f64| {
                                    let mut tot_c = tot_of.get(&c).copied().unwrap_or(0.0);
                                    if c == own {
                                        tot_c -= k_i;
                                    }
                                    kin_c - tot_c * k_i / two_m
                                };
                                let own_gain = gain(own, kin[&own]);
                                let mut best = (own, own_gain);
                                for (&c, &kin_c) in &kin {
                                    let g = gain(c, kin_c);
                                    if g > best.1 + 1e-12 || (g == best.1 && c < best.0) {
                                        best = (c, g);
                                    }
                                }
                                if best.0 != own {
                                    mv += 1;
                                    upd_v.push(*v);
                                    upd_c.push(best.0);
                                    w_idx.push(own);
                                    w_val.push(-k_i);
                                    w_idx.push(best.0);
                                    w_val.push(k_i);
                                }
                            }
                            exec.charge_cpu(ctx.cluster().cost(), work * 8);
                            if !upd_v.is_empty() {
                                v2c.push_set(exec.clock(), &upd_v, &upd_c).df()?;
                                c2w.push_add(exec.clock(), &w_idx, &w_val).df()?;
                            }
                            Ok(mv)
                        })
                        .map_err(CoreError::from)?;
                    moves += moved.into_iter().sum::<u64>();
                }
                if moves == 0 && sweep > 0 {
                    break;
                }
                if moves == 0 {
                    break;
                }
            }

            // Modularity of the current assignment:
            // Q = Σ_intra/2m − Σ_c (Σtot_c / 2m)².
            let v2c = &vertex2com;
            let intra: Vec<f64> = ctx
                .cluster()
                .run_stage(graph.num_partitions(), |p, exec| {
                    let part = graph.partition(p)?;
                    let mut wanted = Vec::with_capacity(part.len() * 2);
                    for &(s, (d, _)) in part.iter() {
                        wanted.push(s);
                        wanted.push(d);
                    }
                    if wanted.is_empty() {
                        return Ok(0.0);
                    }
                    let coms = v2c.pull(exec.clock(), &wanted).df()?;
                    let mut sum = 0.0;
                    for (k, &(_, (_, w))) in part.iter().enumerate() {
                        if coms[2 * k] == coms[2 * k + 1] {
                            sum += w;
                        }
                    }
                    exec.charge_cpu(ctx.cluster().cost(), part.len() as u64 * 3);
                    Ok(sum)
                })
                .map_err(CoreError::from)?;
            let intra: f64 = intra.into_iter().sum();
            let sq_tot =
                com2weight.aggregate(ctx.cluster().driver(), |x| (x / two_m) * (x / two_m))?;
            let q = intra / two_m - sq_tot;
            ctx.cluster().clock().barrier([ctx.cluster().driver()]);

            let v2c_all = vertex2com.pull_all(ctx.cluster().driver())?;
            ctx.cluster().clock().barrier([ctx.cluster().driver()]);
            ctx.ps().unregister("fu.vertex2com");
            ctx.ps().unregister("fu.com2weight");

            // Accept the pass only if modularity did not degrade (first
            // pass always accepted), so the reported modularity is the
            // modularity *of the returned assignment*.
            let first_pass = best_q == f64::NEG_INFINITY;
            if first_pass || q > best_q {
                for a in assign.iter_mut() {
                    *a = v2c_all[*a as usize];
                }
            }
            let improved = first_pass || q > best_q + self.min_gain;
            best_q = best_q.max(q);
            if !improved || pass + 1 == self.max_passes {
                break;
            }

            // Community aggregation: contract communities to vertices.
            // The contraction map is pipelined into the shuffle write (no
            // materialized intermediate), and the superseded pass's
            // lineage is severed so its partitions free (Spark: unpersist
            // / periodic checkpoint in iterative jobs).
            let v2c_map = Arc::new(v2c_all);
            let parts = graph.num_partitions();
            let merged = graph.flat_map_reduce_by_key(
                parts,
                move |&(s, (d, w)), out| {
                    out.push(((v2c_map[s as usize], v2c_map[d as usize]), w));
                },
                |a, b| a + b,
            )?;
            drop(graph);
            graph = merged.map(|&((s, d), w)| (s, (d, w)))?.sever_lineage();
            supersteps += 1;
        }

        Ok(FastUnfoldingOutput {
            communities: assign,
            modularity: best_q,
            stats: ctx.stats_since(start, snap, supersteps),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, metrics, EdgeList, WeightedEdgeList};

    fn run_fu(g: &EdgeList) -> FastUnfoldingOutput {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        FastUnfolding::default().run_unweighted(&ctx, &edges, g.num_vertices()).unwrap()
    }

    #[test]
    fn two_cliques_with_bridge() {
        let mut edges = vec![];
        for s in 0..5u64 {
            for d in s + 1..5 {
                edges.push((s, d));
            }
        }
        for s in 5..10u64 {
            for d in s + 1..10 {
                edges.push((s, d));
            }
        }
        edges.push((0, 5));
        let g = EdgeList::new(10, edges);
        let out = run_fu(&g);
        // Each clique is one community.
        for v in 1..5 {
            assert_eq!(out.communities[v], out.communities[0], "first clique");
        }
        for v in 6..10 {
            assert_eq!(out.communities[v], out.communities[5], "second clique");
        }
        assert_ne!(out.communities[0], out.communities[5]);
        assert!(out.modularity > 0.3, "Q = {}", out.modularity);
    }

    #[test]
    fn reported_modularity_matches_reference_formula() {
        let s = gen::sbm2(60, 8.0, 0.5, 2, 0.1, 67);
        // Deduplicate to one direction per undirected edge for the
        // reference (it expects each edge listed once).
        let mut canon: Vec<(u64, u64)> = s
            .graph
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let g = EdgeList::new(60, canon.clone());
        let out = run_fu(&g);
        let w = WeightedEdgeList::new(
            60,
            canon.iter().map(|&(a, b)| (a, b, 1.0)).collect(),
        );
        let q_ref = metrics::modularity(&w, &out.communities);
        assert!(
            (out.modularity - q_ref).abs() < 1e-9,
            "reported {} vs reference {}",
            out.modularity,
            q_ref
        );
    }

    #[test]
    fn sbm_recovers_planted_partition() {
        let s = gen::sbm2(80, 10.0, 0.3, 2, 0.1, 71);
        let mut canon: Vec<(u64, u64)> = s
            .graph
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let out = run_fu(&EdgeList::new(80, canon));
        // Communities should align with the planted halves.
        let mut agree = 0;
        for v in 0..40 {
            for u in 0..40 {
                if out.communities[v] == out.communities[u] {
                    agree += 1;
                }
            }
        }
        assert!(agree > 40 * 40 / 2, "first half coherence {agree}/1600");
        assert!(out.modularity > 0.25, "Q = {}", out.modularity);
    }

    #[test]
    fn weighted_edges_respected() {
        // Heavy edges bind 0-1-2; light edges connect to 3-4-5.
        let ctx = PsGraphContext::local();
        let edges = vec![
            (0u64, 1u64, 10.0f64),
            (1, 2, 10.0),
            (0, 2, 10.0),
            (3, 4, 10.0),
            (4, 5, 10.0),
            (3, 5, 10.0),
            (2, 3, 0.1),
        ];
        let rdd = psgraph_dataflow::Rdd::from_vec(ctx.cluster(), edges, 4).unwrap();
        let out = FastUnfolding::default().run(&ctx, &rdd, 6).unwrap();
        assert_eq!(out.communities[0], out.communities[1]);
        assert_eq!(out.communities[1], out.communities[2]);
        assert_eq!(out.communities[3], out.communities[4]);
        assert_eq!(out.communities[4], out.communities[5]);
        assert_ne!(out.communities[0], out.communities[3]);
    }

    #[test]
    fn empty_graph_returns_trivial() {
        let ctx = PsGraphContext::local();
        let rdd: psgraph_dataflow::Rdd<(u64, u64, f64)> =
            psgraph_dataflow::Rdd::from_vec(ctx.cluster(), vec![], 2).unwrap();
        let out = FastUnfolding::default().run(&ctx, &rdd, 4).unwrap();
        assert_eq!(out.communities, vec![0, 1, 2, 3]);
        assert_eq!(out.modularity, 0.0);
    }

    #[test]
    fn ring_groups_neighbors() {
        let out = run_fu(&gen::ring(12));
        // Louvain on a ring forms arcs; modularity must be decent and
        // at least one nontrivial community must exist.
        let distinct: std::collections::HashSet<u64> =
            out.communities.iter().copied().collect();
        assert!(distinct.len() < 12, "some grouping must happen");
        assert!(out.modularity > 0.3, "Q = {}", out.modularity);
    }
}
