//! The seven evaluated algorithms (paper §IV / §V).

pub mod common_neighbor;
pub mod connected_components;
pub mod fast_unfolding;
pub mod graphsage;
pub mod incremental;
pub mod kcore;
pub mod label_propagation;
pub mod line;
pub mod pagerank;
pub mod triangle;

pub use common_neighbor::CommonNeighbor;
pub use connected_components::ConnectedComponents;
pub use fast_unfolding::FastUnfolding;
pub use graphsage::{GraphSage, GraphSageConfig};
pub use incremental::{CcStats, IncrementalCc, IncrementalPageRank, PrState};
pub use kcore::KCore;
pub use label_propagation::LabelPropagation;
pub use line::{Line, LineConfig, LineOrder};
pub use pagerank::PageRank;
pub use triangle::TriangleCount;
