//! Common Neighbor (paper §IV-B): for each queried vertex pair, count the
//! overlap of their neighbor sets (link-prediction feature).
//!
//! The neighbor tables are pushed to the PS once; afterwards the
//! executors stream batches of pairs, pull both endpoints' adjacency from
//! the PS, and intersect locally — no shuffle per query, which is why
//! PSGraph beats GraphX 3× on DS1 and survives DS2 (Fig. 6).

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{NeighborTableHandle, Partitioner, RecoveryMode};
use psgraph_sim::FxHashSet;

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::Result;

/// Common-neighbor job configuration.
#[derive(Debug, Clone)]
pub struct CommonNeighbor {
    /// Pairs processed per pull batch per partition.
    pub batch_size: usize,
    /// Checkpoint the PS neighbor table after building it (enables the
    /// Table II recovery path).
    pub checkpoint: bool,
}

impl Default for CommonNeighbor {
    fn default() -> Self {
        CommonNeighbor { batch_size: 1024, checkpoint: false }
    }
}

/// Result: one count per input pair (in input order) plus statistics.
#[derive(Debug, Clone)]
pub struct CommonNeighborOutput {
    pub counts: Vec<(u64, u64, u64)>,
    pub stats: RunStats,
}

impl CommonNeighbor {
    /// Build the PS neighbor table from an edge RDD (undirected view) and
    /// count common neighbors for every edge in the graph — the paper's
    /// workload ("iteratively processes a batch of edges").
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<CommonNeighborOutput> {
        self.run_for_pairs(ctx, edges, edges, num_vertices)
    }

    /// Same, but with an explicit pair RDD to query.
    pub fn run_for_pairs(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        pairs: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<CommonNeighborOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();
        let mut supersteps = 0;

        // Undirected adjacency via a pipelined symmetrize + groupBy
        // (in-shuffle dedup), pushed to the PS.
        let tables = crate::runner::to_undirected_neighbor_tables(edges)?;
        let adj = NeighborTableHandle::create(
            ctx.ps(),
            "cn.adj",
            num_vertices,
            Partitioner::Hash,
            RecoveryMode::Inconsistent,
        )?;
        let adj_ref = &adj;
        ctx.cluster()
            .run_stage(tables.num_partitions(), |p, exec| {
                let part = tables.partition(p)?;
                if !part.is_empty() {
                    adj_ref.push(exec.clock(), &part).df()?;
                }
                Ok(())
            })
            .map_err(crate::error::CoreError::from)?;
        supersteps += 1;

        if self.checkpoint {
            ctx.ps().checkpoint(ctx.dfs(), "cn.adj")?;
        }

        // Stream pair batches: pull adjacency, intersect locally.
        let batch = self.batch_size.max(1);
        let mut results: Vec<Vec<(u64, u64, u64)>> = Vec::new();
        let total_batches = {
            let counts = ctx
                .cluster()
                .run_stage(pairs.num_partitions(), |p, _exec| {
                    Ok(pairs.partition(p)?.len().div_ceil(batch))
                })
                .map_err(crate::error::CoreError::from)?;
            counts.into_iter().max().unwrap_or(0)
        };

        for round in 0..total_batches {
            let (killed_execs, _) = ctx.superstep_maintenance(supersteps)?;
            if !killed_execs.is_empty() {
                tables.recover()?;
                pairs.recover()?;
            }
            supersteps += 1;

            let adj_ref = &adj;
            let round_results: Vec<Vec<(u64, u64, u64)>> = ctx
                .cluster()
                .run_stage(pairs.num_partitions(), move |p, exec| {
                    let part = pairs.partition(p)?;
                    let lo = round * batch;
                    if lo >= part.len() {
                        return Ok(Vec::new());
                    }
                    let hi = ((round + 1) * batch).min(part.len());
                    let slice = &part[lo..hi];
                    let mut wanted = Vec::with_capacity(slice.len() * 2);
                    for &(a, b) in slice {
                        wanted.push(a);
                        wanted.push(b);
                    }
                    let neigh = adj_ref.pull(exec.clock(), &wanted).df()?;
                    let mut out = Vec::with_capacity(slice.len());
                    let mut work = 0u64;
                    for (k, &(a, b)) in slice.iter().enumerate() {
                        let na = &neigh[2 * k];
                        let nb = &neigh[2 * k + 1];
                        let (small, large) =
                            if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
                        let set: FxHashSet<u64> = large.iter().copied().collect();
                        let count = small.iter().filter(|v| set.contains(v)).count() as u64;
                        work += (small.len() + large.len()) as u64;
                        out.push((a, b, count));
                    }
                    exec.charge_cpu(ctx.cluster().cost(), work * 3);
                    Ok(out)
                })
                .map_err(crate::error::CoreError::from)?;
            results.push(round_results.into_iter().flatten().collect());
        }

        let counts: Vec<(u64, u64, u64)> = results.into_iter().flatten().collect();
        ctx.ps().unregister("cn.adj");

        Ok(CommonNeighborOutput { counts, stats: ctx.stats_since(start, snap, supersteps) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, metrics, EdgeList};
    use psgraph_sim::FxHashMap;

    fn check_against_exact(g: &EdgeList) {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        let out = CommonNeighbor { batch_size: 16, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap();
        let queried: Vec<(u64, u64)> = out.counts.iter().map(|&(a, b, _)| (a, b)).collect();
        let exact = metrics::common_neighbors_exact(g, &queried);
        let got: FxHashMap<(u64, u64), u64> =
            out.counts.iter().map(|&(a, b, c)| ((a, b), c)).collect();
        for (&(a, b), want) in queried.iter().zip(&exact) {
            assert_eq!(got[&(a, b)], *want, "pair ({a},{b})");
        }
        // Every edge of the graph was queried.
        assert_eq!(out.counts.len(), g.num_edges());
    }

    #[test]
    fn square_with_diagonal() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        check_against_exact(&g);
    }

    #[test]
    fn random_graph_matches_exact() {
        check_against_exact(&gen::erdos_renyi(40, 200, 37).dedup());
    }

    #[test]
    fn powerlaw_graph_matches_exact() {
        check_against_exact(&gen::rmat(50, 300, Default::default(), 41).dedup());
    }

    #[test]
    fn explicit_pairs_query() {
        let ctx = PsGraphContext::local();
        let g = gen::complete(5);
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let pairs = distribute_edges(
            &ctx,
            &EdgeList::new(5, vec![(0, 1), (2, 4)]),
            2,
        )
        .unwrap();
        let out = CommonNeighbor::default()
            .run_for_pairs(&ctx, &edges, &pairs, 5)
            .unwrap();
        // In K5 any two distinct vertices share the other 3.
        assert_eq!(out.counts.len(), 2);
        assert!(out.counts.iter().all(|&(_, _, c)| c == 3));
    }

    #[test]
    fn batching_does_not_change_results() {
        let g = gen::erdos_renyi(30, 150, 43).dedup();
        let ctx1 = PsGraphContext::local();
        let e1 = distribute_edges(&ctx1, &g, 4).unwrap();
        let big = CommonNeighbor { batch_size: 10_000, ..Default::default() }
            .run(&ctx1, &e1, 30)
            .unwrap();
        let ctx2 = PsGraphContext::local();
        let e2 = distribute_edges(&ctx2, &g, 4).unwrap();
        let small = CommonNeighbor { batch_size: 3, ..Default::default() }
            .run(&ctx2, &e2, 30)
            .unwrap();
        let mut a = big.counts.clone();
        let mut b = small.counts.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(small.stats.supersteps > big.stats.supersteps);
    }

    #[test]
    fn survives_ps_failure_with_checkpoint() {
        use psgraph_sim::FailPlan;
        let g = gen::rmat(40, 250, Default::default(), 47).dedup();
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.ps().injector().schedule(FailPlan::kill_server(1, 3));
        let out = CommonNeighbor { batch_size: 8, checkpoint: true }
            .run(&ctx, &edges, 40)
            .unwrap();
        // Counts still match the exact reference.
        let queried: Vec<(u64, u64)> = out.counts.iter().map(|&(a, b, _)| (a, b)).collect();
        let exact = metrics::common_neighbors_exact(&g, &queried);
        for ((_, _, c), want) in out.counts.iter().zip(&exact) {
            assert_eq!(c, want);
        }
    }
}
