//! Connected components on the parameter server: min-label propagation
//! with the labels vector on the PS — the same increments-only pattern as
//! PageRank (§IV-A): a vertex pushes its label only when it shrank.

use std::sync::Arc;

use psgraph_dataflow::Rdd;
use psgraph_ps::{Partitioner, RecoveryMode, VectorHandle};

use crate::context::{PsGraphContext, RunStats};
use crate::error::PsResultExt;
use crate::error::Result;

/// Connected-components job configuration.
#[derive(Debug, Clone)]
pub struct ConnectedComponents {
    pub max_iterations: u64,
}

impl Default for ConnectedComponents {
    fn default() -> Self {
        ConnectedComponents { max_iterations: 200 }
    }
}

/// Result: component label per vertex (the minimum vertex id reachable).
#[derive(Debug, Clone)]
pub struct ConnectedComponentsOutput {
    pub labels: Vec<u64>,
    pub stats: RunStats,
}

impl ConnectedComponents {
    pub fn run(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> Result<ConnectedComponentsOutput> {
        let start = ctx.now();
        let snap = ctx.net_snapshot();

        let tables = crate::runner::to_undirected_neighbor_tables(edges)?;

        let labels = VectorHandle::<u64>::create(
            ctx.ps(), "cc.labels", num_vertices, Partitioner::Range, RecoveryMode::Consistent,
        )?;
        let ids: Vec<u64> = (0..num_vertices).collect();
        labels.push_set(ctx.cluster().driver(), &ids, &ids)?;

        let mut supersteps = 0;
        for step in 0..self.max_iterations {
            let (killed_execs, _) = ctx.superstep_maintenance(step)?;
            if !killed_execs.is_empty() {
                tables.recover()?;
            }
            supersteps += 1;

            let labels_ref = &labels;
            let changes: Vec<u64> = ctx
                .cluster()
                .run_stage(tables.num_partitions(), |p, exec| {
                    let part = tables.partition(p)?;
                    let mut wanted = Vec::new();
                    for (v, ns) in part.iter() {
                        wanted.push(*v);
                        wanted.extend_from_slice(ns);
                    }
                    if wanted.is_empty() {
                        return Ok(0);
                    }
                    let got = labels_ref.pull(exec.clock(), &wanted).df()?;
                    let mut cursor = 0;
                    let mut upd_idx = Vec::new();
                    let mut upd_val = Vec::new();
                    for (v, ns) in part.iter() {
                        let own = got[cursor];
                        cursor += 1;
                        let min_nbr =
                            got[cursor..cursor + ns.len()].iter().copied().min();
                        cursor += ns.len();
                        if let Some(m) = min_nbr {
                            if m < own {
                                upd_idx.push(*v);
                                upd_val.push(m);
                            }
                        }
                    }
                    exec.charge_cpu(ctx.cluster().cost(), wanted.len() as u64 * 2);
                    if !upd_idx.is_empty() {
                        labels_ref.push_set(exec.clock(), &upd_idx, &upd_val).df()?;
                    }
                    Ok(upd_idx.len() as u64)
                })
                .map_err(crate::error::CoreError::from)?;

            if changes.iter().sum::<u64>() == 0 {
                break;
            }
        }

        let out = labels.pull_all(ctx.cluster().driver())?;
        ctx.cluster().clock().barrier([ctx.cluster().driver()]);
        ctx.ps().unregister("cc.labels");
        Ok(ConnectedComponentsOutput {
            labels: out,
            stats: ctx.stats_since(start, snap, supersteps),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::distribute_edges;
    use psgraph_graph::{gen, metrics, EdgeList};

    fn run_cc(g: &EdgeList) -> Vec<u64> {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, g, 8).unwrap();
        ConnectedComponents::default()
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
            .labels
    }

    #[test]
    fn two_islands_and_isolated() {
        let g = EdgeList::new(7, vec![(0, 1), (1, 2), (4, 5)]);
        let cc = run_cc(&g);
        assert_eq!(cc, vec![0, 0, 0, 3, 4, 4, 6]);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let g = gen::erdos_renyi(80, 120, 401).dedup();
        let ours = run_cc(&g);
        let reference = metrics::connected_components(&g);
        for a in 0..80usize {
            for b in 0..80usize {
                assert_eq!(ours[a] == ours[b], reference[a] == reference[b]);
            }
        }
    }

    #[test]
    fn single_component_on_ring() {
        let cc = run_cc(&gen::ring(20));
        assert!(cc.iter().all(|&l| l == 0));
    }

    #[test]
    fn survives_executor_failure() {
        use psgraph_sim::FailPlan;
        let g = gen::rmat(50, 120, Default::default(), 31).dedup();
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.cluster().injector().schedule(FailPlan::kill_executor(2, 1));
        let out = ConnectedComponents::default().run(&ctx, &edges, 50).unwrap();
        let reference = metrics::connected_components(&g);
        for a in 0..50usize {
            for b in 0..50usize {
                assert_eq!(out.labels[a] == out.labels[b], reference[a] == reference[b]);
            }
        }
    }
}
