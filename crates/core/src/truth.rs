//! Hooks from trained algorithm outputs into the query interpreter.
//!
//! Training leaves plain arrays behind (ranks, labels, embeddings, edge
//! lists); the single-node oracle in `psgraph_query` wants a
//! [`GraphTruth`]. [`TruthBuilder`] bridges the two, normalizing edge
//! lists into the sorted, deduplicated out-adjacency the CSR snapshot
//! stores — so interpreter answers are the serving-tier truth bit for
//! bit.

pub use psgraph_query::{GraphTruth, Interpreter, PlanOutput};

/// Sorted, deduplicated out-adjacency — exactly what the CSR snapshot
/// stores, so plan execution over it matches the serving tier.
pub fn out_adjacency(edges: &[(u64, u64)], n: u64) -> Vec<Vec<u64>> {
    let mut adj = vec![Vec::new(); n as usize];
    for &(s, d) in edges {
        adj[s as usize].push(d);
    }
    for ns in &mut adj {
        ns.sort_unstable();
        ns.dedup();
    }
    adj
}

/// Assemble a [`GraphTruth`] from whichever trained objects exist.
pub struct TruthBuilder {
    truth: GraphTruth,
}

impl TruthBuilder {
    pub fn new(num_vertices: u64) -> Self {
        TruthBuilder { truth: GraphTruth::new(num_vertices) }
    }

    pub fn ranks(mut self, ranks: Vec<f64>) -> Self {
        self.truth.ranks = Some(ranks);
        self
    }

    pub fn communities(mut self, labels: Vec<u64>) -> Self {
        self.truth.communities = Some(labels);
        self
    }

    /// Adjacency from a raw edge list (normalized via [`out_adjacency`]).
    pub fn edges(mut self, edges: &[(u64, u64)]) -> Self {
        self.truth.adjacency = Some(out_adjacency(edges, self.truth.num_vertices));
        self
    }

    /// Adjacency already in per-vertex neighbor-list form. Lists must be
    /// sorted and deduplicated to match the CSR snapshot.
    pub fn adjacency(mut self, adj: Vec<Vec<u64>>) -> Self {
        self.truth.adjacency = Some(adj);
        self
    }

    pub fn embeddings(mut self, rows: Vec<Vec<f32>>) -> Self {
        self.truth.embeddings = Some(rows);
        self
    }

    pub fn build(self) -> GraphTruth {
        self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_query::Plan;

    #[test]
    fn builder_normalizes_edges_and_feeds_the_interpreter() {
        let edges = [(0u64, 2u64), (0, 1), (0, 2), (1, 3), (3, 0)];
        let truth = TruthBuilder::new(4).edges(&edges).build();
        assert_eq!(truth.adjacency.as_ref().unwrap()[0], vec![1, 2], "sorted + deduped");
        let out = Interpreter::new(&truth, 1).run(&Plan::khop(0, 2)).unwrap();
        assert_eq!(out, PlanOutput::Vertices(vec![1, 2, 3]));
    }
}
