//! PSGraph — the paper's system: Spark executors for computation, a
//! distributed parameter server for frequently-accessed state, and an
//! embedded tensor runtime for GNNs.
//!
//! The entry point is [`PsGraphContext`] (the paper's `PSContext` +
//! `SparkContext` pair): it owns the simulated Spark cluster, the PS
//! cluster, and the DFS, and wires their failure injectors and clocks
//! together. [`runner`] mirrors the paper's Listing 1 (`GraphRunner` /
//! `GraphIO`). [`algos`] implements the seven evaluated algorithms:
//!
//! | algorithm | paper § | PS state |
//! |---|---|---|
//! | PageRank (delta) | IV-A | `ranks`, `Δranks` vectors |
//! | K-Core (h-index) | V-B1 | `coreness` vector |
//! | Common Neighbor | IV-B | neighbor table |
//! | Triangle Count | V-B1 | neighbor table |
//! | Fast Unfolding | IV-C | `vertex2com`, `com2weight` vectors |
//! | Label Propagation | II-B | `labels` vector |
//! | Connected Components | II-B | `labels` vector (min-id propagation) |
//! | LINE | IV-D | column-partitioned embed + context matrices |
//! | GraphSage | IV-E | features, neighbor table, weight matrices |

pub mod agent;
pub mod algos;
pub mod api;
pub mod context;
pub mod error;
pub mod runner;
pub mod truth;

pub use agent::PsAgent;
pub use api::{run_job, GraphAlgorithm};
pub use context::{PsGraphConfig, PsGraphContext, RunStats};
pub use error::CoreError;
