//! The PS agent (paper §III-C): "PSGraph establishes a PS agent in every
//! Spark executor to manage the data communication between Spark and PS.
//! When the PS agent needs to get a data item from the PS, it first uses
//! the data index to get the partition location from PSContext … then
//! gets the required data from PS via RPC."
//!
//! In this reproduction the typed handles (`VectorHandle`, `MatrixHandle`,
//! …) already do the locate-then-RPC work; the agent layer adds what the
//! paper's agents provide operationally: per-executor traffic accounting
//! and a single owner for the executor's PS-side interactions, which the
//! experiment harness uses to attribute pull/push volume per executor.

use psgraph_ps::{Element, PsError, VectorHandle};
use psgraph_sim::{NodeClock, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-executor PS traffic statistics.
#[derive(Debug, Default)]
pub struct AgentStats {
    pub pulls: AtomicU64,
    pub pushes: AtomicU64,
    pub items_pulled: AtomicU64,
    pub items_pushed: AtomicU64,
}

/// One executor's PS agent.
#[derive(Debug)]
pub struct PsAgent<'a> {
    executor_id: usize,
    clock: &'a NodeClock,
    stats: AgentStats,
}

impl<'a> PsAgent<'a> {
    /// Create the agent for one executor (pass its clock so all PS time
    /// lands on the right timeline).
    pub fn new(executor_id: usize, clock: &'a NodeClock) -> Self {
        PsAgent { executor_id, clock, stats: AgentStats::default() }
    }

    pub fn executor_id(&self) -> usize {
        self.executor_id
    }

    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// Simulated time spent so far on this executor.
    pub fn elapsed(&self) -> SimTime {
        self.clock.now()
    }

    /// Pull vector entries through the agent (counted).
    pub fn pull<E: Element>(
        &self,
        vector: &VectorHandle<E>,
        indices: &[u64],
    ) -> Result<Vec<E>, PsError> {
        let out = vector.pull(self.clock, indices)?;
        self.stats.pulls.fetch_add(1, Ordering::Relaxed);
        self.stats.items_pulled.fetch_add(indices.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Push additive updates through the agent (counted).
    pub fn push_add<E: Element>(
        &self,
        vector: &VectorHandle<E>,
        indices: &[u64],
        values: &[E],
    ) -> Result<(), PsError> {
        vector.push_add(self.clock, indices, values)?;
        self.stats.pushes.fetch_add(1, Ordering::Relaxed);
        self.stats.items_pushed.fetch_add(indices.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PsGraphContext;
    use psgraph_ps::{Partitioner, RecoveryMode};

    #[test]
    fn agent_counts_traffic_and_charges_its_executor() {
        let ctx = PsGraphContext::local();
        let v = VectorHandle::<f64>::create(
            ctx.ps(), "agent.v", 100, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let exec = ctx.cluster().executor(0);
        let agent = PsAgent::new(0, exec.clock());
        assert_eq!(agent.executor_id(), 0);

        agent.push_add(&v, &[1, 2, 3], &[1.0, 2.0, 3.0]).unwrap();
        let got = agent.pull(&v, &[2]).unwrap();
        assert_eq!(got, vec![2.0]);
        assert_eq!(agent.stats().pulls.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(agent.stats().pushes.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(
            agent.stats().items_pulled.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            agent.stats().items_pushed.load(std::sync::atomic::Ordering::Relaxed),
            3
        );
        assert!(agent.elapsed() > SimTime::ZERO, "time lands on the executor");
    }

    #[test]
    fn agent_surfaces_ps_errors() {
        let ctx = PsGraphContext::local();
        let v = VectorHandle::<f64>::create(
            ctx.ps(), "agent.e", 10, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let exec = ctx.cluster().executor(1);
        let agent = PsAgent::new(1, exec.clock());
        assert!(matches!(
            agent.pull(&v, &[10]),
            Err(PsError::IndexOutOfBounds { .. })
        ));
        ctx.ps().kill_server(0);
        assert!(matches!(agent.pull(&v, &[0]), Err(PsError::ServerDown { .. })));
    }
}
