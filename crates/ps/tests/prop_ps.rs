//! Property tests for the parameter server, using the in-tree harness.

use psgraph_harness::prop::{check, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};
use psgraph_ps::{PartitionLayout, Partitioner, Ps, PsConfig, RecoveryMode, VectorHandle};
use psgraph_sim::NodeClock;

/// Any partitioner valid for `parts` partitions: `HashRange` requires the
/// partition count to be a multiple of its bucket count, so buckets are
/// drawn from the divisors of `parts`.
fn arb_partitioner(src: &mut Source, parts: usize) -> Partitioner {
    match src.choice(3) {
        0 => Partitioner::Hash,
        1 => Partitioner::Range,
        _ => {
            let divisors: Vec<usize> = (1..=parts).filter(|d| parts % d == 0).collect();
            let buckets = divisors[src.choice(divisors.len() as u64) as usize];
            Partitioner::HashRange { buckets }
        }
    }
}

#[test]
fn partition_layout_is_total_and_stable() {
    check(
        "partition_layout_is_total_and_stable",
        |src: &mut Source| {
            let size = src.u64_range(1, 10_000);
            let parts = src.usize_range(1, 16);
            let servers = src.usize_range(1, 8);
            let partitioner = arb_partitioner(src, parts);
            (size, parts, servers, partitioner)
        },
        |&(size, parts, servers, partitioner)| {
            let layout = PartitionLayout::new(partitioner, size, parts, servers);
            let layout2 = PartitionLayout::new(partitioner, size, parts, servers);
            for k in (0..size).step_by(1 + size as usize / 101) {
                let p = layout.partition_of(k);
                prop_assert!(p < parts, "key {} → partition {} of {}", k, p, parts);
                prop_assert_eq!(p, layout2.partition_of(k), "placement must be stable");
                prop_assert!(layout.server_of_partition(p) < servers);
            }
            Ok(())
        },
    );
}

#[test]
fn vector_push_set_overwrites_push_add_accumulates() {
    check(
        "vector_push_set_overwrites_push_add_accumulates",
        |src: &mut Source| {
            let size = src.u64_range(1, 100);
            let ops = src.vec_with(0, 40, |s| {
                (s.u64_range(0, size), s.i64_range(-50, 50), s.bool())
            });
            (size, ops, arb_partitioner(src, 3)) // Ps below runs 3 servers → 3 partitions
        },
        |(size, ops, partitioner)| {
            let ps = Ps::new(PsConfig { servers: 3, ..Default::default() });
            let clock = NodeClock::new();
            let v = VectorHandle::<i64>::create(
                &ps,
                "prop.pv",
                *size,
                *partitioner,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            let mut model = vec![0i64; *size as usize];
            for &(idx, val, is_add) in ops {
                if is_add {
                    v.push_add(&clock, &[idx], &[val]).unwrap();
                    model[idx as usize] = model[idx as usize].saturating_add(val);
                } else {
                    v.push_set(&clock, &[idx], &[val]).unwrap();
                    model[idx as usize] = val;
                }
            }
            prop_assert_eq!(v.pull_all(&clock).unwrap(), model);
            Ok(())
        },
    );
}

#[test]
fn sparse_pull_matches_dense_pull_under_any_partitioner() {
    check(
        "sparse_pull_matches_dense_pull_under_any_partitioner",
        |src: &mut Source| {
            let size = src.u64_range(1, 200);
            let vals = src.vec_with(1, 50, |s| s.i64_range(-1000, 1000));
            let queries = src.vec_with(0, 60, |s| s.u64_range(0, size));
            (size, vals, queries, arb_partitioner(src, 2)) // Ps below runs 2 servers → 2 partitions
        },
        |(size, vals, queries, partitioner)| {
            let ps = Ps::new(PsConfig { servers: 2, ..Default::default() });
            let clock = NodeClock::new();
            let v = VectorHandle::<i64>::create(
                &ps,
                "prop.sp",
                *size,
                *partitioner,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            let idx: Vec<u64> =
                (0..vals.len()).map(|i| i as u64 % size).collect();
            v.push_add(&clock, &idx, vals).unwrap();
            let dense = v.pull_all(&clock).unwrap();
            let sparse = v.pull_sparse(&clock, queries).unwrap();
            for (q, got) in queries.iter().zip(&sparse) {
                prop_assert_eq!(*got, dense[*q as usize], "query {}", q);
            }
            Ok(())
        },
    );
}
