//! The distributed parameter server (PS) — the paper's central contribution
//! (§III-A).
//!
//! Frequently-accessed, frequently-updated state (ranks, communities,
//! embeddings, GNN weights, neighbor tables, features) is partitioned over
//! a set of PS servers and accessed by Spark executors through pull/push
//! RPCs instead of shuffle joins. The crate provides:
//!
//! * **Partitioners** (`partition`): hash, range, and hash-range layouts
//!   mapping vertex/row indices to partitions and partitions to servers.
//! * **Data structures** (`vector`, `matrix`, `colmatrix`, `neighbor`):
//!   typed handles over server-resident dense/sparse vectors, row- and
//!   column-partitioned matrices, and neighbor tables.
//! * **Operators**: `pull`, `push_add`, `push_set`, fills, and
//!   user-defined server-side functions (*psFunc*, §III-A) — including the
//!   server-side partial dot products used by LINE (§IV-D) and the
//!   Adam/AdaGrad optimizers used by GraphSage (§IV-E).
//! * **Synchronization** (`sync`): BSP and ASP superstep control.
//! * **Checkpoint/recovery** (`ps`, `master`): periodic per-server
//!   checkpoints to the DFS, a master that health-checks servers, restarts
//!   the dead ones, and restores either the failed partition
//!   (inconsistency-tolerant algorithms) or every partition (consistent
//!   algorithms such as PageRank) — §III-B.
//!
//! Every operation charges simulated time: client-side RPC latency + wire
//! bytes, server-side queueing + CPU, via `psgraph_net`.

pub mod colmatrix;
pub mod csr;
pub mod element;
pub mod error;
pub mod master;
pub mod matrix;
pub mod neighbor;
pub mod partition;
pub mod ps;
pub mod psfunc;
pub mod server;
pub mod snapshot;
pub mod sync;
pub mod vector;

pub use colmatrix::ColMatrixHandle;
pub use csr::CsrHandle;
pub use element::Element;
pub use error::PsError;
pub use master::Master;
pub use matrix::MatrixHandle;
pub use neighbor::{NeighborEntry, NeighborTableHandle};
pub use partition::{PartitionLayout, Partitioner};
pub use ps::{Ps, PsConfig, RecoveryMode};
pub use psfunc::PartitionViewMut;
pub use server::PsServer;
pub use snapshot::{SnapshotData, SnapshotEntry, SnapshotKind, SnapshotManifest, SnapshotWriter};
pub use sync::SyncMode;
pub use vector::VectorHandle;
