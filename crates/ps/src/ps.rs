//! The PS cluster: servers + object registry + checkpoint/recovery (the
//! master's failure-handling policy from paper §III-B).

use psgraph_harness::Pool;
use psgraph_net::Network;
use psgraph_sim::sync::RwLock;
use psgraph_sim::failpoint::NodeKind;
use psgraph_sim::{CostModel, FailureInjector, FxHashMap, NodeClock, SimTime};
use std::sync::Arc;

use psgraph_dfs::Dfs;

use crate::error::{PsError, Result};
use crate::partition::PartitionLayout;
use crate::server::PsServer;

/// PS sizing (paper: 20–200 servers with 10–30 GB each, scaled down).
#[derive(Debug, Clone)]
pub struct PsConfig {
    pub servers: usize,
    pub memory_per_server: u64,
    /// Server CPU ops charged per pulled/pushed item.
    pub ops_per_item: u64,
    pub cost: CostModel,
    /// Thread pool for per-partition psFunc application (`None` = the
    /// process-wide [`Pool::global`]).
    pub pool: Option<Arc<Pool>>,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig {
            servers: 2,
            memory_per_server: 1 << 30,
            ops_per_item: 4,
            cost: CostModel::default(),
            pool: None,
        }
    }
}

/// How a registered object must be recovered after a server failure
/// (paper §III-B): inconsistency-tolerant objects (GE/GNN models) restore
/// only the failed server's partitions; consistency-critical objects
/// (PageRank state) force *every* server back to the last checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    Consistent,
    Inconsistent,
}

/// Type-erased per-object operations the cluster needs for checkpointing
/// and recovery. Each typed handle registers one of these.
pub trait ObjectOps: Send + Sync {
    fn name(&self) -> &str;
    fn layout(&self) -> &PartitionLayout;
    fn recovery_mode(&self) -> RecoveryMode;
    /// Serialize one partition (must exist on `server`).
    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>>;
    /// Restore one partition onto `server` from its serialized form.
    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()>;
}

/// The parameter-server cluster handle.
pub struct Ps {
    config: PsConfig,
    network: Network,
    servers: Vec<Arc<PsServer>>,
    injector: FailureInjector,
    registry: RwLock<FxHashMap<String, Arc<dyn ObjectOps>>>,
    pool: Arc<Pool>,
}

impl std::fmt::Debug for Ps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ps")
            .field("servers", &self.servers.len())
            .field("objects", &self.registry.read().len())
            .finish()
    }
}

impl Ps {
    pub fn new(config: PsConfig) -> Arc<Self> {
        assert!(config.servers > 0, "need at least one PS server");
        let servers = (0..config.servers)
            .map(|i| Arc::new(PsServer::new(i, config.memory_per_server)))
            .collect();
        let network = Network::new(config.cost.clone());
        let pool = config
            .pool
            .clone()
            .unwrap_or_else(|| Arc::clone(Pool::global()));
        Arc::new(Ps {
            config,
            network,
            servers,
            injector: FailureInjector::none(),
            registry: RwLock::default(),
            pool,
        })
    }

    /// A small default PS (tests, examples).
    pub fn local() -> Arc<Self> {
        Ps::new(PsConfig::default())
    }

    pub fn config(&self) -> &PsConfig {
        &self.config
    }

    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    pub fn network(&self) -> &Network {
        &self.network
    }

    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// The thread pool psFunc partition application runs on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    pub fn server(&self, i: usize) -> &Arc<PsServer> {
        &self.servers[i]
    }

    /// Register a (typed) object for checkpoint/recovery bookkeeping.
    pub fn register(&self, ops: Arc<dyn ObjectOps>) {
        self.registry.write().insert(ops.name().to_string(), ops);
    }

    /// Drop an object from every server and the registry.
    pub fn unregister(&self, name: &str) {
        self.registry.write().remove(name);
        for s in &self.servers {
            s.remove_object(name);
        }
    }

    pub fn is_registered(&self, name: &str) -> bool {
        self.registry.read().contains_key(name)
    }

    /// Kill a server (failure injection / tests).
    pub fn kill_server(&self, id: usize) {
        self.servers[id].kill();
    }

    /// Restart a dead server at simulated time `t` (empty store).
    pub fn restart_server(&self, id: usize, t: SimTime) {
        self.servers[id].restart(t);
    }

    /// Consume failure plans due at `superstep`, killing targeted servers.
    pub fn apply_failures(&self, superstep: u64) -> Vec<usize> {
        let due = self.injector.take_due(NodeKind::Server, superstep);
        let mut killed = Vec::with_capacity(due.len());
        for plan in due {
            if plan.node_id < self.servers.len() {
                self.kill_server(plan.node_id);
                killed.push(plan.node_id);
            }
        }
        killed
    }

    /// Checkpoint file layout. Generational checkpoints live in their own
    /// directory so writing generation `g` never touches generation `g-1`:
    /// a crash *during* checkpointing leaves the previous generation fully
    /// intact instead of a half-overwritten mix (write-then-publish
    /// atomicity, the simulated stand-in for HDFS rename).
    fn ckpt_path_gen(generation: Option<u64>, name: &str, partition: usize) -> String {
        match generation {
            None => format!("/ckpt/{name}/part-{partition:05}"),
            Some(g) => format!("/ckpt/gen-{g:06}/{name}/part-{partition:05}"),
        }
    }

    /// Checkpoint every partition of every registered object to the DFS
    /// (paper §III-A "Each parameter server periodically stores the local
    /// data partition to HDFS"). Each server writes its own partitions,
    /// charging its own clock.
    pub fn checkpoint_all(&self, dfs: &Dfs) -> Result<()> {
        let registry = self.registry.read();
        for ops in registry.values() {
            self.checkpoint_object(dfs, ops.as_ref(), None)?;
        }
        Ok(())
    }

    /// Checkpoint every registered object into generation `g`'s directory.
    /// Callers treat the generation as published only after this returns
    /// `Ok` — a crash partway through leaves earlier generations untouched
    /// and recoverable.
    pub fn checkpoint_all_generation(&self, dfs: &Dfs, g: u64) -> Result<()> {
        let registry = self.registry.read();
        for ops in registry.values() {
            self.checkpoint_object(dfs, ops.as_ref(), Some(g))?;
        }
        Ok(())
    }

    /// Delete a published-and-superseded checkpoint generation.
    pub fn discard_checkpoint_generation(&self, dfs: &Dfs, g: u64) {
        for path in dfs.list(&format!("/ckpt/gen-{g:06}/")) {
            dfs.delete(&path);
        }
    }

    /// Checkpoint a single registered object by name.
    pub fn checkpoint(&self, dfs: &Dfs, name: &str) -> Result<()> {
        let ops = self
            .registry
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PsError::NotFound(name.to_string()))?;
        self.checkpoint_object(dfs, ops.as_ref(), None)
    }

    fn checkpoint_object(
        &self,
        dfs: &Dfs,
        ops: &dyn ObjectOps,
        generation: Option<u64>,
    ) -> Result<()> {
        let layout = ops.layout();
        for p in 0..layout.num_partitions {
            let server = &self.servers[layout.server_of_partition(p)];
            server.ensure_alive()?;
            let bytes = ops.encode_partition(server, p)?;
            dfs.write(
                &Self::ckpt_path_gen(generation, ops.name(), p),
                &bytes,
                server.port().clock(),
            )?;
        }
        Ok(())
    }

    /// Recover a restarted server: restore its partitions of
    /// inconsistency-tolerant objects from their checkpoints; for
    /// consistency-critical objects, roll *all* partitions (on every
    /// server) back to the checkpoint. `clock` is the driver/master clock
    /// observing the recovery.
    pub fn recover_server(&self, id: usize, dfs: &Dfs, clock: &NodeClock) -> Result<()> {
        self.recover_server_impl(id, dfs, clock, None)
    }

    /// [`Ps::recover_server`], restoring from a specific checkpoint
    /// generation (see [`Ps::checkpoint_all_generation`]).
    pub fn recover_server_from_generation(
        &self,
        id: usize,
        dfs: &Dfs,
        clock: &NodeClock,
        g: u64,
    ) -> Result<()> {
        self.recover_server_impl(id, dfs, clock, Some(g))
    }

    fn recover_server_impl(
        &self,
        id: usize,
        dfs: &Dfs,
        clock: &NodeClock,
        generation: Option<u64>,
    ) -> Result<()> {
        let server = Arc::clone(&self.servers[id]);
        server.ensure_alive()?;
        let registry = self.registry.read();
        for ops in registry.values() {
            let layout = ops.layout();
            match ops.recovery_mode() {
                RecoveryMode::Inconsistent => {
                    for p in layout.partitions_of_server(id) {
                        self.restore_partition(dfs, ops.as_ref(), p, &server, generation)?;
                    }
                }
                RecoveryMode::Consistent => {
                    for p in 0..layout.num_partitions {
                        let target = &self.servers[layout.server_of_partition(p)];
                        self.restore_partition(dfs, ops.as_ref(), p, target, generation)?;
                    }
                }
            }
        }
        clock.sync_to(server.port().clock().now());
        Ok(())
    }

    fn restore_partition(
        &self,
        dfs: &Dfs,
        ops: &dyn ObjectOps,
        partition: usize,
        server: &Arc<PsServer>,
        generation: Option<u64>,
    ) -> Result<()> {
        let path = Self::ckpt_path_gen(generation, ops.name(), partition);
        if !dfs.exists(&path) {
            return Err(PsError::NoCheckpoint(format!("{}[{partition}]", ops.name())));
        }
        let bytes = dfs.read(&path, server.port().clock())?;
        ops.decode_partition(server, partition, &bytes)
    }

    /// Total bytes resident across servers (diagnostics).
    pub fn resident_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.memory().in_use()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_construction() {
        let ps = Ps::new(PsConfig { servers: 3, ..Default::default() });
        assert_eq!(ps.num_servers(), 3);
        assert!(ps.server(0).is_alive());
        assert_eq!(ps.resident_bytes(), 0);
    }

    #[test]
    fn kill_and_restart_server() {
        let ps = Ps::local();
        ps.kill_server(1);
        assert!(!ps.server(1).is_alive());
        ps.restart_server(1, SimTime::from_secs(10));
        assert!(ps.server(1).is_alive());
        assert_eq!(ps.server(1).port().clock().now(), SimTime::from_secs(10));
    }

    #[test]
    fn apply_failures_kills_due_servers() {
        use psgraph_sim::FailPlan;
        let ps = Ps::local();
        ps.injector().schedule(FailPlan::kill_server(0, 4));
        assert!(ps.apply_failures(3).is_empty());
        assert_eq!(ps.apply_failures(4), vec![0]);
        assert!(!ps.server(0).is_alive());
    }

    #[test]
    fn checkpoint_unknown_object_fails() {
        let ps = Ps::local();
        let dfs = Dfs::in_memory();
        assert!(matches!(
            ps.checkpoint(&dfs, "ghost"),
            Err(PsError::NotFound(_))
        ));
    }

    // Checkpoint/recovery round-trips are tested end-to-end in vector.rs /
    // matrix.rs where typed ObjectOps implementations exist.
}
